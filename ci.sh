#!/usr/bin/env bash
# Offline verification entry point. Everything here runs without network
# access: no registry, no rustup, no downloads.
#
#   ./ci.sh          # full gate: build, test, fmt, clippy, baseline diff
#   ./ci.sh quick    # tier-1 only (build + test)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "quick gate passed"
    exit 0
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --all-targets --release -- -D warnings -D clippy::perf"
cargo clippy --all-targets --release -- -D warnings -D clippy::perf

step "cargo bench --no-run (crates/bench sub-workspace, offline criterion shim)"
(cd crates/bench && cargo bench --no-run)

step "cargo clippy (crates/bench) -- -D warnings -D clippy::perf"
(cd crates/bench && cargo clippy --all-targets --release -- -D warnings -D clippy::perf)

step "agora-harness baseline diff (BENCH_harness.json)"
./target/release/agora-harness

echo
echo "full gate passed"

#!/usr/bin/env bash
# Offline verification entry point. Everything here runs without network
# access: no registry, no rustup, no downloads.
#
#   ./ci.sh          # full gate: build, test, fmt, clippy, baseline diff
#   ./ci.sh quick    # tier-1 only (build + test)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "quick gate passed"
    exit 0
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --all-targets --release -- -D warnings -D clippy::perf"
cargo clippy --all-targets --release -- -D warnings -D clippy::perf

step "cargo bench --no-run (crates/bench sub-workspace, offline criterion shim)"
(cd crates/bench && cargo bench --no-run)

step "cargo clippy (crates/bench) -- -D warnings -D clippy::perf"
(cd crates/bench && cargo clippy --all-targets --release -- -D warnings -D clippy::perf)

step "build + clippy with tracing compiled out (--no-default-features)"
cargo build --release -p agora-harness --no-default-features
cargo clippy --release -p agora-harness --no-default-features --all-targets -- -D warnings -D clippy::perf
step "baseline diff with the no-op sink build (must match BENCH_harness.json exactly)"
./target/release/agora-harness

step "rebuild with tracing on; baseline diff must be byte-identical either way"
cargo build --release -p agora-harness
./target/release/agora-harness

step "trace smoke: deterministic TRACE jsonl + causal explain"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
./target/release/agora-harness --trace dht --trace-out "$TRACE_TMP/a.jsonl" \
    --explain dht.lookup_secs
./target/release/agora-harness --trace dht --trace-out "$TRACE_TMP/b.jsonl" >/dev/null
cmp "$TRACE_TMP/a.jsonl" "$TRACE_TMP/b.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/a.jsonl"

echo
echo "full gate passed"

#!/usr/bin/env bash
# Offline verification entry point. Everything here runs without network
# access: no registry, no rustup, no downloads.
#
#   ./ci.sh          # full gate: build, test, fmt, clippy, baseline diff
#   ./ci.sh quick    # tier-1 only (build + test)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "quick gate passed"
    exit 0
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --all-targets --release -- -D warnings -D clippy::perf"
cargo clippy --all-targets --release -- -D warnings -D clippy::perf

step "cargo bench --no-run (crates/bench sub-workspace, offline criterion shim)"
(cd crates/bench && cargo bench --no-run)

step "cargo clippy (crates/bench) -- -D warnings -D clippy::perf"
(cd crates/bench && cargo clippy --all-targets --release -- -D warnings -D clippy::perf)

step "build + clippy with tracing + observe compiled out (--no-default-features)"
cargo build --release -p agora-harness --no-default-features
cargo clippy --release -p agora-harness --no-default-features --all-targets -- -D warnings -D clippy::perf
# Note: the probe layer itself is always compiled in (agora core carries
# the reactive-policy plane unconditionally); --no-default-features strips
# the flight recorder and the observer ops plane. The sink slot stays a
# no-op for every experiment that doesn't install one.
step "baseline diff with tracing + observer compiled out (must match BENCH_harness.json exactly)"
./target/release/agora-harness

step "build + clippy with tracing off but the observe plane on; baseline still exact"
cargo build --release -p agora-harness --no-default-features --features observe
cargo clippy --release -p agora-harness --no-default-features --features observe --all-targets -- -D warnings -D clippy::perf
./target/release/agora-harness

step "rebuild with tracing on; baseline diff must be byte-identical either way"
cargo build --release -p agora-harness
./target/release/agora-harness

step "chaos smoke: E15 deterministic across thread counts; e1-e14 baseline untouched"
CHAOS_TMP="$(mktemp -d)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP" "$CHAOS_TMP"' EXIT
# 1 thread writes a filtered baseline; 8 threads must reproduce it exactly
# (the harness's own diff is the gate), and the raw artifacts must be
# byte-identical. The full-matrix baseline diffs above already prove
# e1-e14 are unchanged with chaos code compiled in but dormant.
./target/release/agora-harness --filter e15 --threads 1 \
    --baseline "$CHAOS_TMP/e15_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/e15_t1.json" >/dev/null
./target/release/agora-harness --filter e15 --threads 8 \
    --baseline "$CHAOS_TMP/e15_baseline.json" \
    --json "$CHAOS_TMP/e15_t8.json" >/dev/null
cmp "$CHAOS_TMP/e15_t1.json" "$CHAOS_TMP/e15_t8.json"

step "workload smoke: E16 deterministic across thread counts; e1-e15 baseline untouched"
# Same contract as the chaos smoke: 1 thread writes a filtered baseline,
# 8 threads must reproduce it exactly, raw artifacts byte-identical. The
# full-matrix baseline diffs above already prove e1-e15 rows are unchanged
# with the workload engine compiled in.
./target/release/agora-harness --filter e16 --threads 1 \
    --baseline "$CHAOS_TMP/e16_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/e16_t1.json" >/dev/null
./target/release/agora-harness --filter e16 --threads 8 \
    --baseline "$CHAOS_TMP/e16_baseline.json" \
    --json "$CHAOS_TMP/e16_t8.json" >/dev/null
cmp "$CHAOS_TMP/e16_t1.json" "$CHAOS_TMP/e16_t8.json"

step "market smoke: E17 deterministic across thread counts; e1-e16 baseline untouched"
# Same contract again: 1 thread writes a filtered baseline, 8 threads must
# reproduce it exactly, raw artifacts byte-identical. The full-matrix
# baseline diffs above already prove e1-e16 rows are unchanged with the
# market subsystem compiled in but dormant.
./target/release/agora-harness --filter e17 --threads 1 \
    --baseline "$CHAOS_TMP/e17_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/e17_t1.json" >/dev/null
./target/release/agora-harness --filter e17 --threads 8 \
    --baseline "$CHAOS_TMP/e17_baseline.json" \
    --json "$CHAOS_TMP/e17_t8.json" >/dev/null
cmp "$CHAOS_TMP/e17_t1.json" "$CHAOS_TMP/e17_t8.json"

step "shard smoke: --shards is invisible in the artifact; e1-e17 baseline untouched"
# The sharded engine's identity contract at the CLI surface: 1 shard (the
# serial oracle) writes a filtered baseline, 4 shards combined with 8
# matrix threads must reproduce it exactly, raw artifacts byte-identical.
# e16 is the sim-heaviest default experiment, so it exercises real
# cross-shard traffic, churn and chaos through the window barriers.
./target/release/agora-harness --filter e16 --shards 1 --threads 1 \
    --baseline "$CHAOS_TMP/shard_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/shard_s1.json" >/dev/null
./target/release/agora-harness --filter e16 --shards 4 --threads 8 \
    --baseline "$CHAOS_TMP/shard_baseline.json" \
    --json "$CHAOS_TMP/shard_s4.json" >/dev/null
cmp "$CHAOS_TMP/shard_s1.json" "$CHAOS_TMP/shard_s4.json"

step "policy smoke: E16 policy variants deterministic across threads and shards"
# The reactive-control plane acts only at drain boundaries off probe-frame
# state, so the policy-on artifact — including the exact policy.* action
# counters — must be byte-identical at any thread or shard count. The
# policy-OFF dormancy proof is the full-matrix baseline diffs above: every
# pre-policy row of BENCH_harness.json reproduces exactly with the policy
# crate compiled in.
./target/release/agora-harness --filter e16p/p10k --threads 1 \
    --baseline "$CHAOS_TMP/policy_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/policy_t1.json" >/dev/null
./target/release/agora-harness --filter e16p/p10k --threads 8 \
    --baseline "$CHAOS_TMP/policy_baseline.json" \
    --json "$CHAOS_TMP/policy_t8.json" >/dev/null
cmp "$CHAOS_TMP/policy_t1.json" "$CHAOS_TMP/policy_t8.json"
./target/release/agora-harness --filter e16p/p10k --shards 4 --threads 8 \
    --baseline "$CHAOS_TMP/policy_baseline.json" \
    --json "$CHAOS_TMP/policy_s4.json" >/dev/null
cmp "$CHAOS_TMP/policy_t1.json" "$CHAOS_TMP/policy_s4.json"

step "app smoke: E18 deterministic across threads and shards; e1-e17 baseline untouched"
# Same contract as the policy smoke: the delta-sync substrate (push
# fan-out, summary pulls, churn-driven bootstraps) must render the exact
# same rows — staleness histograms included — at any thread or shard
# count. The full-matrix baseline diffs above already prove every
# pre-app row of BENCH_harness.json reproduces with agora-app compiled in.
./target/release/agora-harness --filter e18/p10k --threads 1 \
    --baseline "$CHAOS_TMP/app_baseline.json" --update-baseline \
    --json "$CHAOS_TMP/app_t1.json" >/dev/null
./target/release/agora-harness --filter e18/p10k --threads 8 \
    --baseline "$CHAOS_TMP/app_baseline.json" \
    --json "$CHAOS_TMP/app_t8.json" >/dev/null
cmp "$CHAOS_TMP/app_t1.json" "$CHAOS_TMP/app_t8.json"
./target/release/agora-harness --filter e18/p10k --shards 4 --threads 8 \
    --baseline "$CHAOS_TMP/app_baseline.json" \
    --json "$CHAOS_TMP/app_s4.json" >/dev/null
cmp "$CHAOS_TMP/app_t1.json" "$CHAOS_TMP/app_s4.json"

step "experiments report: --reports regenerates experiments_output.txt byte-for-byte"
./target/release/agora-harness --reports > "$CHAOS_TMP/reports.txt"
cmp "$CHAOS_TMP/reports.txt" experiments_output.txt

step "trace smoke: deterministic TRACE jsonl + causal explain"
./target/release/agora-harness --trace dht --trace-out "$TRACE_TMP/a.jsonl" \
    --explain dht.lookup_secs
./target/release/agora-harness --trace dht --trace-out "$TRACE_TMP/b.jsonl" >/dev/null
cmp "$TRACE_TMP/a.jsonl" "$TRACE_TMP/b.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/a.jsonl"
# E15 under max chaos: the chaos.* span family must be present, the
# artifact deterministic, and a retried op explainable back to the driver.
./target/release/agora-harness --trace e15/i1.00 --trace-out "$TRACE_TMP/e15a.jsonl" \
    --explain retry.attempt
./target/release/agora-harness --trace e15/i1.00 --trace-out "$TRACE_TMP/e15b.jsonl" >/dev/null
cmp "$TRACE_TMP/e15a.jsonl" "$TRACE_TMP/e15b.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/e15a.jsonl"
grep -q '"type":"span","key":"chaos.kill"' "$TRACE_TMP/e15a.jsonl"
grep -q '"type":"span","key":"retry.attempt"' "$TRACE_TMP/e15a.jsonl"
# E16 at 10k users: the workload.* span family (demand ticks and diurnal
# churn) must be present and the artifact deterministic.
./target/release/agora-harness --trace e16/p10k --trace-out "$TRACE_TMP/e16a.jsonl" >/dev/null
./target/release/agora-harness --trace e16/p10k --trace-out "$TRACE_TMP/e16b.jsonl" >/dev/null
cmp "$TRACE_TMP/e16a.jsonl" "$TRACE_TMP/e16b.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/e16a.jsonl"
grep -q '"type":"span","key":"workload.demand"' "$TRACE_TMP/e16a.jsonl"
grep -q '"type":"span","key":"workload.churn_kill"' "$TRACE_TMP/e16a.jsonl"
# E17 under max chaos: the market.* span family (challenges, slashes,
# repair traffic) must be present, the artifact deterministic, and a slash
# explainable back to the audit oracle.
./target/release/agora-harness --trace e17/i1.00 --trace-out "$TRACE_TMP/e17a.jsonl" \
    --explain market.slash
./target/release/agora-harness --trace e17/i1.00 --trace-out "$TRACE_TMP/e17b.jsonl" >/dev/null
cmp "$TRACE_TMP/e17a.jsonl" "$TRACE_TMP/e17b.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/e17a.jsonl"
grep -q '"type":"span","key":"market.challenge"' "$TRACE_TMP/e17a.jsonl"
grep -q '"type":"span","key":"market.slash"' "$TRACE_TMP/e17a.jsonl"
grep -q '"type":"span","key":"market.repair_bytes"' "$TRACE_TMP/e17a.jsonl"
# E16p at 100k users: the policy.* span family (reactive decisions minted
# from probe-frame verdicts at drain boundaries) must be present and the
# artifact deterministic. 100k, not 10k: the flash crowd has to push a
# node past saturation before admission control sheds anything.
./target/release/agora-harness --trace e16p/p100k --trace-out "$TRACE_TMP/pola.jsonl" >/dev/null
./target/release/agora-harness --trace e16p/p100k --trace-out "$TRACE_TMP/polb.jsonl" >/dev/null
cmp "$TRACE_TMP/pola.jsonl" "$TRACE_TMP/polb.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/pola.jsonl"
grep -q '"type":"span","key":"policy.engage"' "$TRACE_TMP/pola.jsonl"
grep -q '"type":"span","key":"policy.shed"' "$TRACE_TMP/pola.jsonl"
grep -q '"type":"span","key":"policy.replicate"' "$TRACE_TMP/pola.jsonl"
grep -q '"type":"span","key":"policy.seed"' "$TRACE_TMP/pola.jsonl"
# E18 at 10k users: the app.* span family (submits, delta pushes, merges,
# publish-to-apply lag) must be present, the artifact deterministic, and a
# subscriber's delta lag explainable back to the push that carried it.
./target/release/agora-harness --trace e18/p10k --trace-out "$TRACE_TMP/appa.jsonl" \
    --explain app.delta_lag > "$TRACE_TMP/app_explain.txt"
grep -q "causal chain for 'app.delta_lag'" "$TRACE_TMP/app_explain.txt"
./target/release/agora-harness --trace e18/p10k --trace-out "$TRACE_TMP/appb.jsonl" >/dev/null
cmp "$TRACE_TMP/appa.jsonl" "$TRACE_TMP/appb.jsonl"
./target/release/agora-harness --validate-trace "$TRACE_TMP/appa.jsonl"
grep -q '"type":"span","key":"app.delta"' "$TRACE_TMP/appa.jsonl"
grep -q '"type":"span","key":"app.merge"' "$TRACE_TMP/appa.jsonl"
# A shed decision is explainable back to the demand delivery that tripped
# it. Sheds stop once the flash crowd passes and the hysteresis releases,
# so the default ring evicts them by end of day — retain the whole run.
./target/release/agora-harness --trace e16p/p100k --trace-cap 2097152 \
    --trace-out "$TRACE_TMP/pol_full.jsonl" \
    --explain policy.shed > "$TRACE_TMP/pol_explain.txt"
grep -q "causal chain for 'policy.shed'" "$TRACE_TMP/pol_explain.txt"
rm -f "$TRACE_TMP/pol_full.jsonl"

step "observe smoke: deterministic OBS jsonl, overload anomaly, causal explain"
# Two runs must produce byte-identical artifacts; the schema checker must
# accept them; E16 at 10k users must carry an overload anomaly; and the
# anomaly must be explainable (points-only ring keeps onset-time firings).
./target/release/agora-harness --observe e16/p10k --observe-out "$TRACE_TMP/obs_a.jsonl" \
    --explain anomaly.overload > "$TRACE_TMP/obs_explain.txt"
grep -q "causal chain for 'anomaly.overload'" "$TRACE_TMP/obs_explain.txt"
./target/release/agora-harness --observe e16/p10k --observe-out "$TRACE_TMP/obs_b.jsonl" >/dev/null
cmp "$TRACE_TMP/obs_a.jsonl" "$TRACE_TMP/obs_b.jsonl"
./target/release/agora-harness --validate-obs "$TRACE_TMP/obs_a.jsonl"
grep -q '"kind":"anomaly.overload"' "$TRACE_TMP/obs_a.jsonl"
# The sharded engine must be invisible in the observe artifact.
./target/release/agora-harness --observe e16/p10k --shards 4 \
    --observe-out "$TRACE_TMP/obs_s4.jsonl" >/dev/null
cmp "$TRACE_TMP/obs_a.jsonl" "$TRACE_TMP/obs_s4.jsonl"

step "observe without tracing: OBS bytes must not depend on the trace feature"
cargo build --release -p agora-harness --no-default-features --features observe
./target/release/agora-harness --observe e16/p10k --observe-out "$TRACE_TMP/obs_notrace.jsonl" >/dev/null
cmp "$TRACE_TMP/obs_a.jsonl" "$TRACE_TMP/obs_notrace.jsonl"
cargo build --release -p agora-harness  # leave the default-feature binary in place

echo
echo "full gate passed"

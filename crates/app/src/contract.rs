//! The typed-contract abstraction: a mutable application is a
//! deterministic [`Contract`] — pure functions over associated `State`,
//! `Delta`, and `Summary` types.
//!
//! Freenet's contract shape, specialized to an op-log CRDT: state is the
//! set of ops keyed by `(writer, seq)`, a delta is any subset of ops, and
//! the summary is a version vector (per-writer max seq). Because a valid
//! state holds a *contiguous* prefix per writer, `delta_from_summary`
//! returns exactly the suffix the holder of that summary is missing —
//! nothing more, nothing less — and merging is plain keyed union, which
//! is commutative, associative, and idempotent by construction (the CRDT
//! laws pinned by `tests/proptests.rs`).
//!
//! Everything artifact-visible iterates `BTreeMap`s sorted by key: no
//! `HashMap` iteration order can leak into encodings or metrics.

use std::collections::BTreeMap;
use std::fmt;

use agora_crypto::{sha256, Dec, DecodeError, Enc, Hash256};
use agora_web::SiteFile;

/// Per-writer sequence numbers start at 1; 0 means "nothing from this
/// writer yet" in a version vector.
pub const FIRST_SEQ: u64 = 1;

/// Largest accepted op payload (guestbook body or KV path+metadata).
pub const MAX_OP_BYTES: usize = 4096;

/// An op-log state or delta: ops keyed by `(writer, seq)`. The `BTreeMap`
/// makes every iteration writer-then-seq ordered, so encodings are
/// canonical byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OpLog<O> {
    /// The ops, keyed by `(writer, seq)`.
    pub ops: BTreeMap<(u32, u64), O>,
}

/// A version vector: per-writer highest contiguous sequence number. The
/// summary type of both shipped contracts.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VersionVector {
    /// Highest seq per writer (absent writer == 0).
    pub seen: BTreeMap<u32, u64>,
}

impl VersionVector {
    /// Highest seq recorded for `writer` (0 when unknown).
    pub fn get(&self, writer: u32) -> u64 {
        self.seen.get(&writer).copied().unwrap_or(0)
    }

    /// Canonical encoding: sorted `(writer, seq)` pairs.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new().u32(self.seen.len() as u32);
        for (&w, &s) in &self.seen {
            e = e.u32(w).u64(s);
        }
        e.done()
    }

    /// Decode an encoded vector.
    pub fn decode(buf: &[u8]) -> Result<VersionVector, DecodeError> {
        let mut d = Dec::new(buf);
        let n = d.u32()?;
        let mut seen = BTreeMap::new();
        for _ in 0..n {
            let w = d.u32()?;
            let s = d.u64()?;
            seen.insert(w, s);
        }
        Ok(VersionVector { seen })
    }
}

impl<O: Clone> OpLog<O> {
    /// The empty log.
    pub fn new() -> OpLog<O> {
        OpLog {
            ops: BTreeMap::new(),
        }
    }

    /// Total ops held.
    pub fn len(&self) -> u64 {
        self.ops.len() as u64
    }

    /// True when no ops are held.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append `op` for `writer` at the next sequence number; returns the
    /// assigned seq. Publisher-side: keeps the per-writer prefix
    /// contiguous by construction.
    pub fn append(&mut self, writer: u32, op: O) -> u64 {
        let next = self
            .ops
            .range((writer, 0)..=(writer, u64::MAX))
            .next_back()
            .map_or(FIRST_SEQ, |(&(_, s), _)| s + 1);
        self.ops.insert((writer, next), op);
        next
    }

    /// Keyed union: the CRDT join. Commutative, associative, idempotent
    /// (same key always carries the same op in any honest history).
    pub fn merge(&self, other: &OpLog<O>) -> OpLog<O> {
        let mut out = self.clone();
        for (k, op) in &other.ops {
            out.ops.entry(*k).or_insert_with(|| op.clone());
        }
        out
    }

    /// The version vector of this log: per-writer max seq.
    pub fn summarize(&self) -> VersionVector {
        let mut seen = BTreeMap::new();
        for &(w, s) in self.ops.keys() {
            let e = seen.entry(w).or_insert(0u64);
            if s > *e {
                *e = s;
            }
        }
        VersionVector { seen }
    }

    /// Exactly the ops the holder of `summary` is missing: per writer,
    /// the suffix past the summarized seq.
    pub fn suffix_from(&self, summary: &VersionVector) -> OpLog<O> {
        let mut out = OpLog::new();
        for (&(w, s), op) in &self.ops {
            if s > summary.get(w) {
                out.ops.insert((w, s), op.clone());
            }
        }
        out
    }

    /// Per-writer sequences are contiguous `1..=max` — the structural
    /// invariant that makes version vectors an exact summary.
    pub fn contiguous(&self) -> bool {
        let mut expect: BTreeMap<u32, u64> = BTreeMap::new();
        for &(w, s) in self.ops.keys() {
            let e = expect.entry(w).or_insert(FIRST_SEQ);
            if s != *e {
                return false;
            }
            *e += 1;
        }
        true
    }
}

/// Discriminant of the shipped contracts (wire-stable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ContractKind {
    /// Append-only guestbook / public log.
    Guestbook,
    /// Last-writer-wins key-value document (a mutable site).
    KvDoc,
}

impl ContractKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ContractKind::Guestbook => 1,
            ContractKind::KvDoc => 2,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(t: u8) -> Result<ContractKind, DecodeError> {
        match t {
            1 => Ok(ContractKind::Guestbook),
            2 => Ok(ContractKind::KvDoc),
            _ => Err(DecodeError::BadTag(t)),
        }
    }
}

impl fmt::Display for ContractKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractKind::Guestbook => write!(f, "guestbook"),
            ContractKind::KvDoc => write!(f, "kvdoc"),
        }
    }
}

/// A deterministic application contract: pure functions over associated
/// state, delta, and summary types. All functions are free of hidden
/// state — two nodes evaluating the same bytes agree forever.
pub trait Contract {
    /// One submitted operation (the payload a writer authors).
    type Op: Clone + fmt::Debug + PartialEq;
    /// Full application state.
    type State: Clone + fmt::Debug + PartialEq;
    /// A mergeable increment between states.
    type Delta: Clone + fmt::Debug + PartialEq;
    /// A compact description of what a holder has (for exact-suffix sync).
    type Summary: Clone + fmt::Debug + PartialEq;

    /// Which shipped contract this is.
    const KIND: ContractKind;

    /// The empty state.
    fn empty() -> Self::State;
    /// Structural validity: would an honest node ever hold this state?
    fn validate_state(state: &Self::State) -> bool;
    /// Op-level validity (size bounds, well-formedness).
    fn validate_op(op: &Self::Op) -> bool;
    /// Join two deltas. Commutative, associative, idempotent.
    fn merge_deltas(a: &Self::Delta, b: &Self::Delta) -> Self::Delta;
    /// Apply a delta to a state.
    fn apply(state: &Self::State, delta: &Self::Delta) -> Self::State;
    /// Summarize a state for exact-suffix requests.
    fn summarize(state: &Self::State) -> Self::Summary;
    /// Exactly what the holder of `summary` is missing from `state`.
    fn delta_from_summary(state: &Self::State, summary: &Self::Summary) -> Self::Delta;
    /// View a whole state as a delta (for joins and bootstraps).
    fn state_as_delta(state: &Self::State) -> Self::Delta;
    /// A delta carrying exactly one op at `(writer, seq)` (the
    /// publisher's push unit).
    fn singleton_delta(writer: u32, seq: u64, op: Self::Op) -> Self::Delta;
    /// Highest sequence `state` holds for `writer` (0 when none).
    fn writer_seq(state: &Self::State, writer: u32) -> u64;
    /// Total ops in a state (the publisher's `pub_seq` when authoritative).
    fn state_ops(state: &Self::State) -> u64;
    /// Ops carried by a delta.
    fn delta_ops(delta: &Self::Delta) -> u64;

    /// Canonical state encoding.
    fn encode_state(state: &Self::State) -> Vec<u8>;
    /// Decode a state.
    fn decode_state(buf: &[u8]) -> Result<Self::State, DecodeError>;
    /// Canonical delta encoding.
    fn encode_delta(delta: &Self::Delta) -> Vec<u8>;
    /// Decode a delta.
    fn decode_delta(buf: &[u8]) -> Result<Self::Delta, DecodeError>;
    /// Canonical summary encoding.
    fn encode_summary(summary: &Self::Summary) -> Vec<u8>;
    /// Decode a summary.
    fn decode_summary(buf: &[u8]) -> Result<Self::Summary, DecodeError>;
    /// Canonical op encoding (what a writer submits).
    fn encode_op(op: &Self::Op) -> Vec<u8>;
    /// Decode an op.
    fn decode_op(buf: &[u8]) -> Result<Self::Op, DecodeError>;
}

// ---------------------------------------------------------------------------
// Shared op-log codec: both contracts encode `OpLog<O>` the same way, so
// the helpers live here parameterized on the op codec.
// ---------------------------------------------------------------------------

fn encode_oplog<O>(log: &OpLog<O>, enc_op: impl Fn(&O) -> Vec<u8>) -> Vec<u8> {
    let mut e = Enc::new().u32(log.ops.len() as u32);
    for (&(w, s), op) in &log.ops {
        e = e.u32(w).u64(s).bytes(&enc_op(op));
    }
    e.done()
}

fn decode_oplog<O>(
    buf: &[u8],
    dec_op: impl Fn(&[u8]) -> Result<O, DecodeError>,
) -> Result<OpLog<O>, DecodeError> {
    let mut d = Dec::new(buf);
    let n = d.u32()?;
    let mut ops = BTreeMap::new();
    for _ in 0..n {
        let w = d.u32()?;
        let s = d.u64()?;
        let op = dec_op(&d.bytes()?)?;
        ops.insert((w, s), op);
    }
    Ok(OpLog { ops })
}

// ---------------------------------------------------------------------------
// Guestbook: an append-only public log. The simplest mutable app — every
// op is one signed-in entry, the rendered view is the entries in
// (writer, seq) order.
// ---------------------------------------------------------------------------

/// One guestbook entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestEntry {
    /// Entry body (opaque bytes; the app renders them).
    pub body: Vec<u8>,
}

/// The append-log / guestbook contract.
pub struct Guestbook;

impl Contract for Guestbook {
    type Op = GuestEntry;
    type State = OpLog<GuestEntry>;
    type Delta = OpLog<GuestEntry>;
    type Summary = VersionVector;

    const KIND: ContractKind = ContractKind::Guestbook;

    fn empty() -> Self::State {
        OpLog::new()
    }
    fn validate_state(state: &Self::State) -> bool {
        state.contiguous() && state.ops.values().all(Self::validate_op)
    }
    fn validate_op(op: &Self::Op) -> bool {
        !op.body.is_empty() && op.body.len() <= MAX_OP_BYTES
    }
    fn merge_deltas(a: &Self::Delta, b: &Self::Delta) -> Self::Delta {
        a.merge(b)
    }
    fn apply(state: &Self::State, delta: &Self::Delta) -> Self::State {
        state.merge(delta)
    }
    fn summarize(state: &Self::State) -> Self::Summary {
        state.summarize()
    }
    fn delta_from_summary(state: &Self::State, summary: &Self::Summary) -> Self::Delta {
        state.suffix_from(summary)
    }
    fn state_as_delta(state: &Self::State) -> Self::Delta {
        state.clone()
    }
    fn singleton_delta(writer: u32, seq: u64, op: Self::Op) -> Self::Delta {
        let mut d = OpLog::new();
        d.ops.insert((writer, seq), op);
        d
    }
    fn writer_seq(state: &Self::State, writer: u32) -> u64 {
        state.summarize().get(writer)
    }
    fn state_ops(state: &Self::State) -> u64 {
        state.len()
    }
    fn delta_ops(delta: &Self::Delta) -> u64 {
        delta.len()
    }

    fn encode_state(state: &Self::State) -> Vec<u8> {
        encode_oplog(state, Self::encode_op)
    }
    fn decode_state(buf: &[u8]) -> Result<Self::State, DecodeError> {
        decode_oplog(buf, Self::decode_op)
    }
    fn encode_delta(delta: &Self::Delta) -> Vec<u8> {
        encode_oplog(delta, Self::encode_op)
    }
    fn decode_delta(buf: &[u8]) -> Result<Self::Delta, DecodeError> {
        decode_oplog(buf, Self::decode_op)
    }
    fn encode_summary(summary: &Self::Summary) -> Vec<u8> {
        summary.encode()
    }
    fn decode_summary(buf: &[u8]) -> Result<Self::Summary, DecodeError> {
        VersionVector::decode(buf)
    }
    fn encode_op(op: &Self::Op) -> Vec<u8> {
        Enc::new().bytes(&op.body).done()
    }
    fn decode_op(buf: &[u8]) -> Result<Self::Op, DecodeError> {
        let mut d = Dec::new(buf);
        let body = d.bytes()?;
        Ok(GuestEntry { body })
    }
}

// ---------------------------------------------------------------------------
// KvDoc: a last-writer-wins key-value document — the mutable half of a
// hostless site. Ops are path writes (or deletes); the materialized view
// picks per path the op with the greatest (stamp, writer, seq), and
// `to_site_files` renders the surviving paths as `agora-web` SiteFiles,
// reusing the static-asset semantics of `site::merge_files`.
// ---------------------------------------------------------------------------

/// One key-value write (or delete) op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvWrite {
    /// Document path (e.g. `"index.html"`).
    pub path: String,
    /// Writer-supplied timestamp (sim micros); LWW tiebreak is
    /// `(stamp, writer, seq)`.
    pub stamp: u64,
    /// Content hash of the value (content-addressed; bulk bytes travel on
    /// the storage path, the contract carries only the address).
    pub value_hash: Hash256,
    /// Value length in bytes.
    pub len: u64,
    /// True for a tombstone (path deleted).
    pub delete: bool,
}

/// The last-writer-wins key-value document contract.
pub struct KvDoc;

/// The winning cell for one path in a materialized [`KvDoc`] view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvCell {
    /// Winning write's content hash.
    pub value_hash: Hash256,
    /// Winning write's value length.
    pub len: u64,
    /// True when the winning write is a tombstone.
    pub deleted: bool,
    /// The `(stamp, writer, seq)` that won.
    pub winner: (u64, u32, u64),
}

impl KvDoc {
    /// Materialize the LWW view: per path, the op with the greatest
    /// `(stamp, writer, seq)` wins. Iteration is `BTreeMap`-ordered, so
    /// ties resolve identically everywhere.
    pub fn materialize(state: &OpLog<KvWrite>) -> BTreeMap<String, KvCell> {
        let mut view: BTreeMap<String, KvCell> = BTreeMap::new();
        for (&(w, s), op) in &state.ops {
            let key = (op.stamp, w, s);
            let cell = KvCell {
                value_hash: op.value_hash,
                len: op.len,
                deleted: op.delete,
                winner: key,
            };
            match view.get_mut(&op.path) {
                Some(existing) if existing.winner >= key => {}
                Some(existing) => *existing = cell,
                None => {
                    view.insert(op.path.clone(), cell);
                }
            }
        }
        view
    }

    /// Render the live (non-deleted) paths as `agora-web` site files,
    /// sorted by path — the static-asset half of the contract. The
    /// output is directly comparable to `agora_web::merge_files` over
    /// forked manifests.
    pub fn to_site_files(state: &OpLog<KvWrite>) -> Vec<SiteFile> {
        Self::materialize(state)
            .into_iter()
            .filter(|(_, cell)| !cell.deleted)
            .map(|(path, cell)| SiteFile {
                path,
                content_hash: cell.value_hash,
                len: cell.len,
            })
            .collect()
    }
}

impl Contract for KvDoc {
    type Op = KvWrite;
    type State = OpLog<KvWrite>;
    type Delta = OpLog<KvWrite>;
    type Summary = VersionVector;

    const KIND: ContractKind = ContractKind::KvDoc;

    fn empty() -> Self::State {
        OpLog::new()
    }
    fn validate_state(state: &Self::State) -> bool {
        state.contiguous() && state.ops.values().all(Self::validate_op)
    }
    fn validate_op(op: &Self::Op) -> bool {
        !op.path.is_empty() && op.path.len() <= MAX_OP_BYTES
    }
    fn merge_deltas(a: &Self::Delta, b: &Self::Delta) -> Self::Delta {
        a.merge(b)
    }
    fn apply(state: &Self::State, delta: &Self::Delta) -> Self::State {
        state.merge(delta)
    }
    fn summarize(state: &Self::State) -> Self::Summary {
        state.summarize()
    }
    fn delta_from_summary(state: &Self::State, summary: &Self::Summary) -> Self::Delta {
        state.suffix_from(summary)
    }
    fn state_as_delta(state: &Self::State) -> Self::Delta {
        state.clone()
    }
    fn singleton_delta(writer: u32, seq: u64, op: Self::Op) -> Self::Delta {
        let mut d = OpLog::new();
        d.ops.insert((writer, seq), op);
        d
    }
    fn writer_seq(state: &Self::State, writer: u32) -> u64 {
        state.summarize().get(writer)
    }
    fn state_ops(state: &Self::State) -> u64 {
        state.len()
    }
    fn delta_ops(delta: &Self::Delta) -> u64 {
        delta.len()
    }

    fn encode_state(state: &Self::State) -> Vec<u8> {
        encode_oplog(state, Self::encode_op)
    }
    fn decode_state(buf: &[u8]) -> Result<Self::State, DecodeError> {
        decode_oplog(buf, Self::decode_op)
    }
    fn encode_delta(delta: &Self::Delta) -> Vec<u8> {
        encode_oplog(delta, Self::encode_op)
    }
    fn decode_delta(buf: &[u8]) -> Result<Self::Delta, DecodeError> {
        decode_oplog(buf, Self::decode_op)
    }
    fn encode_summary(summary: &Self::Summary) -> Vec<u8> {
        summary.encode()
    }
    fn decode_summary(buf: &[u8]) -> Result<Self::Summary, DecodeError> {
        VersionVector::decode(buf)
    }
    fn encode_op(op: &Self::Op) -> Vec<u8> {
        Enc::new()
            .str(&op.path)
            .u64(op.stamp)
            .hash(&op.value_hash)
            .u64(op.len)
            .u8(op.delete as u8)
            .done()
    }
    fn decode_op(buf: &[u8]) -> Result<Self::Op, DecodeError> {
        let mut d = Dec::new(buf);
        let path = d.str()?;
        let stamp = d.u64()?;
        let value_hash = d.hash()?;
        let len = d.u64()?;
        let delete = match d.u8()? {
            0 => false,
            1 => true,
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(KvWrite {
            path,
            stamp,
            value_hash,
            len,
            delete,
        })
    }
}

/// Convenience: a content-addressed KV value hash.
pub fn kv_value_hash(value: &[u8]) -> Hash256 {
    sha256(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(s: &str) -> GuestEntry {
        GuestEntry {
            body: s.as_bytes().to_vec(),
        }
    }

    fn sample_log() -> OpLog<GuestEntry> {
        let mut log = OpLog::new();
        log.append(1, entry("a1"));
        log.append(1, entry("a2"));
        log.append(2, entry("b1"));
        log.append(1, entry("a3"));
        log
    }

    #[test]
    fn append_assigns_contiguous_seqs_per_writer() {
        let log = sample_log();
        assert_eq!(log.len(), 4);
        assert!(log.contiguous());
        assert_eq!(log.summarize().get(1), 3);
        assert_eq!(log.summarize().get(2), 1);
        assert_eq!(log.summarize().get(3), 0);
    }

    #[test]
    fn delta_from_summary_is_exactly_the_missing_suffix() {
        let full = sample_log();
        let mut partial = OpLog::new();
        partial.append(1, entry("a1"));
        let suffix = full.suffix_from(&partial.summarize());
        assert_eq!(suffix.len(), 3);
        let rejoined = partial.merge(&suffix);
        assert_eq!(rejoined, full);
        // A holder of the full state is missing nothing.
        assert!(full.suffix_from(&full.summarize()).is_empty());
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let a = sample_log();
        let mut b = OpLog::new();
        b.append(2, entry("b1"));
        b.append(3, entry("c1"));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&a), a);
    }

    #[test]
    fn guestbook_codec_round_trips_canonically() {
        let log = sample_log();
        let bytes = Guestbook::encode_state(&log);
        let back = Guestbook::decode_state(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(Guestbook::encode_state(&back), bytes);
        let vv = log.summarize();
        assert_eq!(
            VersionVector::decode(&vv.encode()).unwrap(),
            vv,
            "summary codec round-trips"
        );
    }

    #[test]
    fn gap_breaks_contiguity_and_validation() {
        let mut log = sample_log();
        log.ops.insert((2, 5), entry("hole"));
        assert!(!log.contiguous());
        assert!(!Guestbook::validate_state(&log));
    }

    #[test]
    fn kv_lww_picks_highest_stamp_then_writer() {
        let h1 = kv_value_hash(b"v1");
        let h2 = kv_value_hash(b"v2");
        let mut log: OpLog<KvWrite> = OpLog::new();
        log.append(
            1,
            KvWrite {
                path: "index.html".into(),
                stamp: 100,
                value_hash: h1,
                len: 2,
                delete: false,
            },
        );
        log.append(
            2,
            KvWrite {
                path: "index.html".into(),
                stamp: 200,
                value_hash: h2,
                len: 2,
                delete: false,
            },
        );
        let view = KvDoc::materialize(&log);
        assert_eq!(view["index.html"].value_hash, h2);
        // Equal stamps: higher writer id wins deterministically.
        log.append(
            3,
            KvWrite {
                path: "index.html".into(),
                stamp: 200,
                value_hash: h1,
                len: 2,
                delete: false,
            },
        );
        assert_eq!(KvDoc::materialize(&log)["index.html"].value_hash, h1);
    }

    #[test]
    fn kv_delete_tombstones_drop_out_of_site_files() {
        let h = kv_value_hash(b"v");
        let mut log: OpLog<KvWrite> = OpLog::new();
        for (path, stamp, delete) in [
            ("a.html", 1, false),
            ("b.html", 2, false),
            ("a.html", 3, true),
        ] {
            log.append(
                1,
                KvWrite {
                    path: path.into(),
                    stamp,
                    value_hash: h,
                    len: 1,
                    delete,
                },
            );
        }
        let files = KvDoc::to_site_files(&log);
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].path, "b.html");
        assert!(files.windows(2).all(|w| w[0].path < w[1].path));
    }

    #[test]
    fn kv_codec_round_trips() {
        let op = KvWrite {
            path: "x/y.css".into(),
            stamp: 42,
            value_hash: kv_value_hash(b"css"),
            len: 3,
            delete: false,
        };
        let back = KvDoc::decode_op(&KvDoc::encode_op(&op)).unwrap();
        assert_eq!(back, op);
    }

    #[test]
    fn kv_render_matches_merge_files_semantics() {
        // The KV contract is the mutable half of a hostless site; its
        // rendered view must agree with `agora_web::merge_files` — the
        // static-asset merge — on the same divergence: union by path,
        // one winner per contested path, output sorted by path.
        use agora_web::{merge_files, SitePublisher};
        let ours_files: &[(&str, &[u8])] = &[("a.css", b"css"), ("index.html", b"ours")];
        let theirs_files: &[(&str, &[u8])] = &[("b.js", b"js"), ("index.html", b"theirs")];
        let mut pa = SitePublisher::new(b"kv-a");
        let mut pb = SitePublisher::new(b"kv-b");
        let ma = pa.publish(ours_files).signed.manifest;
        let mb = pb.publish(theirs_files).signed.manifest;
        let (merged, conflicts) = merge_files(&ma, &mb);
        assert_eq!(conflicts.len(), 1, "index.html diverged");

        // The same divergence as KV ops: "ours" carries the higher
        // stamp, so LWW picks the same winner merge_files' ours-bias
        // picks.
        let mut state: OpLog<KvWrite> = OpLog::new();
        for (writer, stamp, files) in [(1u32, 2u64, ours_files), (2, 1, theirs_files)] {
            for &(path, data) in files {
                state.append(
                    writer,
                    KvWrite {
                        path: path.into(),
                        stamp,
                        value_hash: kv_value_hash(data),
                        len: data.len() as u64,
                        delete: false,
                    },
                );
            }
        }
        assert_eq!(KvDoc::to_site_files(&state), merged);
    }

    #[test]
    fn contract_kind_tags_round_trip() {
        for k in [ContractKind::Guestbook, ContractKind::KvDoc] {
            assert_eq!(ContractKind::from_tag(k.tag()).unwrap(), k);
        }
        assert!(ContractKind::from_tag(9).is_err());
    }
}

//! # agora-app — typed-contract mutable applications
//!
//! §3.4's hardest survey row is *hostless web applications*: `agora-web`
//! serves immutable signed bundles, but real apps mutate. This crate adds
//! Freenet-style typed contracts — an app is a deterministic [`Contract`]
//! with associated `State`, `Delta`, and `Summary` types and pure
//! validate/merge/summarize functions obeying CRDT join laws — plus the
//! delta-sync substrate that hosts them on simulated consumer devices:
//!
//! * [`contract`] — the [`Contract`] trait, the shared op-log/version-
//!   vector machinery, and two shipped contracts: [`Guestbook`] (append
//!   log) and [`KvDoc`] (last-writer-wins key-value document whose live
//!   view renders as `agora-web` site files).
//! * [`manifest`] — signed, key-addressed app identity
//!   ([`SignedContract`]) and per-delta certificates ([`DeltaCert`]),
//!   on the same `SimKeyPair`/`Hash256` machinery as `agora-web`.
//! * [`node`] — the [`AppNode`] protocol: publishers push signed deltas,
//!   subscribers hold summaries and pull exactly the missing suffix, and
//!   a centralized server/client pair serves the same contract for
//!   comparison (E18).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod manifest;
pub mod node;

pub use contract::{
    kv_value_hash, Contract, ContractKind, GuestEntry, Guestbook, KvCell, KvDoc, KvWrite, OpLog,
    VersionVector, FIRST_SEQ, MAX_OP_BYTES,
};
pub use manifest::{AppManifest, AppPublisher, DeltaCert, SignedContract};
pub use node::{AppMsg, AppNode, AppResult, ANTI_ENTROPY};

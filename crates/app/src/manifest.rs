//! Contract identity: signed, key-addressed app manifests plus per-delta
//! certificates, built on the same `SimKeyPair`/`Hash256` machinery as
//! `agora-web`'s `SignedManifest`.
//!
//! The app address is the publisher key's fingerprint — the mutable-app
//! analogue of a ZeroNet site address. Discovery carries only manifest
//! *bytes* (the DHT can't move live key material); possession of the
//! address lets any node check that a fetched manifest is structurally
//! valid and self-addressed, while full authorship verification happens
//! once a [`SignedContract`] value arrives over the sync path.

use agora_crypto::{
    tagged_hash, Dec, DecodeError, Enc, Hash256, SimKeyPair, SimPublicKey, SimSignature,
    PK_WIRE_SIZE, SIG_WIRE_SIZE,
};

use crate::contract::ContractKind;

/// The manifest of one mutable app: its address, contract kind, human
/// name, and schema version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppManifest {
    /// App address: the publisher key's fingerprint.
    pub app: Hash256,
    /// Which contract governs the state.
    pub kind: ContractKind,
    /// Human-readable name.
    pub name: String,
    /// Contract schema version (bumped on incompatible op changes).
    pub schema: u32,
}

impl AppManifest {
    /// Canonical encoding (what gets signed and what discovery stores).
    pub fn encode(&self) -> Vec<u8> {
        Enc::new()
            .hash(&self.app)
            .u8(self.kind.tag())
            .str(&self.name)
            .u32(self.schema)
            .done()
    }

    /// Decode an encoded manifest.
    pub fn decode(buf: &[u8]) -> Result<AppManifest, DecodeError> {
        let mut d = Dec::new(buf);
        let app = d.hash()?;
        let kind = ContractKind::from_tag(d.u8()?)?;
        let name = d.str()?;
        let schema = d.u32()?;
        Ok(AppManifest {
            app,
            kind,
            name,
            schema,
        })
    }

    /// Domain-separated manifest hash.
    pub fn hash(&self) -> Hash256 {
        tagged_hash("app-manifest", &self.encode())
    }

    /// Structural check for a manifest fetched from discovery under
    /// `addr`: it must be self-addressed (the signature check happens
    /// later, in-memory, via [`SignedContract::verify`]).
    pub fn addressed_to(&self, addr: &Hash256) -> bool {
        self.app == *addr
    }

    /// Wire size.
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// A manifest plus publisher authorship proof.
#[derive(Clone, Debug)]
pub struct SignedContract {
    /// The manifest.
    pub manifest: AppManifest,
    /// Publisher key (must fingerprint to `manifest.app`).
    pub author: SimPublicKey,
    /// Signature over the canonical manifest encoding.
    pub signature: SimSignature,
}

impl SignedContract {
    /// Verify authorship: the key matches the app address and signs the
    /// manifest bytes.
    pub fn verify(&self) -> bool {
        self.author.id() == self.manifest.app
            && self.author.verify(&self.manifest.encode(), &self.signature)
    }

    /// Wire size.
    pub fn wire_size(&self) -> u64 {
        self.manifest.wire_size() + PK_WIRE_SIZE + SIG_WIRE_SIZE
    }
}

/// A per-delta certificate: the publisher's signature binding delta bytes
/// to the app address and a publish sequence number, so subscribers can
/// reject spoofed or replayed-out-of-context deltas.
#[derive(Clone, Debug)]
pub struct DeltaCert {
    /// Publisher log length after this delta.
    pub pub_seq: u64,
    /// Hash of the delta bytes.
    pub delta_hash: Hash256,
    /// Signature over `(app, pub_seq, delta_hash)`.
    pub signature: SimSignature,
}

impl DeltaCert {
    fn signable(app: &Hash256, pub_seq: u64, delta_hash: &Hash256) -> Vec<u8> {
        Enc::new().hash(app).u64(pub_seq).hash(delta_hash).done()
    }

    /// Sign a delta for an app.
    pub fn sign(keys: &SimKeyPair, app: &Hash256, pub_seq: u64, delta: &[u8]) -> DeltaCert {
        let delta_hash = tagged_hash("app-delta", delta);
        DeltaCert {
            pub_seq,
            delta_hash,
            signature: keys.sign(&Self::signable(app, pub_seq, &delta_hash)),
        }
    }

    /// Verify against the claimed author, app address, and delta bytes.
    pub fn verify(&self, author: &SimPublicKey, app: &Hash256, delta: &[u8]) -> bool {
        self.delta_hash == tagged_hash("app-delta", delta)
            && author.verify(
                &Self::signable(app, self.pub_seq, &self.delta_hash),
                &self.signature,
            )
    }

    /// Wire size.
    pub fn wire_size(&self) -> u64 {
        8 + 32 + SIG_WIRE_SIZE
    }
}

/// An app publisher's signing identity.
pub struct AppPublisher {
    keys: SimKeyPair,
}

impl AppPublisher {
    /// Fresh identity from seed material.
    pub fn new(seed: &[u8]) -> AppPublisher {
        AppPublisher {
            keys: SimKeyPair::from_seed(seed),
        }
    }

    /// The app address this identity publishes under.
    pub fn app_id(&self) -> Hash256 {
        self.keys.public().id()
    }

    /// Build and sign the manifest for this app.
    pub fn sign_manifest(&self, kind: ContractKind, name: &str, schema: u32) -> SignedContract {
        let manifest = AppManifest {
            app: self.app_id(),
            kind,
            name: name.to_owned(),
            schema,
        };
        let signature = self.keys.sign(&manifest.encode());
        SignedContract {
            manifest,
            author: self.keys.public(),
            signature,
        }
    }

    /// Sign a delta certificate.
    pub fn sign_delta(&self, pub_seq: u64, delta: &[u8]) -> DeltaCert {
        DeltaCert::sign(&self.keys, &self.app_id(), pub_seq, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_contract_verifies_and_rejects_wrong_author() {
        let p = AppPublisher::new(b"app-pub-1");
        let sc = p.sign_manifest(ContractKind::Guestbook, "guestbook", 1);
        assert!(sc.verify());
        assert_eq!(sc.manifest.app, p.app_id());

        let other = AppPublisher::new(b"app-pub-2");
        let mut forged = sc.clone();
        forged.author = other.sign_manifest(ContractKind::Guestbook, "g", 1).author;
        assert!(!forged.verify(), "wrong key must not verify");
    }

    #[test]
    fn manifest_codec_round_trips_and_checks_address() {
        let p = AppPublisher::new(b"app-pub-3");
        let sc = p.sign_manifest(ContractKind::KvDoc, "docs", 2);
        let bytes = sc.manifest.encode();
        let back = AppManifest::decode(&bytes).unwrap();
        assert_eq!(back, sc.manifest);
        assert!(back.addressed_to(&p.app_id()));
        assert!(!back.addressed_to(&Hash256([9; 32])));
        assert_eq!(back.wire_size(), bytes.len() as u64);
    }

    #[test]
    fn delta_cert_binds_app_seq_and_bytes() {
        let p = AppPublisher::new(b"app-pub-4");
        let delta = b"delta-bytes".to_vec();
        let cert = p.sign_delta(7, &delta);
        let author = p.sign_manifest(ContractKind::Guestbook, "g", 1).author;
        assert!(cert.verify(&author, &p.app_id(), &delta));
        assert!(!cert.verify(&author, &p.app_id(), b"tampered"));
        assert!(!cert.verify(&author, &Hash256([1; 32]), &delta));
        let mut replay = cert.clone();
        replay.pub_seq = 8;
        assert!(!replay.verify(&author, &p.app_id(), &delta));
    }

    #[test]
    fn manifest_decode_rejects_bad_kind_tag() {
        let p = AppPublisher::new(b"app-pub-5");
        let mut bytes = p
            .sign_manifest(ContractKind::Guestbook, "g", 1)
            .manifest
            .encode();
        bytes[32] = 9; // kind tag byte follows the 32-byte app hash
        assert!(AppManifest::decode(&bytes).is_err());
    }
}

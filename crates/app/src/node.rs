//! The delta-sync substrate: contract hosting as poll-style `agora-sim`
//! state machines.
//!
//! Four roles share one protocol. A **publisher** holds the authoritative
//! op log, accepts writer submissions, and pushes signed deltas to its
//! subscriber set. A **subscriber** holds a full replica plus its
//! summary; when a push reveals a gap (the publisher's sequence ran ahead
//! of what it holds) it sends its summary and receives *exactly* the
//! missing suffix back. A **server** is the centralized comparison: same
//! contract, same writers, but readers pull the full state over the wire
//! per read and nothing is pushed. A **client** is the centralized
//! reader/writer endpoint.
//!
//! Health signals: subscribers emit `app.delta_lag` (publish-to-apply
//! seconds, also a trace point for `--explain`) and publishers emit
//! `app.state_bytes`; `app.delta` / `app.merge` trace points mark every
//! delta receipt and merge for the trace plane. Everything
//! artifact-visible iterates sorted structures (`BTreeMap`/`BTreeSet`):
//! push fan-out is NodeId-ordered, never hash-ordered.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use agora_crypto::Hash256;
use agora_sim::{Ctx, NodeId, Protocol, SimDuration};

use crate::contract::Contract;
use crate::manifest::{AppPublisher, DeltaCert, SignedContract};

/// Fixed per-message envelope overhead (addresses, tags, lengths).
const MSG_HEADER: u64 = 40;

/// Subscriber anti-entropy cadence: re-subscribe or pull if behind.
pub const ANTI_ENTROPY: SimDuration = SimDuration::from_mins(5);

/// Timer tag for the anti-entropy loop.
const TAG_ANTI_ENTROPY: u64 = 1;

/// Wire messages of the app substrate.
#[derive(Clone, Debug)]
pub enum AppMsg {
    /// Subscriber → publisher: register and request a full bootstrap.
    Subscribe,
    /// Publisher → subscriber: the signed contract plus current state.
    SubAck {
        /// Authorship proof (verified in-memory; see `manifest`).
        contract: Box<SignedContract>,
        /// Canonical state bytes.
        state: Rc<[u8]>,
        /// Publisher log length.
        pub_seq: u64,
        /// Publish time of the newest op (sim micros).
        published_us: u64,
    },
    /// Writer → authority: one encoded op.
    Submit {
        /// Writer-side poll op id (echoed in the ack).
        op: u64,
        /// Encoded op payload.
        body: Rc<[u8]>,
    },
    /// Authority → writer: the op landed at `pub_seq`.
    SubmitAck {
        /// Echoed poll op id.
        op: u64,
        /// Publisher log length after the append.
        pub_seq: u64,
    },
    /// Publisher → subscribers: one signed delta.
    Push {
        /// Publisher log length after this delta.
        pub_seq: u64,
        /// Publish time (sim micros).
        published_us: u64,
        /// Encoded delta bytes.
        delta: Rc<[u8]>,
        /// Publisher's certificate over the delta.
        cert: Box<DeltaCert>,
    },
    /// Subscriber → publisher: "here is my summary, send what I lack".
    PullReq {
        /// Encoded summary (version vector).
        summary: Rc<[u8]>,
    },
    /// Publisher → subscriber: exactly the missing suffix.
    PullResp {
        /// Publisher log length the suffix brings the holder to.
        pub_seq: u64,
        /// Publish time of the newest op (sim micros).
        published_us: u64,
        /// Encoded delta bytes.
        delta: Rc<[u8]>,
        /// Publisher's certificate over the delta.
        cert: Box<DeltaCert>,
    },
    /// Client → server: read the full state.
    ReadReq {
        /// Client-side poll op id.
        op: u64,
    },
    /// Server → client: the full state bytes.
    ReadResp {
        /// Echoed poll op id.
        op: u64,
        /// Canonical state bytes.
        state: Rc<[u8]>,
        /// Server log length.
        pub_seq: u64,
    },
}

impl AppMsg {
    /// Modeled wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        MSG_HEADER
            + match self {
                AppMsg::Subscribe => 0,
                AppMsg::SubAck {
                    contract, state, ..
                } => contract.wire_size() + state.len() as u64 + 16,
                AppMsg::Submit { body, .. } => 8 + body.len() as u64,
                AppMsg::SubmitAck { .. } => 16,
                AppMsg::Push { delta, cert, .. } | AppMsg::PullResp { delta, cert, .. } => {
                    16 + delta.len() as u64 + cert.wire_size()
                }
                AppMsg::PullReq { summary } => summary.len() as u64,
                AppMsg::ReadReq { .. } => 8,
                AppMsg::ReadResp { state, .. } => 16 + state.len() as u64,
            }
    }
}

/// A completed poll-style operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppResult {
    /// A submit was accepted at this publisher sequence.
    Submitted {
        /// Publisher log length after the append.
        pub_seq: u64,
    },
    /// A centralized read returned this many state bytes.
    Read {
        /// Server log length at read time.
        pub_seq: u64,
        /// State bytes transferred.
        bytes: u64,
    },
}

/// Authoritative side (publisher or centralized server).
struct Authority<C: Contract> {
    identity: AppPublisher,
    contract: SignedContract,
    state: C::State,
    /// Exact length of `C::encode_state(&state)`, maintained incrementally.
    state_bytes: u64,
    writers: BTreeMap<NodeId, u32>,
    subscribers: BTreeSet<NodeId>,
    pub_seq: u64,
    last_published_us: u64,
    /// Every byte this authority put on the wire (pushes, bootstraps,
    /// pull responses, reads) — the modeled uplink cost of hosting.
    sent_bytes: u64,
    /// Publishers push deltas; servers only answer reads.
    push: bool,
}

impl<C: Contract> Authority<C> {
    /// Append one validated op: assign the writer id and sequence,
    /// maintain the exact encoded-state size, and push the signed delta
    /// to subscribers when publishing.
    fn accept_op(&mut self, ctx: &mut Ctx<'_, AppMsg>, from: NodeId, op: C::Op) -> u64 {
        let next_writer = self.writers.len() as u32 + 1;
        let writer = *self.writers.entry(from).or_insert(next_writer);
        let seq = C::writer_seq(&self.state, writer) + 1;
        let delta = C::singleton_delta(writer, seq, op);
        self.state = C::apply(&self.state, &delta);
        self.pub_seq += 1;
        self.last_published_us = ctx.now().micros();
        let delta_bytes = C::encode_delta(&delta);
        // The canonical state encoding grows by exactly the delta's op
        // records (both carry one 4-byte count header).
        self.state_bytes += delta_bytes.len() as u64 - 4;
        ctx.trace_point("app.submit", 1.0);
        ctx.probe_signal("app.state_bytes", self.state_bytes as f64);
        if self.push && !self.subscribers.is_empty() {
            let cert = self.identity.sign_delta(self.pub_seq, &delta_bytes);
            let msg = AppMsg::Push {
                pub_seq: self.pub_seq,
                published_us: self.last_published_us,
                delta: delta_bytes.into(),
                cert: Box::new(cert),
            };
            let bytes = msg.wire_size();
            // BTreeSet iteration: pushes fan out in NodeId order.
            let targets: Vec<NodeId> = self.subscribers.iter().copied().collect();
            self.sent_bytes += bytes * targets.len() as u64;
            ctx.multicast(&targets, msg, bytes);
        }
        self.pub_seq
    }
}

/// Replica side (delta-sync subscriber).
struct Replica<C: Contract> {
    origin: NodeId,
    app: Hash256,
    contract: Option<SignedContract>,
    state: C::State,
    /// Highest publisher sequence heard of.
    known_seq: u64,
    /// Publish time of the newest applied op (sim micros).
    applied_published_us: u64,
    pull_inflight: bool,
    last_lag_secs: f64,
}

impl<C: Contract> Replica<C> {
    fn send_subscribe(&self, ctx: &mut Ctx<'_, AppMsg>) {
        let msg = AppMsg::Subscribe;
        let bytes = msg.wire_size();
        ctx.send(self.origin, msg, bytes);
    }

    /// Pull exactly the missing suffix if behind and not already pulling.
    fn pull_if_behind(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        if C::state_ops(&self.state) < self.known_seq && !self.pull_inflight {
            self.pull_inflight = true;
            let summary: Rc<[u8]> = C::encode_summary(&C::summarize(&self.state)).into();
            let msg = AppMsg::PullReq { summary };
            let bytes = msg.wire_size();
            ctx.send(self.origin, msg, bytes);
        }
    }

    /// Apply a verified delta, emitting trace points and health signals.
    fn ingest(
        &mut self,
        ctx: &mut Ctx<'_, AppMsg>,
        pub_seq: u64,
        published_us: u64,
        delta_buf: &[u8],
        cert: &DeltaCert,
        from_pull: bool,
    ) {
        if from_pull {
            self.pull_inflight = false;
        }
        let Some(contract) = &self.contract else {
            // No verified contract yet: we cannot authenticate the delta.
            ctx.metrics().incr("app.delta_unverified", 1);
            return;
        };
        if cert.pub_seq != pub_seq || !cert.verify(&contract.author, &self.app, delta_buf) {
            ctx.metrics().incr("app.delta_rejected", 1);
            return;
        }
        let Ok(delta) = C::decode_delta(delta_buf) else {
            ctx.metrics().incr("app.delta_rejected", 1);
            return;
        };
        let merged = C::apply(&self.state, &delta);
        if C::validate_state(&merged) {
            self.state = merged;
            self.last_lag_secs =
                (ctx.now().micros().saturating_sub(published_us)) as f64 / 1_000_000.0;
            ctx.trace_point("app.delta", delta_buf.len() as f64);
            ctx.trace_point("app.merge", C::delta_ops(&delta) as f64);
            ctx.trace_point("app.delta_lag", self.last_lag_secs);
            ctx.probe_signal("app.delta_lag", self.last_lag_secs);
            ctx.metrics().sample("app.delta_lag", self.last_lag_secs);
            ctx.metrics().incr("app.deltas_applied", 1);
            if published_us > self.applied_published_us {
                self.applied_published_us = published_us;
            }
        } else {
            // A gap: the delta ran ahead of our contiguous prefix. Hold
            // our state and ask for exactly what we lack.
            ctx.metrics().incr("app.delta_gap", 1);
        }
        self.known_seq = self.known_seq.max(pub_seq);
        self.pull_if_behind(ctx);
    }
}

/// Centralized reader/writer endpoint.
struct Endpoint {
    server: NodeId,
}

enum Role<C: Contract> {
    Publisher(Authority<C>),
    Subscriber(Replica<C>),
    Server(Authority<C>),
    Client(Endpoint),
}

/// One node of the app substrate, generic over the governing contract.
pub struct AppNode<C: Contract> {
    role: Role<C>,
    next_op: u64,
    results: BTreeMap<u64, AppResult>,
}

impl<C: Contract> AppNode<C> {
    fn new(role: Role<C>) -> AppNode<C> {
        AppNode {
            role,
            next_op: 0,
            results: BTreeMap::new(),
        }
    }

    fn authority(identity_seed: &[u8], name: &str, push: bool) -> AppNode<C> {
        let identity = AppPublisher::new(identity_seed);
        let contract = identity.sign_manifest(C::KIND, name, 1);
        let state = C::empty();
        let state_bytes = C::encode_state(&state).len() as u64;
        let auth = Authority {
            identity,
            contract,
            state,
            state_bytes,
            writers: BTreeMap::new(),
            subscribers: BTreeSet::new(),
            pub_seq: 0,
            last_published_us: 0,
            sent_bytes: 0,
            push,
        };
        AppNode::new(if push {
            Role::Publisher(auth)
        } else {
            Role::Server(auth)
        })
    }

    /// A delta-pushing publisher holding the authoritative log.
    pub fn publisher(identity_seed: &[u8], name: &str) -> AppNode<C> {
        Self::authority(identity_seed, name, true)
    }

    /// The centralized comparison server: same contract, reads pull the
    /// full state, nothing is pushed.
    pub fn server(identity_seed: &[u8], name: &str) -> AppNode<C> {
        Self::authority(identity_seed, name, false)
    }

    /// A delta-sync subscriber of `app` hosted at `origin`.
    pub fn subscriber(origin: NodeId, app: Hash256) -> AppNode<C> {
        AppNode::new(Role::Subscriber(Replica {
            origin,
            app,
            contract: None,
            state: C::empty(),
            known_seq: 0,
            applied_published_us: 0,
            pull_inflight: false,
            last_lag_secs: 0.0,
        }))
    }

    /// A centralized client of `server`.
    pub fn client(server: NodeId) -> AppNode<C> {
        AppNode::new(Role::Client(Endpoint { server }))
    }

    /// Submit an op toward the authority; poll with
    /// [`take_result`](AppNode::take_result).
    pub fn start_submit(&mut self, ctx: &mut Ctx<'_, AppMsg>, op: &C::Op) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        let to = match &self.role {
            Role::Client(e) => e.server,
            Role::Subscriber(r) => r.origin,
            // Authorities apply locally (the publisher is its own writer).
            Role::Publisher(_) | Role::Server(_) => {
                let me = ctx.id();
                let (Role::Publisher(a) | Role::Server(a)) = &mut self.role else {
                    unreachable!();
                };
                let pub_seq = a.accept_op(ctx, me, op.clone());
                self.results.insert(id, AppResult::Submitted { pub_seq });
                return id;
            }
        };
        let body: Rc<[u8]> = C::encode_op(op).into();
        let msg = AppMsg::Submit { op: id, body };
        let bytes = msg.wire_size();
        ctx.send(to, msg, bytes);
        id
    }

    /// Read the full state from the centralized server; poll with
    /// [`take_result`](AppNode::take_result). Only meaningful for clients.
    pub fn start_read(&mut self, ctx: &mut Ctx<'_, AppMsg>) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        if let Role::Client(e) = &self.role {
            let msg = AppMsg::ReadReq { op: id };
            let bytes = msg.wire_size();
            ctx.send(e.server, msg, bytes);
        }
        id
    }

    /// Take a completed operation's result, if ready.
    pub fn take_result(&mut self, op: u64) -> Option<AppResult> {
        self.results.remove(&op)
    }

    /// The app address this node hosts or follows (zero for clients).
    pub fn app_id(&self) -> Hash256 {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => a.contract.manifest.app,
            Role::Subscriber(r) => r.app,
            Role::Client(_) => Hash256([0; 32]),
        }
    }

    /// Authoritative log length (0 for non-authorities).
    pub fn pub_seq(&self) -> u64 {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => a.pub_seq,
            _ => 0,
        }
    }

    /// Ops applied locally (state size in ops).
    pub fn applied_ops(&self) -> u64 {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => C::state_ops(&a.state),
            Role::Subscriber(r) => C::state_ops(&r.state),
            Role::Client(_) => 0,
        }
    }

    /// Highest publisher sequence this node has heard of.
    pub fn known_seq(&self) -> u64 {
        match &self.role {
            Role::Subscriber(r) => r.known_seq,
            Role::Publisher(a) | Role::Server(a) => a.pub_seq,
            Role::Client(_) => 0,
        }
    }

    /// The local state (authorities and subscribers).
    pub fn state(&self) -> Option<&C::State> {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => Some(&a.state),
            Role::Subscriber(r) => Some(&r.state),
            Role::Client(_) => None,
        }
    }

    /// Canonical encoded-state size in bytes (authorities only; exact).
    pub fn state_bytes(&self) -> u64 {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => a.state_bytes,
            _ => 0,
        }
    }

    /// Registered subscribers (authorities only).
    pub fn subscriber_count(&self) -> usize {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => a.subscribers.len(),
            _ => 0,
        }
    }

    /// Total bytes this authority has sent (pushes, bootstraps, pulls,
    /// reads) — its modeled hosting uplink cost. Zero for non-authorities.
    pub fn sent_app_bytes(&self) -> u64 {
        match &self.role {
            Role::Publisher(a) | Role::Server(a) => a.sent_bytes,
            _ => 0,
        }
    }

    /// Last observed publish-to-apply lag in seconds (subscribers).
    pub fn last_lag_secs(&self) -> f64 {
        match &self.role {
            Role::Subscriber(r) => r.last_lag_secs,
            _ => 0.0,
        }
    }
}

impl<C: Contract> Protocol for AppNode<C> {
    type Msg = AppMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        if let Role::Subscriber(r) = &self.role {
            r.send_subscribe(ctx);
            ctx.set_timer(ANTI_ENTROPY, TAG_ANTI_ENTROPY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, AppMsg>, from: NodeId, msg: AppMsg) {
        match msg {
            AppMsg::Subscribe => {
                let (Role::Publisher(a) | Role::Server(a)) = &mut self.role else {
                    return;
                };
                a.subscribers.insert(from);
                let state: Rc<[u8]> = C::encode_state(&a.state).into();
                let reply = AppMsg::SubAck {
                    contract: Box::new(a.contract.clone()),
                    state,
                    pub_seq: a.pub_seq,
                    published_us: a.last_published_us,
                };
                let bytes = reply.wire_size();
                a.sent_bytes += bytes;
                ctx.send(from, reply, bytes);
            }
            AppMsg::SubAck {
                contract,
                state,
                pub_seq,
                published_us,
            } => {
                let Role::Subscriber(r) = &mut self.role else {
                    return;
                };
                if from != r.origin
                    || !contract.manifest.addressed_to(&r.app)
                    || contract.manifest.kind != C::KIND
                    || !contract.verify()
                {
                    ctx.metrics().incr("app.bad_contracts", 1);
                    return;
                }
                let Ok(full) = C::decode_state(&state) else {
                    ctx.metrics().incr("app.bad_contracts", 1);
                    return;
                };
                if !C::validate_state(&full) {
                    ctx.metrics().incr("app.bad_contracts", 1);
                    return;
                }
                // Bootstrap (or re-bootstrap after churn): adopt the union
                // of what we hold and the authority's copy — idempotent.
                r.contract = Some(*contract);
                r.state = C::apply(&r.state, &C::state_as_delta(&full));
                r.known_seq = r.known_seq.max(pub_seq);
                if published_us > r.applied_published_us {
                    r.applied_published_us = published_us;
                    r.last_lag_secs =
                        (ctx.now().micros().saturating_sub(published_us)) as f64 / 1_000_000.0;
                }
                ctx.metrics().incr("app.bootstraps", 1);
            }
            AppMsg::Submit { op, body } => {
                let (Role::Publisher(a) | Role::Server(a)) = &mut self.role else {
                    return;
                };
                let Ok(parsed) = C::decode_op(&body) else {
                    ctx.metrics().incr("app.bad_ops", 1);
                    return;
                };
                if !C::validate_op(&parsed) {
                    ctx.metrics().incr("app.bad_ops", 1);
                    return;
                }
                let pub_seq = a.accept_op(ctx, from, parsed);
                let reply = AppMsg::SubmitAck { op, pub_seq };
                let bytes = reply.wire_size();
                a.sent_bytes += bytes;
                ctx.send(from, reply, bytes);
            }
            AppMsg::SubmitAck { op, pub_seq } => {
                self.results.insert(op, AppResult::Submitted { pub_seq });
            }
            AppMsg::Push {
                pub_seq,
                published_us,
                delta,
                cert,
            } => {
                if let Role::Subscriber(r) = &mut self.role {
                    r.ingest(ctx, pub_seq, published_us, &delta, &cert, false);
                }
            }
            AppMsg::PullReq { summary } => {
                let (Role::Publisher(a) | Role::Server(a)) = &mut self.role else {
                    return;
                };
                let Ok(their) = C::decode_summary(&summary) else {
                    return;
                };
                let suffix = C::delta_from_summary(&a.state, &their);
                let delta_bytes = C::encode_delta(&suffix);
                let cert = a.identity.sign_delta(a.pub_seq, &delta_bytes);
                ctx.trace_point("app.pull_served", C::delta_ops(&suffix) as f64);
                let reply = AppMsg::PullResp {
                    pub_seq: a.pub_seq,
                    published_us: a.last_published_us,
                    delta: delta_bytes.into(),
                    cert: Box::new(cert),
                };
                let bytes = reply.wire_size();
                a.sent_bytes += bytes;
                ctx.send(from, reply, bytes);
            }
            AppMsg::PullResp {
                pub_seq,
                published_us,
                delta,
                cert,
            } => {
                if let Role::Subscriber(r) = &mut self.role {
                    r.ingest(ctx, pub_seq, published_us, &delta, &cert, true);
                }
            }
            AppMsg::ReadReq { op } => {
                let (Role::Publisher(a) | Role::Server(a)) = &mut self.role else {
                    return;
                };
                ctx.trace_point("app.read", a.state_bytes as f64);
                let state: Rc<[u8]> = C::encode_state(&a.state).into();
                let reply = AppMsg::ReadResp {
                    op,
                    state,
                    pub_seq: a.pub_seq,
                };
                let bytes = reply.wire_size();
                a.sent_bytes += bytes;
                ctx.send(from, reply, bytes);
            }
            AppMsg::ReadResp { op, state, pub_seq } => {
                self.results.insert(
                    op,
                    AppResult::Read {
                        pub_seq,
                        bytes: state.len() as u64,
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AppMsg>, tag: u64) {
        if tag != TAG_ANTI_ENTROPY {
            return;
        }
        let Role::Subscriber(r) = &mut self.role else {
            return;
        };
        if r.contract.is_none() {
            r.send_subscribe(ctx);
        } else {
            r.pull_if_behind(ctx);
        }
        ctx.set_timer(ANTI_ENTROPY, TAG_ANTI_ENTROPY);
    }

    fn on_down(&mut self, _ctx: &mut Ctx<'_, AppMsg>) {
        if let Role::Subscriber(r) = &mut self.role {
            r.pull_inflight = false;
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        if let Role::Subscriber(r) = &mut self.role {
            // Missed pushes while asleep: re-subscribe (idempotent) and
            // restart the anti-entropy loop.
            r.pull_inflight = false;
            r.send_subscribe(ctx);
            ctx.set_timer(ANTI_ENTROPY, TAG_ANTI_ENTROPY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, GuestEntry, Guestbook, KvDoc, KvWrite};
    use agora_sim::{DeviceClass, SimDuration, Simulation};

    fn entry(s: &str) -> GuestEntry {
        GuestEntry {
            body: s.as_bytes().to_vec(),
        }
    }

    #[test]
    fn publisher_pushes_deltas_and_subscribers_converge() {
        let mut sim: Simulation<AppNode<Guestbook>> = Simulation::new(7);
        let p = sim.add_node(
            AppNode::publisher(b"gb-pub", "guestbook"),
            DeviceClass::PersonalComputer,
        );
        let app = sim.node(p).app_id();
        let subs: Vec<_> = (0..3)
            .map(|_| sim.add_node(AppNode::subscriber(p, app), DeviceClass::PersonalComputer))
            .collect();
        let w = sim.add_node(AppNode::client(p), DeviceClass::PersonalComputer);
        sim.run_for(SimDuration::from_secs(5));

        let mut ops = Vec::new();
        for i in 0..4 {
            let text = format!("hello-{i}");
            if let Some(op) = sim.with_ctx(w, |n, ctx| n.start_submit(ctx, &entry(&text))) {
                ops.push(op);
            }
            sim.run_for(SimDuration::from_secs(2));
        }
        sim.run_for(SimDuration::from_secs(10));
        for op in ops {
            assert!(matches!(
                sim.node_mut(w).take_result(op),
                Some(AppResult::Submitted { .. })
            ));
        }
        assert_eq!(sim.node(p).pub_seq(), 4);
        for &s in &subs {
            assert_eq!(sim.node(s).applied_ops(), 4, "subscriber converged");
            assert_eq!(
                sim.node(s).state().unwrap(),
                sim.node(p).state().unwrap(),
                "replica state matches the authority"
            );
        }
        assert!(sim.metrics().histogram("app.delta_lag").is_some());
    }

    #[test]
    fn late_subscriber_bootstraps_full_state() {
        let mut sim: Simulation<AppNode<Guestbook>> = Simulation::new(8);
        let p = sim.add_node(
            AppNode::publisher(b"gb-pub2", "guestbook"),
            DeviceClass::PersonalComputer,
        );
        let app = sim.node(p).app_id();
        let w = sim.add_node(AppNode::client(p), DeviceClass::PersonalComputer);
        sim.run_for(SimDuration::from_secs(1));
        for i in 0..5 {
            let text = format!("early-{i}");
            sim.with_ctx(w, |n, ctx| n.start_submit(ctx, &entry(&text)));
            sim.run_for(SimDuration::from_secs(1));
        }
        let late = sim.add_node(AppNode::subscriber(p, app), DeviceClass::PersonalComputer);
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.node(late).applied_ops(), 5);
    }

    #[test]
    fn centralized_reads_return_growing_state() {
        let mut sim: Simulation<AppNode<KvDoc>> = Simulation::new(9);
        let srv = sim.add_node(
            AppNode::server(b"kv-srv", "docs"),
            DeviceClass::DatacenterServer,
        );
        let c = sim.add_node(AppNode::client(srv), DeviceClass::PersonalComputer);
        sim.run_for(SimDuration::from_secs(1));
        let op = KvWrite {
            path: "index.html".into(),
            stamp: 1,
            value_hash: crate::contract::kv_value_hash(b"v"),
            len: 1,
            delete: false,
        };
        sim.with_ctx(c, |n, ctx| n.start_submit(ctx, &op));
        sim.run_for(SimDuration::from_secs(5));
        let read = sim.with_ctx(c, |n, ctx| n.start_read(ctx)).unwrap();
        sim.run_for(SimDuration::from_secs(5));
        let Some(AppResult::Read { pub_seq, bytes }) = sim.node_mut(c).take_result(read) else {
            panic!("read did not complete");
        };
        assert_eq!(pub_seq, 1);
        assert_eq!(bytes, sim.node(srv).state_bytes(), "exact encoded size");
    }

    #[test]
    fn incremental_state_bytes_matches_encoding() {
        let mut sim: Simulation<AppNode<Guestbook>> = Simulation::new(10);
        let p = sim.add_node(
            AppNode::publisher(b"gb-pub3", "guestbook"),
            DeviceClass::PersonalComputer,
        );
        let w = sim.add_node(AppNode::client(p), DeviceClass::PersonalComputer);
        sim.run_for(SimDuration::from_secs(1));
        for i in 0..6 {
            let text = format!("entry-number-{i}");
            sim.with_ctx(w, |n, ctx| n.start_submit(ctx, &entry(&text)));
            sim.run_for(SimDuration::from_secs(1));
        }
        let n = sim.node(p);
        let encoded = Guestbook::encode_state(n.state().unwrap()).len() as u64;
        assert_eq!(n.state_bytes(), encoded);
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests pinning the contract laws the delta-sync
//! substrate relies on: CRDT join laws (commutative, associative,
//! idempotent) for both shipped contracts, summary→delta round-trip
//! exactness, and subscriber convergence from any delta interleaving.

use agora_app::{Contract, GuestEntry, Guestbook, KvDoc, KvWrite, OpLog, VersionVector};
use agora_crypto::sha256;
use proptest::prelude::*;

/// A random valid guestbook state: per-writer contiguous op prefixes.
fn guestbook_state() -> impl Strategy<Value = OpLog<GuestEntry>> {
    proptest::collection::vec((0u32..4, 1usize..6), 0..4).prop_map(|writers| {
        let mut log = OpLog::new();
        for (w, n) in writers {
            for _ in 0..n {
                let have = log.summarize().get(w);
                log.append(
                    w,
                    GuestEntry {
                        body: format!("w{w}-{have}").into_bytes(),
                    },
                );
            }
        }
        log
    })
}

/// A random valid KV state: per-writer contiguous write prefixes.
fn kv_state() -> impl Strategy<Value = OpLog<KvWrite>> {
    proptest::collection::vec((0u32..4, 1usize..5, 0u64..100), 0..4).prop_map(|writers| {
        let mut log = OpLog::new();
        for (w, n, stamp0) in writers {
            for i in 0..n {
                log.append(
                    w,
                    KvWrite {
                        path: format!("p{}.html", (w as usize + i) % 3),
                        stamp: stamp0 + i as u64,
                        value_hash: sha256(format!("v{w}-{i}").as_bytes()),
                        len: 1 + i as u64,
                        delete: i % 4 == 3,
                    },
                );
            }
        }
        log
    })
}

/// Split a state's ops into `k` deltas by round-robin (an arbitrary
/// partition of a history into push units).
fn partition<O: Clone>(state: &OpLog<O>, k: usize) -> Vec<OpLog<O>> {
    let k = k.max(1);
    let mut parts: Vec<OpLog<O>> = (0..k).map(|_| OpLog::new()).collect();
    for (i, (key, op)) in state.ops.iter().enumerate() {
        parts[i % k].ops.insert(*key, op.clone());
    }
    parts
}

/// The join laws, generic over both contracts (states double as deltas).
macro_rules! join_laws {
    ($name:ident, $contract:ty, $strat:expr) => {
        proptest! {
            #[test]
            fn $name(a in $strat, b in $strat, c in $strat) {
                type C = $contract;
                // Commutative.
                prop_assert_eq!(
                    C::merge_deltas(&a, &b),
                    C::merge_deltas(&b, &a)
                );
                // Associative.
                prop_assert_eq!(
                    C::merge_deltas(&C::merge_deltas(&a, &b), &c),
                    C::merge_deltas(&a, &C::merge_deltas(&b, &c))
                );
                // Idempotent.
                prop_assert_eq!(C::merge_deltas(&a, &a), a.clone());
            }
        }
    };
}

join_laws!(guestbook_join_laws, Guestbook, guestbook_state());
join_laws!(kv_join_laws, KvDoc, kv_state());

proptest! {
    /// `delta_from_summary` is exact: for two valid states drawn from a
    /// common history, B's suffix past A's summary merged into A equals
    /// the full join of A and B — and a holder of the join is missing
    /// nothing.
    #[test]
    fn summary_round_trip_is_exact(full in guestbook_state(), k in 1usize..4) {
        // A = an arbitrary per-writer prefix of the history, B = full.
        let summary_full = full.summarize();
        let mut a = OpLog::new();
        for (&(w, s), op) in &full.ops {
            if s <= summary_full.get(w).saturating_sub(k as u64) {
                a.ops.insert((w, s), op.clone());
            }
        }
        prop_assert!(Guestbook::validate_state(&a));
        let delta = Guestbook::delta_from_summary(&full, &Guestbook::summarize(&a));
        // Exactness: delta ∪ A == full, and |delta| == |full| - |A|.
        let rejoined = Guestbook::apply(&a, &delta);
        prop_assert_eq!(&rejoined, &full);
        prop_assert_eq!(delta.len(), full.len() - a.len());
        // A holder of everything needs nothing.
        let empty = Guestbook::delta_from_summary(&full, &Guestbook::summarize(&full));
        prop_assert!(empty.is_empty());
    }

    /// A subscriber that receives the publisher's deltas in *any*
    /// interleaving (here: every rotation of an arbitrary partition,
    /// with duplicates) converges to the same state, for both contracts.
    #[test]
    fn subscriber_converges_from_any_interleaving(
        full in kv_state(),
        k in 1usize..5,
        rot in 0usize..5,
        dup in any::<bool>(),
    ) {
        let parts = partition(&full, k);
        let n = parts.len();
        let mut replica = KvDoc::empty();
        for i in 0..n {
            let d = &parts[(i + rot) % n];
            replica = KvDoc::apply(&replica, d);
            if dup {
                // Redelivery is harmless: the join is idempotent.
                replica = KvDoc::apply(&replica, d);
            }
        }
        prop_assert_eq!(&replica, &full);
        // The materialized LWW views agree too.
        prop_assert_eq!(KvDoc::materialize(&replica), KvDoc::materialize(&full));
    }

    /// Codecs are canonical: decode(encode(x)) == x and re-encoding is
    /// byte-identical, for states, deltas, and summaries.
    #[test]
    fn codecs_round_trip_canonically(state in kv_state()) {
        let bytes = KvDoc::encode_state(&state);
        let back = KvDoc::decode_state(&bytes).unwrap();
        prop_assert_eq!(&back, &state);
        prop_assert_eq!(KvDoc::encode_state(&back), bytes);
        let vv = KvDoc::summarize(&state);
        let vv_back = VersionVector::decode(&vv.encode()).unwrap();
        prop_assert_eq!(vv_back, vv);
    }
}

//! E9 kernels: real PoW grinding, block validation, the attack models.

use agora_chain::{
    double_spend_race, mine_block, selfish_mining, ChainParams, Ledger, Transaction, TxPayload,
};
use agora_crypto::{sha256, SimKeyPair};
use agora_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_mine_block");
    g.sample_size(10);
    for bits in [8u32, 12, 16] {
        g.bench_function(format!("{bits}_bits"), |b| {
            let mut rng = SimRng::new(bits as u64);
            let mut h = 0u64;
            b.iter(|| {
                h += 1;
                black_box(mine_block(
                    sha256(&h.to_be_bytes()),
                    1,
                    sha256(b"miner"),
                    vec![],
                    0,
                    bits,
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    // Build a block with 50 txs once; bench submitting it to a fresh ledger.
    let alice = SimKeyPair::from_seed(b"bench");
    let premine = vec![(alice.public().id(), 1_000_000)];
    let make_ledger = || Ledger::new("bench", ChainParams::test(), &premine);
    let ledger = make_ledger();
    let txs: Vec<Transaction> = (0..50)
        .map(|i| {
            Transaction::create(
                &alice,
                i,
                1,
                TxPayload::Transfer {
                    to: sha256(b"bob"),
                    amount: 1,
                },
            )
        })
        .collect();
    let mut rng = SimRng::new(3);
    let bits = ledger.next_difficulty(&ledger.best_tip());
    let (block, _) = mine_block(
        ledger.best_tip(),
        1,
        sha256(b"miner"),
        txs,
        1_000_000,
        bits,
        &mut rng,
    );
    c.bench_function("e9_validate_block_50tx", |b| {
        b.iter(|| {
            let mut l = make_ledger();
            black_box(l.submit_block(block.clone()).expect("valid"))
        })
    });
    c.bench_function("e9_tx_create_and_verify", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            let tx = Transaction::create(
                &alice,
                nonce,
                1,
                TxPayload::Transfer {
                    to: sha256(b"bob"),
                    amount: 1,
                },
            );
            black_box(tx.verify_signature())
        })
    });
}

fn bench_attacks(c: &mut Criterion) {
    c.bench_function("e9_double_spend_race_1000", |b| {
        let mut rng = SimRng::new(4);
        b.iter(|| black_box(double_spend_race(0.3, 6, 1000, &mut rng)))
    });
    c.bench_function("e9_selfish_mining_50k_blocks", |b| {
        let mut rng = SimRng::new(5);
        b.iter(|| black_box(selfish_mining(0.33, 0.5, 50_000, &mut rng)))
    });
}

criterion_group!(chain, bench_mining, bench_validation, bench_attacks);
criterion_main!(chain);

//! E3/E4 kernels: the group-communication workloads per architecture, and
//! the double-ratchet session.

use agora_comm::{
    CentralNode, FedNode, ModerationPolicy, PostLabel, RatchetSession, ReplicationMode, SocialNode,
};
use agora_crypto::sha256;
use agora_sim::{DeviceClass, NodeId, SimDuration, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One round of the centralized workload: 10 clients post once each.
fn central_round(seed: u64) -> u64 {
    let mut sim = Simulation::new(seed);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let clients: Vec<NodeId> = (0..10)
        .map(|_| sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer))
        .collect();
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
    }
    sim.run_for(SimDuration::from_secs(2));
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| {
            n.post(ctx, 1, 200, PostLabel::Legit);
        });
    }
    sim.run_for(SimDuration::from_secs(20));
    sim.metrics().counter("comm.posts_delivered")
}

fn federated_round(seed: u64, mode: ReplicationMode) -> u64 {
    let mut sim = Simulation::new(seed);
    let i0 = NodeId(0);
    let i1 = NodeId(1);
    sim.add_node(
        FedNode::instance(vec![i1], mode, ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    sim.add_node(
        FedNode::instance(vec![i0], mode, ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let clients: Vec<NodeId> = (0..10)
        .map(|i| {
            let home = if i % 2 == 0 { i0 } else { i1 };
            sim.add_node(FedNode::client(home), DeviceClass::PersonalComputer)
        })
        .collect();
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(50));
    }
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.post(ctx, 1, 200, PostLabel::Legit));
    }
    sim.run_for(SimDuration::from_secs(20));
    sim.metrics().counter("comm.posts_delivered")
}

fn social_round(seed: u64) -> u64 {
    let mut sim = Simulation::new(seed);
    let n = 10usize;
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for i in 0..n {
        let mut friends = Vec::new();
        for d in 1..=3 {
            friends.push(ids[(i + d) % n]);
            friends.push(ids[(i + n - d) % n]);
        }
        sim.add_node(
            SocialNode::new(friends, true),
            DeviceClass::PersonalComputer,
        );
    }
    for &id in &ids {
        sim.with_ctx(id, |node, ctx| node.post(ctx, 200, PostLabel::Legit));
    }
    sim.run_for(SimDuration::from_secs(20));
    sim.metrics().counter("comm.posts_delivered")
}

fn bench_architectures(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_post_delivery_round");
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("centralized", |b| {
        b.iter(|| {
            seed += 1;
            black_box(central_round(seed))
        })
    });
    g.bench_function("federated_single_home", |b| {
        b.iter(|| {
            seed += 1;
            black_box(federated_round(seed, ReplicationMode::SingleHome))
        })
    });
    g.bench_function("federated_replicated", |b| {
        b.iter(|| {
            seed += 1;
            black_box(federated_round(seed, ReplicationMode::FullReplication))
        })
    });
    g.bench_function("social_p2p", |b| {
        b.iter(|| {
            seed += 1;
            black_box(social_round(seed))
        })
    });
    g.finish();
}

fn bench_ratchet(c: &mut Criterion) {
    c.bench_function("e4_ratchet_encrypt_decrypt", |b| {
        let secret = sha256(b"session");
        let mut alice = RatchetSession::initiator(&secret);
        let mut bob = RatchetSession::responder(&secret);
        let msg = vec![0u8; 256];
        b.iter(|| {
            let sealed = alice.encrypt(&msg);
            black_box(bob.decrypt(&sealed).expect("in sync"))
        })
    });
}

criterion_group!(comm, bench_architectures, bench_ratchet);
criterion_main!(comm);

//! Contract kernels of the `agora-app` substrate: (1) merge throughput —
//! singleton deltas folded one at a time into a growing state, the
//! subscriber's per-push hot path, swept over delta count for both
//! shipped contracts; (2) batch joins of pre-partitioned histories (the
//! anti-entropy pull path, where one `merge_deltas` carries a whole
//! missing suffix); and (3) summary-vs-state size over growing logs —
//! the constant-size handshake a subscriber ships to fetch exactly what
//! it lacks, which the `app` section of BENCH_perf.json
//! (crates/harness/src/perf.rs) records across PRs.

use agora_app::{kv_value_hash, Contract, GuestEntry, Guestbook, KvDoc, KvWrite, OpLog};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const WRITERS: u64 = 8;

fn guest_delta(i: u64) -> OpLog<GuestEntry> {
    Guestbook::singleton_delta(
        (i % WRITERS) as u32,
        i / WRITERS + 1,
        GuestEntry {
            body: format!("entry {i}: merge benchmark payload").into_bytes(),
        },
    )
}

fn kv_delta(i: u64) -> OpLog<KvWrite> {
    KvDoc::singleton_delta(
        (i % WRITERS) as u32,
        i / WRITERS + 1,
        KvWrite {
            path: format!("page-{}.html", i % 16),
            stamp: i,
            value_hash: kv_value_hash(&i.to_le_bytes()),
            len: 1_000 + i,
            delete: i % 7 == 6,
        },
    )
}

/// One delta per push: throughput of `apply` as the state grows.
fn bench_merge_throughput(c: &mut Criterion) {
    for deltas in [256u64, 1024, 4096] {
        let mut g = c.benchmark_group(format!("contract_merge_{deltas}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(deltas));
        let guest: Vec<_> = (0..deltas).map(guest_delta).collect();
        g.bench_function("guestbook", |b| {
            b.iter(|| {
                let mut state = Guestbook::empty();
                for d in &guest {
                    state = Guestbook::apply(&state, d);
                }
                black_box(state.len())
            })
        });
        let kv: Vec<_> = (0..deltas).map(kv_delta).collect();
        g.bench_function("kvdoc", |b| {
            b.iter(|| {
                let mut state = KvDoc::empty();
                for d in &kv {
                    state = KvDoc::apply(&state, d);
                }
                black_box(state.len())
            })
        });
        g.finish();
    }
}

/// The pull path: one `merge_deltas` joining two halves of a history.
fn bench_batch_join(c: &mut Criterion) {
    const OPS: u64 = 4096;
    let mut left = KvDoc::empty();
    let mut right = KvDoc::empty();
    for i in 0..OPS {
        let d = kv_delta(i);
        if i % 2 == 0 {
            left = KvDoc::apply(&left, &d);
        } else {
            right = KvDoc::apply(&right, &d);
        }
    }
    let mut g = c.benchmark_group("contract_join");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("kvdoc_halves", |b| {
        b.iter(|| black_box(KvDoc::merge_deltas(black_box(&left), black_box(&right))).len())
    });
    g.finish();
}

/// Summary vs state size: encode both over a growing log and report the
/// ratio through the measured element count (criterion has no direct
/// bytes axis in the shim; the printed sizes are the artifact's job).
fn bench_summary_scaling(c: &mut Criterion) {
    for ops in [128u64, 2048] {
        let mut state = KvDoc::empty();
        for i in 0..ops {
            state = KvDoc::apply(&state, &kv_delta(i));
        }
        let summary = KvDoc::summarize(&state);
        let mut g = c.benchmark_group(format!("contract_summary_{ops}"));
        g.sample_size(10);
        g.throughput(Throughput::Bytes(KvDoc::encode_state(&state).len() as u64));
        g.bench_function("encode_state", |b| {
            b.iter(|| black_box(KvDoc::encode_state(black_box(&state))).len())
        });
        g.bench_function("encode_summary", |b| {
            b.iter(|| black_box(black_box(&summary).encode()).len())
        });
        g.bench_function("delta_from_summary_empty", |b| {
            b.iter(|| KvDoc::delta_from_summary(black_box(&state), black_box(&summary)).len())
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_merge_throughput,
    bench_batch_join,
    bench_summary_scaling
);
criterion_main!(benches);

//! Reed–Solomon kernels on the storage market's hot path: encode on
//! placement, reconstruct on repair (fast path when all data shards
//! survive, matrix-inversion path otherwise). These are the microbenchmark
//! counterparts of the `market` section of BENCH_perf.json
//! (crates/harness/src/perf.rs); the codec points match E17's sweep.

use agora_storage::ReedSolomon;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const OBJECT_LEN: usize = 256 * 1024;

fn payload() -> Vec<u8> {
    (0..OBJECT_LEN).map(|i| (i % 249) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode_256k");
    g.throughput(Throughput::Bytes(OBJECT_LEN as u64));
    let data = payload();
    // The E17 codec points: two erasure geometries plus replication-as-RS(1,m).
    for (k, m) in [(4usize, 2usize), (8, 4), (1, 2)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        g.bench_function(format!("rs{k}_{m}"), |b| {
            b.iter(|| black_box(rs.encode(&data)))
        });
    }
    g.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_reconstruct_256k");
    g.throughput(Throughput::Bytes(OBJECT_LEN as u64));
    let data = payload();
    // Reconstruction cost as erasures grow: 0 lost data shards is the
    // memcpy fast path; each additional loss pulls in one more parity row
    // of the inverted system.
    let (k, m) = (8usize, 4usize);
    let rs = ReedSolomon::new(k, m).unwrap();
    let shards = rs.encode(&data);
    for erasures in [0usize, 1, 2, 4] {
        let survivors: Vec<(usize, &[u8])> = (erasures..k + m)
            .take(k)
            .map(|i| (i, shards[i].as_slice()))
            .collect();
        g.bench_function(format!("rs8_4_lost{erasures}"), |b| {
            b.iter(|| black_box(rs.reconstruct(&survivors, OBJECT_LEN).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(erasure, bench_encode, bench_reconstruct);
criterion_main!(erasure);

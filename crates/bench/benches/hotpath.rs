//! Hot-path kernels behind the perf pass: midstate vs full-header mining,
//! the engine's queue/dispatch loop, and incremental SHA-256 hashing.
//! These are the microbenchmark counterparts of the numbers recorded in
//! BENCH_perf.json (crates/harness/src/perf.rs).

use agora_chain::BlockHeader;
use agora_crypto::{sha256, Sha256};
use agora_sim::{Ctx, DeviceClass, NodeId, Protocol, SimDuration, Simulation};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_header() -> BlockHeader {
    BlockHeader {
        height: 42,
        prev: sha256(b"bench-parent"),
        merkle_root: sha256(b"bench-merkle"),
        time_micros: 1_234_567,
        difficulty_bits: 64, // never satisfied: pure grind throughput
        nonce: 0,
    }
}

fn bench_mining_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("pow_hash");
    let header = bench_header();

    let mid = header.pow_midstate();
    let mut nonce = 0u64;
    g.bench_function("midstate", |b| {
        b.iter(|| {
            nonce = nonce.wrapping_add(1);
            black_box(mid.hash_nonce(nonce))
        })
    });

    let mut naive = header.clone();
    g.bench_function("full_header", |b| {
        b.iter(|| {
            naive.nonce = naive.nonce.wrapping_add(1);
            black_box(naive.hash())
        })
    });
    g.finish();
}

fn bench_sha256_streaming(c: &mut Criterion) {
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let mut g = c.benchmark_group("sha256_64k");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("one_shot", |b| b.iter(|| black_box(sha256(&data))));
    g.bench_function("streaming_4k_chunks", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for chunk in data.chunks(4096) {
                h.update(chunk);
            }
            black_box(h.finalize())
        })
    });
    g.finish();
}

/// Message-heavy ring protocol: each received token is relayed onward, and a
/// periodic timer reinjects fresh tokens, keeping the event queue saturated
/// so the measurement is dominated by engine overhead (pop, dispatch,
/// counters, push), not protocol work.
struct RingFlood {
    next: NodeId,
}

impl Protocol for RingFlood {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
        if msg > 0 {
            ctx.send(self.next, msg - 1, 128);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        ctx.send(self.next, 64, 128);
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }
}

fn bench_engine_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("ring_flood_10s_sim", |b| {
        b.iter(|| {
            const NODES: u32 = 64;
            let mut sim: Simulation<RingFlood> = Simulation::new(7);
            for i in 0..NODES {
                sim.add_node(
                    RingFlood {
                        next: NodeId((i + 1) % NODES),
                    },
                    DeviceClass::DatacenterServer,
                );
            }
            sim.run_for(SimDuration::from_secs(10));
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_mining_hash,
    bench_sha256_streaming,
    bench_engine_events
);
criterion_main!(hotpath);

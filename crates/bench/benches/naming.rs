//! E1/E2 kernels: registrar ops vs chain naming, and the attack games.

use agora_crypto::{sha256, SimKeyPair};
use agora_naming::{
    front_running_game, name_theft_by_rewrite, CentralRegistrar, NameDb, NameOp, NamingRules,
};
use agora_sim::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_registrar(c: &mut Criterion) {
    c.bench_function("e1_central_registrar_register", |b| {
        let mut i = 0u64;
        let mut reg = CentralRegistrar::new();
        b.iter(|| {
            i += 1;
            black_box(
                reg.register(&format!("user-{i}"), sha256(&i.to_be_bytes()), sha256(b"z"))
                    .is_ok(),
            )
        })
    });
}

fn bench_name_ops(c: &mut Criterion) {
    let rules = NamingRules {
        preorder_required: true,
        min_preorder_age: 1,
        preorder_ttl: 1000,
        expiry_blocks: 100_000,
    };
    c.bench_function("e1_namedb_preorder_register_pair", |b| {
        let alice = sha256(b"alice");
        let mut i = 0u64;
        let mut db = NameDb::default();
        b.iter(|| {
            i += 1;
            let name = format!("user-{i}.agora");
            let commitment = NameOp::commitment(&name, i, &alice);
            db.apply(NameOp::Preorder { commitment }, alice, 2 * i, &rules);
            db.apply(
                NameOp::Register {
                    name,
                    salt: i,
                    zone_hash: sha256(b"z"),
                },
                alice,
                2 * i + 1,
                &rules,
            );
        })
    });
    c.bench_function("e1_name_op_tx_encode_sign", |b| {
        let keys = SimKeyPair::from_seed(b"bench");
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            black_box(
                NameOp::Register {
                    name: "user.agora".into(),
                    salt: nonce,
                    zone_hash: sha256(b"z"),
                }
                .into_tx(&keys, nonce, 1),
            )
        })
    });
}

fn bench_attack_games(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2");
    g.bench_function("front_running_no_preorder_100", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(front_running_game(false, 0.9, 100, &mut rng)))
    });
    g.bench_function("front_running_with_preorder_100", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| black_box(front_running_game(true, 0.9, 100, &mut rng)))
    });
    g.bench_function("rewrite_theft_alpha30_500", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| black_box(name_theft_by_rewrite(0.3, 6, 500, &mut rng)))
    });
    g.finish();
}

criterion_group!(naming, bench_registrar, bench_name_ops, bench_attack_games);
criterion_main!(naming);

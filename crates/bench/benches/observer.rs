//! Observe-plane kernels: (1) engine event throughput with a probe sink
//! installed as the sampling cadence sweeps — the per-event cost of the
//! probes layer on a saturated queue — and (2) the observer core itself,
//! fed synthetic frames directly, measuring signal aggregation + all four
//! detector families with no engine in the loop. These are the criterion
//! counterparts of the `observer` section of BENCH_perf.json
//! (crates/harness/src/perf.rs), which measures whole observed trials and
//! the probes-compiled-out baseline.
//!
//! Pulling `agora-observer` in here turns the `probe` feature on for the
//! whole bench sub-workspace; the dormant-prober cost is one predicted
//! branch per dispatch, and every other bench is a within-build relative
//! measure, so the pollution is negligible — but absolute cross-PR
//! comparisons should use BENCH_perf.json, not these numbers.

use agora_observer::{Observer, ObserverConfig};
use agora_sim::probe::ProbeFrame;
use agora_sim::{Ctx, DeviceClass, Metrics, NodeId, Protocol, SimDuration, SimTime, Simulation};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const NODES: u32 = 64;

/// Token-passing flood (the shard-bench workload): every node launches a
/// 64-hop token every 100 ms, keeping the event queue saturated.
struct RingFlood {
    next: NodeId,
    hops: u64,
}

#[derive(Clone)]
struct Token(u32);

impl Protocol for RingFlood {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeId, msg: Token) {
        self.hops += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1), 128);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Token>, tag: u64) {
        ctx.send(self.next, Token(64), 128);
        ctx.set_timer(SimDuration::from_millis(100), tag);
    }
}

fn flood_sim() -> Simulation<RingFlood> {
    let mut sim: Simulation<RingFlood> = Simulation::new(7);
    for i in 0..NODES {
        let id = sim.add_node(
            RingFlood {
                next: NodeId((i + 1) % NODES),
                hops: 0,
            },
            DeviceClass::DatacenterServer,
        );
        sim.with_ctx(id, |_, ctx| ctx.set_timer(SimDuration::from_millis(100), 0));
    }
    sim
}

/// Run the flood for 3 simulated seconds, optionally observed at `cadence`.
fn run_flood(cadence: Option<SimDuration>) -> u64 {
    let mut sim = flood_sim();
    let observer = cadence.map(|cadence| {
        let obs = Observer::new(
            ObserverConfig::default(),
            Box::new(|rec| drop(black_box(rec))),
        );
        sim.set_probe_sink(obs.make_sink(), cadence);
        obs
    });
    sim.run_for(SimDuration::from_secs(3));
    if let Some(obs) = observer {
        black_box(obs.summary().frames);
    }
    black_box(sim.events_processed())
}

/// Per-event probe overhead: the dormant prober (feature on, no sink) vs a
/// full observer at coarse-to-absurd cadences. At 100 ms the flood takes
/// 30 frames; at 1 ms, 3 000 — the gap is pure frame-sampling cost (queue
/// scan + detector step), the unprobed row is the branch-only floor.
fn bench_probe_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("observer_ring_flood");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    g.bench_function("unprobed", |b| b.iter(|| run_flood(None)));
    for (label, millis) in [
        ("cadence100ms", 100u64),
        ("cadence10ms", 10),
        ("cadence1ms", 1),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| run_flood(Some(SimDuration::from_millis(millis))))
        });
    }
    g.finish();
}

const KERNEL_FRAMES: u64 = 10_000;

/// The observer core alone: per-frame cost of signal aggregation, counter
/// deltas and all four detector families, with no engine in the loop. The
/// synthetic series keeps every detector active but sub-threshold (demand
/// wobbles, utilization hovers near saturation, pending drifts).
fn bench_detector_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("observer_frames");
    g.sample_size(10);
    g.throughput(Throughput::Elements(KERNEL_FRAMES));
    g.bench_function("aggregate_and_detect", |b| {
        b.iter(|| {
            let observer = Observer::new(
                ObserverConfig::default(),
                Box::new(|rec| drop(black_box(rec))),
            );
            let mut sink = observer.make_sink();
            sink.on_sim_start(7);
            let mut metrics = Metrics::new();
            for i in 0..KERNEL_FRAMES {
                let t = SimTime::ZERO + SimDuration::from_secs(i);
                metrics.incr("net.delivered", 3);
                sink.on_signal(t, NodeId(0), "workload.demand", 100.0 + (i % 7) as f64);
                sink.on_signal(t, NodeId(0), "net.uplink_util", 0.8 + (i % 3) as f64 * 0.05);
                sink.on_signal(t, NodeId(1), "dht.lookup_secs", 0.2 + (i % 5) as f64 * 0.01);
                sink.on_signal(t, NodeId(2), "swarm.seeders", (4 + i % 4) as f64);
                let frame = ProbeFrame {
                    now: t,
                    events: i * 10,
                    pending: 100 + i % 11,
                    queue_max_depth: 4,
                    queue_max_node: NodeId(1),
                    queue_nonzero: 32,
                    uplink_max_backlog_secs: 0.5,
                    uplink_busy_nodes: 8,
                    downlink_max_backlog_secs: 0.1,
                    downlink_busy_nodes: 2,
                    metrics: &metrics,
                };
                black_box(sink.on_frame(&frame));
            }
            black_box(observer.summary().frames)
        })
    });
    g.finish();
}

criterion_group!(observer, bench_probe_overhead, bench_detector_kernel);
criterion_main!(observer);

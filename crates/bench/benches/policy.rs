//! Reactive-policy kernels: (1) the `PolicyHub` decision core fed
//! synthetic frames directly — the per-frame cost every policy-on
//! simulation pays at probe cadence, with the utilization signal either
//! sweeping through the engage/release hysteresis bands or parked below
//! both (the dormant, never-engaged floor); (2) the action-recording hot
//! path (`PolicyHandle::record`), which substrate reconcile loops hit once
//! per shed/replicate/seed decision; and (3) a whole E16 class-day with
//! the shed policy on vs off, via the public cohort runners — the
//! end-to-end overhead the `policy` section of BENCH_perf.json
//! (crates/harness/src/perf.rs) tracks across PRs.

use agora_policy::{PolicyConfig, PolicyHub, SIG_UPLINK_UTIL};
use agora_sim::probe::ProbeFrame;
use agora_sim::{Metrics, NodeId, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const KERNEL_FRAMES: u64 = 10_000;

/// Drive `KERNEL_FRAMES` probe frames through a full hub sink. `util_of`
/// shapes the uplink-utilization signal; the sweep variant crosses the
/// engage threshold (1.0) and release threshold (0.5) repeatedly so the
/// hysteresis state machine exercises every transition.
fn run_kernel(util_of: fn(u64) -> f64) -> u64 {
    let hub = PolicyHub::new(PolicyConfig::default());
    let handle = hub.handle();
    let mut sink = hub.into_sink();
    sink.on_sim_start(7);
    let metrics = Metrics::new();
    for i in 0..KERNEL_FRAMES {
        let now = SimTime::ZERO + SimDuration::from_secs(300 * i);
        sink.on_signal(now, NodeId(0), SIG_UPLINK_UTIL, util_of(i));
        let frame = ProbeFrame {
            now,
            events: i,
            pending: 0,
            queue_max_depth: 0,
            queue_max_node: NodeId(0),
            queue_nonzero: 0,
            uplink_max_backlog_secs: 0.0,
            uplink_busy_nodes: 0,
            downlink_max_backlog_secs: 0.0,
            downlink_busy_nodes: 0,
            metrics: &metrics,
        };
        black_box(sink.on_frame(&frame));
    }
    black_box(handle.engages() + handle.releases())
}

fn bench_decision_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_frames");
    g.sample_size(10);
    g.throughput(Throughput::Elements(KERNEL_FRAMES));
    g.bench_function("engage_release_sweep", |b| {
        b.iter(|| run_kernel(|i| 0.75 + 0.75 * ((i as f64) * 0.05).sin()))
    });
    g.bench_function("dormant_floor", |b| b.iter(|| run_kernel(|_| 0.25)));
    g.finish();
}

const RECORDS: u64 = 100_000;

/// The reconcile-loop hot path: one counter bump per policy action, into
/// the pending-flush map and the running totals.
fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_record");
    g.sample_size(10);
    g.throughput(Throughput::Elements(RECORDS));
    g.bench_function("action_totals", |b| {
        b.iter(|| {
            let hub = PolicyHub::new(PolicyConfig::default());
            let handle = hub.handle();
            for i in 0..RECORDS {
                match i % 3 {
                    0 => handle.record("policy.shed", 1),
                    1 => handle.record("policy.replicate", 1),
                    _ => handle.record("policy.cache", 1),
                }
            }
            black_box(handle.total("policy.shed"))
        })
    });
    g.finish();
}

/// End-to-end policy overhead: the same E16 DHT class-day (1M-user flash
/// crowd, 8-cohort aggregation) with the shed policy off vs on. The delta
/// is the whole reactive plane — probe frames at drain cadence, hub
/// dispatch, the shed queue and its retry stream.
fn bench_e16_day(c: &mut Criterion) {
    let runners = agora::experiments::e16_cohort_runners();
    let find = |name: &str| {
        runners
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| *f)
            .expect("runner registered")
    };
    let off = find("dht.off");
    let shed = find("dht.shed");
    let mut g = c.benchmark_group("policy_e16_dht_day");
    g.sample_size(10);
    g.bench_function("policy_off", |b| {
        b.iter(|| black_box(off(20171130, 1_000_000, 8).peak_overload))
    });
    g.bench_function("policy_shed", |b| {
        b.iter(|| black_box(shed(20171130, 1_000_000, 8).peak_overload))
    });
    g.finish();
}

criterion_group!(policy, bench_decision_kernel, bench_record, bench_e16_day);
criterion_main!(policy);

//! Sharded-engine kernels: ring-flood events/s as the shard count sweeps
//! {1, 2, 4, 8}, the cross-shard send-fraction sweep (successor stride
//! selects which hops cross a shard boundary), and inline vs forced-thread
//! lane workers at a fixed shard count. These are the microbenchmark
//! counterparts of the `engine_parallel` section of BENCH_perf.json
//! (crates/harness/src/perf.rs); identity with the serial oracle is proven
//! by the engine's own test suite, so these only measure, never check.

use agora_sim::{Ctx, DeviceClass, NodeId, Protocol, ShardWorkers, SimDuration, Simulation};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const NODES: u32 = 64;
/// Stride 8 keeps every successor shard-local for all measured shard
/// counts ({1, 2, 4, 8} all divide 8 under `shard_of = id % shards`).
const LOCAL_STRIDE: u32 = 8;

/// Token-passing flood: every node launches a 64-hop token every 100 ms,
/// so the event queue stays saturated with message traffic plus timers.
struct RingFlood {
    next: NodeId,
    hops: u64,
}

#[derive(Clone)]
struct Token(u32);

impl Protocol for RingFlood {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeId, msg: Token) {
        self.hops += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1), 128);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Token>, tag: u64) {
        ctx.send(self.next, Token(64), 128);
        ctx.set_timer(SimDuration::from_millis(100), tag);
    }
}

/// Build the flood at a shard count; nodes selected by `cross_every`
/// (every `cross_every`-th node; 0 = none) use stride 1, which crosses a
/// shard boundary on every hop whenever `shards > 1`.
fn flood_sim(shards: u32, workers: ShardWorkers, cross_every: u32) -> Simulation<RingFlood> {
    let mut sim: Simulation<RingFlood> = Simulation::new(7);
    sim.set_shards_with(shards, workers);
    for i in 0..NODES {
        let stride = if cross_every > 0 && i % cross_every == 0 {
            1
        } else {
            LOCAL_STRIDE
        };
        let id = sim.add_node(
            RingFlood {
                next: NodeId((i + stride) % NODES),
                hops: 0,
            },
            DeviceClass::DatacenterServer,
        );
        sim.with_ctx(id, |_, ctx| ctx.set_timer(SimDuration::from_millis(100), 0));
    }
    sim
}

fn run_flood(shards: u32, workers: ShardWorkers, cross_every: u32) -> u64 {
    let mut sim = flood_sim(shards, workers, cross_every);
    sim.run_for(SimDuration::from_secs(3));
    black_box(sim.events_processed())
}

fn bench_shard_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_ring_flood");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    for shards in [1u32, 2, 4, 8] {
        g.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| run_flood(shards, ShardWorkers::Auto, 0))
        });
    }
    g.finish();
}

fn bench_cross_fraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_cross_fraction_4shards");
    g.sample_size(10);
    // cross_every 0 → no cross-shard hops; 4 → ~1/4 of nodes cross;
    // 2 → ~1/2; 1 → every hop crosses. Window math is identical in all
    // four, so any spread is pure merge/routing cost.
    for cross_every in [0u32, 4, 2, 1] {
        g.bench_function(format!("cross_every{cross_every}"), |b| {
            b.iter(|| run_flood(4, ShardWorkers::Auto, cross_every))
        });
    }
    g.finish();
}

fn bench_worker_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_workers_4shards");
    g.sample_size(10);
    // Inline vs forced threads at the same shard count: the gap is the
    // barrier + channel overhead a multi-core host must amortize.
    g.bench_function("inline", |b| {
        b.iter(|| run_flood(4, ShardWorkers::Inline, 0))
    });
    g.bench_function("threads", |b| {
        b.iter(|| run_flood(4, ShardWorkers::Threads, 0))
    });
    g.finish();
}

criterion_group!(
    shard,
    bench_shard_sweep,
    bench_cross_fraction,
    bench_worker_modes
);
criterion_main!(shard);

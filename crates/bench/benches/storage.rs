//! E5/E6/E8 kernels: proof schemes, durability sweeps, and the
//! quality-vs-quantity retrieval workload.

use agora_crypto::sha256;
use agora_sim::{DeviceClass, SimDuration, SimRng, Simulation};
use agora_storage::{
    play_porep_game, por_make_audits, por_respond, seal, sealed_commitment, simulate_durability,
    AttackEnv, CheatStrategy, DurabilityParams, Manifest, PosChallenge, PosResponse,
    ProviderStrategy, SealParams, StorageNode,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_proof_kernels(c: &mut Criterion) {
    let data = vec![0xa5u8; 256 * 1024];
    let (manifest, chunks) = Manifest::build(&data, 4096);

    c.bench_function("e5_pos_build_and_verify", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let idx = rng.below(manifest.chunk_count() as u64) as u32;
            let ch = PosChallenge {
                object: manifest.object_id,
                index: idx,
                nonce: rng.next_u64(),
            };
            let resp =
                PosResponse::build(&ch, &manifest, chunks[idx as usize].clone()).expect("held");
            black_box(resp.verify(&ch))
        })
    });

    c.bench_function("e5_por_audit_pair", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let audits = por_make_audits(&data, 1, &mut rng);
            black_box(por_respond(audits[0].nonce, &data))
        })
    });

    c.bench_function("e5_seal_256k", |b| {
        let id = sha256(b"bench-replica");
        b.iter(|| black_box(seal(&data, &id)))
    });

    c.bench_function("e5_sealed_commitment_256k", |b| {
        let id = sha256(b"bench-replica");
        let sealed = seal(&data, &id);
        let params = SealParams::default();
        b.iter(|| black_box(sealed_commitment(&sealed, &params)))
    });
}

fn bench_porep_game(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_porep_game");
    g.sample_size(10);
    let mut env = AttackEnv::default();
    env.seal.seal_throughput_bps = 50_000;
    env.seal.response_deadline = SimDuration::from_secs(1);
    let data = vec![0xabu8; 200_000];
    for s in CheatStrategy::all() {
        g.bench_function(format!("{s:?}"), |b| {
            let mut rng = SimRng::new(7);
            b.iter(|| black_box(play_porep_game(s, &data, 2, 20, &env, &mut rng)))
        });
    }
    g.finish();
}

fn bench_durability(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_durability_1000_objects");
    for (label, k, m) in [
        ("repl_x3", 1u32, 2u32),
        ("rs_4_8", 4, 8),
        ("rs_10_20", 10, 20),
    ] {
        g.bench_function(label, |b| {
            let mut rng = SimRng::new(11);
            let params = DurabilityParams {
                k,
                m,
                provider_mttf_days: 60.0,
                repair_interval_days: 7.0,
                correlated_event_prob: 0.01,
                correlated_severity: 0.3,
                horizon_days: 365.0,
            };
            b.iter(|| black_box(simulate_durability(&params, 1000, &mut rng)))
        });
    }
    g.finish();
}

/// E8 kernel: one full put+get cycle on a provider class.
fn put_get_cycle(seed: u64, class: DeviceClass) -> bool {
    let mut sim = Simulation::new(seed);
    let providers: Vec<_> = (0..6)
        .map(|_| sim.add_node(StorageNode::provider(ProviderStrategy::Honest), class))
        .collect();
    let client = sim.add_node(
        StorageNode::client(providers, SimDuration::from_mins(5)),
        DeviceClass::PersonalComputer,
    );
    let data = vec![9u8; 100_000];
    let (_, object) = sim
        .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
        .expect("up");
    sim.run_for(SimDuration::from_mins(2));
    let op = sim
        .with_ctx(client, |n, ctx| n.start_get(ctx, object))
        .expect("up");
    sim.run_for(SimDuration::from_mins(2));
    sim.node_mut(client).take_result(op).is_some()
}

fn bench_quality(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_put_get_cycle");
    g.sample_size(10);
    let mut seed = 100u64;
    g.bench_function("datacenter_providers", |b| {
        b.iter(|| {
            seed += 1;
            black_box(put_get_cycle(seed, DeviceClass::DatacenterServer))
        })
    });
    g.bench_function("consumer_pc_providers", |b| {
        b.iter(|| {
            seed += 1;
            black_box(put_get_cycle(seed, DeviceClass::PersonalComputer))
        })
    });
    g.finish();
}

criterion_group!(
    storage,
    bench_proof_kernels,
    bench_porep_game,
    bench_durability,
    bench_quality
);
criterion_main!(storage);

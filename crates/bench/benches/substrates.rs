//! Substrate kernels: the from-scratch primitives everything rides on.

use agora_crypto::{sha256, MerkleTree, SimKeyPair, WotsKeyPair};
use agora_dht::{Contact, RoutingTable};
use agora_sim::{SimRng, ZipfTable};
use agora_storage::ReedSolomon;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 4096, 1 << 20] {
        let data = vec![0xaau8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| black_box(sha256(&data))));
    }
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<_> = (0..1024u32).map(|i| sha256(&i.to_be_bytes())).collect();
    c.bench_function("merkle_build_1024", |b| {
        b.iter(|| black_box(MerkleTree::from_leaf_hashes(leaves.clone())))
    });
    let tree = MerkleTree::from_leaf_hashes(leaves.clone());
    c.bench_function("merkle_prove_and_verify", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 1024;
            let p = tree.prove(i).expect("in range");
            black_box(p.verify(leaves[i], tree.root()))
        })
    });
}

fn bench_signatures(c: &mut Criterion) {
    c.bench_function("simsig_sign_verify", |b| {
        let kp = SimKeyPair::from_seed(b"bench");
        let pk = kp.public();
        b.iter(|| {
            let sig = kp.sign(b"message");
            black_box(pk.verify(b"message", &sig))
        })
    });
    let mut g = c.benchmark_group("wots");
    g.sample_size(10);
    g.bench_function("keygen_h4", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(WotsKeyPair::generate(sha256(&i.to_be_bytes()), 4))
        })
    });
    g.bench_function("sign_verify_h10", |b| {
        let mut kp = WotsKeyPair::generate(sha256(b"bench"), 10);
        let mut pk = kp.public();
        b.iter(|| {
            // One-time keys are finite by design; refresh outside the common
            // path when the 2^10 capacity runs dry (adds rare outliers
            // rather than a panic).
            if kp.remaining() == 0 {
                kp = WotsKeyPair::generate(sha256(b"bench"), 10);
                pk = kp.public();
            }
            let sig = kp.sign(b"message").expect("capacity");
            black_box(pk.verify(b"message", &sig))
        })
    });
    g.finish();
}

fn bench_erasure(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    let data = vec![0x5au8; 1 << 20];
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (k, m) in [(4usize, 2usize), (10, 20)] {
        let rs = ReedSolomon::new(k, m).expect("valid");
        g.bench_function(format!("encode_1M_rs_{k}_{m}"), |b| {
            b.iter(|| black_box(rs.encode(&data)))
        });
        let shards = rs.encode(&data);
        // Reconstruct from the *last* k shards (forces matrix inversion).
        let avail: Vec<(usize, Vec<u8>)> = (m..m + k).map(|i| (i, shards[i].clone())).collect();
        g.bench_function(format!("reconstruct_1M_rs_{k}_{m}"), |b| {
            b.iter(|| black_box(rs.reconstruct(&avail, data.len()).expect("ok")))
        });
    }
    g.finish();
}

fn bench_dht_routing(c: &mut Criterion) {
    let mut table = RoutingTable::new(sha256(b"me"), 20);
    for i in 0..10_000u32 {
        table.observe(Contact {
            key: sha256(&i.to_be_bytes()),
            addr: agora_sim::NodeId(i),
        });
    }
    c.bench_function("dht_closest_of_10k_observed", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            black_box(table.closest(&sha256(&i.to_be_bytes()), 20))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("rng_zipf_table_sample", |b| {
        let mut rng = SimRng::new(2);
        let table = ZipfTable::new(10_000, 1.0);
        b.iter(|| black_box(table.sample(&mut rng)))
    });
}

criterion_group!(
    substrates,
    bench_sha256,
    bench_merkle,
    bench_signatures,
    bench_erasure,
    bench_dht_routing,
    bench_rng
);
criterion_main!(substrates);

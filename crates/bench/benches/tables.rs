//! T1/T2/T3: regenerate each of the paper's tables under the timer, so the
//! tables in EXPERIMENTS.md always come from exactly this code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_t1(c: &mut Criterion) {
    c.bench_function("t1_table1_from_registry", |b| {
        b.iter(|| black_box(agora::t1_taxonomy()))
    });
}

fn bench_t2(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2");
    g.sample_size(10); // includes real sealing work
    g.bench_function("table2_with_mechanism_checks", |b| {
        b.iter(|| black_box(agora::t2_storage_systems()))
    });
    g.bench_function("table2_render_only", |b| {
        b.iter(|| black_box(agora_storage::render_table2()))
    });
    g.finish();
}

fn bench_t3(c: &mut Criterion) {
    use agora_feasibility::{sensitivity_sweep, Assumptions};
    c.bench_function("t3_table3_model", |b| {
        b.iter(|| {
            let a = Assumptions::default();
            black_box((a.cloud(), a.user_devices(), a.sufficiency()))
        })
    });
    c.bench_function("t3_sensitivity_sweep", |b| {
        b.iter(|| black_box(sensitivity_sweep(&[0.25, 0.5, 1.0, 2.0, 4.0])))
    });
}

criterion_group!(tables, bench_t1, bench_t2, bench_t3);
criterion_main!(tables);

//! E7 kernels: site publishing and full swarm visits.

use agora_sim::{DeviceClass, SimDuration, Simulation};
use agora_web::{SitePublisher, SwarmNode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_publish(c: &mut Criterion) {
    c.bench_function("e7_publish_100k_site", |b| {
        let content = vec![42u8; 100_000];
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            let mut p = SitePublisher::new(format!("site-{v}").as_bytes());
            black_box(p.publish(&[("index.html", content.as_slice())]))
        })
    });
}

/// One full visit: tracker discovery, manifest fetch, piece exchange,
/// verification, re-seeding.
fn visit_cycle(seed: u64) -> bool {
    let mut sim = Simulation::new(seed);
    let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
    let origin = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    let visitor = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    let mut p = SitePublisher::new(b"bench-site");
    let content = vec![7u8; 64_000];
    let bundle = p.publish(&[("index.html", content.as_slice())]);
    let site = p.site_id();
    sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle));
    sim.run_for(SimDuration::from_secs(2));
    let op = sim
        .with_ctx(visitor, |n, ctx| n.start_visit(ctx, site))
        .expect("up");
    sim.run_for(SimDuration::from_mins(2));
    sim.node_mut(visitor).take_result(op).is_some()
}

fn bench_visit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_visit");
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("full_visit_64k_site", |b| {
        b.iter(|| {
            seed += 1;
            black_box(visit_cycle(seed))
        })
    });
    g.finish();
}

criterion_group!(web, bench_publish, bench_visit);
criterion_main!(web);

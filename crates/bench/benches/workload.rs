//! Workload-engine kernels: O(1) alias-table Zipf sampling vs the O(log n)
//! cumulative-table reference, schedule compilation at population scale,
//! and replaying a 1M-user cohorted day through an idle simulation. These
//! are the microbenchmark counterparts of the `workload` section of
//! BENCH_perf.json (crates/harness/src/perf.rs).

use agora_sim::{Ctx, DeviceClass, NodeId, Protocol, SimDuration, SimRng, Simulation};
use agora_workload::{
    zipf_reference, BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, LogNormalSessions,
    WorkloadDriver, WorkloadSpec, ZipfAlias, ZoneMix,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_zipf_sampling(c: &mut Criterion) {
    const RANKS: usize = 10_000;
    let mut g = c.benchmark_group("zipf_10k_ranks");
    g.throughput(Throughput::Elements(1));

    let alias = ZipfAlias::new(RANKS, 0.9);
    let mut rng = SimRng::new(11);
    g.bench_function("alias_o1", |b| b.iter(|| black_box(alias.sample(&mut rng))));

    let cdf = zipf_reference(RANKS, 0.9);
    let mut rng = SimRng::new(11);
    g.bench_function("cdf_ologn", |b| b.iter(|| black_box(cdf.sample(&mut rng))));
    g.finish();
}

fn day_spec(population: u64) -> WorkloadSpec {
    WorkloadSpec {
        population,
        cohorts: 64,
        actions_per_user_day: 20.0,
        model: DemandModel {
            zones: ZoneMix::global_three_region(DiurnalCurve::residential()),
            flash: None,
        },
        ranks: 256,
        zipf_alpha: 0.9,
        sizes: BoundedPareto::new(2_000, 1_000_000, 1.3),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: SimDuration::from_mins(15),
        rep_cap: 2,
        churn: Some(ChurnCurve {
            offline_at_peak: 0.1,
            offline_at_trough: 0.5,
        }),
    }
}

struct Idle;

impl Protocol for Idle {
    type Msg = ();
    fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
}

fn bench_schedule_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_compile_day");
    g.sample_size(10);
    let churnable: Vec<NodeId> = (0..64).map(NodeId).collect();
    // Population-independence is the claim: both compile to the same
    // O(cohorts · ticks) event count.
    for population in [10_000u64, 1_000_000] {
        let spec = day_spec(population);
        g.bench_function(format!("p{population}"), |b| {
            b.iter(|| {
                black_box(
                    spec.compile(17, &churnable, SimDuration::from_days(1))
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_day_replay_1m(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_replay");
    g.sample_size(10);
    let spec = day_spec(1_000_000);
    g.bench_function("day_1m_cohorted", |b| {
        b.iter(|| {
            let mut sim: Simulation<Idle> = Simulation::new(17);
            let nodes: Vec<NodeId> = (0..64)
                .map(|_| sim.add_node(Idle, DeviceClass::PersonalComputer))
                .collect();
            let sched = spec.compile(17, &nodes, SimDuration::from_days(1));
            let mut driver = WorkloadDriver::install(&sim, sched);
            driver.run_for(&mut sim, SimDuration::from_days(1), &mut |_, d| {
                black_box(d.bytes);
            });
            black_box(driver.applied())
        })
    });
    g.finish();
}

criterion_group!(
    workload,
    bench_zipf_sampling,
    bench_schedule_compile,
    bench_day_replay_1m
);
criterion_main!(workload);

//! Offline stand-in for the [criterion](https://docs.rs/criterion) crate.
//!
//! The agora workspace must build with no registry access, so `agora-bench`
//! resolves its `criterion` dev-dependency to this path crate. It exposes
//! the exact subset of the 0.5 API the bench files use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `throughput` /
//! `finish`, `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by plain wall-clock timing:
//!
//! * one calibration call sizes the per-sample iteration count so a sample
//!   runs ≳5 ms (amortizing timer overhead),
//! * `sample_size` samples are measured (each re-runs the bench closure, so
//!   per-sample setup behaves like criterion's),
//! * the median per-iteration time is reported, plus throughput when set.
//!
//! No statistics, no outlier rejection, no HTML reports — swap the
//! dev-dependency back to crates-io criterion when those matter. Results
//! print to stdout in a `name  time: … ns/iter` format.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-sample timing context handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `routine`, keeping each result live.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let started = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = started.elapsed();
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in MiB/s).
    Bytes(u64),
    /// Elements processed per iteration (reported in Melem/s).
    Elements(u64),
}

/// Top-level driver, analogous to `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), DEFAULT_SAMPLES, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

const DEFAULT_SAMPLES: usize = 20;

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{id}", self.name),
            self.samples,
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group (a no-op here; criterion writes reports).
    pub fn finish(self) {}
}

/// Budget on one benchmark's measurement phase, so accidentally expensive
/// routines degrade to fewer samples instead of hanging `cargo bench`.
const MEASURE_BUDGET: Duration = Duration::from_secs(5);
/// Target wall-clock per sample; iteration counts are sized to reach it.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

fn run_bench<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: one single-iteration sample estimates the cost and warms
    // caches. Its timing is discarded.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos().max(1);
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter_ns).clamp(1, 10_000_000) as u64;

    let budget = Instant::now();
    let mut per_iter_secs: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_secs.push(b.elapsed.as_secs_f64() / iters as f64);
        if budget.elapsed() > MEASURE_BUDGET {
            break;
        }
    }
    per_iter_secs.sort_by(f64::total_cmp);
    let median = per_iter_secs[per_iter_secs.len() / 2];

    let thrpt = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            "  thrpt: {:>10.1} MiB/s",
            n as f64 / median.max(1e-12) / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => format!(
            "  thrpt: {:>10.3} Melem/s",
            n as f64 / median.max(1e-12) / 1e6
        ),
        None => String::new(),
    };
    println!(
        "{id:<48} time: {:>12.1} ns/iter  ({} samples x {iters} iters){thrpt}",
        median * 1e9,
        per_iter_secs.len(),
    );
}

/// Bundle benchmark functions into a runnable group (list form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and any user filter) to the
            // binary; this minimal harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_routine() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(toy_group, toy_bench);
    fn toy_bench(c: &mut Criterion) {
        c.bench_function("toy", |b| b.iter(|| 0u64));
    }

    #[test]
    fn macro_generated_group_runs() {
        toy_group();
    }
}

//! # agora-bench — benchmark harness
//!
//! Criterion benches regenerating every table of the paper and timing the
//! kernels behind every experiment in EXPERIMENTS.md:
//!
//! | bench target | covers |
//! |---|---|
//! | `tables` | T1, T2, T3 (the paper's three tables) |
//! | `naming` | E1 (consensus vs registrar), E2 (attack games) |
//! | `comm` | E3/E4 (architecture workloads) |
//! | `storage` | E5 (proof games), E6 (durability), E8 (quality vs quantity) |
//! | `web` | E7 (swarm visits) |
//! | `chain` | E9 (mining, validation, selfish mining) |
//! | `substrates` | SHA-256, Merkle, WOTS, RS coding, ratchet, DHT routing |
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]

//! Attack models: the 51% / double-spend race and selfish mining.
//!
//! The paper lists "the 51% attack" among blockchains' well-known problems
//! (§3.1). These models quantify it for experiment E2/E9: the probability an
//! attacker with hash-power share α rewrites `z` confirmations, and the
//! revenue share a selfish miner extracts.

use agora_sim::SimRng;

/// Result of a double-spend measurement.
#[derive(Clone, Copy, Debug)]
pub struct DoubleSpendResult {
    /// Attacker's fraction of total hash power.
    pub alpha: f64,
    /// Confirmations the victim waited for.
    pub confirmations: u64,
    /// Fraction of trials in which the attacker overtook the honest chain.
    pub success_rate: f64,
    /// Nakamoto's closed-form probability for comparison. Note this is a
    /// deliberate over-approximation (Poisson head start; a tie counts as a
    /// win), so the exact simulated rate falls somewhat below it.
    pub analytic: f64,
}

/// Monte-Carlo simulate the double-spend race.
///
/// The victim ships goods after `confirmations` blocks. The attacker mines a
/// private fork from the block before the payment; each subsequent block is
/// the attacker's with probability α. The attacker wins on overtaking the
/// honest chain (lead of +1) and gives up when `give_up` blocks behind.
pub fn double_spend_race(
    alpha: f64,
    confirmations: u64,
    trials: u32,
    rng: &mut SimRng,
) -> DoubleSpendResult {
    let give_up: i64 = 40;
    let mut wins = 0u32;
    for _ in 0..trials {
        // While the victim waits for z confirmations, the attacker mines in
        // private; their head start is Poisson-ish — model the full race:
        // honest needs to produce z blocks; count attacker blocks produced in
        // that window.
        let mut attacker: i64 = 0;
        let mut honest: i64 = 0;
        while honest < confirmations as i64 {
            if rng.chance(alpha) {
                attacker += 1;
            } else {
                honest += 1;
            }
        }
        // Now the race: attacker must reach honest + 1.
        let mut deficit = honest - attacker; // blocks behind
        let mut won = deficit < 0;
        while !won && deficit <= give_up {
            if rng.chance(alpha) {
                deficit -= 1;
                if deficit < 0 {
                    won = true;
                }
            } else {
                deficit += 1;
            }
        }
        if won {
            wins += 1;
        }
    }
    DoubleSpendResult {
        alpha,
        confirmations,
        success_rate: wins as f64 / trials as f64,
        analytic: nakamoto_probability(alpha, confirmations),
    }
}

/// Nakamoto's closed-form attacker-success probability (Bitcoin paper, §11).
pub fn nakamoto_probability(alpha: f64, z: u64) -> f64 {
    if alpha >= 0.5 {
        return 1.0;
    }
    let q_over_p = alpha / (1.0 - alpha);
    let lambda = z as f64 * q_over_p;
    let mut sum = 0.0;
    let mut poisson = (-lambda).exp(); // P(k=0)
    for k in 0..=z {
        let catch_up = q_over_p.powf((z - k) as f64);
        sum += poisson * (1.0 - catch_up);
        poisson *= lambda / (k as f64 + 1.0);
    }
    1.0 - sum
}

/// Result of a selfish-mining measurement.
#[derive(Clone, Copy, Debug)]
pub struct SelfishMiningResult {
    /// Selfish pool's hash-power share.
    pub alpha: f64,
    /// Fraction of honest nodes that mine on the selfish branch during ties.
    pub gamma: f64,
    /// Selfish pool's share of main-chain blocks (revenue share).
    pub revenue_share: f64,
    /// Fair share for comparison (= alpha).
    pub fair_share: f64,
}

/// Monte-Carlo simulate selfish mining (Eyal & Sirer's state machine).
pub fn selfish_mining(
    alpha: f64,
    gamma: f64,
    blocks: u32,
    rng: &mut SimRng,
) -> SelfishMiningResult {
    let mut selfish_revenue = 0u64;
    let mut honest_revenue = 0u64;
    let mut private_lead = 0u64; // selfish pool's unpublished lead

    let mut produced = 0u32;
    while produced < blocks {
        produced += 1;
        if rng.chance(alpha) {
            // Selfish pool finds a block: keeps it private.
            private_lead += 1;
        } else {
            // Honest network finds a block.
            match private_lead {
                0 => {
                    honest_revenue += 1;
                }
                1 => {
                    // Tie race: selfish publishes its one block; with prob
                    // gamma the honest network extends the selfish branch.
                    private_lead = 0;
                    if rng.chance(gamma) {
                        // Selfish block + honest block on top both count.
                        selfish_revenue += 1;
                        honest_revenue += 1;
                    } else if rng.chance(alpha / (alpha + (1.0 - alpha))) {
                        // Selfish pool wins the race by finding the next
                        // block on its own branch (prob α of next block).
                        selfish_revenue += 2;
                        produced += 1;
                    } else {
                        honest_revenue += 2;
                        produced += 1;
                    }
                }
                2 => {
                    // Selfish publishes the whole private chain, orphaning
                    // the honest block.
                    selfish_revenue += 2;
                    private_lead = 0;
                }
                _ => {
                    // Lead > 2: publish one block, keep the rest.
                    selfish_revenue += 1;
                    private_lead -= 1;
                }
            }
        }
    }
    // Flush any remaining private lead.
    selfish_revenue += private_lead;

    let total = (selfish_revenue + honest_revenue).max(1);
    SelfishMiningResult {
        alpha,
        gamma,
        revenue_share: selfish_revenue as f64 / total as f64,
        fair_share: alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_attacker_always_wins() {
        let mut rng = SimRng::new(1);
        let r = double_spend_race(0.55, 6, 300, &mut rng);
        assert!(r.success_rate > 0.95, "got {}", r.success_rate);
        assert_eq!(r.analytic, 1.0);
    }

    #[test]
    fn small_attacker_rarely_wins_deep_confirmations() {
        let mut rng = SimRng::new(2);
        let r = double_spend_race(0.10, 6, 2000, &mut rng);
        assert!(r.success_rate < 0.01, "got {}", r.success_rate);
    }

    #[test]
    fn simulation_bounded_by_nakamoto_closed_form() {
        // Nakamoto's formula is a deliberate over-approximation: it models
        // the attacker's head start as Poisson and counts drawing level as a
        // win. The exact race simulated here must therefore land *below* the
        // closed form but within the same order of magnitude.
        let mut rng = SimRng::new(3);
        for &alpha in &[0.1, 0.25, 0.3] {
            let r = double_spend_race(alpha, 4, 20_000, &mut rng);
            assert!(
                r.success_rate <= r.analytic * 1.1 + 0.005,
                "alpha={alpha}: sim {} should not exceed analytic {}",
                r.success_rate,
                r.analytic
            );
            assert!(
                r.success_rate >= r.analytic * 0.1,
                "alpha={alpha}: sim {} implausibly far below analytic {}",
                r.success_rate,
                r.analytic
            );
        }
    }

    #[test]
    fn success_monotone_in_alpha() {
        let mut rng = SimRng::new(4);
        let lo = double_spend_race(0.15, 3, 5000, &mut rng).success_rate;
        let hi = double_spend_race(0.35, 3, 5000, &mut rng).success_rate;
        assert!(hi > lo);
    }

    #[test]
    fn success_decreases_with_confirmations() {
        let mut rng = SimRng::new(5);
        let shallow = double_spend_race(0.3, 1, 5000, &mut rng).success_rate;
        let deep = double_spend_race(0.3, 8, 5000, &mut rng).success_rate;
        assert!(deep < shallow);
    }

    #[test]
    fn nakamoto_limits() {
        assert_eq!(nakamoto_probability(0.5, 6), 1.0);
        assert!(nakamoto_probability(0.01, 6) < 1e-6);
        assert!(nakamoto_probability(0.3, 0) > 0.99);
    }

    #[test]
    fn selfish_mining_beats_fair_share_above_threshold() {
        let mut rng = SimRng::new(6);
        // With gamma = 0.5 the profitability threshold is α = 0.25.
        let r = selfish_mining(0.35, 0.5, 200_000, &mut rng);
        assert!(
            r.revenue_share > r.fair_share + 0.01,
            "share {} vs fair {}",
            r.revenue_share,
            r.fair_share
        );
    }

    #[test]
    fn selfish_mining_unprofitable_for_small_pools() {
        let mut rng = SimRng::new(7);
        let r = selfish_mining(0.10, 0.0, 200_000, &mut rng);
        assert!(
            r.revenue_share < r.fair_share + 0.005,
            "share {} vs fair {}",
            r.revenue_share,
            r.fair_share
        );
    }
}

//! Blocks and headers, with real (simulator-scale) proof-of-work.

use agora_crypto::{tagged_hash, Enc, Hash256, MerkleTree, Sha256, TailHasher};

use crate::tx::Transaction;

/// Domain tag for header hashing (see [`agora_crypto::tagged_hash`]).
const HEADER_TAG: &str = "block-header";

/// A block header. Hashing the header (with its nonce) yields the PoW digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height above genesis (genesis = 0).
    pub height: u64,
    /// Hash of the parent block header.
    pub prev: Hash256,
    /// Merkle root over transaction ids (coinbase account first).
    pub merkle_root: Hash256,
    /// Simulated timestamp (microseconds) the block was mined.
    pub time_micros: u64,
    /// Required leading zero bits of the header hash.
    pub difficulty_bits: u32,
    /// PoW nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// Canonical encoding used for hashing.
    pub fn encode(&self) -> Vec<u8> {
        Enc::new()
            .u64(self.height)
            .hash(&self.prev)
            .hash(&self.merkle_root)
            .u64(self.time_micros)
            .u32(self.difficulty_bits)
            .u64(self.nonce)
            .done()
    }

    /// The block hash (PoW digest).
    pub fn hash(&self) -> Hash256 {
        tagged_hash(HEADER_TAG, &self.encode())
    }

    /// Whether the hash meets the declared difficulty.
    pub fn meets_difficulty(&self) -> bool {
        self.hash().leading_zero_bits() >= self.difficulty_bits
    }

    /// Freeze the nonce-invariant prefix of this header into a [`PowMidstate`]
    /// that re-hashes only the 8-byte nonce tail — one SHA-256 compression and
    /// zero heap allocation per attempt, versus a fresh [`BlockHeader::encode`]
    /// (heap `Vec`) plus a full two-compression hash. The header's current
    /// `nonce` field is irrelevant; the nonce is supplied per call.
    pub fn pow_midstate(&self) -> PowMidstate {
        let mut pre = Sha256::new();
        // Mirror `tagged_hash(HEADER_TAG, encode())` field by field; the
        // equivalence is locked down by tests in this module and in `mining`.
        pre.update(&[HEADER_TAG.len() as u8]);
        pre.update(HEADER_TAG.as_bytes());
        pre.update(&self.height.to_be_bytes());
        pre.update(self.prev.as_bytes());
        pre.update(self.merkle_root.as_bytes());
        pre.update(&self.time_micros.to_be_bytes());
        pre.update(&self.difficulty_bits.to_be_bytes());
        let tail = pre
            .tail_hasher::<8>()
            .expect("97-byte prefix buffers 33 bytes; 33 + 8 + 9 <= 64");
        PowMidstate { tail }
    }

    /// Work contributed by a block at this difficulty (2^bits expected
    /// hashes), as an f64 for total-work comparison.
    pub fn work(&self) -> f64 {
        2f64.powi(self.difficulty_bits as i32)
    }

    /// Wire size in bytes.
    pub const WIRE_SIZE: u64 = 8 + 32 + 32 + 8 + 4 + 8;
}

/// The nonce-invariant SHA-256 midstate of a block header: everything up to
/// the trailing nonce field is pre-absorbed, so grinding candidates costs one
/// compression each. Built by [`BlockHeader::pow_midstate`].
#[derive(Clone)]
pub struct PowMidstate {
    tail: TailHasher<8>,
}

impl PowMidstate {
    /// Header hash with the given nonce — identical to setting
    /// `header.nonce = nonce` and calling [`BlockHeader::hash`].
    pub fn hash_nonce(&self, nonce: u64) -> Hash256 {
        self.tail.hash(&nonce.to_be_bytes())
    }

    /// Whether `nonce` yields a hash meeting `difficulty_bits`.
    pub fn meets_difficulty(&self, nonce: u64, difficulty_bits: u32) -> bool {
        self.hash_nonce(nonce).leading_zero_bits() >= difficulty_bits
    }
}

/// A full block: header plus ordered transactions. The miner's coinbase
/// reward is implicit (credited to `miner` by state application).
#[derive(Clone, Debug)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Account credited with the block reward and fees.
    pub miner: Hash256,
    /// Ordered transactions.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Compute the Merkle root over miner + transaction ids.
    pub fn compute_merkle_root(miner: &Hash256, txs: &[Transaction]) -> Hash256 {
        let mut leaves = vec![*miner];
        leaves.extend(txs.iter().map(|t| t.id()));
        MerkleTree::from_leaf_hashes(leaves).root()
    }

    /// Whether the header's Merkle root matches the body.
    pub fn merkle_valid(&self) -> bool {
        Self::compute_merkle_root(&self.miner, &self.txs) == self.header.merkle_root
    }

    /// Block hash (header hash).
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Ledger size of this block in bytes (for endless-ledger accounting).
    pub fn wire_size(&self) -> u64 {
        BlockHeader::WIRE_SIZE + 32 + self.txs.iter().map(|t| t.wire_size()).sum::<u64>()
    }

    /// Build the deterministic genesis block for a chain tag.
    pub fn genesis(chain_tag: &str) -> Block {
        let miner = tagged_hash("genesis-miner", chain_tag.as_bytes());
        let header = BlockHeader {
            height: 0,
            prev: Hash256::ZERO,
            merkle_root: Block::compute_merkle_root(&miner, &[]),
            time_micros: 0,
            difficulty_bits: 0,
            nonce: 0,
        };
        Block {
            header,
            miner,
            txs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{Transaction, TxPayload};
    use agora_crypto::SimKeyPair;

    fn sample_tx(seed: &str, nonce: u64) -> Transaction {
        Transaction::create(
            &SimKeyPair::from_seed(seed.as_bytes()),
            nonce,
            1,
            TxPayload::App {
                tag: 1,
                data: vec![nonce as u8],
            },
        )
    }

    #[test]
    fn genesis_is_deterministic_and_valid() {
        let a = Block::genesis("main");
        let b = Block::genesis("main");
        assert_eq!(a.hash(), b.hash());
        assert!(a.merkle_valid());
        assert!(a.header.meets_difficulty()); // 0 bits
        let c = Block::genesis("other");
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn merkle_root_binds_txs_and_miner() {
        let miner = agora_crypto::sha256(b"miner");
        let txs = vec![sample_tx("a", 0), sample_tx("b", 0)];
        let root = Block::compute_merkle_root(&miner, &txs);
        let header = BlockHeader {
            height: 1,
            prev: Hash256::ZERO,
            merkle_root: root,
            time_micros: 5,
            difficulty_bits: 0,
            nonce: 0,
        };
        let mut block = Block { header, miner, txs };
        assert!(block.merkle_valid());
        block.txs.push(sample_tx("c", 0));
        assert!(!block.merkle_valid(), "adding a tx breaks the root");
        block.txs.pop();
        block.miner = agora_crypto::sha256(b"thief");
        assert!(!block.merkle_valid(), "changing miner breaks the root");
    }

    #[test]
    fn pow_midstate_matches_full_header_hash() {
        let miner = agora_crypto::sha256(b"miner");
        let txs = vec![sample_tx("a", 0), sample_tx("b", 1)];
        let mut header = BlockHeader {
            height: 42,
            prev: agora_crypto::sha256(b"parent"),
            merkle_root: Block::compute_merkle_root(&miner, &txs),
            time_micros: 123_456_789,
            difficulty_bits: 12,
            nonce: 0,
        };
        let mid = header.pow_midstate();
        for nonce in [0u64, 1, 7, 0xffff_ffff, u64::MAX - 1, u64::MAX] {
            header.nonce = nonce;
            assert_eq!(mid.hash_nonce(nonce), header.hash(), "nonce {nonce:#x}");
            assert_eq!(
                mid.meets_difficulty(nonce, header.difficulty_bits),
                header.meets_difficulty(),
            );
        }
    }

    #[test]
    fn pow_midstate_ignores_staged_nonce() {
        let mut header = Block::genesis("main").header;
        header.nonce = 999; // must not leak into the midstate prefix
        let mid = header.pow_midstate();
        header.nonce = 5;
        assert_eq!(mid.hash_nonce(5), header.hash());
    }

    #[test]
    fn nonce_changes_hash() {
        let mut h = Block::genesis("main").header;
        let h0 = h.hash();
        h.nonce = 1;
        assert_ne!(h.hash(), h0);
    }

    #[test]
    fn work_grows_exponentially() {
        let mut h = Block::genesis("main").header;
        h.difficulty_bits = 10;
        let w10 = h.work();
        h.difficulty_bits = 12;
        assert_eq!(h.work(), 4.0 * w10);
    }

    #[test]
    fn wire_size_counts_txs() {
        let mut b = Block::genesis("main");
        let empty = b.wire_size();
        b.txs.push(sample_tx("a", 0));
        assert!(b.wire_size() > empty + 64);
    }
}

//! The ledger: block store, validation, fork choice, and account state.
//!
//! Fork choice is heaviest-total-work (longest-chain generalized to variable
//! difficulty). State is maintained at the best tip and rebuilt from genesis
//! when a reorg adopts a side branch — O(chain) but simulation-scale chains
//! are short. Blocks with unknown parents wait in a bounded orphan pool.

use std::collections::HashMap;

use agora_crypto::Hash256;

use crate::block::Block;
use crate::params::ChainParams;
use crate::tx::{Transaction, TxPayload};

/// Why a block or transaction was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockError {
    /// Parent not known (block parked as orphan).
    UnknownParent,
    /// Header hash does not meet its declared difficulty.
    BadPow,
    /// Declared difficulty differs from the consensus-required difficulty.
    WrongDifficulty {
        /// What the chain requires at this height.
        required: u32,
        /// What the header declared.
        declared: u32,
    },
    /// Header height is not parent height + 1.
    BadHeight,
    /// Merkle root does not commit to the body.
    BadMerkle,
    /// Timestamp precedes the parent's.
    BadTimestamp,
    /// Too many transactions.
    TooManyTxs,
    /// Block already known.
    Duplicate,
    /// A transaction failed validation.
    TxInvalid(TxError),
}

/// Why a transaction is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// Signature check failed.
    BadSignature,
    /// Nonce does not match the account's next expected nonce.
    BadNonce {
        /// Expected account nonce.
        expected: u64,
        /// Nonce in the transaction.
        got: u64,
    },
    /// Balance insufficient for amount + fee.
    InsufficientFunds,
    /// Application payload exceeds the chain's size limit.
    PayloadTooBig,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}
impl std::error::Error for BlockError {}

/// Result of accepting a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accepted {
    /// Extended the best chain.
    ExtendedBest,
    /// Stored on a side branch (best chain unchanged).
    SideBranch,
    /// Triggered a reorganization; `depth` best-chain blocks were replaced.
    Reorg {
        /// Number of blocks disconnected from the old best chain.
        depth: u64,
    },
}

/// Account state at a chain tip.
#[derive(Clone, Debug, Default)]
pub struct ChainState {
    balances: HashMap<Hash256, u64>,
    nonces: HashMap<Hash256, u64>,
    /// txid → (height, block hash) on the main chain.
    tx_index: HashMap<Hash256, (u64, Hash256)>,
}

impl ChainState {
    /// Balance of an account (0 if unknown).
    pub fn balance(&self, account: &Hash256) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Next expected nonce for an account.
    pub fn nonce(&self, account: &Hash256) -> u64 {
        self.nonces.get(account).copied().unwrap_or(0)
    }

    /// Validate a transaction against this state (without applying it).
    pub fn validate_tx(&self, tx: &Transaction, params: &ChainParams) -> Result<(), TxError> {
        if tx.payload.payload_len() > params.max_payload_bytes {
            return Err(TxError::PayloadTooBig);
        }
        if !tx.verify_signature() {
            return Err(TxError::BadSignature);
        }
        let acct = tx.sender_account();
        let expected = self.nonce(&acct);
        if tx.nonce != expected {
            return Err(TxError::BadNonce {
                expected,
                got: tx.nonce,
            });
        }
        if self.balance(&acct) < tx.total_debit() {
            return Err(TxError::InsufficientFunds);
        }
        Ok(())
    }

    /// Apply a validated tx's nonce/balance effects without a containing
    /// block — used when building block templates from a mempool (fees and
    /// rewards don't matter there, only sequential validity).
    pub fn apply_tx_for_template(&mut self, tx: &Transaction) {
        let acct = tx.sender_account();
        *self.balances.entry(acct).or_insert(0) -= tx.total_debit();
        *self.nonces.entry(acct).or_insert(0) += 1;
        if let TxPayload::Transfer { to, amount } = &tx.payload {
            *self.balances.entry(*to).or_insert(0) += amount;
        }
    }

    fn apply_tx(&mut self, tx: &Transaction, miner: &Hash256) {
        let acct = tx.sender_account();
        *self.balances.entry(acct).or_insert(0) -= tx.total_debit();
        *self.nonces.entry(acct).or_insert(0) += 1;
        *self.balances.entry(*miner).or_insert(0) += tx.fee;
        if let TxPayload::Transfer { to, amount } = &tx.payload {
            *self.balances.entry(*to).or_insert(0) += amount;
        }
    }

    fn apply_block(&mut self, block: &Block, params: &ChainParams) -> Result<(), TxError> {
        for tx in &block.txs {
            self.validate_tx(tx, params)?;
            self.apply_tx(tx, &block.miner);
        }
        *self.balances.entry(block.miner).or_insert(0) += params.block_reward;
        let bh = block.hash();
        for tx in &block.txs {
            self.tx_index.insert(tx.id(), (block.header.height, bh));
        }
        Ok(())
    }
}

struct StoredBlock {
    block: Block,
    total_work: f64,
}

/// The ledger.
pub struct Ledger {
    params: ChainParams,
    genesis: Hash256,
    blocks: HashMap<Hash256, StoredBlock>,
    orphans: HashMap<Hash256, Vec<Block>>, // keyed by missing parent
    best_tip: Hash256,
    state: ChainState,
    premine: Vec<(Hash256, u64)>,
    /// Cumulative bytes of every block ever accepted (the paper's "endless
    /// ledger problem" metric — storage only grows, across all branches).
    pub total_ledger_bytes: u64,
}

const MAX_ORPHANS: usize = 256;

impl Ledger {
    /// Create a ledger with a deterministic genesis for `chain_tag` and an
    /// initial token allocation (the premine funds simulation accounts).
    pub fn new(chain_tag: &str, params: ChainParams, premine: &[(Hash256, u64)]) -> Ledger {
        let genesis = Block::genesis(chain_tag);
        let ghash = genesis.hash();
        let mut state = ChainState::default();
        for (acct, amount) in premine {
            *state.balances.entry(*acct).or_insert(0) += amount;
        }
        let total_ledger_bytes = genesis.wire_size();
        let mut blocks = HashMap::new();
        blocks.insert(
            ghash,
            StoredBlock {
                block: genesis,
                total_work: 0.0,
            },
        );
        Ledger {
            params,
            genesis: ghash,
            blocks,
            orphans: HashMap::new(),
            best_tip: ghash,
            state,
            premine: premine.to_vec(),
            total_ledger_bytes,
        }
    }

    /// Consensus parameters.
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// Genesis hash.
    pub fn genesis_hash(&self) -> Hash256 {
        self.genesis
    }

    /// Best tip hash.
    pub fn best_tip(&self) -> Hash256 {
        self.best_tip
    }

    /// Height of the best tip.
    pub fn best_height(&self) -> u64 {
        self.blocks[&self.best_tip].block.header.height
    }

    /// Look up a block by hash.
    pub fn block(&self, hash: &Hash256) -> Option<&Block> {
        self.blocks.get(hash).map(|s| &s.block)
    }

    /// Whether a block is known (main chain or side branch).
    pub fn contains(&self, hash: &Hash256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Account state at the best tip.
    pub fn state(&self) -> &ChainState {
        &self.state
    }

    /// The best-chain block hashes from genesis to tip.
    pub fn main_chain(&self) -> Vec<Hash256> {
        let mut chain = Vec::with_capacity(self.best_height() as usize + 1);
        let mut cur = self.best_tip;
        loop {
            chain.push(cur);
            if cur == self.genesis {
                break;
            }
            cur = self.blocks[&cur].block.header.prev;
        }
        chain.reverse();
        chain
    }

    /// Confirmations of a transaction on the best chain (1 = in tip block).
    /// `None` if not on the best chain.
    pub fn confirmations(&self, txid: &Hash256) -> Option<u64> {
        let (height, _) = self.state.tx_index.get(txid)?;
        Some(self.best_height() - height + 1)
    }

    /// Whether a transaction has reached the params' confirmation depth.
    pub fn is_confirmed(&self, txid: &Hash256) -> bool {
        self.confirmations(txid)
            .is_some_and(|c| c >= self.params.confirmation_depth)
    }

    /// All application transactions with `tag` on the best chain, in
    /// (height, intra-block) order, with their confirmation heights.
    pub fn app_txs(&self, tag: u32) -> Vec<(u64, Transaction)> {
        let mut out = Vec::new();
        for bh in self.main_chain() {
            let stored = &self.blocks[&bh];
            for tx in &stored.block.txs {
                if let TxPayload::App { tag: t, .. } = &tx.payload {
                    if *t == tag {
                        out.push((stored.block.header.height, tx.clone()));
                    }
                }
            }
        }
        out
    }

    /// Bytes of the current best chain (distinct from
    /// [`Ledger::total_ledger_bytes`], which never shrinks).
    pub fn main_chain_bytes(&self) -> u64 {
        self.main_chain()
            .iter()
            .map(|h| self.blocks[h].block.wire_size())
            .sum()
    }

    /// The difficulty consensus requires for a child of `parent`.
    pub fn next_difficulty(&self, parent: &Hash256) -> u32 {
        let Some(stored) = self.blocks.get(parent) else {
            return self.params.initial_difficulty_bits;
        };
        let child_height = stored.block.header.height + 1;
        let window = self.params.retarget_window;
        if child_height <= window || child_height % window != 0 {
            // Inherit: genesis children start at initial difficulty.
            if stored.block.header.height == 0 {
                return self.params.initial_difficulty_bits;
            }
            return stored.block.header.difficulty_bits;
        }
        // Retarget: compare the actual span of the last `window` blocks with
        // the target span; shift difficulty by the rounded log2 ratio,
        // clamped to ±2 bits per retarget and the params' absolute bounds.
        let mut ancestor = *parent;
        for _ in 0..window - 1 {
            ancestor = self.blocks[&ancestor].block.header.prev;
        }
        let newest = stored.block.header.time_micros as f64;
        let oldest = self.blocks[&ancestor].block.header.time_micros as f64;
        let actual = (newest - oldest).max(1.0);
        let expected = self.params.target_block_interval.micros() as f64 * (window - 1) as f64;
        let ratio = expected / actual; // >1 ⇒ blocks too fast ⇒ raise difficulty
        let shift = ratio.log2().round().clamp(-2.0, 2.0) as i64;
        let old = stored.block.header.difficulty_bits as i64;
        (old + shift).clamp(
            self.params.min_difficulty_bits as i64,
            self.params.max_difficulty_bits as i64,
        ) as u32
    }

    /// Validate and accept a block. Orphans (unknown parent) are parked and
    /// retried automatically when their parent arrives; the error is still
    /// returned so callers can request the parent.
    pub fn submit_block(&mut self, block: Block) -> Result<Accepted, BlockError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Err(BlockError::Duplicate);
        }
        let Some(parent) = self.blocks.get(&block.header.prev) else {
            if self.orphans.values().map(|v| v.len()).sum::<usize>() < MAX_ORPHANS {
                self.orphans
                    .entry(block.header.prev)
                    .or_default()
                    .push(block);
            }
            return Err(BlockError::UnknownParent);
        };

        // Header checks.
        if block.header.height != parent.block.header.height + 1 {
            return Err(BlockError::BadHeight);
        }
        if block.header.time_micros < parent.block.header.time_micros {
            return Err(BlockError::BadTimestamp);
        }
        let required = self.next_difficulty(&block.header.prev);
        if block.header.difficulty_bits != required {
            return Err(BlockError::WrongDifficulty {
                required,
                declared: block.header.difficulty_bits,
            });
        }
        if !block.header.meets_difficulty() {
            return Err(BlockError::BadPow);
        }
        if block.txs.len() > self.params.max_block_txs {
            return Err(BlockError::TooManyTxs);
        }
        if !block.merkle_valid() {
            return Err(BlockError::BadMerkle);
        }

        // Transaction validity against the branch state.
        let branch_state = if block.header.prev == self.best_tip {
            self.state.clone()
        } else {
            self.rebuild_state_at(&block.header.prev)
        };
        let mut new_state = branch_state;
        new_state
            .apply_block(&block, &self.params)
            .map_err(BlockError::TxInvalid)?;

        let total_work = self.blocks[&block.header.prev].total_work + block.header.work();
        self.total_ledger_bytes += block.wire_size();
        let extends_best = block.header.prev == self.best_tip;
        let old_best = self.best_tip;
        let old_chain_len = self.best_height();
        self.blocks.insert(hash, StoredBlock { block, total_work });

        let result = if extends_best {
            self.best_tip = hash;
            self.state = new_state;
            Ok(Accepted::ExtendedBest)
        } else if total_work > self.blocks[&old_best].total_work {
            // Reorg: measure how deep the old chain is abandoned.
            let fork_height = self.fork_point_height(&hash, &old_best);
            self.best_tip = hash;
            self.state = new_state;
            Ok(Accepted::Reorg {
                depth: old_chain_len - fork_height,
            })
        } else {
            Ok(Accepted::SideBranch)
        };

        // Un-orphan any children waiting on this block.
        if let Some(children) = self.orphans.remove(&hash) {
            for child in children {
                let _ = self.submit_block(child);
            }
        }
        result
    }

    /// Height of the common ancestor of two blocks.
    fn fork_point_height(&self, a: &Hash256, b: &Hash256) -> u64 {
        let (mut a, mut b) = (*a, *b);
        let mut ha = self.blocks[&a].block.header.height;
        let mut hb = self.blocks[&b].block.header.height;
        while ha > hb {
            a = self.blocks[&a].block.header.prev;
            ha -= 1;
        }
        while hb > ha {
            b = self.blocks[&b].block.header.prev;
            hb -= 1;
        }
        while a != b {
            a = self.blocks[&a].block.header.prev;
            b = self.blocks[&b].block.header.prev;
            ha -= 1;
        }
        ha
    }

    /// Rebuild account state from genesis along the branch ending at `tip`.
    fn rebuild_state_at(&self, tip: &Hash256) -> ChainState {
        let mut path = Vec::new();
        let mut cur = *tip;
        while cur != self.genesis {
            path.push(cur);
            cur = self.blocks[&cur].block.header.prev;
        }
        path.reverse();
        let mut state = ChainState::default();
        for (acct, amount) in &self.premine {
            *state.balances.entry(*acct).or_insert(0) += amount;
        }
        for h in path {
            state
                .apply_block(&self.blocks[&h].block, &self.params)
                .expect("stored blocks were validated on acceptance");
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::mine_block;
    use agora_crypto::{sha256, SimKeyPair};
    use agora_sim::SimRng;

    fn keys(name: &str) -> SimKeyPair {
        SimKeyPair::from_seed(name.as_bytes())
    }

    fn test_ledger() -> (Ledger, SimKeyPair) {
        let alice = keys("alice");
        let ledger = Ledger::new("test", ChainParams::test(), &[(alice.public().id(), 1000)]);
        (ledger, alice)
    }

    /// Mine a block of `txs` on top of `parent` and submit it.
    fn extend(
        ledger: &mut Ledger,
        parent: Hash256,
        miner: Hash256,
        txs: Vec<Transaction>,
        time: u64,
        rng: &mut SimRng,
    ) -> Result<Accepted, BlockError> {
        let bits = ledger.next_difficulty(&parent);
        let height = ledger.block(&parent).unwrap().header.height + 1;
        let (block, _hashes) = mine_block(parent, height, miner, txs, time, bits, rng);
        ledger.submit_block(block)
    }

    #[test]
    fn extend_best_chain() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(1);
        let miner = sha256(b"miner");
        let tip = ledger.best_tip();
        let r = extend(&mut ledger, tip, miner, vec![], 1_000_000, &mut rng).unwrap();
        assert_eq!(r, Accepted::ExtendedBest);
        assert_eq!(ledger.best_height(), 1);
        assert_eq!(ledger.state().balance(&miner), ledger.params().block_reward);
    }

    #[test]
    fn transfer_moves_funds_and_pays_fee() {
        let (mut ledger, alice) = test_ledger();
        let mut rng = SimRng::new(2);
        let miner = sha256(b"miner");
        let bob = keys("bob").public().id();
        let tx = Transaction::create(
            &alice,
            0,
            2,
            TxPayload::Transfer {
                to: bob,
                amount: 100,
            },
        );
        let txid = tx.id();
        let tip = ledger.best_tip();
        extend(&mut ledger, tip, miner, vec![tx], 1_000_000, &mut rng).unwrap();
        assert_eq!(ledger.state().balance(&bob), 100);
        assert_eq!(ledger.state().balance(&alice.public().id()), 898);
        assert_eq!(
            ledger.state().balance(&miner),
            ledger.params().block_reward + 2
        );
        assert_eq!(ledger.confirmations(&txid), Some(1));
    }

    #[test]
    fn rejects_bad_nonce_and_overdraft() {
        let (ledger, alice) = test_ledger();
        let bob = keys("bob").public().id();
        let bad_nonce =
            Transaction::create(&alice, 5, 1, TxPayload::Transfer { to: bob, amount: 1 });
        assert_eq!(
            ledger.state().validate_tx(&bad_nonce, ledger.params()),
            Err(TxError::BadNonce {
                expected: 0,
                got: 5
            })
        );
        let overdraft = Transaction::create(
            &alice,
            0,
            1,
            TxPayload::Transfer {
                to: bob,
                amount: 10_000,
            },
        );
        assert_eq!(
            ledger.state().validate_tx(&overdraft, ledger.params()),
            Err(TxError::InsufficientFunds)
        );
    }

    #[test]
    fn rejects_oversized_payload() {
        let (ledger, alice) = test_ledger();
        let huge = Transaction::create(
            &alice,
            0,
            1,
            TxPayload::App {
                tag: 1,
                data: vec![0; ledger.params().max_payload_bytes + 1],
            },
        );
        assert_eq!(
            ledger.state().validate_tx(&huge, ledger.params()),
            Err(TxError::PayloadTooBig)
        );
    }

    #[test]
    fn orphan_then_connect() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(3);
        let miner = sha256(b"miner");
        let tip = ledger.best_tip();
        // Mine two blocks privately, submit child first.
        let bits = ledger.next_difficulty(&tip);
        let (b1, _) = mine_block(tip, 1, miner, vec![], 1_000_000, bits, &mut rng);
        let (b2, _) = mine_block(b1.hash(), 2, miner, vec![], 2_000_000, bits, &mut rng);
        assert_eq!(ledger.submit_block(b2), Err(BlockError::UnknownParent));
        assert_eq!(ledger.submit_block(b1), Ok(Accepted::ExtendedBest));
        // b2 was un-orphaned automatically.
        assert_eq!(ledger.best_height(), 2);
    }

    #[test]
    fn reorg_adopts_heavier_branch() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(4);
        let honest = sha256(b"honest");
        let attacker = sha256(b"attacker");
        let genesis = ledger.best_tip();
        // Honest chain: 1 block.
        extend(&mut ledger, genesis, honest, vec![], 1_000_000, &mut rng).unwrap();
        assert_eq!(ledger.best_height(), 1);
        let honest_tip = ledger.best_tip();
        // Attacker branch from genesis: 2 blocks → heavier.
        let bits = ledger.next_difficulty(&genesis);
        let (a1, _) = mine_block(genesis, 1, attacker, vec![], 1_500_000, bits, &mut rng);
        let a1h = a1.hash();
        assert_eq!(ledger.submit_block(a1), Ok(Accepted::SideBranch));
        let bits2 = ledger.next_difficulty(&a1h);
        let (a2, _) = mine_block(a1h, 2, attacker, vec![], 2_000_000, bits2, &mut rng);
        match ledger.submit_block(a2) {
            Ok(Accepted::Reorg { depth }) => assert_eq!(depth, 1),
            other => panic!("expected reorg, got {other:?}"),
        }
        assert_eq!(ledger.best_height(), 2);
        assert_ne!(ledger.best_tip(), honest_tip);
        // Honest miner's reward was reorged away.
        assert_eq!(ledger.state().balance(&honest), 0);
        assert_eq!(
            ledger.state().balance(&attacker),
            2 * ledger.params().block_reward
        );
    }

    #[test]
    fn duplicate_rejected() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(5);
        let tip = ledger.best_tip();
        let bits = ledger.next_difficulty(&tip);
        let (b, _) = mine_block(tip, 1, sha256(b"m"), vec![], 1, bits, &mut rng);
        ledger.submit_block(b.clone()).unwrap();
        assert_eq!(ledger.submit_block(b), Err(BlockError::Duplicate));
    }

    #[test]
    fn wrong_difficulty_rejected() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(6);
        let tip = ledger.best_tip();
        let required = ledger.next_difficulty(&tip);
        let (b, _) = mine_block(tip, 1, sha256(b"m"), vec![], 1, required + 1, &mut rng);
        assert!(matches!(
            ledger.submit_block(b),
            Err(BlockError::WrongDifficulty { .. })
        ));
    }

    #[test]
    fn timestamp_must_not_go_backwards() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(7);
        let miner = sha256(b"m");
        let tip = ledger.best_tip();
        extend(&mut ledger, tip, miner, vec![], 5_000_000, &mut rng).unwrap();
        let tip2 = ledger.best_tip();
        let bits = ledger.next_difficulty(&tip2);
        let (b, _) = mine_block(tip2, 2, miner, vec![], 4_000_000, bits, &mut rng);
        assert_eq!(ledger.submit_block(b), Err(BlockError::BadTimestamp));
    }

    #[test]
    fn app_txs_in_order_and_ledger_grows() {
        let (mut ledger, alice) = test_ledger();
        let mut rng = SimRng::new(8);
        let miner = sha256(b"m");
        let before = ledger.total_ledger_bytes;
        for i in 0..3u64 {
            let tx = Transaction::create(
                &alice,
                i,
                1,
                TxPayload::App {
                    tag: 7,
                    data: vec![i as u8],
                },
            );
            let tip = ledger.best_tip();
            extend(
                &mut ledger,
                tip,
                miner,
                vec![tx],
                (i + 1) * 1_000_000,
                &mut rng,
            )
            .unwrap();
        }
        let app = ledger.app_txs(7);
        assert_eq!(app.len(), 3);
        assert_eq!(app[0].0, 1);
        assert_eq!(app[2].0, 3);
        assert!(ledger.app_txs(99).is_empty());
        assert!(ledger.total_ledger_bytes > before);
        assert!(ledger.main_chain_bytes() <= ledger.total_ledger_bytes);
    }

    #[test]
    fn retarget_raises_difficulty_when_blocks_too_fast() {
        let (mut ledger, _alice) = test_ledger();
        let mut rng = SimRng::new(9);
        let miner = sha256(b"m");
        // Mine a full retarget window with near-zero spacing (far faster than
        // the 1 s target of ChainParams::test()).
        let window = ledger.params().retarget_window;
        let initial = ledger.params().initial_difficulty_bits;
        // Two full windows so a retarget boundary (child_height % window == 0
        // with child_height > window) is actually crossed.
        for i in 1..=2 * window {
            let tip = ledger.best_tip();
            extend(&mut ledger, tip, miner, vec![], i * 10, &mut rng).unwrap();
        }
        let next = ledger.next_difficulty(&ledger.best_tip());
        assert!(
            next > initial,
            "difficulty should rise: {next} vs {initial}"
        );
        assert!(next <= initial + 2, "clamped to +2 per retarget");
    }

    #[test]
    fn confirmation_depth() {
        let (mut ledger, alice) = test_ledger();
        let mut rng = SimRng::new(10);
        let miner = sha256(b"m");
        let bob = keys("bob").public().id();
        let tx = Transaction::create(&alice, 0, 1, TxPayload::Transfer { to: bob, amount: 1 });
        let txid = tx.id();
        let tip = ledger.best_tip();
        extend(&mut ledger, tip, miner, vec![tx], 1_000_000, &mut rng).unwrap();
        assert!(!ledger.is_confirmed(&txid), "needs depth 2 in test params");
        let tip = ledger.best_tip();
        extend(&mut ledger, tip, miner, vec![], 2_000_000, &mut rng).unwrap();
        assert!(ledger.is_confirmed(&txid));
        assert_eq!(ledger.confirmations(&sha256(b"unknown")), None);
    }
}

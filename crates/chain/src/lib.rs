//! # agora-chain — blockchain substrate
//!
//! A complete simulated proof-of-work blockchain in the role the paper
//! assigns to blockchains: "a slow, but consistent and verifiable public
//! ledger" (§3.3) that naming systems and storage contracts ride on.
//!
//! * [`params`] — consensus parameters (block interval, difficulty bounds,
//!   payload limits — the paper's "limits on data storage").
//! * [`tx`] — account-model transactions; application payloads for naming
//!   and storage contracts.
//! * [`block`] — headers with real SHA-256 proof-of-work.
//! * [`ledger`] — validation, heaviest-work fork choice, reorgs, account
//!   state, and the endless-ledger growth metric.
//! * [`mining`] — honest grinding plus exponential block-time sampling.
//! * [`node`] — a full node as an `agora-sim` protocol: gossip, mempool,
//!   mining, outage recovery.
//! * [`spv`] — header-only light clients and Merkle inclusion proofs.
//! * [`attacks`] — the 51% double-spend race (checked against Nakamoto's
//!   closed form) and selfish mining (Eyal–Sirer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod block;
pub mod ledger;
pub mod mining;
pub mod node;
pub mod params;
pub mod spv;
pub mod tx;

pub use attacks::{double_spend_race, nakamoto_probability, selfish_mining};
pub use block::{Block, BlockHeader, PowMidstate};
pub use ledger::{Accepted, BlockError, ChainState, Ledger, TxError};
pub use mining::{mine_block, sample_mining_time};
pub use node::{ChainMsg, ChainNode, MinerConfig};
pub use params::ChainParams;
pub use spv::{InclusionProof, SpvClient, SpvError};
pub use tx::{Transaction, TxPayload, APP_NAMING, APP_STORAGE};

//! Proof-of-work mining.
//!
//! Blocks are mined by *really* grinding SHA-256 over the header nonce —
//! validation checks are honest — at simulator-scale difficulties (2^4–2^24
//! expected hashes) so host cost stays bounded. The returned hash count is
//! the energy proxy used by experiment E9 ("wasteful mining computation").

use agora_crypto::Hash256;
use agora_sim::SimRng;

use crate::block::{Block, BlockHeader};
use crate::tx::Transaction;

/// Mine a block on `parent` containing `txs`, stamped `time_micros`, at
/// `difficulty_bits`. Returns the valid block and the number of hash
/// attempts spent. The nonce search starts at a random offset so concurrent
/// miners find different solutions.
///
/// The grind runs over a [`crate::block::PowMidstate`]: the nonce-invariant
/// 97-byte header prefix is absorbed once, and each attempt costs one SHA-256
/// compression over a stack block — no per-nonce heap allocation or header
/// re-encoding. The nonce sequence, resulting block, and attempt count are
/// identical to the naive `meets_difficulty` loop (proved by test below).
pub fn mine_block(
    parent: Hash256,
    height: u64,
    miner: Hash256,
    txs: Vec<Transaction>,
    time_micros: u64,
    difficulty_bits: u32,
    rng: &mut SimRng,
) -> (Block, u64) {
    let merkle_root = Block::compute_merkle_root(&miner, &txs);
    let mut header = BlockHeader {
        height,
        prev: parent,
        merkle_root,
        time_micros,
        difficulty_bits,
        nonce: rng.next_u64(),
    };
    let mid = header.pow_midstate();
    let mut attempts = 1u64;
    while !mid.meets_difficulty(header.nonce, difficulty_bits) {
        header.nonce = header.nonce.wrapping_add(1);
        attempts += 1;
    }
    (Block { header, miner, txs }, attempts)
}

/// Sample the simulated time a miner with `hashrate` (hashes/sec of
/// simulated compute) takes to find a block at `difficulty_bits`.
/// Exponentially distributed, consistent with memoryless PoW.
pub fn sample_mining_time(
    difficulty_bits: u32,
    hashrate: f64,
    rng: &mut SimRng,
) -> agora_sim::SimDuration {
    let expected_hashes = 2f64.powi(difficulty_bits as i32);
    let mean_secs = expected_hashes / hashrate.max(1e-9);
    agora_sim::SimDuration::from_secs_f64(rng.exp(mean_secs).max(1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    #[test]
    fn mined_block_meets_difficulty() {
        let mut rng = SimRng::new(1);
        let (block, attempts) = mine_block(Hash256::ZERO, 1, sha256(b"m"), vec![], 0, 8, &mut rng);
        assert!(block.header.meets_difficulty());
        assert!(block.merkle_valid());
        assert!(attempts >= 1);
    }

    #[test]
    fn attempts_scale_with_difficulty() {
        let mut rng = SimRng::new(2);
        // Average over several trials: 12 bits should need ~16x the hashes
        // of 8 bits; allow generous slack for variance.
        let avg = |bits: u32, rng: &mut SimRng| -> f64 {
            let n = 20;
            let total: u64 = (0..n)
                .map(|i| mine_block(sha256(&[i as u8]), 1, sha256(b"m"), vec![], 0, bits, rng).1)
                .sum();
            total as f64 / n as f64
        };
        let easy = avg(6, &mut rng);
        let hard = avg(10, &mut rng);
        assert!(hard > 4.0 * easy, "easy {easy}, hard {hard}");
    }

    #[test]
    fn zero_difficulty_first_try() {
        let mut rng = SimRng::new(3);
        let (_, attempts) = mine_block(Hash256::ZERO, 1, sha256(b"m"), vec![], 0, 0, &mut rng);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn sample_mining_time_mean() {
        let mut rng = SimRng::new(4);
        // 2^10 hashes at 1024 h/s ⇒ mean 1 s.
        let n = 2000;
        let total: f64 = (0..n)
            .map(|_| sample_mining_time(10, 1024.0, &mut rng).secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    /// The pre-midstate reference implementation: re-encode and re-hash the
    /// whole header for every nonce. Kept only to prove equivalence.
    fn mine_block_reference(
        parent: Hash256,
        height: u64,
        miner: Hash256,
        txs: Vec<Transaction>,
        time_micros: u64,
        difficulty_bits: u32,
        rng: &mut SimRng,
    ) -> (Block, u64) {
        let merkle_root = Block::compute_merkle_root(&miner, &txs);
        let mut header = BlockHeader {
            height,
            prev: parent,
            merkle_root,
            time_micros,
            difficulty_bits,
            nonce: rng.next_u64(),
        };
        let mut attempts = 1u64;
        while !header.meets_difficulty() {
            header.nonce = header.nonce.wrapping_add(1);
            attempts += 1;
        }
        (Block { header, miner, txs }, attempts)
    }

    #[test]
    fn midstate_grind_is_bit_identical_to_reference() {
        // Same seed → same starting nonce → the midstate and reference loops
        // must agree on every hash, hence on the winning nonce, the block
        // hash, and the attempt count (E9's energy proxy, which feeds the
        // deterministic BENCH_harness.json artifact).
        for seed in 0..8u64 {
            for bits in [0u32, 4, 8, 10] {
                let mut r1 = SimRng::new(seed);
                let mut r2 = SimRng::new(seed);
                let (fast, fast_attempts) =
                    mine_block(sha256(b"p"), 3, sha256(b"m"), vec![], 77, bits, &mut r1);
                let (slow, slow_attempts) =
                    mine_block_reference(sha256(b"p"), 3, sha256(b"m"), vec![], 77, bits, &mut r2);
                assert_eq!(fast_attempts, slow_attempts, "seed {seed} bits {bits}");
                assert_eq!(fast.header, slow.header, "seed {seed} bits {bits}");
                assert_eq!(fast.hash(), slow.hash(), "seed {seed} bits {bits}");
            }
        }
    }

    #[test]
    fn different_rng_states_find_different_nonces() {
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(6);
        let (b1, _) = mine_block(Hash256::ZERO, 1, sha256(b"m"), vec![], 0, 4, &mut r1);
        let (b2, _) = mine_block(Hash256::ZERO, 1, sha256(b"m"), vec![], 0, 4, &mut r2);
        assert_ne!(b1.header.nonce, b2.header.nonce);
    }
}

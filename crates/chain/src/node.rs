//! A full node as a simulated protocol: block/tx gossip, mempool, mining.
//!
//! Every node carries its own [`Ledger`] replica; convergence happens through
//! flooding of blocks and transactions. Miners model hash power by sampling
//! exponential block-discovery times (scaled by difficulty and their
//! configured hashrate) and then *really* grinding a valid block when the
//! timer fires, so all validation stays honest.

use std::collections::{BTreeMap, HashSet};

use agora_crypto::Hash256;
use agora_sim::{Ctx, NodeId, Protocol};

use crate::block::Block;
use crate::ledger::{Accepted, BlockError, Ledger};
use crate::mining::{mine_block, sample_mining_time};
use crate::params::ChainParams;
use crate::tx::Transaction;

/// Wire messages of the chain protocol.
#[derive(Clone, Debug)]
pub enum ChainMsg {
    /// A full block (flooded).
    BlockMsg(Box<Block>),
    /// Request for a block by hash (used to fetch orphan parents).
    GetBlock(Hash256),
    /// A transaction (flooded).
    TxMsg(Box<Transaction>),
}

impl ChainMsg {
    fn wire_size(&self) -> u64 {
        match self {
            ChainMsg::BlockMsg(b) => b.wire_size(),
            ChainMsg::GetBlock(_) => 33,
            ChainMsg::TxMsg(t) => t.wire_size(),
        }
    }
}

/// Mining configuration for a node.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// Account credited with rewards.
    pub account: Hash256,
    /// Simulated hash rate (hashes per simulated second).
    pub hashrate: f64,
}

/// A chain full node (optionally mining).
pub struct ChainNode {
    ledger: Ledger,
    peers: Vec<NodeId>,
    mempool: BTreeMap<Hash256, Transaction>,
    seen_txs: HashSet<Hash256>,
    miner: Option<MinerConfig>,
    mining_epoch: u64,
}

impl ChainNode {
    /// Create a node with its own ledger replica.
    pub fn new(
        chain_tag: &str,
        params: ChainParams,
        premine: &[(Hash256, u64)],
        miner: Option<MinerConfig>,
    ) -> ChainNode {
        ChainNode {
            ledger: Ledger::new(chain_tag, params, premine),
            peers: Vec::new(),
            mempool: BTreeMap::new(),
            seen_txs: HashSet::new(),
            miner,
            mining_epoch: 0,
        }
    }

    /// Set the gossip peer list.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// This node's ledger replica.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Pending (unconfirmed) transaction count.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Submit a locally-created transaction: validate, pool, flood.
    /// Returns false if it failed stateless/stateful validation.
    pub fn submit_tx(&mut self, ctx: &mut Ctx<'_, ChainMsg>, tx: Transaction) -> bool {
        // Future nonces are admissible: they queue in the mempool until the
        // account's earlier transactions confirm (template building applies
        // them in nonce order).
        match self.ledger.state().validate_tx(&tx, self.ledger.params()) {
            Ok(()) => {}
            Err(crate::ledger::TxError::BadNonce { expected, got }) if got > expected => {}
            Err(_) => return false,
        }
        let id = tx.id();
        if !self.seen_txs.insert(id) {
            return false;
        }
        self.mempool.insert(id, tx.clone());
        self.flood(ctx, ChainMsg::TxMsg(Box::new(tx)));
        true
    }

    fn flood(&self, ctx: &mut Ctx<'_, ChainMsg>, msg: ChainMsg) {
        let size = msg.wire_size();
        for &p in &self.peers {
            if p != ctx.id() {
                ctx.send(p, msg.clone(), size);
            }
        }
    }

    /// (Re)start the mining clock for the current tip.
    fn schedule_mining(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let Some(miner) = &self.miner else { return };
        self.mining_epoch += 1;
        let bits = self.ledger.next_difficulty(&self.ledger.best_tip());
        let delay = sample_mining_time(bits, miner.hashrate, ctx.rng());
        ctx.set_timer(delay, self.mining_epoch);
    }

    /// Pull a valid transaction set from the mempool, highest fee first
    /// (the fee market: this is what makes front-running priority *buyable*
    /// on chains without preorders — experiment E2). Repeated passes let
    /// lower-fee transactions whose nonces depend on higher-fee ones still
    /// enter the same block.
    fn block_template(&self) -> Vec<Transaction> {
        let mut state = self.ledger.state().clone();
        let mut candidates: Vec<&Transaction> = self.mempool.values().collect();
        // Fee descending; txid as a deterministic tiebreak.
        candidates.sort_by(|a, b| b.fee.cmp(&a.fee).then(a.id().cmp(&b.id())));
        let mut txs = Vec::new();
        let mut included = vec![false; candidates.len()];
        loop {
            let mut progressed = false;
            for (i, tx) in candidates.iter().enumerate() {
                if included[i] || txs.len() >= self.ledger.params().max_block_txs {
                    continue;
                }
                if state.validate_tx(tx, self.ledger.params()).is_ok() {
                    state.apply_tx_for_template(tx);
                    txs.push((*tx).clone());
                    included[i] = true;
                    progressed = true;
                }
            }
            if !progressed || txs.len() >= self.ledger.params().max_block_txs {
                break;
            }
        }
        txs
    }

    fn accept_block(&mut self, ctx: &mut Ctx<'_, ChainMsg>, block: Block, from: Option<NodeId>) {
        let hash = block.hash();
        if self.ledger.contains(&hash) {
            return;
        }
        let prev = block.header.prev;
        match self.ledger.submit_block(block.clone()) {
            Ok(accepted) => {
                ctx.metrics().incr("chain.blocks_accepted", 1);
                if let Accepted::Reorg { depth } = accepted {
                    ctx.metrics().incr("chain.reorgs", 1);
                    ctx.metrics().sample("chain.reorg_depth", depth as f64);
                }
                // Drop included txs from the mempool.
                for tx in &block.txs {
                    self.mempool.remove(&tx.id());
                }
                self.flood(ctx, ChainMsg::BlockMsg(Box::new(block)));
                // Tip (possibly) moved: restart mining.
                self.schedule_mining(ctx);
            }
            Err(BlockError::UnknownParent) => {
                ctx.metrics().incr("chain.orphans", 1);
                if let Some(from) = from {
                    ctx.send(from, ChainMsg::GetBlock(prev), 33);
                }
            }
            Err(_) => {
                ctx.metrics().incr("chain.blocks_rejected", 1);
            }
        }
    }
}

impl Protocol for ChainNode {
    type Msg = ChainMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        self.schedule_mining(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ChainMsg>, from: NodeId, msg: ChainMsg) {
        match msg {
            ChainMsg::BlockMsg(block) => self.accept_block(ctx, *block, Some(from)),
            ChainMsg::GetBlock(hash) => {
                if let Some(block) = self.ledger.block(&hash) {
                    let msg = ChainMsg::BlockMsg(Box::new(block.clone()));
                    let size = msg.wire_size();
                    ctx.send(from, msg, size);
                }
            }
            ChainMsg::TxMsg(tx) => {
                let id = tx.id();
                if self.seen_txs.insert(id) && tx.verify_signature() {
                    self.mempool.insert(id, *tx.clone());
                    self.flood(ctx, ChainMsg::TxMsg(tx));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ChainMsg>, tag: u64) {
        // Stale mining epoch ⇒ tip changed since this timer was armed.
        if tag != self.mining_epoch {
            return;
        }
        let Some(miner) = self.miner.clone() else {
            return;
        };
        let parent = self.ledger.best_tip();
        let height = self.ledger.best_height() + 1;
        let bits = self.ledger.next_difficulty(&parent);
        let txs = self.block_template();
        let (block, hashes) = mine_block(
            parent,
            height,
            miner.account,
            txs,
            ctx.now().micros(),
            bits,
            ctx.rng(),
        );
        ctx.metrics().incr("chain.hashes_ground", hashes);
        ctx.metrics().incr("chain.blocks_mined", 1);
        ctx.metrics()
            .incr("chain.energy_proxy_hashes", 2u64.saturating_pow(bits));
        self.accept_block(ctx, block, None);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        // After an outage, ask peers for their tip's ancestry by re-flooding
        // our tip; peers respond with anything we're missing via orphan
        // fetch. Simplest robust resync: request nothing, restart mining —
        // incoming blocks will resync us (flooding is continuous).
        self.schedule_mining(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxPayload;
    use agora_crypto::{sha256, SimKeyPair};
    use agora_sim::{DeviceClass, SimDuration, Simulation};

    fn build_net(
        n_nodes: usize,
        n_miners: usize,
        premine: &[(Hash256, u64)],
        seed: u64,
    ) -> (Simulation<ChainNode>, Vec<NodeId>) {
        let params = ChainParams::test();
        let mut sim = Simulation::new(seed);
        let mut ids = Vec::new();
        for i in 0..n_nodes {
            let miner = if i < n_miners {
                Some(MinerConfig {
                    account: sha256(format!("miner-{i}").as_bytes()),
                    hashrate: 64.0, // ~2^4/64 = 0.25 s per block at 4 bits
                })
            } else {
                None
            };
            let node = ChainNode::new("test", params.clone(), premine, miner);
            ids.push(sim.add_node(node, DeviceClass::DatacenterServer));
        }
        // Full mesh.
        for &id in &ids {
            let peers = ids.clone();
            sim.node_mut(id).set_peers(peers);
        }
        (sim, ids)
    }

    #[test]
    fn single_miner_grows_chain() {
        let (mut sim, ids) = build_net(3, 1, &[], 42);
        sim.run_for(SimDuration::from_secs(30));
        let h0 = sim.node(ids[0]).ledger().best_height();
        assert!(h0 >= 3, "miner should have produced blocks, got {h0}");
        // All replicas converge to the same tip.
        let tip = sim.node(ids[0]).ledger().best_tip();
        for &id in &ids[1..] {
            assert_eq!(sim.node(id).ledger().best_tip(), tip);
        }
    }

    #[test]
    fn competing_miners_converge() {
        let (mut sim, ids) = build_net(4, 2, &[], 43);
        sim.run_for(SimDuration::from_secs(60));
        let tip = sim.node(ids[0]).ledger().best_tip();
        for &id in &ids[1..] {
            assert_eq!(sim.node(id).ledger().best_tip(), tip, "replicas diverged");
        }
        assert!(sim.node(ids[0]).ledger().best_height() >= 5);
    }

    #[test]
    fn transaction_reaches_confirmation() {
        let alice = SimKeyPair::from_seed(b"alice");
        let bob = SimKeyPair::from_seed(b"bob").public().id();
        let premine = vec![(alice.public().id(), 1000)];
        let (mut sim, ids) = build_net(3, 1, &premine, 44);
        sim.run_for(SimDuration::from_secs(2));
        let tx = Transaction::create(
            &alice,
            0,
            1,
            TxPayload::Transfer {
                to: bob,
                amount: 10,
            },
        );
        let txid = tx.id();
        // Submit at a non-miner node.
        let ok = sim
            .with_ctx(ids[2], |node, ctx| node.submit_tx(ctx, tx))
            .unwrap();
        assert!(ok);
        sim.run_for(SimDuration::from_secs(30));
        let node0 = sim.node(ids[0]);
        assert!(
            node0.ledger().is_confirmed(&txid),
            "tx should confirm; height={} conf={:?}",
            node0.ledger().best_height(),
            node0.ledger().confirmations(&txid)
        );
        assert_eq!(node0.ledger().state().balance(&bob), 10);
    }

    #[test]
    fn invalid_tx_rejected_at_submission() {
        let alice = SimKeyPair::from_seed(b"alice");
        let bob = SimKeyPair::from_seed(b"bob").public().id();
        let (mut sim, ids) = build_net(2, 1, &[], 45); // no premine ⇒ no funds
        sim.run_for(SimDuration::from_secs(1));
        let tx = Transaction::create(
            &alice,
            0,
            1,
            TxPayload::Transfer {
                to: bob,
                amount: 10,
            },
        );
        let ok = sim
            .with_ctx(ids[1], |node, ctx| node.submit_tx(ctx, tx))
            .unwrap();
        assert!(!ok);
    }

    #[test]
    fn node_recovers_after_outage() {
        let (mut sim, ids) = build_net(3, 1, &[], 46);
        sim.run_for(SimDuration::from_secs(10));
        sim.kill(ids[2]);
        sim.run_for(SimDuration::from_secs(20));
        sim.revive(ids[2]);
        sim.run_for(SimDuration::from_secs(30));
        // The revived node catches up through continuing block floods plus
        // orphan-parent fetches.
        let tip = sim.node(ids[0]).ledger().best_tip();
        assert_eq!(sim.node(ids[2]).ledger().best_tip(), tip);
    }

    #[test]
    fn higher_fees_win_scarce_block_space() {
        // Block space of 2 txs; three independent senders bid different
        // fees; the template takes the two highest.
        let users: Vec<SimKeyPair> = (0..3)
            .map(|i| SimKeyPair::from_seed(format!("fee-{i}").as_bytes()))
            .collect();
        let premine: Vec<(Hash256, u64)> = users.iter().map(|k| (k.public().id(), 1000)).collect();
        let mut params = ChainParams::test();
        params.max_block_txs = 2;
        let mut node = ChainNode::new("fees", params, &premine, None);
        let mut sim: Simulation<ChainNode> = Simulation::new(77);
        // Use a standalone sim node just to get a Ctx for submissions.
        let id = sim.add_node(
            ChainNode::new("fees", ChainParams::test(), &premine, None),
            DeviceClass::DatacenterServer,
        );
        let fees = [1u64, 9, 5];
        for (u, &fee) in users.iter().zip(&fees) {
            let tx = Transaction::create(
                u,
                0,
                fee,
                TxPayload::Transfer {
                    to: sha256(b"sink"),
                    amount: 1,
                },
            );
            // Insert directly into the template-building node's mempool.
            sim.with_ctx(id, |_, ctx| {
                let _ = ctx; // ctx unused; direct mempool insert below
            });
            node.mempool.insert(tx.id(), tx);
        }
        let template = node.block_template();
        assert_eq!(template.len(), 2);
        assert_eq!(template[0].fee, 9);
        assert_eq!(template[1].fee, 5);
    }

    #[test]
    fn nonce_chains_survive_fee_ordering() {
        // One sender with nonces 0..3 at *ascending* fees: fee ordering
        // alone would try nonce 3 first; the multi-pass template must still
        // include all four in nonce order.
        let alice = SimKeyPair::from_seed(b"fee-chain");
        let premine = vec![(alice.public().id(), 1000)];
        let mut node = ChainNode::new("fees2", ChainParams::test(), &premine, None);
        for nonce in 0..4u64 {
            let tx = Transaction::create(
                &alice,
                nonce,
                1 + nonce, // later nonces pay more
                TxPayload::Transfer {
                    to: sha256(b"sink"),
                    amount: 1,
                },
            );
            node.mempool.insert(tx.id(), tx);
        }
        let template = node.block_template();
        assert_eq!(template.len(), 4);
        let nonces: Vec<u64> = template.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2, 3]);
    }

    #[test]
    fn energy_proxy_accumulates() {
        let (mut sim, _ids) = build_net(2, 1, &[], 47);
        sim.run_for(SimDuration::from_secs(20));
        assert!(sim.metrics().counter("chain.hashes_ground") > 0);
        assert!(sim.metrics().counter("chain.blocks_mined") > 0);
    }
}

//! Consensus parameters.

use agora_sim::SimDuration;

/// Tunable consensus parameters of a simulated chain.
///
/// Defaults give a Namecoin-flavoured chain scaled for simulation: 10-minute
/// blocks, low absolute difficulty (so proof-of-work is *really* ground with
/// SHA-256 but stays cheap on the host), periodic retargeting.
#[derive(Clone, Debug)]
pub struct ChainParams {
    /// Desired interval between blocks.
    pub target_block_interval: SimDuration,
    /// Initial PoW difficulty in leading zero bits of the block hash.
    pub initial_difficulty_bits: u32,
    /// Lower clamp for retargeting.
    pub min_difficulty_bits: u32,
    /// Upper clamp for retargeting (keeps host-side grinding affordable).
    pub max_difficulty_bits: u32,
    /// Blocks per retarget window.
    pub retarget_window: u64,
    /// Coinbase reward per block (in the chain's native token).
    pub block_reward: u64,
    /// Maximum transactions per block (excluding coinbase).
    pub max_block_txs: usize,
    /// Maximum bytes of application payload per transaction (the paper notes
    /// blockchains impose "limits on data storage" — this is that limit).
    pub max_payload_bytes: usize,
    /// Blocks of depth before a transaction is considered confirmed.
    pub confirmation_depth: u64,
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams {
            target_block_interval: SimDuration::from_mins(10),
            initial_difficulty_bits: 12,
            min_difficulty_bits: 4,
            max_difficulty_bits: 24,
            retarget_window: 16,
            block_reward: 50,
            max_block_txs: 256,
            max_payload_bytes: 4096,
            confirmation_depth: 6,
        }
    }
}

impl ChainParams {
    /// A fast-confirming test chain: 1-second blocks, trivial difficulty.
    pub fn test() -> ChainParams {
        ChainParams {
            target_block_interval: SimDuration::from_secs(1),
            initial_difficulty_bits: 4,
            min_difficulty_bits: 1,
            max_difficulty_bits: 16,
            retarget_window: 8,
            confirmation_depth: 2,
            ..ChainParams::default()
        }
    }

    /// Expected hash attempts to find one block at `bits` difficulty.
    pub fn expected_hashes(bits: u32) -> f64 {
        2f64.powi(bits as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let p = ChainParams::default();
        assert!(p.min_difficulty_bits <= p.initial_difficulty_bits);
        assert!(p.initial_difficulty_bits <= p.max_difficulty_bits);
        assert!(p.retarget_window > 0);
        assert!(p.confirmation_depth > 0);
    }

    #[test]
    fn expected_hashes_doubles_per_bit() {
        assert_eq!(ChainParams::expected_hashes(10), 1024.0);
        assert_eq!(
            ChainParams::expected_hashes(11),
            2.0 * ChainParams::expected_hashes(10)
        );
    }
}

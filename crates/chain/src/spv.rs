//! Simplified Payment Verification: header-only clients and inclusion proofs.
//!
//! The paper's naming discussion assumes light clients can verify name
//! records without storing the chain; this module provides that: an
//! [`SpvClient`] tracks the header chain (validating continuity and PoW, not
//! transactions), and an [`InclusionProof`] ties a transaction id to a header
//! via the block's Merkle root.

use agora_crypto::{Hash256, MerkleProof};

use crate::block::{Block, BlockHeader};
use crate::ledger::Ledger;

/// Proof that a transaction is included in a specific block.
#[derive(Clone, Debug)]
pub struct InclusionProof {
    /// The containing block's header.
    pub header: BlockHeader,
    /// Merkle path from the transaction id to the header's root.
    pub merkle: MerkleProof,
}

impl InclusionProof {
    /// Build a proof for `txid` from a full node's ledger.
    /// `None` if the transaction is not on the best chain.
    pub fn build(ledger: &Ledger, txid: &Hash256) -> Option<InclusionProof> {
        // Locate the block containing the tx on the main chain.
        for bh in ledger.main_chain() {
            let block = ledger.block(&bh).expect("main chain block");
            if let Some(pos) = block.txs.iter().position(|t| &t.id() == txid) {
                // Leaves are [miner, tx0, tx1, ...]; see Block::compute_merkle_root.
                let mut leaves = vec![block.miner];
                leaves.extend(block.txs.iter().map(|t| t.id()));
                let tree = agora_crypto::MerkleTree::from_leaf_hashes(leaves);
                return Some(InclusionProof {
                    header: block.header.clone(),
                    merkle: tree.prove(pos + 1).expect("position in range"),
                });
            }
        }
        None
    }

    /// Verify the Merkle linkage (header trust is the [`SpvClient`]'s job).
    pub fn verify(&self, txid: &Hash256) -> bool {
        self.header.meets_difficulty() && self.merkle.verify(*txid, self.header.merkle_root)
    }

    /// Wire size for message accounting.
    pub fn wire_size(&self) -> u64 {
        BlockHeader::WIRE_SIZE + self.merkle.wire_size()
    }
}

/// A header-only light client.
pub struct SpvClient {
    headers: Vec<BlockHeader>,
}

/// Errors from feeding headers to an [`SpvClient`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpvError {
    /// Header does not link to our current tip.
    Discontinuous,
    /// Header hash fails its declared difficulty.
    BadPow,
}

impl SpvClient {
    /// Start from a trusted genesis block.
    pub fn new(genesis: &Block) -> SpvClient {
        SpvClient {
            headers: vec![genesis.header.clone()],
        }
    }

    /// Current best height.
    pub fn height(&self) -> u64 {
        self.headers.len() as u64 - 1
    }

    /// Append the next header (must extend the current tip).
    pub fn add_header(&mut self, header: BlockHeader) -> Result<(), SpvError> {
        let tip = self.headers.last().expect("genesis present");
        if header.prev != tip.hash() || header.height != tip.height + 1 {
            return Err(SpvError::Discontinuous);
        }
        if !header.meets_difficulty() {
            return Err(SpvError::BadPow);
        }
        self.headers.push(header);
        Ok(())
    }

    /// Sync all missing headers from a full node's main chain.
    pub fn sync_from(&mut self, ledger: &Ledger) -> usize {
        let chain = ledger.main_chain();
        let mut added = 0;
        for bh in chain.iter().skip(self.headers.len()) {
            let header = ledger.block(bh).expect("main chain").header.clone();
            if self.add_header(header).is_ok() {
                added += 1;
            } else {
                break;
            }
        }
        added
    }

    /// Verify a transaction inclusion proof against the tracked header chain,
    /// requiring `min_confirmations` headers on top.
    pub fn verify_inclusion(
        &self,
        txid: &Hash256,
        proof: &InclusionProof,
        min_confirmations: u64,
    ) -> bool {
        let h = proof.header.height as usize;
        let Some(known) = self.headers.get(h) else {
            return false;
        };
        if known.hash() != proof.header.hash() {
            return false; // proof is for a block not on our best chain
        }
        if self.height() - proof.header.height + 1 < min_confirmations {
            return false;
        }
        proof.verify(txid)
    }

    /// Total storage the light client needs (bytes of headers), versus a full
    /// node's ledger — the quantitative version of "SPV is cheap".
    pub fn storage_bytes(&self) -> u64 {
        self.headers.len() as u64 * BlockHeader::WIRE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Accepted;
    use crate::mining::mine_block;
    use crate::params::ChainParams;
    use crate::tx::{Transaction, TxPayload};
    use agora_crypto::{sha256, SimKeyPair};
    use agora_sim::SimRng;

    fn build_chain(n_blocks: usize) -> (Ledger, Hash256) {
        let alice = SimKeyPair::from_seed(b"alice");
        let mut ledger = Ledger::new(
            "spv-test",
            ChainParams::test(),
            &[(alice.public().id(), 1000)],
        );
        let mut rng = SimRng::new(7);
        let miner = sha256(b"miner");
        let mut txid = Hash256::ZERO;
        for i in 0..n_blocks {
            let txs = if i == 1 {
                let tx = Transaction::create(
                    &alice,
                    0,
                    1,
                    TxPayload::Transfer {
                        to: sha256(b"bob"),
                        amount: 5,
                    },
                );
                txid = tx.id();
                vec![tx]
            } else {
                vec![]
            };
            let parent = ledger.best_tip();
            let bits = ledger.next_difficulty(&parent);
            let (block, _) = mine_block(
                parent,
                i as u64 + 1,
                miner,
                txs,
                (i as u64 + 1) * 1_000_000,
                bits,
                &mut rng,
            );
            assert_eq!(ledger.submit_block(block).unwrap(), Accepted::ExtendedBest);
        }
        (ledger, txid)
    }

    #[test]
    fn sync_and_verify_inclusion() {
        let (ledger, txid) = build_chain(5);
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        assert_eq!(spv.sync_from(&ledger), 5);
        assert_eq!(spv.height(), 5);
        let proof = InclusionProof::build(&ledger, &txid).expect("tx on chain");
        assert!(spv.verify_inclusion(&txid, &proof, 2));
        // Too-strict confirmation requirement fails.
        assert!(!spv.verify_inclusion(&txid, &proof, 100));
        // Wrong txid fails.
        assert!(!spv.verify_inclusion(&sha256(b"other"), &proof, 1));
    }

    #[test]
    fn discontinuous_header_rejected() {
        let (ledger, _) = build_chain(3);
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        // Skip a header: height-2 header against genesis tip.
        let chain = ledger.main_chain();
        let h2 = ledger.block(&chain[2]).unwrap().header.clone();
        assert_eq!(spv.add_header(h2), Err(SpvError::Discontinuous));
    }

    #[test]
    fn fake_pow_header_rejected() {
        let (ledger, _) = build_chain(1);
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        let chain = ledger.main_chain();
        let mut h1 = ledger.block(&chain[1]).unwrap().header.clone();
        h1.nonce = h1.nonce.wrapping_add(1); // almost surely breaks PoW at 4 bits
        if !h1.meets_difficulty() {
            assert_eq!(spv.add_header(h1), Err(SpvError::BadPow));
        }
    }

    #[test]
    fn proof_not_found_for_unknown_tx() {
        let (ledger, _) = build_chain(3);
        assert!(InclusionProof::build(&ledger, &sha256(b"missing")).is_none());
    }

    #[test]
    fn spv_storage_much_smaller_than_ledger() {
        let (ledger, _) = build_chain(10);
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        spv.sync_from(&ledger);
        assert!(spv.storage_bytes() < ledger.main_chain_bytes());
    }
}

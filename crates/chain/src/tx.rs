//! Transactions: value transfers and application payloads.
//!
//! The chain is an account-model ledger (balances + nonces). Application
//! layers (naming, storage contracts) ride in [`TxPayload::App`] with an
//! opaque byte body and a numeric tag identifying the application; the chain
//! orders and timestamps them but does not interpret them — exactly the
//! "slow but consistent and verifiable public ledger" role the paper assigns
//! to blockchains.

use agora_crypto::{Enc, Hash256, SimKeyPair, SimPublicKey, SimSignature, SIG_WIRE_SIZE};

/// Application tag for naming operations (see `agora-naming`).
pub const APP_NAMING: u32 = 1;
/// Application tag for storage contracts (see `agora-storage`).
pub const APP_STORAGE: u32 = 2;

/// What a transaction does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxPayload {
    /// Move `amount` tokens to `to` (an account = public key fingerprint).
    Transfer {
        /// Receiving account.
        to: Hash256,
        /// Token amount.
        amount: u64,
    },
    /// Carry opaque application data (name ops, storage contracts, ...).
    App {
        /// Application identifier ([`APP_NAMING`], [`APP_STORAGE`], ...).
        tag: u32,
        /// Application-encoded body.
        data: Vec<u8>,
    },
}

impl TxPayload {
    fn encode(&self) -> Vec<u8> {
        match self {
            TxPayload::Transfer { to, amount } => Enc::new().u8(0).hash(to).u64(*amount).done(),
            TxPayload::App { tag, data } => Enc::new().u8(1).u32(*tag).bytes(data).done(),
        }
    }

    /// Size of the application body (0 for transfers).
    pub fn payload_len(&self) -> usize {
        match self {
            TxPayload::Transfer { .. } => 0,
            TxPayload::App { data, .. } => data.len(),
        }
    }
}

/// A signed transaction.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Sender's public key (the account is its fingerprint).
    pub sender: SimPublicKey,
    /// Sender's transaction counter; must equal the account's current nonce.
    pub nonce: u64,
    /// Miner fee.
    pub fee: u64,
    /// What the transaction does.
    pub payload: TxPayload,
    /// Signature over the canonical encoding of the above.
    pub signature: SimSignature,
}

impl Transaction {
    /// Build and sign a transaction.
    pub fn create(keys: &SimKeyPair, nonce: u64, fee: u64, payload: TxPayload) -> Transaction {
        let sender = keys.public();
        let body = Self::signing_bytes(&sender, nonce, fee, &payload);
        Transaction {
            sender,
            nonce,
            fee,
            payload,
            signature: keys.sign(&body),
        }
    }

    fn signing_bytes(sender: &SimPublicKey, nonce: u64, fee: u64, payload: &TxPayload) -> Vec<u8> {
        Enc::new()
            .hash(&sender.id())
            .u64(nonce)
            .u64(fee)
            .bytes(&payload.encode())
            .done()
    }

    /// Transaction id: hash of the canonical encoding.
    pub fn id(&self) -> Hash256 {
        agora_crypto::tagged_hash(
            "tx",
            &Self::signing_bytes(&self.sender, self.nonce, self.fee, &self.payload),
        )
    }

    /// Check the signature.
    pub fn verify_signature(&self) -> bool {
        let body = Self::signing_bytes(&self.sender, self.nonce, self.fee, &self.payload);
        self.sender.verify(&body, &self.signature)
    }

    /// Sending account.
    pub fn sender_account(&self) -> Hash256 {
        self.sender.id()
    }

    /// Tokens leaving the sender's account (amount + fee).
    pub fn total_debit(&self) -> u64 {
        let amount = match &self.payload {
            TxPayload::Transfer { amount, .. } => *amount,
            TxPayload::App { .. } => 0,
        };
        amount.saturating_add(self.fee)
    }

    /// Wire/ledger size in bytes (canonical encoding + signature).
    pub fn wire_size(&self) -> u64 {
        Self::signing_bytes(&self.sender, self.nonce, self.fee, &self.payload).len() as u64
            + SIG_WIRE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(name: &str) -> SimKeyPair {
        SimKeyPair::from_seed(name.as_bytes())
    }

    #[test]
    fn create_and_verify() {
        let k = keys("alice");
        let tx = Transaction::create(
            &k,
            0,
            1,
            TxPayload::Transfer {
                to: keys("bob").public().id(),
                amount: 10,
            },
        );
        assert!(tx.verify_signature());
        assert_eq!(tx.total_debit(), 11);
    }

    #[test]
    fn tampering_invalidates_signature() {
        let k = keys("alice");
        let mut tx = Transaction::create(
            &k,
            0,
            1,
            TxPayload::Transfer {
                to: keys("bob").public().id(),
                amount: 10,
            },
        );
        tx.fee = 0;
        assert!(!tx.verify_signature());
    }

    #[test]
    fn ids_unique_per_content() {
        let k = keys("alice");
        let t1 = Transaction::create(
            &k,
            0,
            1,
            TxPayload::App {
                tag: APP_NAMING,
                data: vec![1],
            },
        );
        let t2 = Transaction::create(
            &k,
            1,
            1,
            TxPayload::App {
                tag: APP_NAMING,
                data: vec![1],
            },
        );
        let t3 = Transaction::create(
            &k,
            0,
            1,
            TxPayload::App {
                tag: APP_NAMING,
                data: vec![2],
            },
        );
        assert_ne!(t1.id(), t2.id());
        assert_ne!(t1.id(), t3.id());
        // Same content ⇒ same id (deterministic signing).
        let t4 = Transaction::create(
            &k,
            0,
            1,
            TxPayload::App {
                tag: APP_NAMING,
                data: vec![1],
            },
        );
        assert_eq!(t1.id(), t4.id());
    }

    #[test]
    fn app_payload_debits_only_fee() {
        let k = keys("alice");
        let tx = Transaction::create(
            &k,
            0,
            3,
            TxPayload::App {
                tag: APP_STORAGE,
                data: vec![0u8; 100],
            },
        );
        assert_eq!(tx.total_debit(), 3);
        assert_eq!(tx.payload.payload_len(), 100);
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let k = keys("alice");
        let small = Transaction::create(
            &k,
            0,
            1,
            TxPayload::App {
                tag: 1,
                data: vec![0; 10],
            },
        );
        let big = Transaction::create(
            &k,
            0,
            1,
            TxPayload::App {
                tag: 1,
                data: vec![0; 1000],
            },
        );
        assert!(big.wire_size() > small.wire_size() + 900);
    }

    #[test]
    fn forged_sender_fails() {
        let alice = keys("alice");
        let mallory = keys("mallory");
        // Mallory signs a tx but claims Alice as sender.
        let payload = TxPayload::Transfer {
            to: mallory.public().id(),
            amount: 100,
        };
        let body = Transaction::signing_bytes(&alice.public(), 0, 1, &payload);
        let tx = Transaction {
            sender: alice.public(),
            nonce: 0,
            fee: 1,
            payload,
            signature: mallory.sign(&body),
        };
        assert!(!tx.verify_signature());
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the chain: ledger invariants under arbitrary
//! valid histories, and order-independence of replica convergence.

use agora_chain::{mine_block, Accepted, Block, ChainParams, Ledger, Transaction, TxPayload};
use agora_crypto::{sha256, Hash256, SimKeyPair};
use agora_sim::SimRng;
use proptest::prelude::*;

/// Build a random but *valid* chain of `n` blocks over `n_accounts` premined
/// accounts, with random transfers, returning the blocks in order.
fn build_blocks(
    n: usize,
    n_accounts: usize,
    seed: u64,
) -> (Vec<Block>, Vec<SimKeyPair>, Vec<(Hash256, u64)>) {
    let keys: Vec<SimKeyPair> = (0..n_accounts)
        .map(|i| SimKeyPair::from_seed(format!("prop-{i}").as_bytes()))
        .collect();
    let premine: Vec<(Hash256, u64)> = keys.iter().map(|k| (k.public().id(), 1000)).collect();
    let mut ledger = Ledger::new("prop", ChainParams::test(), &premine);
    let mut rng = SimRng::new(seed);
    let mut nonces = vec![0u64; n_accounts];
    let mut blocks = Vec::new();
    for h in 1..=n as u64 {
        let mut txs = Vec::new();
        let n_txs = rng.below(4);
        for _ in 0..n_txs {
            let s = rng.below_usize(n_accounts);
            let r = rng.below_usize(n_accounts);
            let tx = Transaction::create(
                &keys[s],
                nonces[s],
                1,
                TxPayload::Transfer {
                    to: keys[r].public().id(),
                    amount: 1 + rng.below(5),
                },
            );
            // Only include if it validates sequentially (simple filter).
            let mut probe = ledger.state().clone();
            for t in &txs {
                probe.apply_tx_for_template(t);
            }
            if probe.validate_tx(&tx, ledger.params()).is_ok() {
                nonces[s] += 1;
                txs.push(tx);
            }
        }
        let parent = ledger.best_tip();
        let bits = ledger.next_difficulty(&parent);
        let (block, _) = mine_block(
            parent,
            h,
            sha256(b"prop-miner"),
            txs,
            h * 1_000_000,
            bits,
            &mut rng,
        );
        assert_eq!(
            ledger.submit_block(block.clone()).unwrap(),
            Accepted::ExtendedBest
        );
        blocks.push(block);
    }
    (blocks, keys, premine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Token conservation: premine + rewards = total balances, always.
    #[test]
    fn tokens_conserved(n in 1usize..12, seed in any::<u64>()) {
        let (blocks, keys, premine) = build_blocks(n, 3, seed);
        let mut ledger = Ledger::new("prop", ChainParams::test(), &premine);
        for b in blocks {
            ledger.submit_block(b).unwrap();
        }
        let premined: u64 = premine.iter().map(|(_, v)| v).sum();
        let minted = ledger.best_height() * ledger.params().block_reward;
        let mut total = ledger.state().balance(&sha256(b"prop-miner"));
        for k in &keys {
            total += ledger.state().balance(&k.public().id());
        }
        prop_assert_eq!(total, premined + minted);
    }

    /// Replica convergence is order-independent: feeding the same blocks in
    /// a shuffled order (orphans and all) converges to the same tip/state.
    #[test]
    fn replicas_converge_regardless_of_order(
        n in 2usize..10,
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let (blocks, keys, premine) = build_blocks(n, 3, seed);
        let mut in_order = Ledger::new("prop", ChainParams::test(), &premine);
        for b in &blocks {
            in_order.submit_block(b.clone()).unwrap();
        }
        let mut shuffled = blocks.clone();
        let mut rng = SimRng::new(shuffle_seed);
        rng.shuffle(&mut shuffled);
        let mut out_of_order = Ledger::new("prop", ChainParams::test(), &premine);
        for b in shuffled {
            let _ = out_of_order.submit_block(b); // orphans auto-connect
        }
        prop_assert_eq!(out_of_order.best_tip(), in_order.best_tip());
        prop_assert_eq!(out_of_order.best_height(), in_order.best_height());
        for k in &keys {
            prop_assert_eq!(
                out_of_order.state().balance(&k.public().id()),
                in_order.state().balance(&k.public().id())
            );
        }
    }

    /// No balance ever goes "negative" (they're u64 — so the real property
    /// is that every historical state transition validated; replaying from
    /// scratch cannot underflow or panic).
    #[test]
    fn replay_never_panics(n in 1usize..10, seed in any::<u64>()) {
        let (blocks, _, premine) = build_blocks(n, 4, seed);
        let mut ledger = Ledger::new("prop", ChainParams::test(), &premine);
        for b in blocks {
            prop_assert!(ledger.submit_block(b).is_ok());
        }
        prop_assert!(ledger.main_chain_bytes() <= ledger.total_ledger_bytes);
        prop_assert_eq!(ledger.main_chain().len() as u64, ledger.best_height() + 1);
    }

    /// Tampering with any mined block's contents is always rejected.
    #[test]
    fn tampered_blocks_rejected(seed in any::<u64>(), tweak in 0u8..3) {
        let (blocks, _, premine) = build_blocks(3, 2, seed);
        let mut ledger = Ledger::new("prop", ChainParams::test(), &premine);
        ledger.submit_block(blocks[0].clone()).unwrap();
        let mut evil = blocks[1].clone();
        match tweak {
            0 => evil.miner = sha256(b"thief"),                 // breaks merkle
            1 => evil.header.height += 1,                        // breaks height
            _ => evil.header.time_micros = 0,                    // breaks PoW hash
        }
        prop_assert!(ledger.submit_block(evil).is_err());
    }
}

//! The centralized OSN/messaging baseline: one operator, one policy, one
//! point of control — the "feudal" architecture of §2.
//!
//! The operator's server sees every post and all its metadata
//! (`comm.metadata_observed`), applies the single platform-wide moderation
//! policy, and can unilaterally deplatform users — all of which the paper
//! identifies as the price of the architecture's excellent availability and
//! abuse handling.

use std::collections::HashMap;

use agora_sim::retry::{CTR_RETRY_ATTEMPTS, CTR_RETRY_GAVE_UP};
use agora_sim::{Ctx, NodeId, Protocol, Retrier, RetryPolicy, SimDuration};

use crate::moderation::{ModerationPolicy, ModerationStats, PostLabel};
use crate::posts::{Post, ReadResult};

/// Wire messages.
#[derive(Clone, Debug)]
pub enum CentralMsg {
    /// Client joins a room.
    Join {
        /// Room id.
        room: u32,
    },
    /// Client submits a post.
    Submit(Post),
    /// Server pushes a post to a member.
    Deliver(Post),
    /// Client asks for a room's history length.
    Read {
        /// Room id.
        room: u32,
        /// Client op id.
        op: u64,
    },
    /// Server's read response.
    ReadResp {
        /// Echoed op id.
        op: u64,
        /// Number of posts, or None if the room is unknown.
        count: Option<usize>,
    },
}

impl CentralMsg {
    fn wire_size(&self) -> u64 {
        match self {
            CentralMsg::Join { .. } => 8,
            CentralMsg::Submit(p) | CentralMsg::Deliver(p) => p.wire_size(),
            CentralMsg::Read { .. } => 16,
            CentralMsg::ReadResp { .. } => 24,
        }
    }
}

struct Room {
    posts: Vec<Post>,
    members: Vec<NodeId>,
}

/// Server-side state.
pub struct ServerState {
    rooms: HashMap<u32, Room>,
    policy: ModerationPolicy,
    stats: ModerationStats,
    banned: Vec<NodeId>,
}

/// Client-side state.
pub struct ClientState {
    server: NodeId,
    next_seq: u64,
    next_op: u64,
    reads: HashMap<u64, ReadResult>,
    delivered: u64,
    /// Read retry policy. [`RetryPolicy::none`] (the default) reproduces
    /// the pre-hardening one-shot read byte-for-byte.
    retry: RetryPolicy,
    /// In-flight reads eligible for retry: op → (room, backoff cursor).
    /// Only populated when `retry` is active, so the dormant path does no
    /// bookkeeping at all.
    pending_reads: HashMap<u64, (u32, Retrier)>,
}

enum Role {
    Server(ServerState),
    Client(ClientState),
}

/// A participant in the centralized architecture.
pub struct CentralNode {
    role: Role,
}

const READ_TIMEOUT: SimDuration = SimDuration::from_secs(10);

impl CentralNode {
    /// The operator's server with its platform-wide policy.
    pub fn server(policy: ModerationPolicy) -> CentralNode {
        CentralNode {
            role: Role::Server(ServerState {
                rooms: HashMap::new(),
                policy,
                stats: ModerationStats::default(),
                banned: Vec::new(),
            }),
        }
    }

    /// A client of the platform.
    pub fn client(server: NodeId) -> CentralNode {
        CentralNode::client_with_retry(server, RetryPolicy::none())
    }

    /// A client whose reads are retried under `retry` (exponential backoff
    /// with deterministic jitter; no hedging — there is only one server).
    pub fn client_with_retry(server: NodeId, retry: RetryPolicy) -> CentralNode {
        CentralNode {
            role: Role::Client(ClientState {
                server,
                next_seq: 0,
                next_op: 0,
                reads: HashMap::new(),
                delivered: 0,
                retry,
                pending_reads: HashMap::new(),
            }),
        }
    }

    /// Operator action: deplatform a user ("access to the platform can be
    /// unequivocally revoked"). Their submissions are dropped from now on.
    pub fn ban(&mut self, user: NodeId) {
        if let Role::Server(s) = &mut self.role {
            if !s.banned.contains(&user) {
                s.banned.push(user);
            }
        }
    }

    /// Server moderation statistics.
    pub fn moderation_stats(&self) -> Option<ModerationStats> {
        match &self.role {
            Role::Server(s) => Some(s.stats),
            Role::Client(_) => None,
        }
    }

    /// Posts delivered to this client so far.
    pub fn delivered_count(&self) -> u64 {
        match &self.role {
            Role::Client(c) => c.delivered,
            Role::Server(_) => 0,
        }
    }

    /// Client action: join a room.
    pub fn join(&mut self, ctx: &mut Ctx<'_, CentralMsg>, room: u32) {
        let Role::Client(c) = &self.role else { return };
        ctx.send(c.server, CentralMsg::Join { room }, 8);
    }

    /// Client action: post to a room. Returns the post's sequence number.
    pub fn post(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg>,
        room: u32,
        bytes: u64,
        label: PostLabel,
    ) -> u64 {
        let Role::Client(c) = &mut self.role else {
            panic!("post on server")
        };
        let post = Post {
            author: ctx.id(),
            room,
            seq: c.next_seq,
            bytes,
            label,
            sent_at_micros: ctx.now().micros(),
        };
        c.next_seq += 1;
        let size = post.wire_size();
        ctx.send(c.server, CentralMsg::Submit(post), size);
        post.seq
    }

    /// Client action: read a room's history. Poll [`CentralNode::take_read`].
    pub fn read(&mut self, ctx: &mut Ctx<'_, CentralMsg>, room: u32) -> u64 {
        let Role::Client(c) = &mut self.role else {
            panic!("read on server")
        };
        let op = c.next_op;
        c.next_op += 1;
        if c.retry.is_active() {
            c.pending_reads.insert(op, (room, Retrier::new(c.retry)));
        }
        ctx.send(c.server, CentralMsg::Read { room, op }, 16);
        ctx.set_timer(READ_TIMEOUT, op);
        op
    }

    /// Collect a read outcome.
    pub fn take_read(&mut self, op: u64) -> Option<ReadResult> {
        match &mut self.role {
            Role::Client(c) => c.reads.remove(&op),
            Role::Server(_) => None,
        }
    }
}

impl Protocol for CentralNode {
    type Msg = CentralMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, CentralMsg>, from: NodeId, msg: CentralMsg) {
        match (&mut self.role, msg) {
            (Role::Server(s), CentralMsg::Join { room }) => {
                let r = s.rooms.entry(room).or_insert(Room {
                    posts: Vec::new(),
                    members: Vec::new(),
                });
                if !r.members.contains(&from) {
                    r.members.push(from);
                }
            }
            (Role::Server(s), CentralMsg::Submit(post)) => {
                // The operator observes everything: full metadata exposure.
                ctx.metrics().incr("comm.metadata_observed", 1);
                if s.banned.contains(&from) {
                    ctx.metrics().incr("comm.banned_drops", 1);
                    return;
                }
                let blocked = s.policy.blocks(post.label, ctx.rng());
                s.stats.record(post.label, blocked);
                if blocked {
                    ctx.metrics().incr("comm.posts_blocked", 1);
                    return;
                }
                let Some(r) = s.rooms.get_mut(&post.room) else {
                    return;
                };
                r.posts.push(post);
                let recipients: Vec<NodeId> = r
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != post.author)
                    .collect();
                let msg = CentralMsg::Deliver(post);
                let size = msg.wire_size();
                ctx.multicast(&recipients, msg, size);
            }
            (Role::Server(s), CentralMsg::Read { room, op }) => {
                let count = s.rooms.get(&room).map(|r| r.posts.len());
                ctx.send(from, CentralMsg::ReadResp { op, count }, 24);
            }
            (Role::Client(c), CentralMsg::Deliver(post)) => {
                c.delivered += 1;
                ctx.metrics().incr("comm.posts_delivered", 1);
                if matches!(post.label, PostLabel::Abuse(_)) {
                    ctx.metrics().incr("comm.abuse_delivered", 1);
                }
                let latency = (ctx.now().micros() - post.sent_at_micros) as f64 / 1e6;
                ctx.metrics().sample("comm.delivery_secs", latency);
            }
            (Role::Client(c), CentralMsg::ReadResp { op, count }) => {
                c.pending_reads.remove(&op);
                // With retries (or chaos duplication) the same op can be
                // answered more than once; count it once. The dormant path
                // keeps the historical unconditional increment.
                let duplicate = c.retry.is_active() && c.reads.contains_key(&op);
                c.reads.entry(op).or_insert(match count {
                    Some(n) => ReadResult::Ok(n),
                    None => ReadResult::Unavailable,
                });
                if !duplicate {
                    ctx.metrics().incr("comm.reads_ok", 1);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CentralMsg>, op: u64) {
        let Role::Client(c) = &mut self.role else {
            return;
        };
        if c.reads.contains_key(&op) || op >= c.next_op {
            return;
        }
        // Retry path (only reachable with an active policy): resend the
        // read and stretch the next timeout by the jittered backoff.
        if let Some((room, retrier)) = c.pending_reads.get_mut(&op) {
            let room = *room;
            if let Some(backoff) = retrier.next_backoff(ctx.rng()) {
                ctx.metrics().incr(CTR_RETRY_ATTEMPTS, 1);
                ctx.trace_point("retry.attempt", op as f64);
                ctx.send(c.server, CentralMsg::Read { room, op }, 16);
                ctx.set_timer(READ_TIMEOUT + backoff, op);
                return;
            }
            c.pending_reads.remove(&op);
            ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
            ctx.trace_point("retry.gave_up", op as f64);
        }
        c.reads.insert(op, ReadResult::Unavailable);
        ctx.metrics().incr("comm.reads_failed", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moderation::AbuseKind;
    use agora_sim::{DeviceClass, Simulation};

    fn build(
        n_clients: usize,
        policy: ModerationPolicy,
        seed: u64,
    ) -> (Simulation<CentralNode>, NodeId, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let server = sim.add_node(CentralNode::server(policy), DeviceClass::DatacenterServer);
        let mut clients = Vec::new();
        for _ in 0..n_clients {
            clients.push(sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer));
        }
        for &c in &clients {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
        }
        sim.run_for(SimDuration::from_secs(2));
        (sim, server, clients)
    }

    #[test]
    fn post_reaches_all_members() {
        let (mut sim, _server, clients) = build(5, ModerationPolicy::none(), 1);
        sim.with_ctx(clients[0], |n, ctx| {
            n.post(ctx, 1, 200, PostLabel::Legit);
        })
        .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        for &c in &clients[1..] {
            assert_eq!(sim.node(c).delivered_count(), 1);
        }
        assert_eq!(sim.node(clients[0]).delivered_count(), 0, "no self-echo");
        assert_eq!(sim.metrics().counter("comm.metadata_observed"), 1);
    }

    #[test]
    fn read_returns_history_length() {
        let (mut sim, _server, clients) = build(3, ModerationPolicy::none(), 2);
        for i in 0..4 {
            sim.with_ctx(clients[i % 3], |n, ctx| {
                n.post(ctx, 1, 100, PostLabel::Legit);
            })
            .unwrap();
        }
        sim.run_for(SimDuration::from_secs(5));
        let op = sim.with_ctx(clients[0], |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(
            sim.node_mut(clients[0]).take_read(op),
            Some(ReadResult::Ok(4))
        );
    }

    #[test]
    fn server_down_means_total_outage() {
        let (mut sim, server, clients) = build(3, ModerationPolicy::none(), 3);
        sim.kill(server);
        let op = sim.with_ctx(clients[0], |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(
            sim.node_mut(clients[0]).take_read(op),
            Some(ReadResult::Unavailable)
        );
        // Posts during the outage vanish too.
        sim.with_ctx(clients[1], |n, ctx| {
            n.post(ctx, 1, 100, PostLabel::Legit);
        })
        .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.metrics().counter("comm.posts_delivered"), 0);
    }

    #[test]
    fn retrying_client_survives_transient_outage() {
        use agora_sim::RetryPolicy;
        let mut sim = Simulation::new(11);
        let server = sim.add_node(
            CentralNode::server(ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
        let client = sim.add_node(
            CentralNode::client_with_retry(server, RetryPolicy::standard()),
            DeviceClass::PersonalComputer,
        );
        sim.with_ctx(client, |n, ctx| n.join(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(2));
        // Server briefly down: the first read attempt is lost, a later
        // retry lands after the revive.
        sim.kill(server);
        let op = sim.with_ctx(client, |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(15));
        sim.revive(server);
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(
            sim.node_mut(client).take_read(op),
            Some(ReadResult::Ok(0)),
            "retry must recover the read after the outage"
        );
        assert!(sim.metrics().counter("retry.attempts") >= 1);
        assert_eq!(sim.metrics().counter("comm.reads_failed"), 0);

        // Same scenario without a retry policy: the read fails outright.
        let mut sim = Simulation::new(11);
        let server = sim.add_node(
            CentralNode::server(ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
        let client = sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer);
        sim.with_ctx(client, |n, ctx| n.join(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(server);
        let op = sim.with_ctx(client, |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(15));
        sim.revive(server);
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(
            sim.node_mut(client).take_read(op),
            Some(ReadResult::Unavailable)
        );
        assert_eq!(sim.metrics().counter("retry.attempts"), 0);
    }

    #[test]
    fn platform_policy_blocks_abuse() {
        let (mut sim, server, clients) = build(3, ModerationPolicy::platform_default(), 4);
        for _ in 0..50 {
            sim.with_ctx(clients[0], |n, ctx| {
                n.post(ctx, 1, 100, PostLabel::Abuse(AbuseKind::Spam));
            })
            .unwrap();
        }
        sim.run_for(SimDuration::from_secs(10));
        let stats = sim.node(server).moderation_stats().unwrap();
        assert!(stats.abuse_blocked > 35, "blocked {}", stats.abuse_blocked);
        assert!(stats.abuse_leak_rate() < 0.3);
    }

    #[test]
    fn banned_user_is_silenced() {
        let (mut sim, server, clients) = build(3, ModerationPolicy::none(), 5);
        sim.node_mut(server).ban(clients[0]);
        sim.with_ctx(clients[0], |n, ctx| {
            n.post(ctx, 1, 100, PostLabel::Legit);
        })
        .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.metrics().counter("comm.banned_drops"), 1);
        assert_eq!(sim.metrics().counter("comm.posts_delivered"), 0);
    }
}

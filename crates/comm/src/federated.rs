//! Federated group communication, in both §3.2 flavours:
//!
//! * [`ReplicationMode::SingleHome`] — OStatus/Mastodon-style: a post's
//!   history lives only on its origin instance; other instances receive
//!   pushes for their local members but do not replicate history. "OStatus-
//!   based applications are bottlenecked by single servers that can cause
//!   entire instances to be inaccessible if they fail."
//! * [`ReplicationMode::FullReplication`] — Matrix-style: every instance
//!   with a member in the room stores the full room history, so any
//!   member's home can serve reads. "Matrix provides high availability by
//!   replicating data over the entire network."
//!
//! Each instance sets its *own* moderation policy (the paper's point about
//! federated abuse handling), and instances observe metadata for traffic
//! they relay — even when bodies are end-to-end encrypted.

use std::collections::HashMap;

use agora_sim::retry::{CTR_HEDGE_SENT, CTR_HEDGE_WON, CTR_RETRY_ATTEMPTS, CTR_RETRY_GAVE_UP};
use agora_sim::{Ctx, NodeId, Protocol, Retrier, RetryPolicy, SimDuration};

use crate::moderation::{ModerationPolicy, ModerationStats, PostLabel};
use crate::posts::{Post, ReadResult};

/// History replication strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// History lives only at the origin instance (OStatus-like).
    SingleHome,
    /// Every participating instance stores full history (Matrix-like).
    FullReplication,
}

/// Wire messages.
#[derive(Clone, Debug)]
pub enum FedMsg {
    /// Client → home: join a room.
    Join {
        /// Room id.
        room: u32,
    },
    /// Server → all servers: membership gossip.
    Membership {
        /// Room id.
        room: u32,
        /// The member client.
        client: NodeId,
        /// That client's home server.
        home: NodeId,
    },
    /// Client → home: submit a post.
    Submit(Post),
    /// Server → server: federate a post.
    Federate(Post),
    /// Server → local client: deliver a post.
    Deliver(Post),
    /// Client → home: read room history.
    Read {
        /// Room id.
        room: u32,
        /// Client op id.
        op: u64,
    },
    /// Home → origin: forwarded read (single-home mode).
    RemoteRead {
        /// Room id.
        room: u32,
        /// Originating client.
        client: NodeId,
        /// Client op id.
        op: u64,
    },
    /// Read response (server → client, possibly across instances).
    ReadResp {
        /// Echoed op id.
        op: u64,
        /// History length if served.
        count: Option<usize>,
    },
}

impl FedMsg {
    fn wire_size(&self) -> u64 {
        match self {
            FedMsg::Join { .. } => 8,
            FedMsg::Membership { .. } => 20,
            FedMsg::Submit(p) | FedMsg::Federate(p) | FedMsg::Deliver(p) => p.wire_size(),
            FedMsg::Read { .. } => 16,
            FedMsg::RemoteRead { .. } => 24,
            FedMsg::ReadResp { .. } => 24,
        }
    }
}

#[derive(Default)]
struct RoomState {
    /// Full history (origin always; others only under FullReplication).
    posts: Vec<Post>,
    /// (client, home) pairs, gossiped across the federation.
    members: Vec<(NodeId, NodeId)>,
    /// Room origin: the instance where the room was first joined.
    origin: Option<NodeId>,
}

/// Instance (server) state.
pub struct InstanceState {
    peers: Vec<NodeId>,
    mode: ReplicationMode,
    policy: ModerationPolicy,
    stats: ModerationStats,
    rooms: HashMap<u32, RoomState>,
}

/// A read still awaiting an answer.
struct PendingRead {
    room: u32,
    /// Next backup index to fail over to.
    attempt: usize,
    /// Backoff cursor for retrying the *home* before failing over.
    retrier: Retrier,
    /// Whether a hedged duplicate has been sent to `backups[0]`.
    hedged: bool,
}

/// Client state.
pub struct FedClientState {
    home: NodeId,
    /// Fallback instances tried in order when a read goes unanswered
    /// (§5.1: "eliminating single points of failure in federated
    /// approaches"). Useful only under FullReplication, where any instance
    /// can serve history.
    backups: Vec<NodeId>,
    next_seq: u64,
    next_op: u64,
    reads: HashMap<u64, ReadResult>,
    /// Reads still awaiting an answer, by op.
    pending_reads: HashMap<u64, PendingRead>,
    delivered: u64,
    /// Read retry/hedge policy. [`RetryPolicy::none`] (the default)
    /// reproduces the pre-hardening timeout-then-failover path
    /// byte-for-byte.
    retry: RetryPolicy,
}

/// Timer-tag bit marking a hedge deadline rather than a read timeout. Ops
/// are small sequential integers, so the high bit can never collide.
const HEDGE_TAG: u64 = 1 << 63;

enum Role {
    Instance(InstanceState),
    Client(FedClientState),
}

/// A participant in the federated architecture.
pub struct FedNode {
    role: Role,
}

const READ_TIMEOUT: SimDuration = SimDuration::from_secs(10);

impl FedNode {
    /// An instance with its own policy. `peers` = the other instances.
    pub fn instance(
        peers: Vec<NodeId>,
        mode: ReplicationMode,
        policy: ModerationPolicy,
    ) -> FedNode {
        FedNode {
            role: Role::Instance(InstanceState {
                peers,
                mode,
                policy,
                stats: ModerationStats::default(),
                rooms: HashMap::new(),
            }),
        }
    }

    /// A client homed on `home`.
    pub fn client(home: NodeId) -> FedNode {
        FedNode::client_with_backups(home, Vec::new())
    }

    /// A client that fails reads over to backup instances when its home
    /// does not answer — the §5.1 fix, implemented. Only helps when the
    /// federation replicates history (FullReplication); a single-home
    /// origin that died is gone no matter whom you ask, which experiment
    /// E10 demonstrates.
    pub fn client_with_backups(home: NodeId, backups: Vec<NodeId>) -> FedNode {
        FedNode::client_with_retry(home, backups, RetryPolicy::none())
    }

    /// A client with backups *and* a retry/hedge policy: unanswered reads
    /// retry the home with jittered backoff before failing over, and (if
    /// `retry.hedge_after` is set) a hedged duplicate read races the slow
    /// home against `backups[0]`.
    pub fn client_with_retry(home: NodeId, backups: Vec<NodeId>, retry: RetryPolicy) -> FedNode {
        FedNode {
            role: Role::Client(FedClientState {
                home,
                backups,
                next_seq: 0,
                next_op: 0,
                reads: HashMap::new(),
                pending_reads: HashMap::new(),
                delivered: 0,
                retry,
            }),
        }
    }

    /// Instance moderation stats.
    pub fn moderation_stats(&self) -> Option<ModerationStats> {
        match &self.role {
            Role::Instance(s) => Some(s.stats),
            Role::Client(_) => None,
        }
    }

    /// Posts delivered to this client.
    pub fn delivered_count(&self) -> u64 {
        match &self.role {
            Role::Client(c) => c.delivered,
            Role::Instance(_) => 0,
        }
    }

    /// History length an instance holds for a room (diagnostics).
    pub fn room_history_len(&self, room: u32) -> usize {
        match &self.role {
            Role::Instance(s) => s.rooms.get(&room).map_or(0, |r| r.posts.len()),
            Role::Client(_) => 0,
        }
    }

    /// Client action: join a room (via the home instance).
    pub fn join(&mut self, ctx: &mut Ctx<'_, FedMsg>, room: u32) {
        let Role::Client(c) = &self.role else { return };
        ctx.send(c.home, FedMsg::Join { room }, 8);
    }

    /// Client action: post to a room.
    pub fn post(&mut self, ctx: &mut Ctx<'_, FedMsg>, room: u32, bytes: u64, label: PostLabel) {
        let Role::Client(c) = &mut self.role else {
            panic!("post on instance")
        };
        let post = Post {
            author: ctx.id(),
            room,
            seq: c.next_seq,
            bytes,
            label,
            sent_at_micros: ctx.now().micros(),
        };
        c.next_seq += 1;
        let size = post.wire_size();
        ctx.send(c.home, FedMsg::Submit(post), size);
    }

    /// Client action: read history via the home instance.
    pub fn read(&mut self, ctx: &mut Ctx<'_, FedMsg>, room: u32) -> u64 {
        let Role::Client(c) = &mut self.role else {
            panic!("read on instance")
        };
        let op = c.next_op;
        c.next_op += 1;
        ctx.send(c.home, FedMsg::Read { room, op }, 16);
        c.pending_reads.insert(
            op,
            PendingRead {
                room,
                attempt: 0,
                retrier: Retrier::new(c.retry),
                hedged: false,
            },
        );
        ctx.set_timer(READ_TIMEOUT, op);
        if let Some(hedge_after) = c.retry.hedge_after {
            if !c.backups.is_empty() {
                ctx.set_timer(hedge_after, HEDGE_TAG | op);
            }
        }
        op
    }

    /// Collect a read outcome.
    pub fn take_read(&mut self, op: u64) -> Option<ReadResult> {
        match &mut self.role {
            Role::Client(c) => c.reads.remove(&op),
            Role::Instance(_) => None,
        }
    }

    fn instance_store_and_deliver(
        s: &mut InstanceState,
        ctx: &mut Ctx<'_, FedMsg>,
        post: Post,
        is_origin: bool,
    ) {
        let me = ctx.id();
        let Some(r) = s.rooms.get_mut(&post.room) else {
            return;
        };
        if is_origin || s.mode == ReplicationMode::FullReplication {
            r.posts.push(post);
        }
        // Deliver to local members.
        let locals: Vec<NodeId> = r
            .members
            .iter()
            .filter(|(client, home)| *home == me && *client != post.author)
            .map(|(client, _)| *client)
            .collect();
        let msg = FedMsg::Deliver(post);
        let size = msg.wire_size();
        ctx.multicast(&locals, msg, size);
    }
}

impl Protocol for FedNode {
    type Msg = FedMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, FedMsg>, from: NodeId, msg: FedMsg) {
        match (&mut self.role, msg) {
            (Role::Instance(s), FedMsg::Join { room }) => {
                let me = ctx.id();
                let r = s.rooms.entry(room).or_default();
                if r.origin.is_none() {
                    r.origin = Some(me);
                }
                if !r.members.iter().any(|(c, _)| *c == from) {
                    r.members.push((from, me));
                }
                let origin = r.origin.expect("set above");
                for &p in &s.peers {
                    ctx.send(
                        p,
                        FedMsg::Membership {
                            room,
                            client: from,
                            home: me,
                        },
                        20,
                    );
                    // First-joiner also gossips origin via membership order;
                    // peers learn origin from the first membership they see.
                    let _ = origin;
                }
            }
            (Role::Instance(s), FedMsg::Membership { room, client, home }) => {
                let r = s.rooms.entry(room).or_default();
                if r.origin.is_none() {
                    r.origin = Some(home);
                }
                if !r.members.iter().any(|(c, _)| *c == client) {
                    r.members.push((client, home));
                }
            }
            (Role::Instance(s), FedMsg::Submit(post)) => {
                // The home instance observes the sender's metadata even when
                // bodies are E2E-encrypted (the paper's Matrix caveat).
                ctx.metrics().incr("comm.metadata_observed", 1);
                let blocked = s.policy.blocks(post.label, ctx.rng());
                s.stats.record(post.label, blocked);
                if blocked {
                    ctx.metrics().incr("comm.posts_blocked", 1);
                    return;
                }
                // Federate to every instance with members in the room.
                let targets: Vec<NodeId> = {
                    let Some(r) = s.rooms.get(&post.room) else {
                        return;
                    };
                    let me = ctx.id();
                    let mut t: Vec<NodeId> = r
                        .members
                        .iter()
                        .map(|(_, home)| *home)
                        .filter(|h| *h != me)
                        .collect();
                    t.sort();
                    t.dedup();
                    t
                };
                let msg = FedMsg::Federate(post);
                let size = msg.wire_size();
                ctx.multicast(&targets, msg, size);
                Self::instance_store_and_deliver(s, ctx, post, true);
            }
            (Role::Instance(s), FedMsg::Federate(post)) => {
                // Relaying instances also see metadata.
                ctx.metrics().incr("comm.metadata_observed", 1);
                Self::instance_store_and_deliver(s, ctx, post, false);
            }
            (Role::Instance(s), FedMsg::Read { room, op }) => {
                let me = ctx.id();
                match s.mode {
                    ReplicationMode::FullReplication => {
                        let count = s.rooms.get(&room).map(|r| r.posts.len());
                        ctx.send(from, FedMsg::ReadResp { op, count }, 24);
                    }
                    ReplicationMode::SingleHome => {
                        let origin = s.rooms.get(&room).and_then(|r| r.origin);
                        match origin {
                            Some(o) if o == me => {
                                let count = s.rooms.get(&room).map(|r| r.posts.len());
                                ctx.send(from, FedMsg::ReadResp { op, count }, 24);
                            }
                            Some(o) => {
                                // Forward to the origin; it answers the client
                                // directly.
                                ctx.send(
                                    o,
                                    FedMsg::RemoteRead {
                                        room,
                                        client: from,
                                        op,
                                    },
                                    24,
                                );
                            }
                            None => {
                                ctx.send(from, FedMsg::ReadResp { op, count: None }, 24);
                            }
                        }
                    }
                }
            }
            (Role::Instance(s), FedMsg::RemoteRead { room, client, op }) => {
                let count = s.rooms.get(&room).map(|r| r.posts.len());
                ctx.send(client, FedMsg::ReadResp { op, count }, 24);
            }
            (Role::Client(c), FedMsg::Deliver(post)) => {
                c.delivered += 1;
                ctx.metrics().incr("comm.posts_delivered", 1);
                if matches!(post.label, PostLabel::Abuse(_)) {
                    ctx.metrics().incr("comm.abuse_delivered", 1);
                }
                let latency = (ctx.now().micros() - post.sent_at_micros) as f64 / 1e6;
                ctx.metrics().sample("comm.delivery_secs", latency);
                ctx.trace_point("comm.delivery_secs", latency);
                ctx.probe_signal("comm.delivery_secs", latency);
            }
            (Role::Client(c), FedMsg::ReadResp { op, count }) => {
                if let Some(pending) = c.pending_reads.remove(&op) {
                    // Hedge attribution: the answer that completed the op
                    // came from somewhere other than the home after a
                    // hedged duplicate was issued.
                    if pending.hedged && from != c.home {
                        ctx.metrics().incr(CTR_HEDGE_WON, 1);
                        ctx.trace_point("hedge.won", op as f64);
                    }
                }
                // With retries/hedges (or chaos duplication) the same op
                // can be answered more than once; count it once. The
                // dormant path keeps the historical unconditional
                // increment.
                let duplicate = c.retry.is_active() && c.reads.contains_key(&op);
                c.reads.entry(op).or_insert(match count {
                    Some(n) => ReadResult::Ok(n),
                    None => ReadResult::Unavailable,
                });
                if !duplicate {
                    ctx.metrics().incr("comm.reads_ok", 1);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, FedMsg>, tag: u64) {
        let Role::Client(c) = &mut self.role else {
            return;
        };
        // Hedge deadline: if the read is still unanswered, race a
        // duplicate against backups[0]. Only ever armed by an active
        // policy with `hedge_after` set.
        if tag & HEDGE_TAG != 0 {
            let op = tag & !HEDGE_TAG;
            if let Some(pending) = c.pending_reads.get_mut(&op) {
                if !pending.hedged && !c.backups.is_empty() {
                    pending.hedged = true;
                    let room = pending.room;
                    let target = c.backups[0];
                    ctx.metrics().incr(CTR_HEDGE_SENT, 1);
                    ctx.trace_point("hedge.sent", op as f64);
                    ctx.send(target, FedMsg::Read { room, op }, 16);
                }
            }
            return;
        }
        let op = tag;
        if c.reads.contains_key(&op) {
            c.pending_reads.remove(&op);
            return;
        }
        if op >= c.next_op {
            return;
        }
        if let Some(pending) = c.pending_reads.get_mut(&op) {
            // Retry the home with jittered backoff first (no-draw no-op
            // under the dormant policy) ...
            if let Some(backoff) = pending.retrier.next_backoff(ctx.rng()) {
                let room = pending.room;
                ctx.metrics().incr(CTR_RETRY_ATTEMPTS, 1);
                ctx.trace_point("retry.attempt", op as f64);
                ctx.send(c.home, FedMsg::Read { room, op }, 16);
                ctx.set_timer(READ_TIMEOUT + backoff, op);
                return;
            }
            // ... then fail over to the next backup instance, if any.
            if pending.attempt < c.backups.len() {
                let target = c.backups[pending.attempt];
                let room = pending.room;
                ctx.trace_point("comm.read_failovers", pending.attempt as f64);
                pending.attempt += 1;
                ctx.metrics().incr("comm.read_failovers", 1);
                ctx.send(target, FedMsg::Read { room, op }, 16);
                ctx.set_timer(READ_TIMEOUT, op);
                return;
            }
            c.pending_reads.remove(&op);
            if c.retry.is_active() {
                ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
                ctx.trace_point("retry.gave_up", op as f64);
            }
        }
        c.reads.insert(op, ReadResult::Unavailable);
        ctx.metrics().incr("comm.reads_failed", 1);
        ctx.trace_point("comm.reads_failed", 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::{DeviceClass, Simulation};

    /// Two instances, two clients each, one shared room (room 1). The room's
    /// origin is instance 0 (its client joins first).
    fn build(mode: ReplicationMode, seed: u64) -> (Simulation<FedNode>, Vec<NodeId>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        // Instances first so their ids are known.
        let i0 = NodeId(0);
        let i1 = NodeId(1);
        let a = sim.add_node(
            FedNode::instance(vec![i1], mode, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
        let b = sim.add_node(
            FedNode::instance(vec![i0], mode, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
        assert_eq!((a, b), (i0, i1));
        let c0 = sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer);
        let c1 = sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer);
        let c2 = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
        let c3 = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
        for &c in &[c0, c1, c2, c3] {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
            sim.run_for(SimDuration::from_millis(200)); // deterministic join order
        }
        sim.run_for(SimDuration::from_secs(2));
        (sim, vec![i0, i1], vec![c0, c1, c2, c3])
    }

    #[test]
    fn cross_instance_delivery() {
        for mode in [
            ReplicationMode::SingleHome,
            ReplicationMode::FullReplication,
        ] {
            let (mut sim, _instances, clients) = build(mode, 1);
            sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 150, PostLabel::Legit))
                .unwrap();
            sim.run_for(SimDuration::from_secs(5));
            for &c in &clients[1..] {
                assert_eq!(sim.node(c).delivered_count(), 1, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn full_replication_stores_history_everywhere() {
        let (mut sim, instances, clients) = build(ReplicationMode::FullReplication, 2);
        sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.with_ctx(clients[2], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.node(instances[0]).room_history_len(1), 2);
        assert_eq!(sim.node(instances[1]).room_history_len(1), 2);
    }

    #[test]
    fn single_home_stores_history_only_at_origin() {
        let (mut sim, instances, clients) = build(ReplicationMode::SingleHome, 3);
        sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.node(instances[0]).room_history_len(1), 1);
        assert_eq!(sim.node(instances[1]).room_history_len(1), 0);
    }

    #[test]
    fn origin_failure_kills_single_home_reads_but_not_full_replication() {
        // Single-home: remote client's read fails once the origin is down.
        let (mut sim, instances, clients) = build(ReplicationMode::SingleHome, 4);
        sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        sim.kill(instances[0]);
        let op = sim.with_ctx(clients[2], |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(
            sim.node_mut(clients[2]).take_read(op),
            Some(ReadResult::Unavailable),
            "single-home read must fail with origin down"
        );

        // Full replication: same scenario succeeds from the surviving home.
        let (mut sim, instances, clients) = build(ReplicationMode::FullReplication, 5);
        sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        sim.kill(instances[0]);
        let op = sim.with_ctx(clients[2], |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(
            sim.node_mut(clients[2]).take_read(op),
            Some(ReadResult::Ok(1)),
            "replicated read must survive origin failure"
        );
    }

    #[test]
    fn per_instance_policies_differ() {
        use crate::moderation::AbuseKind;
        // Instance 0 tolerant, instance 1 strict about brigading.
        let mut sim = Simulation::new(6);
        let i0 = NodeId(0);
        let i1 = NodeId(1);
        sim.add_node(
            FedNode::instance(
                vec![i1],
                ReplicationMode::FullReplication,
                ModerationPolicy::spam_only(),
            ),
            DeviceClass::DatacenterServer,
        );
        sim.add_node(
            FedNode::instance(
                vec![i0],
                ReplicationMode::FullReplication,
                ModerationPolicy::platform_default(),
            ),
            DeviceClass::DatacenterServer,
        );
        let c0 = sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer);
        let c1 = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
        for &c in &[c0, c1] {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
            sim.run_for(SimDuration::from_millis(200));
        }
        // Brigading from c0 (tolerant home) goes through; from c1 (strict
        // home) is mostly blocked at submission.
        for _ in 0..30 {
            sim.with_ctx(c0, |n, ctx| {
                n.post(ctx, 1, 50, PostLabel::Abuse(AbuseKind::Brigading))
            })
            .unwrap();
            sim.with_ctx(c1, |n, ctx| {
                n.post(ctx, 1, 50, PostLabel::Abuse(AbuseKind::Brigading))
            })
            .unwrap();
        }
        sim.run_for(SimDuration::from_secs(10));
        let tolerant = sim.node(i0).moderation_stats().unwrap();
        let strict = sim.node(i1).moderation_stats().unwrap();
        assert_eq!(tolerant.abuse_blocked, 0);
        assert!(
            strict.abuse_blocked > 20,
            "blocked {}",
            strict.abuse_blocked
        );
    }

    #[test]
    fn backup_failover_rescues_replicated_reads() {
        // FullReplication + backups: home dies, the read fails over and
        // succeeds from the surviving instance (§5.1 implemented).
        let mut sim = Simulation::new(8);
        let i0 = NodeId(0);
        let i1 = NodeId(1);
        sim.add_node(
            FedNode::instance(
                vec![i1],
                ReplicationMode::FullReplication,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        sim.add_node(
            FedNode::instance(
                vec![i0],
                ReplicationMode::FullReplication,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        let author = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
        let reader = sim.add_node(
            FedNode::client_with_backups(i0, vec![i1]),
            DeviceClass::PersonalComputer,
        );
        for &c in &[author, reader] {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
            sim.run_for(SimDuration::from_millis(200));
        }
        sim.with_ctx(author, |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        // Reader's home dies; without backups this read would fail.
        sim.kill(i0);
        let op = sim.with_ctx(reader, |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(
            sim.node_mut(reader).take_read(op),
            Some(ReadResult::Ok(1)),
            "failover should rescue the read"
        );
        assert!(sim.metrics().counter("comm.read_failovers") >= 1);
    }

    #[test]
    fn hedged_read_beats_dead_home_without_waiting_for_timeout() {
        let mut sim = Simulation::new(21);
        let i0 = NodeId(0);
        let i1 = NodeId(1);
        sim.add_node(
            FedNode::instance(
                vec![i1],
                ReplicationMode::FullReplication,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        sim.add_node(
            FedNode::instance(
                vec![i0],
                ReplicationMode::FullReplication,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        let author = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
        let policy = RetryPolicy {
            hedge_after: Some(SimDuration::from_secs(2)),
            ..RetryPolicy::none()
        };
        let reader = sim.add_node(
            FedNode::client_with_retry(i0, vec![i1], policy),
            DeviceClass::PersonalComputer,
        );
        for &c in &[author, reader] {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
            sim.run_for(SimDuration::from_millis(200));
        }
        sim.with_ctx(author, |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        sim.kill(i0);
        let op = sim.with_ctx(reader, |n, ctx| n.read(ctx, 1)).unwrap();
        // The hedge fires at +2s and the backup answers long before the
        // 10s read timeout would even start a failover.
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(
            sim.node_mut(reader).take_read(op),
            Some(ReadResult::Ok(1)),
            "hedged read should complete from the backup"
        );
        assert_eq!(sim.metrics().counter("hedge.sent"), 1);
        assert_eq!(sim.metrics().counter("hedge.won"), 1);
        assert_eq!(sim.metrics().counter("comm.read_failovers"), 0);
    }

    #[test]
    fn failover_cannot_rescue_single_home_origin_loss() {
        // §5.1's limit: failover routes around dead *serving* instances,
        // but a single-home origin that died took the only copy with it.
        let mut sim = Simulation::new(9);
        let i0 = NodeId(0);
        let i1 = NodeId(1);
        sim.add_node(
            FedNode::instance(
                vec![i1],
                ReplicationMode::SingleHome,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        sim.add_node(
            FedNode::instance(
                vec![i0],
                ReplicationMode::SingleHome,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
        let author = sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer);
        let reader = sim.add_node(
            FedNode::client_with_backups(i1, vec![i1]),
            DeviceClass::PersonalComputer,
        );
        for &c in &[author, reader] {
            sim.with_ctx(c, |n, ctx| n.join(ctx, 1)).unwrap();
            sim.run_for(SimDuration::from_millis(200));
        }
        sim.with_ctx(author, |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        sim.kill(i0); // the origin holding the only history copy
        let op = sim.with_ctx(reader, |n, ctx| n.read(ctx, 1)).unwrap();
        sim.run_for(SimDuration::from_secs(90));
        assert_eq!(
            sim.node_mut(reader).take_read(op),
            Some(ReadResult::Unavailable),
            "no backup holds single-home history"
        );
    }

    #[test]
    fn metadata_observed_by_relaying_instances() {
        let (mut sim, _instances, clients) = build(ReplicationMode::FullReplication, 7);
        sim.with_ctx(clients[0], |n, ctx| n.post(ctx, 1, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        // Home observes the submit, the peer instance observes the federate.
        assert_eq!(sim.metrics().counter("comm.metadata_observed"), 2);
    }
}

//! §5.3's "guerrilla tactic", implemented: *decoupling authority from
//! infrastructure* by running an encrypted service on an untrusted,
//! always-on cloud relay.
//!
//! The relay is a dumb, datacenter-class blob store. Owners push
//! end-to-end-sealed feed snapshots (the relay can verify nothing about the
//! contents and holds no keys); friends fetch them by presenting a
//! *capability* — an unguessable token the owner minted and shared along
//! with the session secret. The relay enforces only the capability check;
//! it cannot read content, cannot enumerate who is friends with whom beyond
//! observed fetches, and can be swapped for any other relay without the
//! owner losing control — authority stays with the keyholder, the
//! infrastructure is a commodity.
//!
//! The trade-off the paper predicts is measurable here: availability
//! becomes cloud-grade even when the owner is offline (unlike pure
//! socially-aware P2P), but the relay observes *traffic metadata*
//! (who pushed, who fetched, when, how much) — counted in
//! `comm.metadata_observed_relay`.

use std::collections::HashMap;
use std::rc::Rc;

use agora_crypto::{tagged_hash, Hash256};
use agora_sim::{Ctx, NodeId, Protocol, SimDuration};

use crate::ratchet::{RatchetSession, Sealed};

/// Mint the capability for an owner's relay mailbox from the owner's
/// secret seed. Friends receive it out-of-band with the session secret.
pub fn mint_capability(owner_seed: &[u8]) -> Hash256 {
    tagged_hash("relay-capability", owner_seed)
}

/// Wire messages.
#[derive(Clone, Debug)]
pub enum RelayMsg {
    /// Owner → relay: create/claim a mailbox guarded by `cap`.
    Register {
        /// Capability that future fetches must present.
        cap: Hash256,
    },
    /// Owner → relay: append a sealed snapshot to the mailbox.
    Push {
        /// The sealed (E2E) envelope; opaque to the relay.
        envelope: Sealed,
        /// Payload size for accounting.
        bytes: u64,
    },
    /// Friend → relay: fetch the mailbox contents.
    Fetch {
        /// Mailbox owner (by transport address).
        owner: NodeId,
        /// Presented capability.
        cap: Hash256,
        /// Requester op id.
        op: u64,
    },
    /// Relay → friend: mailbox contents (None = bad capability / unknown).
    FetchResp {
        /// Echoed op id.
        op: u64,
        /// The sealed envelopes, if authorized — shared with the relay's
        /// mailbox, so serving a fetch is a refcount bump, not a deep copy.
        envelopes: Option<Rc<Vec<Sealed>>>,
    },
}

impl RelayMsg {
    fn wire_size(&self) -> u64 {
        match self {
            RelayMsg::Register { .. } => 40,
            RelayMsg::Push { bytes, .. } => 48 + bytes,
            RelayMsg::Fetch { .. } => 48,
            RelayMsg::FetchResp { envelopes, .. } => {
                16 + envelopes
                    .as_ref()
                    .map_or(0, |v| v.len() as u64 * (RatchetSession::OVERHEAD + 64))
            }
        }
    }
}

/// Outcome of a fetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelayResult {
    /// Envelopes retrieved and decrypted: this many plaintexts recovered.
    Decrypted(usize),
    /// Relay refused (bad capability) or mailbox unknown.
    Refused,
    /// Envelopes retrieved but none decrypted (wrong session keys — e.g.
    /// the relay substituted content; E2E catches it).
    Garbage,
    /// No response (relay down).
    Unavailable,
}

struct Mailbox {
    cap: Hash256,
    /// Copy-on-write: fetches hand out `Rc` clones; a push while any clone
    /// is still in flight clones the backing vector once via `Rc::make_mut`.
    envelopes: Rc<Vec<Sealed>>,
}

/// Relay-side state: mailboxes by owner transport address.
pub struct RelayState {
    mailboxes: HashMap<NodeId, Mailbox>,
}

/// User-side state (owner and/or friend).
pub struct UserState {
    relay: NodeId,
    /// Our own capability (when acting as an owner).
    my_cap: Hash256,
    /// Sending half of our feed session (owner side).
    feed_session: RatchetSession,
    /// Per-owner receive sessions + capabilities (friend side).
    subscriptions: HashMap<NodeId, (RatchetSession, Hash256)>,
    results: HashMap<u64, RelayResult>,
    next_op: u64,
    pushed: u64,
}

enum Role {
    Relay(RelayState),
    User(Box<UserState>),
}

/// A guerrilla-relay participant.
pub struct RelayNode {
    role: Role,
}

const FETCH_TIMEOUT: SimDuration = SimDuration::from_secs(10);

impl RelayNode {
    /// The untrusted always-on relay.
    pub fn relay() -> RelayNode {
        RelayNode {
            role: Role::Relay(RelayState {
                mailboxes: HashMap::new(),
            }),
        }
    }

    /// A user with an owner seed (deriving feed session + capability).
    /// Subscriptions to friends' feeds are added with
    /// [`RelayNode::subscribe`].
    pub fn user(relay: NodeId, owner_seed: &[u8]) -> RelayNode {
        let secret = tagged_hash("relay-feed-secret", owner_seed);
        RelayNode {
            role: Role::User(Box::new(UserState {
                relay,
                my_cap: mint_capability(owner_seed),
                feed_session: RatchetSession::initiator(&secret),
                subscriptions: HashMap::new(),
                results: HashMap::new(),
                next_op: 0,
                pushed: 0,
            })),
        }
    }

    /// Out-of-band friendship exchange: learn `owner`'s capability and
    /// session secret (in a real deployment this travels in the friend
    /// handshake; the relay never sees it).
    pub fn subscribe(&mut self, owner: NodeId, owner_seed: &[u8]) {
        let Role::User(u) = &mut self.role else {
            return;
        };
        let secret = tagged_hash("relay-feed-secret", owner_seed);
        u.subscriptions.insert(
            owner,
            (
                RatchetSession::responder(&secret),
                mint_capability(owner_seed),
            ),
        );
    }

    /// Owner action: register the mailbox with the relay.
    pub fn register(&mut self, ctx: &mut Ctx<'_, RelayMsg>) {
        let Role::User(u) = &self.role else { return };
        ctx.send(u.relay, RelayMsg::Register { cap: u.my_cap }, 40);
    }

    /// Owner action: push a sealed feed update to the relay.
    pub fn push_update(&mut self, ctx: &mut Ctx<'_, RelayMsg>, plaintext: &[u8]) {
        let Role::User(u) = &mut self.role else {
            return;
        };
        let envelope = u.feed_session.encrypt(plaintext);
        u.pushed += 1;
        let msg = RelayMsg::Push {
            envelope,
            bytes: plaintext.len() as u64,
        };
        let size = msg.wire_size();
        let relay = u.relay;
        ctx.send(relay, msg, size);
    }

    /// Friend action: fetch and decrypt `owner`'s feed via the relay.
    /// Poll [`RelayNode::take_result`].
    pub fn fetch(&mut self, ctx: &mut Ctx<'_, RelayMsg>, owner: NodeId) -> u64 {
        let Role::User(u) = &mut self.role else {
            panic!("fetch on relay")
        };
        let op = u.next_op;
        u.next_op += 1;
        let cap = u
            .subscriptions
            .get(&owner)
            .map(|(_, c)| *c)
            .unwrap_or(Hash256::ZERO); // strangers present garbage
        ctx.send(u.relay, RelayMsg::Fetch { owner, cap, op }, 48);
        ctx.set_timer(FETCH_TIMEOUT, op);
        op
    }

    /// Collect a fetch outcome.
    pub fn take_result(&mut self, op: u64) -> Option<RelayResult> {
        match &mut self.role {
            Role::User(u) => u.results.remove(&op),
            Role::Relay(_) => None,
        }
    }

    /// Mailbox count (relay diagnostics).
    pub fn mailbox_count(&self) -> usize {
        match &self.role {
            Role::Relay(r) => r.mailboxes.len(),
            Role::User(_) => 0,
        }
    }
}

impl Protocol for RelayNode {
    type Msg = RelayMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, RelayMsg>, from: NodeId, msg: RelayMsg) {
        match (&mut self.role, msg) {
            (Role::Relay(r), RelayMsg::Register { cap }) => {
                r.mailboxes.entry(from).or_insert(Mailbox {
                    cap,
                    envelopes: Rc::new(Vec::new()),
                });
            }
            (Role::Relay(r), RelayMsg::Push { envelope, .. }) => {
                // The relay observes push metadata but stores only sealed
                // bytes it cannot open.
                ctx.metrics().incr("comm.metadata_observed_relay", 1);
                if let Some(m) = r.mailboxes.get_mut(&from) {
                    Rc::make_mut(&mut m.envelopes).push(envelope);
                }
            }
            (Role::Relay(r), RelayMsg::Fetch { owner, cap, op }) => {
                ctx.metrics().incr("comm.metadata_observed_relay", 1);
                let envelopes = r
                    .mailboxes
                    .get(&owner)
                    .filter(|m| m.cap == cap)
                    .map(|m| m.envelopes.clone());
                if envelopes.is_none() {
                    ctx.metrics().incr("comm.relay_refusals", 1);
                }
                let resp = RelayMsg::FetchResp { op, envelopes };
                let size = resp.wire_size();
                ctx.send(from, resp, size);
            }
            (Role::User(u), RelayMsg::FetchResp { op, envelopes }) => {
                if u.results.contains_key(&op) {
                    return;
                }
                let result = match envelopes {
                    None => RelayResult::Refused,
                    Some(envs) => {
                        // Decrypt with the matching subscription session.
                        // We don't know which owner `op` was for without
                        // tracking; try each subscription (cheap, few).
                        let mut best = 0usize;
                        for (session, _) in u.subscriptions.values_mut() {
                            let mut s = session.clone();
                            let ok = envs.iter().filter(|e| s.decrypt(e).is_ok()).count();
                            if ok > best {
                                best = ok;
                                *session = s;
                            }
                        }
                        if envs.is_empty() {
                            RelayResult::Decrypted(0)
                        } else if best > 0 {
                            ctx.metrics().incr("comm.relay_reads_ok", 1);
                            RelayResult::Decrypted(best)
                        } else {
                            RelayResult::Garbage
                        }
                    }
                };
                u.results.insert(op, result);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, RelayMsg>, op: u64) {
        let Role::User(u) = &mut self.role else {
            return;
        };
        if op < u.next_op {
            u.results.entry(op).or_insert(RelayResult::Unavailable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::{DeviceClass, Simulation};

    fn build(seed: u64) -> (Simulation<RelayNode>, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Simulation::new(seed);
        let relay = sim.add_node(RelayNode::relay(), DeviceClass::DatacenterServer);
        let owner = sim.add_node(
            RelayNode::user(relay, b"owner"),
            DeviceClass::PersonalComputer,
        );
        let friend = sim.add_node(
            RelayNode::user(relay, b"friend"),
            DeviceClass::PersonalComputer,
        );
        let stranger = sim.add_node(
            RelayNode::user(relay, b"stranger"),
            DeviceClass::PersonalComputer,
        );
        sim.node_mut(friend).subscribe(owner, b"owner");
        sim.with_ctx(owner, |n, ctx| n.register(ctx));
        sim.run_for(SimDuration::from_secs(2));
        (sim, relay, owner, friend, stranger)
    }

    #[test]
    fn friend_reads_via_relay_while_owner_offline() {
        let (mut sim, _relay, owner, friend, _stranger) = build(1);
        for i in 0..3 {
            sim.with_ctx(owner, |n, ctx| {
                n.push_update(ctx, format!("update {i}").as_bytes())
            });
        }
        sim.run_for(SimDuration::from_secs(5));
        // Owner disappears — the availability hole of pure social P2P.
        sim.kill(owner);
        let op = sim.with_ctx(friend, |n, ctx| n.fetch(ctx, owner)).unwrap();
        sim.run_for(SimDuration::from_secs(20));
        assert_eq!(
            sim.node_mut(friend).take_result(op),
            Some(RelayResult::Decrypted(3)),
            "cloud availability with keyholder authority"
        );
    }

    #[test]
    fn stranger_without_capability_is_refused() {
        let (mut sim, _relay, owner, _friend, stranger) = build(2);
        sim.with_ctx(owner, |n, ctx| n.push_update(ctx, b"secret"));
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(stranger, |n, ctx| n.fetch(ctx, owner))
            .unwrap();
        sim.run_for(SimDuration::from_secs(20));
        assert_eq!(
            sim.node_mut(stranger).take_result(op),
            Some(RelayResult::Refused)
        );
        assert!(sim.metrics().counter("comm.relay_refusals") >= 1);
    }

    #[test]
    fn relay_observes_metadata_but_not_content() {
        let (mut sim, _relay, owner, friend, _stranger) = build(3);
        sim.with_ctx(owner, |n, ctx| n.push_update(ctx, b"plaintext"));
        sim.run_for(SimDuration::from_secs(2));
        let op = sim.with_ctx(friend, |n, ctx| n.fetch(ctx, owner)).unwrap();
        sim.run_for(SimDuration::from_secs(20));
        assert!(matches!(
            sim.node_mut(friend).take_result(op),
            Some(RelayResult::Decrypted(1))
        ));
        // Metadata: one push + one fetch observed. Content: the mailbox
        // holds Sealed envelopes whose binding only keyholders verify —
        // a relay-side decrypt attempt is the Garbage case below.
        assert_eq!(sim.metrics().counter("comm.metadata_observed_relay"), 2);
    }

    #[test]
    fn relay_substitution_detected_as_garbage() {
        // A malicious relay that fabricates envelopes cannot satisfy the
        // ratchet binding: the friend reports Garbage instead of content.
        let (mut sim, _relay, owner, friend, _stranger) = build(4);
        // Stranger pushes to their own mailbox; friend fetches *owner* but
        // we simulate substitution by subscribing friend to the wrong seed.
        sim.node_mut(friend).subscribe(owner, b"wrong-seed");
        sim.with_ctx(owner, |n, ctx| n.push_update(ctx, b"real"));
        sim.run_for(SimDuration::from_secs(2));
        let op = sim.with_ctx(friend, |n, ctx| n.fetch(ctx, owner)).unwrap();
        sim.run_for(SimDuration::from_secs(20));
        // Capability still matches (derived from "wrong-seed"? No — cap is
        // derived from the subscription seed too, so the relay refuses).
        let r = sim.node_mut(friend).take_result(op).unwrap();
        assert!(
            r == RelayResult::Refused || r == RelayResult::Garbage,
            "substituted/garbled feeds must not decrypt: {r:?}"
        );
    }

    #[test]
    fn relay_down_is_unavailable() {
        let (mut sim, relay, owner, friend, _stranger) = build(5);
        sim.with_ctx(owner, |n, ctx| n.push_update(ctx, b"x"));
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(relay);
        let op = sim.with_ctx(friend, |n, ctx| n.fetch(ctx, owner)).unwrap();
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(
            sim.node_mut(friend).take_result(op),
            Some(RelayResult::Unavailable)
        );
    }

    #[test]
    fn capability_minting_is_deterministic_and_secret_dependent() {
        assert_eq!(mint_capability(b"a"), mint_capability(b"a"));
        assert_ne!(mint_capability(b"a"), mint_capability(b"b"));
    }
}

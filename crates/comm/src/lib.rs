//! # agora-comm — group communication architectures
//!
//! §3.2's design space, executable: the same workload (rooms, posts, reads,
//! abuse) can run on four architectures and be compared on connectedness,
//! abuse handling, and privacy — the section's three required properties.
//!
//! * [`centralized`] — the feudal baseline: one operator, total metadata
//!   visibility, one policy, unilateral deplatforming, single point of
//!   failure.
//! * [`federated`] — OStatus-style single-home vs Matrix-style full
//!   replication, with per-instance moderation policies.
//! * [`social`] — socially-aware P2P (PrPl/Persona/Lockr class): trust-gated
//!   access, owner-held data, optional friend caching.
//! * [`ratchet`] — a double-ratchet-style E2E session (forward secrecy,
//!   out-of-order tolerance) built on the in-repo HKDF.
//! * [`guerrilla`] — §5.3's "encrypted services on the cloud": a
//!   capability-gated untrusted relay decoupling authority from
//!   infrastructure.
//! * [`moderation`] — abuse labels and per-authority moderation policies.
//! * [`posts`] — the shared post/read types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod federated;
pub mod guerrilla;
pub mod moderation;
pub mod posts;
pub mod ratchet;
pub mod social;

pub use centralized::{CentralMsg, CentralNode};
pub use federated::{FedMsg, FedNode, ReplicationMode};
pub use guerrilla::{mint_capability, RelayMsg, RelayNode, RelayResult};
pub use moderation::{AbuseKind, ModerationPolicy, ModerationStats, PostLabel};
pub use posts::{Post, ReadResult};
pub use ratchet::{RatchetError, RatchetSession, Sealed};
pub use social::{SocialMsg, SocialNode};

//! Abuse and moderation models.
//!
//! §3.2 requires "Abuse Prevention: platforms should have mechanisms that
//! handle abuse, however abuse is defined", and observes that centralized
//! platforms impose one operator-defined norm while federations (Mastodon,
//! Matrix apps) let each instance define its own rules. This module models
//! abuse as labeled traffic and moderation as an imperfect classifier with a
//! per-authority policy, so architectures can be compared on spam-blocked /
//! legitimate-suppressed rates.

use agora_sim::SimRng;

/// Categories of abuse the paper names (spam, hate speech, brigading, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbuseKind {
    /// Bulk unsolicited content.
    Spam,
    /// Hate speech.
    HateSpeech,
    /// Coordinated harassment.
    Brigading,
}

/// Ground-truth label carried by simulated posts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostLabel {
    /// Legitimate content.
    Legit,
    /// Abusive content of the given kind.
    Abuse(AbuseKind),
}

/// A moderation policy: which kinds an authority moderates, and how well.
#[derive(Clone, Debug)]
pub struct ModerationPolicy {
    /// Kinds this authority acts on (an instance may tolerate some).
    pub moderated_kinds: Vec<AbuseKind>,
    /// P(block | abusive content of a moderated kind) — recall.
    pub detection_rate: f64,
    /// P(block | legitimate content) — the over-moderation / censorship rate
    /// the paper worries about ("moderation is often in direct tension with
    /// freedom of expression").
    pub false_positive_rate: f64,
}

impl ModerationPolicy {
    /// No moderation at all.
    pub fn none() -> ModerationPolicy {
        ModerationPolicy {
            moderated_kinds: Vec::new(),
            detection_rate: 0.0,
            false_positive_rate: 0.0,
        }
    }

    /// A centralized-platform-style policy: moderates everything, decent
    /// recall, non-trivial collateral damage.
    pub fn platform_default() -> ModerationPolicy {
        ModerationPolicy {
            moderated_kinds: vec![AbuseKind::Spam, AbuseKind::HateSpeech, AbuseKind::Brigading],
            detection_rate: 0.9,
            false_positive_rate: 0.02,
        }
    }

    /// A strict policy (government-pressured operator): high recall, high
    /// collateral suppression.
    pub fn strict() -> ModerationPolicy {
        ModerationPolicy {
            moderated_kinds: vec![AbuseKind::Spam, AbuseKind::HateSpeech, AbuseKind::Brigading],
            detection_rate: 0.98,
            false_positive_rate: 0.15,
        }
    }

    /// Spam-only policy (a tolerant federation instance).
    pub fn spam_only() -> ModerationPolicy {
        ModerationPolicy {
            moderated_kinds: vec![AbuseKind::Spam],
            detection_rate: 0.85,
            false_positive_rate: 0.01,
        }
    }

    /// Decide whether this authority blocks a post with the given label.
    pub fn blocks(&self, label: PostLabel, rng: &mut SimRng) -> bool {
        match label {
            PostLabel::Legit => rng.chance(self.false_positive_rate),
            PostLabel::Abuse(kind) => {
                self.moderated_kinds.contains(&kind) && rng.chance(self.detection_rate)
            }
        }
    }
}

/// Aggregate moderation outcomes for one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModerationStats {
    /// Abusive posts delivered (missed).
    pub abuse_delivered: u64,
    /// Abusive posts blocked.
    pub abuse_blocked: u64,
    /// Legitimate posts delivered.
    pub legit_delivered: u64,
    /// Legitimate posts blocked (suppression).
    pub legit_blocked: u64,
}

impl ModerationStats {
    /// Record one decision.
    pub fn record(&mut self, label: PostLabel, blocked: bool) {
        match (label, blocked) {
            (PostLabel::Legit, false) => self.legit_delivered += 1,
            (PostLabel::Legit, true) => self.legit_blocked += 1,
            (PostLabel::Abuse(_), false) => self.abuse_delivered += 1,
            (PostLabel::Abuse(_), true) => self.abuse_blocked += 1,
        }
    }

    /// Fraction of abuse that got through.
    pub fn abuse_leak_rate(&self) -> f64 {
        let total = self.abuse_delivered + self.abuse_blocked;
        if total == 0 {
            0.0
        } else {
            self.abuse_delivered as f64 / total as f64
        }
    }

    /// Fraction of legitimate traffic suppressed.
    pub fn suppression_rate(&self) -> f64 {
        let total = self.legit_delivered + self.legit_blocked;
        if total == 0 {
            0.0
        } else {
            self.legit_blocked as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_blocks_nothing() {
        let mut rng = SimRng::new(1);
        let p = ModerationPolicy::none();
        for _ in 0..100 {
            assert!(!p.blocks(PostLabel::Abuse(AbuseKind::Spam), &mut rng));
            assert!(!p.blocks(PostLabel::Legit, &mut rng));
        }
    }

    #[test]
    fn platform_policy_blocks_most_abuse() {
        let mut rng = SimRng::new(2);
        let p = ModerationPolicy::platform_default();
        let blocked = (0..1000)
            .filter(|_| p.blocks(PostLabel::Abuse(AbuseKind::HateSpeech), &mut rng))
            .count();
        assert!((850..=950).contains(&blocked), "blocked {blocked}");
    }

    #[test]
    fn unmoderated_kind_passes() {
        let mut rng = SimRng::new(3);
        let p = ModerationPolicy::spam_only();
        for _ in 0..100 {
            assert!(!p.blocks(PostLabel::Abuse(AbuseKind::Brigading), &mut rng));
        }
        let spam_blocked = (0..1000)
            .filter(|_| p.blocks(PostLabel::Abuse(AbuseKind::Spam), &mut rng))
            .count();
        assert!(spam_blocked > 700);
    }

    #[test]
    fn strict_policy_suppresses_more_legit_speech() {
        let mut rng = SimRng::new(4);
        let strict = ModerationPolicy::strict();
        let normal = ModerationPolicy::platform_default();
        let count = |p: &ModerationPolicy, rng: &mut SimRng| {
            (0..2000)
                .filter(|_| p.blocks(PostLabel::Legit, rng))
                .count()
        };
        let s = count(&strict, &mut rng);
        let n = count(&normal, &mut rng);
        assert!(s > n * 3, "strict {s} vs normal {n}");
    }

    #[test]
    fn stats_rates() {
        let mut st = ModerationStats::default();
        st.record(PostLabel::Legit, false);
        st.record(PostLabel::Legit, true);
        st.record(PostLabel::Abuse(AbuseKind::Spam), false);
        st.record(PostLabel::Abuse(AbuseKind::Spam), true);
        st.record(PostLabel::Abuse(AbuseKind::Spam), true);
        assert!((st.abuse_leak_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((st.suppression_rate() - 0.5).abs() < 1e-9);
        let empty = ModerationStats::default();
        assert_eq!(empty.abuse_leak_rate(), 0.0);
        assert_eq!(empty.suppression_rate(), 0.0);
    }
}

//! Shared post/feed types for the group-communication architectures.

use agora_sim::NodeId;

use crate::moderation::PostLabel;

/// A group-communication post (room message or feed entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Post {
    /// Authoring client node.
    pub author: NodeId,
    /// Room / feed id.
    pub room: u32,
    /// Author-local sequence number (unique per author).
    pub seq: u64,
    /// Body size in bytes (content itself is not simulated).
    pub bytes: u64,
    /// Ground-truth abuse label.
    pub label: PostLabel,
    /// Simulated send time in microseconds.
    pub sent_at_micros: u64,
}

impl Post {
    /// Wire size of the post envelope.
    pub fn wire_size(&self) -> u64 {
        self.bytes + 32
    }
}

/// Result of a history-read operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadResult {
    /// History served; this many posts visible.
    Ok(usize),
    /// The authority that owns the history was unreachable.
    Unavailable,
    /// Read refused (access control).
    Denied,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_envelope() {
        let p = Post {
            author: NodeId(1),
            room: 0,
            seq: 0,
            bytes: 100,
            label: PostLabel::Legit,
            sent_at_micros: 0,
        };
        assert_eq!(p.wire_size(), 132);
    }
}

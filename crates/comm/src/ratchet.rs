//! A double-ratchet-style session for end-to-end encrypted messaging.
//!
//! §3.2: Matrix "ensures privacy by using end-to-end encryption techniques
//! like the double ratchet algorithm". This implements the *symmetric-key
//! ratchet* half of Signal's double ratchet with the in-repo HKDF: each
//! message advances a one-way chain, giving forward secrecy (compromising
//! today's state reveals nothing about yesterday's message keys). The
//! Diffie–Hellman half is simulated by periodic out-of-band root-key epochs,
//! consistent with the crypto-substitution policy in DESIGN.md §5.
//!
//! Ciphertexts are modeled (key-committing MAC over the plaintext) rather
//! than byte-encrypted: experiments need *who can read what*, and that is
//! exactly what [`RatchetSession::decrypt`] enforces.

use agora_crypto::{hkdf_expand, hkdf_extract, hmac_sha256, Hash256};

/// One end of a pairwise session. Both ends construct it from the same
/// shared secret (delivered out-of-band in the simulation) and stay in sync
/// by message counters.
#[derive(Clone, Debug)]
pub struct RatchetSession {
    send_chain: Hash256,
    recv_chain: Hash256,
    send_count: u64,
    recv_count: u64,
    /// Message keys skipped due to out-of-order delivery, retained bounded.
    skipped: Vec<(u64, Hash256)>,
}

/// A simulated E2E-encrypted envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sealed {
    /// Message counter in the sender's chain (visible metadata!).
    pub counter: u64,
    /// Commitment binding the message key to the plaintext.
    pub binding: Hash256,
    /// The plaintext rides along but is only released by a correct key
    /// (simulation convenience; see module docs).
    payload: Vec<u8>,
}

/// Decryption failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RatchetError {
    /// The envelope's binding does not match any derivable key.
    BadBinding,
    /// Counter too far ahead (flood / desync guard).
    TooFarAhead,
}

const MAX_SKIP: u64 = 256;

fn advance(chain: &Hash256) -> (Hash256, Hash256) {
    // chain' = KDF(chain, "chain"); msg_key = KDF(chain, "msg").
    let prk = hkdf_extract(b"ratchet", chain.as_bytes());
    let out = hkdf_expand(&prk, b"step", 2);
    (out[0], out[1])
}

fn bind(key: &Hash256, counter: u64, payload: &[u8]) -> Hash256 {
    let mut data = counter.to_be_bytes().to_vec();
    data.extend_from_slice(payload);
    hmac_sha256(key.as_bytes(), &data)
}

impl RatchetSession {
    /// Create the initiator side ("I send on chain A, receive on chain B").
    pub fn initiator(shared_secret: &Hash256) -> RatchetSession {
        let prk = hkdf_extract(b"session-root", shared_secret.as_bytes());
        let chains = hkdf_expand(&prk, b"chains", 2);
        RatchetSession {
            send_chain: chains[0],
            recv_chain: chains[1],
            send_count: 0,
            recv_count: 0,
            skipped: Vec::new(),
        }
    }

    /// Create the responder side (mirror of the initiator).
    pub fn responder(shared_secret: &Hash256) -> RatchetSession {
        let mut s = RatchetSession::initiator(shared_secret);
        std::mem::swap(&mut s.send_chain, &mut s.recv_chain);
        s
    }

    /// Encrypt: derive this message's key, advance the send chain (the old
    /// chain key is destroyed — that is the forward secrecy).
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Sealed {
        let (next, msg_key) = advance(&self.send_chain);
        self.send_chain = next;
        let counter = self.send_count;
        self.send_count += 1;
        Sealed {
            counter,
            binding: bind(&msg_key, counter, plaintext),
            payload: plaintext.to_vec(),
        }
    }

    /// Decrypt an envelope, tolerating out-of-order delivery up to
    /// [`MAX_SKIP`] messages ahead.
    pub fn decrypt(&mut self, sealed: &Sealed) -> Result<Vec<u8>, RatchetError> {
        // Out-of-order: check stashed keys first.
        if sealed.counter < self.recv_count {
            if let Some(pos) = self.skipped.iter().position(|(c, _)| *c == sealed.counter) {
                let (_, key) = self.skipped.remove(pos);
                return if bind(&key, sealed.counter, &sealed.payload) == sealed.binding {
                    Ok(sealed.payload.clone())
                } else {
                    Err(RatchetError::BadBinding)
                };
            }
            return Err(RatchetError::BadBinding); // key already destroyed
        }
        if sealed.counter - self.recv_count > MAX_SKIP {
            return Err(RatchetError::TooFarAhead);
        }
        // Advance the chain up to the envelope's counter, stashing skipped
        // message keys.
        let mut chain = self.recv_chain;
        let mut count = self.recv_count;
        let mut stash = Vec::new();
        let msg_key = loop {
            let (next, key) = advance(&chain);
            chain = next;
            if count == sealed.counter {
                break key;
            }
            stash.push((count, key));
            count += 1;
        };
        if bind(&msg_key, sealed.counter, &sealed.payload) != sealed.binding {
            return Err(RatchetError::BadBinding); // do not advance state
        }
        self.recv_chain = chain;
        self.recv_count = sealed.counter + 1;
        self.skipped.extend(stash);
        if self.skipped.len() > MAX_SKIP as usize {
            let excess = self.skipped.len() - MAX_SKIP as usize;
            self.skipped.drain(..excess);
        }
        Ok(sealed.payload.clone())
    }

    /// Wire overhead of an envelope beyond the plaintext.
    pub const OVERHEAD: u64 = 8 + 32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    fn pair() -> (RatchetSession, RatchetSession) {
        let secret = sha256(b"shared");
        (
            RatchetSession::initiator(&secret),
            RatchetSession::responder(&secret),
        )
    }

    #[test]
    fn bidirectional_round_trip() {
        let (mut a, mut b) = pair();
        let m1 = a.encrypt(b"hi bob");
        assert_eq!(b.decrypt(&m1).unwrap(), b"hi bob");
        let m2 = b.encrypt(b"hi alice");
        assert_eq!(a.decrypt(&m2).unwrap(), b"hi alice");
    }

    #[test]
    fn long_conversation_stays_in_sync() {
        let (mut a, mut b) = pair();
        for i in 0..100u32 {
            let msg = format!("msg {i}");
            let sealed = a.encrypt(msg.as_bytes());
            assert_eq!(b.decrypt(&sealed).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn out_of_order_delivery() {
        let (mut a, mut b) = pair();
        let m0 = a.encrypt(b"zero");
        let m1 = a.encrypt(b"one");
        let m2 = a.encrypt(b"two");
        assert_eq!(b.decrypt(&m2).unwrap(), b"two");
        assert_eq!(b.decrypt(&m0).unwrap(), b"zero");
        assert_eq!(b.decrypt(&m1).unwrap(), b"one");
    }

    #[test]
    fn tampered_envelope_rejected_without_desync() {
        let (mut a, mut b) = pair();
        let mut m0 = a.encrypt(b"real");
        m0.payload = b"fake".to_vec();
        assert_eq!(b.decrypt(&m0), Err(RatchetError::BadBinding));
        // State did not advance: the genuine envelope still decrypts.
        let m0 = Sealed {
            counter: 0,
            binding: m0.binding,
            payload: b"real".to_vec(),
        };
        assert_eq!(b.decrypt(&m0).unwrap(), b"real");
    }

    #[test]
    fn eavesdropper_without_secret_cannot_forge() {
        let (mut a, mut b) = pair();
        let _ = a.encrypt(b"first");
        // Mallory saw envelope 0's shape and tries to forge counter 1.
        let forged = Sealed {
            counter: 1,
            binding: sha256(b"guess"),
            payload: b"evil".to_vec(),
        };
        assert_eq!(b.decrypt(&forged), Err(RatchetError::BadBinding));
    }

    #[test]
    fn forward_secrecy_old_key_destroyed() {
        let (mut a, mut b) = pair();
        let m0 = a.encrypt(b"past message");
        assert_eq!(b.decrypt(&m0).unwrap(), b"past message");
        // Replay after the key was consumed: the chain moved on, the key for
        // counter 0 no longer exists anywhere in b's state.
        assert_eq!(b.decrypt(&m0), Err(RatchetError::BadBinding));
    }

    #[test]
    fn flood_guard() {
        let (mut a, mut b) = pair();
        // Simulate an envelope claiming a counter absurdly far ahead.
        let mut m = a.encrypt(b"x");
        m.counter = 10_000;
        assert_eq!(b.decrypt(&m), Err(RatchetError::TooFarAhead));
    }

    #[test]
    fn sessions_with_different_secrets_cannot_interoperate() {
        let mut a = RatchetSession::initiator(&sha256(b"secret-1"));
        let mut b = RatchetSession::responder(&sha256(b"secret-2"));
        let m = a.encrypt(b"hello");
        assert_eq!(b.decrypt(&m), Err(RatchetError::BadBinding));
    }
}

//! Socially-aware peer-to-peer communication (PrPl / Persona / Lockr class).
//!
//! §3.2: users "retain ownership over their data by storing it on home
//! servers", define trust relationships, and "nodes accept connections only
//! from socially-trusted peers" — which buys privacy "at a price of reduced
//! availability". Each user is a peer holding their own feed; only friends
//! may fetch it; optional friend-caching (Persona-style) trades a little
//! privacy for availability when the owner is offline.

use std::collections::HashMap;

use agora_sim::{Ctx, NodeId, Protocol, SimDuration};

use crate::moderation::PostLabel;
use crate::posts::{Post, ReadResult};

/// Wire messages.
#[derive(Clone, Debug)]
pub enum SocialMsg {
    /// Push a new post to a friend (feed update).
    Push(Post),
    /// Ask a peer for the length of `owner`'s feed (from their store/cache).
    Fetch {
        /// Whose feed.
        owner: NodeId,
        /// Requester op id.
        op: u64,
    },
    /// Fetch response.
    FetchResp {
        /// Echoed op id.
        op: u64,
        /// Feed length if served; None = refused or not cached.
        count: Option<usize>,
        /// Whether the response came from a cache rather than the owner.
        from_cache: bool,
    },
}

impl SocialMsg {
    fn wire_size(&self) -> u64 {
        match self {
            SocialMsg::Push(p) => p.wire_size(),
            SocialMsg::Fetch { .. } => 16,
            SocialMsg::FetchResp { .. } => 24,
        }
    }
}

struct PendingRead {
    owner: NodeId,
    tried_cache: bool,
}

/// A socially-aware peer.
pub struct SocialNode {
    friends: Vec<NodeId>,
    my_posts: Vec<Post>,
    /// Friend feeds we cache (friend → their posts we've seen).
    cached: HashMap<NodeId, Vec<Post>>,
    cache_for_friends: bool,
    next_seq: u64,
    next_op: u64,
    pending: HashMap<u64, PendingRead>,
    reads: HashMap<u64, ReadResult>,
    delivered: u64,
}

const FETCH_TIMEOUT: SimDuration = SimDuration::from_secs(8);

impl SocialNode {
    /// A peer with the given friend list. `cache_for_friends` enables
    /// Persona-style availability caching.
    pub fn new(friends: Vec<NodeId>, cache_for_friends: bool) -> SocialNode {
        SocialNode {
            friends,
            my_posts: Vec::new(),
            cached: HashMap::new(),
            cache_for_friends,
            next_seq: 0,
            next_op: 0,
            pending: HashMap::new(),
            reads: HashMap::new(),
            delivered: 0,
        }
    }

    /// Posts pushed to us so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Own feed length.
    pub fn feed_len(&self) -> usize {
        self.my_posts.len()
    }

    /// Post to one's own feed and push to friends.
    pub fn post(&mut self, ctx: &mut Ctx<'_, SocialMsg>, bytes: u64, label: PostLabel) {
        let post = Post {
            author: ctx.id(),
            room: 0,
            seq: self.next_seq,
            bytes,
            label,
            sent_at_micros: ctx.now().micros(),
        };
        self.next_seq += 1;
        self.my_posts.push(post);
        for &f in &self.friends {
            let msg = SocialMsg::Push(post);
            let size = msg.wire_size();
            ctx.send(f, msg, size);
        }
    }

    /// Read a friend's feed. Falls back to mutual-friend caches if the owner
    /// is unreachable and caching is on. Poll [`SocialNode::take_read`].
    pub fn read_feed(&mut self, ctx: &mut Ctx<'_, SocialMsg>, owner: NodeId) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        ctx.send(owner, SocialMsg::Fetch { owner, op }, 16);
        self.pending.insert(
            op,
            PendingRead {
                owner,
                tried_cache: false,
            },
        );
        ctx.set_timer(FETCH_TIMEOUT, op);
        op
    }

    /// Collect a read outcome.
    pub fn take_read(&mut self, op: u64) -> Option<ReadResult> {
        self.reads.remove(&op)
    }

    fn fallback_to_caches(&mut self, ctx: &mut Ctx<'_, SocialMsg>, op: u64) {
        let Some(p) = self.pending.get_mut(&op) else {
            return;
        };
        if p.tried_cache {
            self.pending.remove(&op);
            self.reads.insert(op, ReadResult::Unavailable);
            ctx.metrics().incr("comm.reads_failed", 1);
            return;
        }
        p.tried_cache = true;
        let owner = p.owner;
        // Ask every friend whether they cache the owner's feed.
        for &f in &self.friends {
            if f != owner {
                ctx.send(f, SocialMsg::Fetch { owner, op }, 16);
            }
        }
        ctx.set_timer(FETCH_TIMEOUT, op);
    }
}

impl Protocol for SocialNode {
    type Msg = SocialMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, SocialMsg>, from: NodeId, msg: SocialMsg) {
        match msg {
            SocialMsg::Push(post) => {
                // Only accept pushes from friends (trust-gated connections).
                if !self.friends.contains(&from) {
                    ctx.metrics().incr("comm.untrusted_rejected", 1);
                    return;
                }
                self.delivered += 1;
                ctx.metrics().incr("comm.posts_delivered", 1);
                if matches!(post.label, PostLabel::Abuse(_)) {
                    ctx.metrics().incr("comm.abuse_delivered", 1);
                }
                let latency = (ctx.now().micros() - post.sent_at_micros) as f64 / 1e6;
                ctx.metrics().sample("comm.delivery_secs", latency);
                // Only the friend sees the post — count the (small) exposure.
                ctx.metrics().incr("comm.metadata_observed_friends", 1);
                if self.cache_for_friends {
                    self.cached.entry(from).or_default().push(post);
                }
            }
            SocialMsg::Fetch { owner, op } => {
                let me = ctx.id();
                if owner == me {
                    // Serving our own feed: friends only.
                    let count = if self.friends.contains(&from) {
                        Some(self.my_posts.len())
                    } else {
                        ctx.metrics().incr("comm.untrusted_rejected", 1);
                        None
                    };
                    let resp = SocialMsg::FetchResp {
                        op,
                        count,
                        from_cache: false,
                    };
                    let size = resp.wire_size();
                    ctx.send(from, resp, size);
                } else {
                    // Cache query: serve only to friends, only if caching.
                    let count = if self.friends.contains(&from) && self.cache_for_friends {
                        self.cached.get(&owner).map(|v| v.len())
                    } else {
                        None
                    };
                    let resp = SocialMsg::FetchResp {
                        op,
                        count,
                        from_cache: true,
                    };
                    let size = resp.wire_size();
                    ctx.send(from, resp, size);
                }
            }
            SocialMsg::FetchResp {
                op,
                count,
                from_cache,
            } => {
                let Some(p) = self.pending.get(&op) else {
                    return;
                };
                match count {
                    Some(n) => {
                        self.pending.remove(&op);
                        self.reads.insert(op, ReadResult::Ok(n));
                        ctx.metrics().incr("comm.reads_ok", 1);
                        if from_cache {
                            ctx.metrics().incr("comm.reads_from_cache", 1);
                        }
                    }
                    None if !from_cache && !p.tried_cache => {
                        // Owner explicitly refused (we're not their friend).
                        self.pending.remove(&op);
                        self.reads.insert(op, ReadResult::Denied);
                        ctx.metrics().incr("comm.reads_denied", 1);
                    }
                    None => {
                        // A cache miss from one friend; others may still
                        // answer, or the timeout will conclude Unavailable.
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SocialMsg>, op: u64) {
        if self.pending.contains_key(&op) {
            self.fallback_to_caches(ctx, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::{DeviceClass, Simulation};

    /// A triangle of friends (0-1-2 all mutual) plus a stranger (3).
    fn build(caching: bool, seed: u64) -> (Simulation<SocialNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let n3 = NodeId(3);
        sim.add_node(
            SocialNode::new(vec![n1, n2], caching),
            DeviceClass::PersonalComputer,
        );
        sim.add_node(
            SocialNode::new(vec![n0, n2], caching),
            DeviceClass::PersonalComputer,
        );
        sim.add_node(
            SocialNode::new(vec![n0, n1], caching),
            DeviceClass::PersonalComputer,
        );
        sim.add_node(
            SocialNode::new(vec![], caching),
            DeviceClass::PersonalComputer,
        );
        (sim, vec![n0, n1, n2, n3])
    }

    #[test]
    fn friends_receive_pushes() {
        let (mut sim, n) = build(false, 1);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.node(n[1]).delivered_count(), 1);
        assert_eq!(sim.node(n[2]).delivered_count(), 1);
        assert_eq!(sim.node(n[3]).delivered_count(), 0);
    }

    #[test]
    fn stranger_fetch_denied() {
        let (mut sim, n) = build(false, 2);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(n[3], |node, ctx| node.read_feed(ctx, n[0]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(sim.node_mut(n[3]).take_read(op), Some(ReadResult::Denied));
        assert!(sim.metrics().counter("comm.untrusted_rejected") >= 1);
    }

    #[test]
    fn friend_fetch_succeeds() {
        let (mut sim, n) = build(false, 3);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(n[1], |node, ctx| node.read_feed(ctx, n[0]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.node_mut(n[1]).take_read(op), Some(ReadResult::Ok(1)));
    }

    #[test]
    fn owner_offline_without_caching_is_unavailable() {
        let (mut sim, n) = build(false, 4);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(n[0]);
        let op = sim
            .with_ctx(n[1], |node, ctx| node.read_feed(ctx, n[0]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(
            sim.node_mut(n[1]).take_read(op),
            Some(ReadResult::Unavailable)
        );
    }

    #[test]
    fn friend_cache_rescues_offline_owner() {
        let (mut sim, n) = build(true, 5);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(n[0]);
        // n1 reads n0's feed; owner is down, but mutual friend n2 caches it.
        let op = sim
            .with_ctx(n[1], |node, ctx| node.read_feed(ctx, n[0]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(sim.node_mut(n[1]).take_read(op), Some(ReadResult::Ok(1)));
        assert_eq!(sim.metrics().counter("comm.reads_from_cache"), 1);
    }

    #[test]
    fn untrusted_pushes_rejected() {
        let (mut sim, n) = build(false, 6);
        // Stranger n3 pushes spam directly at n0.
        sim.with_ctx(n[3], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.node(n[0]).delivered_count(), 0);
    }

    #[test]
    fn metadata_exposure_limited_to_friends() {
        let (mut sim, n) = build(false, 7);
        sim.with_ctx(n[0], |node, ctx| node.post(ctx, 100, PostLabel::Legit))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        // Exactly the two friends observed it; no server-class observer.
        assert_eq!(sim.metrics().counter("comm.metadata_observed_friends"), 2);
        assert_eq!(sim.metrics().counter("comm.metadata_observed"), 0);
    }
}

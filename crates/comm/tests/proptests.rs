// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the ratchet and moderation models.

use agora_comm::{ModerationPolicy, PostLabel, RatchetSession};
use agora_crypto::sha256;
use agora_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Arbitrary conversations in arbitrary delivery orders decrypt exactly
    /// once each, as long as reordering stays within the skip window.
    #[test]
    fn ratchet_survives_reordering(
        msgs in proptest::collection::vec(any::<Vec<u8>>(), 1..40),
        order_seed in any::<u64>(),
    ) {
        let secret = sha256(b"prop-session");
        let mut alice = RatchetSession::initiator(&secret);
        let mut bob = RatchetSession::responder(&secret);
        let mut sealed: Vec<_> = msgs.iter().map(|m| alice.encrypt(m)).collect();
        // Shuffle delivery.
        let mut rng = SimRng::new(order_seed);
        let mut order: Vec<usize> = (0..sealed.len()).collect();
        rng.shuffle(&mut order);
        let mut decrypted = vec![false; msgs.len()];
        for &i in &order {
            let got = bob.decrypt(&sealed[i]).expect("within skip window");
            prop_assert_eq!(&got, &msgs[i]);
            decrypted[i] = true;
        }
        prop_assert!(decrypted.iter().all(|&d| d));
        // Replays all fail (keys destroyed).
        for s in sealed.drain(..) {
            prop_assert!(bob.decrypt(&s).is_err());
        }
    }

    /// Bidirectional interleaved traffic stays in sync.
    #[test]
    fn ratchet_bidirectional(pattern in proptest::collection::vec(any::<bool>(), 1..60)) {
        let secret = sha256(b"prop-bidir");
        let mut alice = RatchetSession::initiator(&secret);
        let mut bob = RatchetSession::responder(&secret);
        for (i, &a_sends) in pattern.iter().enumerate() {
            let msg = format!("m{i}");
            if a_sends {
                let s = alice.encrypt(msg.as_bytes());
                prop_assert_eq!(bob.decrypt(&s).expect("sync"), msg.as_bytes());
            } else {
                let s = bob.encrypt(msg.as_bytes());
                prop_assert_eq!(alice.decrypt(&s).expect("sync"), msg.as_bytes());
            }
        }
    }

    /// Tampering with the binding always fails decryption and never
    /// desynchronizes the genuine stream.
    #[test]
    fn ratchet_tamper_rejected(msg in any::<Vec<u8>>(), evil in any::<u64>()) {
        let secret = sha256(b"prop-tamper");
        let mut alice = RatchetSession::initiator(&secret);
        let mut bob = RatchetSession::responder(&secret);
        let mut sealed = alice.encrypt(&msg);
        let original = sealed.clone();
        sealed.binding = sha256(&evil.to_be_bytes());
        prop_assert!(bob.decrypt(&sealed).is_err());
        prop_assert_eq!(bob.decrypt(&original).expect("genuine still works"), msg);
    }

    /// Moderation rates converge to the configured probabilities.
    #[test]
    fn moderation_rates_converge(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let p = ModerationPolicy::platform_default();
        let n = 2000;
        let blocked_abuse = (0..n)
            .filter(|_| p.blocks(PostLabel::Abuse(agora_comm::AbuseKind::Spam), &mut rng))
            .count() as f64 / n as f64;
        let blocked_legit = (0..n)
            .filter(|_| p.blocks(PostLabel::Legit, &mut rng))
            .count() as f64 / n as f64;
        prop_assert!((blocked_abuse - p.detection_rate).abs() < 0.05,
            "abuse block rate {blocked_abuse}");
        prop_assert!((blocked_legit - p.false_positive_rate).abs() < 0.02,
            "legit block rate {blocked_legit}");
    }
}

//! E10/E11: the paper's §5 research agenda, implemented and measured.
//!
//! * E10 — §5.1 "eliminating single points of failure in federated
//!   approaches": client read-failover across replicated instances.
//! * E11 — §5.3 "guerrilla tactics such as running encrypted services on
//!   the cloud" / "decoupling authority from infrastructure": the
//!   capability-gated encrypted relay.

use agora_comm::{
    CentralNode, FedNode, ModerationPolicy, PostLabel, ReadResult, RelayNode, RelayResult,
    ReplicationMode, SocialNode,
};
use agora_sim::{DeviceClass, NodeId, SimDuration, Simulation};

use super::Report;

/// E10 results.
#[derive(Clone, Debug)]
pub struct E10Result {
    /// Read success without backups when the client's home dies.
    pub replicated_no_failover: f64,
    /// Read success with backups when the client's home dies.
    pub replicated_with_failover: f64,
    /// Same failover clients on a single-home federation (the limit case).
    pub single_home_with_failover: f64,
    /// Failover attempts recorded.
    pub failovers: u64,
}

fn failover_run(seed: u64, mode: ReplicationMode, backups: bool) -> (f64, u64) {
    const N: usize = 4;
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..N as u32).map(NodeId).collect();
    for i in 0..N {
        let peers = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(peers, mode, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
    }
    let mut clients = Vec::new();
    for i in 0..N {
        let home = instance_ids[i];
        let backup_list: Vec<NodeId> = if backups {
            instance_ids
                .iter()
                .copied()
                .filter(|&p| p != home)
                .collect()
        } else {
            Vec::new()
        };
        for _ in 0..2 {
            clients.push(sim.add_node(
                FedNode::client_with_backups(home, backup_list.clone()),
                DeviceClass::PersonalComputer,
            ));
        }
    }
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    // Some history.
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.post(ctx, 1, 150, PostLabel::Legit));
    }
    sim.run_for(SimDuration::from_secs(10));
    // Half the instances die — including the room origin.
    sim.kill(instance_ids[0]);
    sim.kill(instance_ids[1]);
    // Everyone reads.
    let mut reads = Vec::new();
    for &c in &clients {
        if let Some(op) = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)) {
            reads.push((c, op));
        }
    }
    sim.run_for(SimDuration::from_mins(3));
    let mut ok = 0usize;
    let total = reads.len();
    for (c, op) in reads {
        if matches!(sim.node_mut(c).take_read(op), Some(ReadResult::Ok(_))) {
            ok += 1;
        }
    }
    (
        ok as f64 / total.max(1) as f64,
        sim.metrics().counter("comm.read_failovers"),
    )
}

/// E10: measure how far client failover closes the federated availability
/// gap (and where it cannot help).
pub fn e10_federated_failover(seed: u64) -> (E10Result, Report) {
    let (no_fo, _) = failover_run(seed, ReplicationMode::FullReplication, false);
    let (with_fo, failovers) = failover_run(seed + 1, ReplicationMode::FullReplication, true);
    let (single_fo, _) = failover_run(seed + 2, ReplicationMode::SingleHome, true);
    let result = E10Result {
        replicated_no_failover: no_fo,
        replicated_with_failover: with_fo,
        single_home_with_failover: single_fo,
        failovers,
    };
    let body = format!(
        "Half the federation (including the room origin) dies; every client reads:\n\
         \x20 replicated, no failover   : {:>5.1}% reads succeed (clients of dead homes stranded)\n\
         \x20 replicated, with failover : {:>5.1}% reads succeed ({} failovers exercised)\n\
         \x20 single-home, with failover: {:>5.1}% reads succeed — failover cannot resurrect\n\
         \x20   history whose only copy died with its origin\n\
         Canonical-systems-goals engineering (§5.1) closes the replicated gap;\n\
         the single-home architecture needs replication first.\n",
        result.replicated_no_failover * 100.0,
        result.replicated_with_failover * 100.0,
        result.failovers,
        result.single_home_with_failover * 100.0,
    );
    (
        result,
        Report {
            id: "E10",
            title: "§5.1 implemented: federated failover",
            claim: "federated approaches ... have not been architected with \
                    canonical systems goals in mind, such as fault tolerance \
                    (§5.1, an 'easy problem')",
            body,
        },
    )
}

/// E11 results.
#[derive(Clone, Debug)]
pub struct E11Result {
    /// Pure social P2P read success with the owner offline.
    pub p2p_owner_offline: f64,
    /// Relay-backed read success with the owner offline.
    pub relay_owner_offline: f64,
    /// Relay metadata observations during the relay run.
    pub relay_metadata: u64,
    /// Stranger fetches refused by the capability check.
    pub stranger_refusals: u64,
}

/// E11: the encrypted-relay pattern vs pure social P2P under owner churn.
pub fn e11_guerrilla_relay(seed: u64) -> (E11Result, Report) {
    // -- pure social P2P (no caching: the worst case the relay fixes) -----
    let mut sim = Simulation::new(seed);
    let ids: Vec<NodeId> = (0..4u32).map(NodeId).collect();
    for &id in &ids {
        let friends: Vec<NodeId> = (0..4u32).map(NodeId).filter(|&f| f != id).collect();
        sim.add_node(
            SocialNode::new(friends, false),
            DeviceClass::PersonalComputer,
        );
    }
    sim.with_ctx(ids[0], |n, ctx| n.post(ctx, 200, PostLabel::Legit));
    sim.run_for(SimDuration::from_secs(3));
    sim.kill(ids[0]);
    let mut p2p_ok = 0usize;
    let mut reads = Vec::new();
    for &r in &ids[1..] {
        if let Some(op) = sim.with_ctx(r, |n, ctx| n.read_feed(ctx, ids[0])) {
            reads.push((r, op));
        }
    }
    sim.run_for(SimDuration::from_mins(2));
    let p2p_total = reads.len();
    for (r, op) in reads {
        if matches!(sim.node_mut(r).take_read(op), Some(ReadResult::Ok(_))) {
            p2p_ok += 1;
        }
    }

    // -- relay-backed --------------------------------------------------------
    let mut sim = Simulation::new(seed + 1);
    let relay = sim.add_node(RelayNode::relay(), DeviceClass::DatacenterServer);
    let owner = sim.add_node(
        RelayNode::user(relay, b"e11-owner"),
        DeviceClass::PersonalComputer,
    );
    let mut friends = Vec::new();
    for i in 0..3 {
        let f = sim.add_node(
            RelayNode::user(relay, format!("e11-friend-{i}").as_bytes()),
            DeviceClass::PersonalComputer,
        );
        sim.node_mut(f).subscribe(owner, b"e11-owner");
        friends.push(f);
    }
    let stranger = sim.add_node(
        RelayNode::user(relay, b"e11-stranger"),
        DeviceClass::PersonalComputer,
    );
    sim.with_ctx(owner, |n, ctx| n.register(ctx));
    sim.run_for(SimDuration::from_secs(2));
    sim.with_ctx(owner, |n, ctx| n.push_update(ctx, b"post one"));
    sim.run_for(SimDuration::from_secs(3));
    sim.kill(owner);
    let mut relay_ok = 0usize;
    let mut ops = Vec::new();
    for &f in &friends {
        if let Some(op) = sim.with_ctx(f, |n, ctx| n.fetch(ctx, owner)) {
            ops.push((f, op));
        }
    }
    let s_op = sim.with_ctx(stranger, |n, ctx| n.fetch(ctx, owner));
    sim.run_for(SimDuration::from_mins(2));
    let relay_total = ops.len();
    for (f, op) in ops {
        if matches!(
            sim.node_mut(f).take_result(op),
            Some(RelayResult::Decrypted(n)) if n > 0
        ) {
            relay_ok += 1;
        }
    }
    if let Some(op) = s_op {
        let _ = sim.node_mut(stranger).take_result(op);
    }

    let result = E11Result {
        p2p_owner_offline: p2p_ok as f64 / p2p_total.max(1) as f64,
        relay_owner_offline: relay_ok as f64 / relay_total.max(1) as f64,
        relay_metadata: sim.metrics().counter("comm.metadata_observed_relay"),
        stranger_refusals: sim.metrics().counter("comm.relay_refusals"),
    };
    let body = format!(
        "Owner posts once, then goes offline; friends read the feed:\n\
         \x20 pure social P2P (no caches)      : {:>5.1}% reads succeed\n\
         \x20 encrypted relay on untrusted cloud: {:>5.1}% reads succeed\n\
         The relay held only sealed envelopes (E2E ratchet) behind a \
         capability check:\n\
         \x20 stranger fetches refused          : {}\n\
         \x20 relay metadata observations       : {} (pushes + fetches — the \
         residual cost)\n\
         Authority stays with the keyholder; the cloud is a commodity (§5.3).\n",
        result.p2p_owner_offline * 100.0,
        result.relay_owner_offline * 100.0,
        result.stranger_refusals,
        result.relay_metadata,
    );
    (
        result,
        Report {
            id: "E11",
            title: "§5.3 implemented: encrypted services on untrusted clouds",
            claim: "decoupling authority from infrastructure: ... 'guerrilla' \
                    tactics such as running encrypted services on the cloud \
                    (§5.3, a 'hard problem')",
            body,
        },
    )
}

/// The centralized ceiling E10/E11 aim at (for context in reports).
pub fn centralized_read_ceiling(seed: u64) -> f64 {
    let mut sim = Simulation::new(seed);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let c = sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer);
    sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
    sim.run_for(SimDuration::from_secs(1));
    sim.with_ctx(c, |n, ctx| {
        n.post(ctx, 1, 100, PostLabel::Legit);
    });
    sim.run_for(SimDuration::from_secs(2));
    let op = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)).unwrap();
    sim.run_for(SimDuration::from_secs(10));
    match sim.node_mut(c).take_read(op) {
        Some(ReadResult::Ok(_)) => 1.0,
        _ => 0.0,
    }
}

/// Flatten an E10 run into harness metrics (keys `e10.*`).
pub fn e10_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e10_federated_failover(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e10.replicated_no_failover", r.replicated_no_failover);
    m.gauge_set("e10.replicated_with_failover", r.replicated_with_failover);
    m.gauge_set("e10.single_home_with_failover", r.single_home_with_failover);
    m.incr("e10.failovers", r.failovers);
    m
}

/// Flatten an E11 run into harness metrics (keys `e11.*`).
pub fn e11_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e11_guerrilla_relay(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e11.p2p_owner_offline", r.p2p_owner_offline);
    m.gauge_set("e11.relay_owner_offline", r.relay_owner_offline);
    m.incr("e11.relay_metadata", r.relay_metadata);
    m.incr("e11.stranger_refusals", r.stranger_refusals);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_failover_closes_the_gap() {
        let (r, report) = e10_federated_failover(81);
        assert!(
            r.replicated_with_failover > r.replicated_no_failover,
            "{r:?}"
        );
        assert!(r.replicated_with_failover >= 0.95, "{r:?}");
        assert!(r.failovers >= 1);
        // The limit case: single-home origin loss is beyond failover.
        assert!(
            r.single_home_with_failover < r.replicated_with_failover,
            "{r:?}"
        );
        assert!(report.body.contains("failover"));
    }

    #[test]
    fn e11_relay_restores_availability_privately() {
        let (r, report) = e11_guerrilla_relay(91);
        assert_eq!(r.p2p_owner_offline, 0.0, "{r:?}");
        assert_eq!(r.relay_owner_offline, 1.0, "{r:?}");
        assert!(r.stranger_refusals >= 1);
        assert!(r.relay_metadata > 0, "the honest cost is visible");
        assert!(report.body.contains("capability"));
    }

    #[test]
    fn centralized_ceiling_is_one() {
        assert_eq!(centralized_read_ceiling(99), 1.0);
    }
}

//! E18: mutable-app hosting — typed contracts with delta sync vs a
//! centralized application server, under the E16 population day.
//!
//! §3.4 calls hostless web *applications* the hardest survey row:
//! `agora-web` (E7) serves immutable bundles, but real apps mutate.
//! `agora-app` hosts a deterministic [`Contract`] on consumer devices: a
//! publisher pushes signed deltas to a subscriber swarm, subscribers
//! hold summaries and pull exactly the missing suffix, and the flash
//! crowd's reads land on the replicas — not on the author. The
//! centralized comparison serves the same contract from one datacenter
//! server that every read round-trips to.
//!
//! Both shipped contracts run the same diurnal day (writes at a fixed
//! authoring cadence, reads at population scale via the E16 cohort
//! schedule): the append-log guestbook and the LWW key-value document.
//! Measured per mode: weighted read availability, staleness (the
//! substrate's `app.delta_lag` publish-to-apply histogram for contract
//! mode; drain-granularity read latency for centralized), peak serving
//! overload on whoever the demand hits, the *author's* peak uplink
//! utilization (real modeled bytes out of the authority, not weights),
//! and how long after the flash crowd every live replica has converged.
//! A small Kademlia phase checks both signed manifests are discoverable
//! by app key before any state moves.

use agora_app::{AppNode, AppPublisher, AppResult, Contract, ContractKind, Guestbook, KvDoc};
use agora_crypto::sha256;
use agora_dht::{Contact, DhtConfig, DhtNode, DhtResult};
use agora_sim::{DeviceClass, Metrics, NodeId, SimDuration, SimTime, Simulation};
use agora_workload::WorkloadDriver;

use super::exp_workload::{
    e16_spec_cohorts, histogram_quantiles, quantiles, LoadLedger, COHORTS, E16_POPULATIONS,
};
use super::Report;

/// Scheduling tick (matches E16: demand integrates per tick).
const TICK: SimDuration = SimDuration::from_mins(15);
/// One simulated day.
const DAY: SimDuration = SimDuration::from_days(1);
/// Drain cadence for pending reads (latency resolution, centralized).
const DRAIN: SimDuration = SimDuration::from_secs(30);
/// Authoring cadence: ops submitted per tick, from rotating writers.
const OPS_PER_TICK: u64 = 2;
/// Subscriber replicas hosting the contract (contract mode; churnable).
const SUBSCRIBERS: usize = 24;
/// Writer/reader endpoints (both modes; always on).
const GATEWAYS: usize = 6;
/// When the E16 flash crowd has fully decayed (start + ramp + plateau +
/// decay), as an offset from the workload's install instant.
const FLASH_END: SimDuration = SimDuration::from_secs(53_100);

/// One hosting mode's day under the app workload.
#[derive(Clone, Copy, Debug)]
pub struct AppOutcome {
    /// Weighted fraction of reads that found a live serving replica
    /// (contract) or completed against the server (centralized).
    pub availability: f64,
    /// Median staleness: publish-to-apply delta lag (contract) or
    /// drain-granularity read latency (centralized), seconds.
    pub p50: f64,
    /// P99 of the same series.
    pub p99: f64,
    /// Peak uplink-overload factor on the serving side (weighted modeled
    /// bytes per tick against the serving device's §4 uplink).
    pub peak_overload: f64,
    /// The author's peak per-tick uplink utilization, from the real bytes
    /// the authority sent (pushes, bootstraps, pulls, reads) — the cost
    /// of *hosting* the app, as a fraction of its device uplink.
    pub publisher_peak_util: f64,
    /// Seconds past the flash crowd's end until every live replica holds
    /// the full log (0 when already converged at the boundary;
    /// centralized reads are always current, so 0 by construction).
    pub convergence_secs: f64,
    /// Final canonical state size in bytes.
    pub state_bytes: u64,
    /// Aggregate (weighted) read requests the day generated.
    pub requests: u64,
}

/// E18 at one population: both contracts, both hosting modes.
#[derive(Clone, Copy, Debug)]
pub struct E18Result {
    /// Swept population.
    pub population: u64,
    /// Guestbook (append log) on the centralized server.
    pub guestbook_central: AppOutcome,
    /// Guestbook on the delta-sync substrate.
    pub guestbook_contract: AppOutcome,
    /// LWW key-value document on the centralized server.
    pub kv_central: AppOutcome,
    /// LWW key-value document on the delta-sync substrate.
    pub kv_contract: AppOutcome,
    /// Signed app manifests found by the Kademlia discovery phase (of
    /// [`GATEWAYS`] lookups per contract kind).
    pub discovery_found: u64,
    /// Mean lookup hop count across successful discoveries.
    pub discovery_hops: f64,
}

/// One app day: a publisher (contract mode, consumer PC) or server
/// (centralized, datacenter) hosting contract `C`, rotating gateway
/// writers at [`OPS_PER_TICK`], and the E16 cohort schedule driving
/// population-scale reads. `make_op` builds the deterministic op for
/// (tick, slot, now).
fn run_app<C, F>(
    seed: u64,
    population: u64,
    identity: &[u8],
    centralized: bool,
    mut make_op: F,
) -> AppOutcome
where
    C: Contract,
    F: FnMut(u64, u64, SimTime) -> C::Op,
{
    let spec = e16_spec_cohorts(population, COHORTS);
    let mut sim: Simulation<AppNode<C>> = Simulation::new(seed);
    let (authority, auth_class) = if centralized {
        (
            sim.add_node(
                AppNode::server(identity, "e18"),
                DeviceClass::DatacenterServer,
            ),
            DeviceClass::DatacenterServer,
        )
    } else {
        // The paper's point: the author hosts from a consumer uplink.
        (
            sim.add_node(
                AppNode::publisher(identity, "e18"),
                DeviceClass::PersonalComputer,
            ),
            DeviceClass::PersonalComputer,
        )
    };
    let app = sim.node(authority).app_id();
    let subscribers: Vec<NodeId> = if centralized {
        Vec::new()
    } else {
        (0..SUBSCRIBERS)
            .map(|_| {
                sim.add_node(
                    AppNode::subscriber(authority, app),
                    DeviceClass::PersonalComputer,
                )
            })
            .collect()
    };
    let gateways: Vec<NodeId> = (0..GATEWAYS)
        .map(|_| sim.add_node(AppNode::client(authority), DeviceClass::PersonalComputer))
        .collect();
    // Let subscriptions bootstrap before demand starts.
    sim.run_for(SimDuration::from_secs(5));

    // Only the replica swarm churns; the author and endpoints stay up
    // (the centralized server is datacenter infrastructure, and E18
    // measures replica churn, not author churn).
    let sched = spec.compile(seed ^ 0xE18, &subscribers, DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let serving: Vec<(NodeId, DeviceClass)> = if centralized {
        vec![(authority, auth_class)]
    } else {
        subscribers
            .iter()
            .map(|&s| (s, DeviceClass::PersonalComputer))
            .collect()
    };
    let mut ledger = LoadLedger::new(&serving);
    let (mut ok_w, mut total_w) = (0.0f64, 0.0f64);
    let mut pending: Vec<(NodeId, u64, f64, SimTime)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut rr = 0usize;
    let mut publisher_peak_util = 0.0f64;
    let mut prev_sent = 0u64;
    let mut convergence_secs = f64::NAN;
    let base = sim.now();
    let flash_end = base + FLASH_END;
    let uplink_bps = auth_class.profile().uplink_bps as f64;
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        // Authoring: rotating gateway writers submit this tick's ops.
        for j in 0..OPS_PER_TICK {
            let w = gateways[((k * OPS_PER_TICK + j) % GATEWAYS as u64) as usize];
            let now = sim.now();
            let op = make_op(k, j, now);
            sim.with_ctx(w, |n, ctx| n.start_submit(ctx, &op));
        }
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                total_w += d.weight;
                let state_bytes = sim.node(authority).state_bytes();
                if centralized {
                    // Every weighted read round-trips the server; issue a
                    // representative real read through a gateway.
                    ledger.add(authority, d.weight, state_bytes);
                    let g = gateways[rr % gateways.len()];
                    rr += 1;
                    let now = sim.now();
                    if let Some(op) = sim.with_ctx(g, |n, ctx| n.start_read(ctx)) {
                        pending.push((g, op, d.weight, now));
                    }
                } else {
                    // Reads land on whichever replica is awake: scan the
                    // swarm round-robin for a live one.
                    let n = subscribers.len();
                    let mut served = false;
                    for i in 0..n {
                        let s = subscribers[(rr + i) % n];
                        if sim.is_up(s) {
                            ledger.add(s, d.weight, state_bytes);
                            ok_w += d.weight;
                            served = true;
                            break;
                        }
                    }
                    rr += 1;
                    let _ = served;
                }
            });
            let now = t;
            pending.retain(|&(g, op, w, t0)| match sim.node_mut(g).take_result(op) {
                Some(r) => {
                    if matches!(r, AppResult::Read { .. }) {
                        ok_w += w;
                        latencies.push((now - t0).secs_f64());
                    }
                    false
                }
                None => true,
            });
        }
        // Author uplink: real bytes the authority put on the wire this
        // tick, against its own device class.
        let sent = sim.node(authority).sent_app_bytes();
        let tick_util = (sent - prev_sent) as f64 * 8.0 / TICK.secs_f64() / uplink_bps;
        publisher_peak_util = publisher_peak_util.max(tick_util);
        prev_sent = sent;
        // Convergence: first tick boundary past the flash crowd where
        // every live replica holds the authority's full log.
        if !centralized && convergence_secs.is_nan() && t >= flash_end {
            let pub_seq = sim.node(authority).pub_seq();
            let live_converged = subscribers
                .iter()
                .filter(|&&s| sim.is_up(s))
                .all(|&s| sim.node(s).applied_ops() == pub_seq);
            if live_converged {
                convergence_secs = (t - flash_end).secs_f64();
            }
        }
        let (tick_demand, tick_util_served) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util_served);
        sim.probe_note("app.state_bytes", sim.node(authority).state_bytes() as f64);
        if !subscribers.is_empty() {
            let lag_sum: f64 = subscribers
                .iter()
                .filter(|&&s| sim.is_up(s))
                .map(|&s| sim.node(s).last_lag_secs())
                .sum();
            let up = subscribers.iter().filter(|&&s| sim.is_up(s)).count();
            sim.probe_note("app.delta_lag", lag_sum / up.max(1) as f64);
        }
    }
    sim.run_for(SimDuration::from_mins(10));
    for (g, op, w, t0) in pending {
        if matches!(
            sim.node_mut(g).take_result(op),
            Some(AppResult::Read { .. })
        ) {
            ok_w += w;
            latencies.push((sim.now() - t0).secs_f64());
        }
    }
    let (p50, _, p99) = if centralized {
        quantiles(latencies.iter().copied())
    } else {
        histogram_quantiles(sim.metrics(), "app.delta_lag")
    };
    AppOutcome {
        availability: if total_w > 0.0 { ok_w / total_w } else { 0.0 },
        p50,
        p99,
        peak_overload: ledger.peak_overload,
        publisher_peak_util,
        convergence_secs: if centralized {
            0.0
        } else if convergence_secs.is_nan() {
            DAY.secs_f64() - FLASH_END.secs_f64()
        } else {
            convergence_secs
        },
        state_bytes: sim.node(authority).state_bytes(),
        requests,
    }
}

/// The two shipped app identities: deterministic seeds, so the DHT
/// discovery phase and both hosting modes address the same apps.
const GUESTBOOK_SEED: &[u8] = b"e18-guestbook";
const KVDOC_SEED: &[u8] = b"e18-kvdoc";

fn run_guestbook(seed: u64, population: u64, centralized: bool) -> AppOutcome {
    run_app::<Guestbook, _>(seed, population, GUESTBOOK_SEED, centralized, |k, j, _| {
        agora_app::GuestEntry {
            body: format!("tick {k:>4} slot {j}: the barriers to overthrowing internet feudalism are social, not technical")
                .into_bytes(),
        }
    })
}

fn run_kvdoc(seed: u64, population: u64, centralized: bool) -> AppOutcome {
    run_app::<KvDoc, _>(seed, population, KVDOC_SEED, centralized, |k, j, now| {
        let slot = (k * OPS_PER_TICK + j) % 8;
        agora_app::KvWrite {
            path: format!("page-{slot}.html"),
            stamp: now.micros(),
            value_hash: agora_app::kv_value_hash(format!("body {k}-{j}").as_bytes()),
            len: 2_000 + 37 * slot,
            delete: false,
        }
    })
}

/// Discovery: both signed app manifests published into a small Kademlia
/// overlay under their app keys; every gateway looks both up and
/// verifies address and kind. Returns (manifests found, mean hops).
fn run_discovery(seed: u64) -> (u64, f64) {
    const DEVICES: usize = 12;
    const LOOKUPS: usize = 4;
    let mut sim: Simulation<DhtNode> = Simulation::new(seed);
    let boot_key = sha256(b"e18-dht-0");
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..DEVICES + LOOKUPS {
        let key = sha256(format!("e18-dht-{i}").as_bytes());
        let bootstrap = if i == 0 {
            vec![]
        } else {
            vec![Contact {
                key: boot_key,
                addr: ids[0],
            }]
        };
        ids.push(sim.add_node(
            DhtNode::new(key, DhtConfig::default(), bootstrap),
            DeviceClass::PersonalComputer,
        ));
    }
    let gateways: Vec<NodeId> = ids[DEVICES..].to_vec();
    for (i, &id) in ids.iter().enumerate() {
        let target = sha256(format!("e18-warm-{i}").as_bytes());
        sim.with_ctx(id, |n, ctx| n.start_find_node(ctx, target));
    }
    sim.run_for(SimDuration::from_secs(60));

    let apps = [
        (
            AppPublisher::new(GUESTBOOK_SEED).sign_manifest(
                ContractKind::Guestbook,
                "guestbook",
                1,
            ),
            ContractKind::Guestbook,
        ),
        (
            AppPublisher::new(KVDOC_SEED).sign_manifest(ContractKind::KvDoc, "site", 1),
            ContractKind::KvDoc,
        ),
    ];
    for (i, (sc, _)) in apps.iter().enumerate() {
        let payload = sc.manifest.encode();
        sim.with_ctx(gateways[i % gateways.len()], |n, ctx| {
            n.start_put(ctx, sc.manifest.app, payload);
        });
    }
    sim.run_for(SimDuration::from_secs(60));

    let mut pending: Vec<(NodeId, u64, agora_crypto::Hash256, ContractKind)> = Vec::new();
    for &g in &gateways {
        for (sc, kind) in &apps {
            if let Some(op) = sim.with_ctx(g, |n, ctx| n.start_get(ctx, sc.manifest.app)) {
                pending.push((g, op, sc.manifest.app, *kind));
            }
        }
    }
    sim.run_for(SimDuration::from_secs(120));
    let mut found = 0u64;
    let mut hops_sum = 0u64;
    for (g, op, key, kind) in pending {
        if let Some(DhtResult::Found { data, hops }) = sim.node_mut(g).take_result(op) {
            if let Ok(m) = agora_app::AppManifest::decode(&data) {
                if m.addressed_to(&key) && m.kind == kind {
                    found += 1;
                    hops_sum += u64::from(hops);
                }
            }
        }
    }
    (found, hops_sum as f64 / found.max(1) as f64)
}

/// E18 at a single population: discovery, then both contracts under both
/// hosting modes.
pub fn e18_app_point(seed: u64, population: u64) -> E18Result {
    let (discovery_found, discovery_hops) = run_discovery(seed + 1);
    E18Result {
        population,
        guestbook_central: run_guestbook(seed + 2, population, true),
        guestbook_contract: run_guestbook(seed + 3, population, false),
        kv_central: run_kvdoc(seed + 4, population, true),
        kv_contract: run_kvdoc(seed + 5, population, false),
        discovery_found,
        discovery_hops,
    }
}

/// E18: sweep the E16 population grid and render the report.
pub fn e18_app_sweep(seed: u64) -> (Vec<E18Result>, Report) {
    let results: Vec<E18Result> = E16_POPULATIONS
        .iter()
        .map(|&p| e18_app_point(seed, p))
        .collect();
    let mut body = String::from(
        "Two typed contracts (append-log guestbook, LWW key-value doc)\n\
         hosted centralized vs on the delta-sync substrate (author on a\n\
         1 Mbps consumer uplink pushing signed deltas to 24 churning\n\
         replicas), E16 diurnal day + 12x flash crowd driving the reads.\n\
         avail | staleness p50/p99 (contract: delta lag; central: read\n\
         latency) | serving overload | author uplink util | convergence:\n",
    );
    for r in &results {
        body.push_str(&format!("\n  population {:>9}:\n", r.population));
        for (name, c) in [
            ("guestbook/central", &r.guestbook_central),
            ("guestbook/contract", &r.guestbook_contract),
            ("kvdoc/central", &r.kv_central),
            ("kvdoc/contract", &r.kv_contract),
        ] {
            body.push_str(&format!(
                "    {name:<19} avail {:>6.3}  stale {:>6.2}/{:>6.2}s  overload {:>9.2}  author {:>8.6}  conv {:>5.0}s\n",
                c.availability, c.p50, c.p99, c.peak_overload, c.publisher_peak_util, c.convergence_secs
            ));
        }
    }
    let d = &results[0];
    body.push_str(&format!(
        "  discovery: {}/8 signed manifests found, {:.1} hops mean\n",
        d.discovery_found, d.discovery_hops
    ));
    let first = &results[0];
    let last = &results[results.len() - 1];
    body.push_str(&format!(
        "\nVerdict: the author's uplink cost of hosting a *mutable* app on\n\
         the substrate is flat in population ({:.6} of 1 Mbps at 10k vs\n\
         {:.6} at 1M — pushes scale with the 24 replicas, not the crowd),\n\
         while the centralized server's serving load grows {:.0}x. The\n\
         price moves to the replica swarm: its peak overload reaches\n\
         {:.0}x a consumer uplink at 1M, and staleness stays bounded\n\
         (P99 {:.1}s) because deltas are pushed and gaps repaired by\n\
         exact summary pulls. Contracts clear §3.4's mutability barrier;\n\
         read capacity remains E16's skew problem.\n",
        first.guestbook_contract.publisher_peak_util,
        last.guestbook_contract.publisher_peak_util,
        last.guestbook_central.peak_overload / first.guestbook_central.peak_overload.max(1e-9),
        last.guestbook_contract.peak_overload,
        last.guestbook_contract.p99,
    ));
    (
        results,
        Report {
            id: "E18",
            title: "Typed-contract mutable apps: delta sync vs centralized hosting",
            claim: "hostless *applications* (§3.4, the survey's hardest row) are \
                    feasible when app state is a deterministic mergeable contract: \
                    the author's hosting cost scales with replicas, not readers — \
                    but read serving re-inherits the flash-crowd skew of E16",
            body,
        },
    )
}

fn outcome_metrics(m: &mut Metrics, prefix: &str, c: &AppOutcome) {
    m.gauge_set(&format!("{prefix}.availability"), c.availability);
    m.gauge_set(&format!("{prefix}.stale_p50_secs"), c.p50);
    m.gauge_set(&format!("{prefix}.stale_p99_secs"), c.p99);
    m.gauge_set(&format!("{prefix}.peak_overload"), c.peak_overload);
    m.gauge_set(&format!("{prefix}.author_peak_util"), c.publisher_peak_util);
    m.gauge_set(&format!("{prefix}.convergence_secs"), c.convergence_secs);
    m.gauge_set(&format!("{prefix}.state_bytes"), c.state_bytes as f64);
}

/// Flatten an E18 run at one population into harness metrics (keys
/// `e18.*`). The population is the harness sweep parameter.
pub fn e18_metrics(seed: u64, population: u64) -> Metrics {
    let r = e18_app_point(seed, population);
    let mut m = Metrics::new();
    outcome_metrics(&mut m, "e18.guestbook.central", &r.guestbook_central);
    outcome_metrics(&mut m, "e18.guestbook.contract", &r.guestbook_contract);
    outcome_metrics(&mut m, "e18.kv.central", &r.kv_central);
    outcome_metrics(&mut m, "e18.kv.contract", &r.kv_contract);
    m.incr("e18.discovery.found", r.discovery_found);
    m.gauge_set("e18.discovery.hops", r.discovery_hops);
    let requests = r.guestbook_central.requests
        + r.guestbook_contract.requests
        + r.kv_central.requests
        + r.kv_contract.requests;
    m.incr("e18.requests", requests);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_point_is_sane_and_separates_modes() {
        let r = e18_app_point(81, 10_000);
        for (name, c) in [
            ("gb/central", &r.guestbook_central),
            ("gb/contract", &r.guestbook_contract),
            ("kv/central", &r.kv_central),
            ("kv/contract", &r.kv_contract),
        ] {
            assert!(c.availability > 0.9, "{name}: {c:?}");
            assert!(c.state_bytes > 0, "{name}: {c:?}");
            assert!(c.requests > 150_000, "{name}: {c:?}");
        }
        // The whole day's log is 192 ops; both modes end at the same size.
        assert_eq!(
            r.guestbook_central.state_bytes,
            r.guestbook_contract.state_bytes
        );
        // Push-based staleness is bounded well under the authoring tick.
        assert!(
            r.guestbook_contract.p99 < TICK.secs_f64(),
            "{:?}",
            r.guestbook_contract
        );
        // Hosting from a consumer uplink costs a sliver of 1 Mbps.
        assert!(
            r.guestbook_contract.publisher_peak_util < 0.25,
            "{:?}",
            r.guestbook_contract
        );
        // Live replicas converge within a couple of ticks of the flash end.
        assert!(
            r.guestbook_contract.convergence_secs <= 2.0 * TICK.secs_f64(),
            "{:?}",
            r.guestbook_contract
        );
        assert!(r.kv_contract.convergence_secs <= 2.0 * TICK.secs_f64());
    }

    #[test]
    fn e18_author_cost_is_flat_while_central_load_scales() {
        let small_c = run_guestbook(87 + 2, 10_000, true);
        let large_c = run_guestbook(87 + 2, 1_000_000, true);
        let small_p = run_guestbook(87 + 3, 10_000, false);
        let large_p = run_guestbook(87 + 3, 1_000_000, false);
        // 100x the readers: the server's serving load scales with them...
        assert!(
            large_c.peak_overload > small_c.peak_overload * 20.0,
            "small {small_c:?} large {large_c:?}"
        );
        // ...the author's real push bytes do not (same ops, same replicas).
        assert!(
            large_p.publisher_peak_util < small_p.publisher_peak_util * 4.0 + 1e-9,
            "small {small_p:?} large {large_p:?}"
        );
        // But the replica swarm inherits the read load.
        assert!(
            large_p.peak_overload > small_p.peak_overload * 20.0,
            "small {small_p:?} large {large_p:?}"
        );
    }

    #[test]
    fn e18_discovery_finds_both_signed_manifests() {
        let (found, hops) = run_discovery(91);
        assert_eq!(found, 8, "all four gateways find both apps");
        assert!((0.0..8.0).contains(&hops), "hops {hops}");
    }

    #[test]
    fn e18_runs_are_deterministic() {
        let a = e18_app_point(93, 100_000);
        let b = e18_app_point(93, 100_000);
        for (x, y) in [
            (&a.guestbook_central, &b.guestbook_central),
            (&a.guestbook_contract, &b.guestbook_contract),
            (&a.kv_central, &b.kv_central),
            (&a.kv_contract, &b.kv_contract),
        ] {
            assert_eq!(x.availability, y.availability);
            assert_eq!(x.p50, y.p50);
            assert_eq!(x.p99, y.p99);
            assert_eq!(x.peak_overload, y.peak_overload);
            assert_eq!(x.publisher_peak_util, y.publisher_peak_util);
            assert_eq!(x.convergence_secs, y.convergence_secs);
            assert_eq!(x.state_bytes, y.state_bytes);
        }
        assert_eq!(a.discovery_found, b.discovery_found);
        assert_eq!(a.discovery_hops, b.discovery_hops);
    }
}

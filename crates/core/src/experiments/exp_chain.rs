//! E9: the costs of blockchains — wasteful mining, the endless ledger,
//! and attack exposure — measured on a running chain.

use agora_chain::{selfish_mining, ChainNode, ChainParams, MinerConfig, Transaction, TxPayload};
use agora_crypto::{sha256, Hash256, SimKeyPair};
use agora_sim::{DeviceClass, NodeId, SimDuration, SimRng, Simulation};

use super::Report;

/// E9 results.
#[derive(Clone, Debug)]
pub struct E9Result {
    /// Hash attempts ground per confirmed transaction (energy proxy).
    pub hashes_per_confirmed_tx: f64,
    /// Ledger bytes accumulated per simulated day (endless-ledger rate).
    pub ledger_bytes_per_day: f64,
    /// Total confirmed transactions in the run.
    pub confirmed_txs: u64,
    /// Reorgs observed among competing miners.
    pub reorgs: u64,
    /// (alpha, selfish revenue share, fair share) at gamma = 0.5.
    pub selfish_curve: Vec<(f64, f64, f64)>,
}

/// E9: run a multi-miner chain for a simulated day under transaction load,
/// then report the §3.1-cited costs.
pub fn e9_chain_costs(seed: u64) -> (E9Result, Report) {
    let params = ChainParams {
        target_block_interval: SimDuration::from_secs(120),
        initial_difficulty_bits: 10,
        ..ChainParams::default()
    };
    let user = SimKeyPair::from_seed(b"e9-user");
    let premine: Vec<(Hash256, u64)> = vec![(user.public().id(), 10_000_000)];

    let mut sim: Simulation<ChainNode> = Simulation::new(seed);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..5 {
        let miner = if i < 3 {
            Some(MinerConfig {
                account: sha256(format!("e9-miner-{i}").as_bytes()),
                // Three equal miners sharing the 120 s target.
                hashrate: 1024.0 / 360.0,
            })
        } else {
            None
        };
        ids.push(sim.add_node(
            ChainNode::new("e9", params.clone(), &premine, miner),
            DeviceClass::DatacenterServer,
        ));
    }
    for &id in &ids {
        let peers = ids.clone();
        sim.node_mut(id).set_peers(peers);
    }

    // A simulated day of steady application traffic.
    let bob = sha256(b"e9-bob");
    let mut nonce = 0u64;
    for hour in 0..24 {
        for _ in 0..4 {
            let tx =
                Transaction::create(&user, nonce, 1, TxPayload::Transfer { to: bob, amount: 1 });
            nonce += 1;
            sim.with_ctx(ids[3], |n, ctx| {
                n.submit_tx(ctx, tx);
            });
            sim.run_for(SimDuration::from_mins(15));
        }
        let _ = hour;
    }
    sim.run_for(SimDuration::from_hours(1));

    let ledger = sim.node(ids[3]).ledger();
    let confirmed = (0..nonce)
        .filter(|_| true) // placeholder for readability; count via state below
        .count() as u64;
    // Count actually-confirmed transfers via the recipient balance.
    let confirmed_txs = ledger.state().balance(&bob);
    let hashes = sim.metrics().counter("chain.hashes_ground");
    let days = sim.now().secs_f64() / 86_400.0;
    let _ = confirmed;

    let mut rng = SimRng::new(seed + 1);
    let mut selfish_curve = Vec::new();
    for alpha in [0.1, 0.25, 0.33, 0.4] {
        let r = selfish_mining(alpha, 0.5, 150_000, &mut rng);
        selfish_curve.push((alpha, r.revenue_share, r.fair_share));
    }

    let result = E9Result {
        hashes_per_confirmed_tx: hashes as f64 / confirmed_txs.max(1) as f64,
        ledger_bytes_per_day: ledger.total_ledger_bytes as f64 / days.max(1e-9),
        confirmed_txs,
        reorgs: sim.metrics().counter("chain.reorgs"),
        selfish_curve,
    };
    let mut body = format!(
        "One simulated day, 3 miners, 96 transfers submitted:\n\
         \x20 confirmed transfers       : {}\n\
         \x20 hashes per confirmed tx   : {:.0}  (PoW energy proxy; scales with difficulty)\n\
         \x20 ledger growth             : {:.0} bytes/day and never shrinks (endless ledger)\n\
         \x20 reorgs among equal miners : {}\n\n\
         Selfish mining (gamma = 0.5):\n",
        result.confirmed_txs,
        result.hashes_per_confirmed_tx,
        result.ledger_bytes_per_day,
        result.reorgs,
    );
    for (alpha, share, fair) in &result.selfish_curve {
        body.push_str(&format!(
            "  alpha {:>4.2} → revenue share {:>5.3} (fair {:>4.2}){}\n",
            alpha,
            share,
            fair,
            if share > fair {
                "  ← profitable deviation"
            } else {
                ""
            }
        ));
    }
    (
        result,
        Report {
            id: "E9",
            title: "Blockchain costs: mining waste, endless ledger, incentive attacks",
            claim: "blockchains suffer the 51% attack, limits on data storage, \
                    wasteful mining computation, the endless ledger problem \
                    (§3.1)",
            body,
        },
    )
}

/// Flatten an E9 run into harness metrics (keys `e9.*`).
pub fn e9_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e9_chain_costs(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e9.hashes_per_confirmed_tx", r.hashes_per_confirmed_tx);
    m.gauge_set("e9.ledger_bytes_per_day", r.ledger_bytes_per_day);
    m.incr("e9.confirmed_txs", r.confirmed_txs);
    m.incr("e9.reorgs", r.reorgs);
    for (alpha, selfish, fair) in &r.selfish_curve {
        m.gauge_set(&format!("e9.selfish_share.a{alpha:.2}"), *selfish);
        m.gauge_set(&format!("e9.fair_share.a{alpha:.2}"), *fair);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_costs_measured() {
        let (r, report) = e9_chain_costs(61);
        assert!(r.confirmed_txs > 50, "{r:?}");
        // Each tx costs vastly more than one hash — that's the waste.
        assert!(r.hashes_per_confirmed_tx > 100.0, "{r:?}");
        assert!(r.ledger_bytes_per_day > 1000.0, "{r:?}");
        // Selfish mining profitable at 1/3 with gamma 0.5.
        let at_33 = r.selfish_curve.iter().find(|(a, _, _)| *a == 0.33).unwrap();
        assert!(
            at_33.1 > at_33.2,
            "selfish should beat fair at 0.33: {at_33:?}"
        );
        assert!(report.body.contains("endless ledger"));
    }
}

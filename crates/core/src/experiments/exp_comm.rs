//! E3 (connectedness under failure) and E4 (privacy/metadata exposure)
//! across the four group-communication architectures.

use agora_comm::{
    CentralNode, FedNode, ModerationPolicy, PostLabel, ReadResult, ReplicationMode, SocialNode,
};
use agora_sim::{DeviceClass, Metrics, NodeId, SimDuration, Simulation};
use agora_workload::CommLoad;

use super::Report;

/// Per-architecture outcome of the availability workload.
#[derive(Clone, Copy, Debug)]
pub struct CommOutcome {
    /// Fraction of posts that reached their audience.
    pub delivery_rate: f64,
    /// Fraction of history reads that succeeded.
    pub read_success: f64,
    /// Server/instance-side metadata observations per delivered post.
    pub metadata_per_post: f64,
}

/// E3 results: outcomes per architecture at the given failure fraction.
#[derive(Clone, Debug)]
pub struct E3Result {
    /// Fraction of infrastructure killed mid-run.
    pub failure_fraction: f64,
    /// Centralized platform.
    pub centralized: CommOutcome,
    /// Federated, single-home history.
    pub single_home: CommOutcome,
    /// Federated, fully replicated history.
    pub replicated: CommOutcome,
    /// Socially-aware P2P (with friend caching).
    pub social: CommOutcome,
}

/// The pinned paper-default load shape (values are part of the checked-in
/// baseline contract — see `agora_workload::load`).
const LOAD: CommLoad = CommLoad::paper_default();
const N_INSTANCES: usize = LOAD.instances;
const CLIENTS_PER_INSTANCE: usize = LOAD.clients_per_instance;
const POSTS_PER_CLIENT: usize = LOAD.posts_per_client;
const READS_PER_CLIENT: usize = LOAD.reads_per_client;

fn outcome_from(metrics: &Metrics, posts_sent: u64, audience: u64) -> CommOutcome {
    let delivered = metrics.counter("comm.posts_delivered");
    let reads_ok = metrics.counter("comm.reads_ok");
    let reads_failed = metrics.counter("comm.reads_failed");
    let denied = metrics.counter("comm.reads_denied");
    let observed = metrics.counter("comm.metadata_observed");
    let total_reads = (reads_ok + reads_failed + denied).max(1);
    CommOutcome {
        delivery_rate: delivered as f64 / (posts_sent * audience).max(1) as f64,
        read_success: reads_ok as f64 / total_reads as f64,
        metadata_per_post: observed as f64 / delivered.max(1) as f64,
    }
}

fn run_centralized(seed: u64, failure_fraction: f64) -> CommOutcome {
    let n_clients = N_INSTANCES * CLIENTS_PER_INSTANCE;
    let mut sim = Simulation::new(seed);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let clients: Vec<NodeId> = (0..n_clients)
        .map(|_| sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer))
        .collect();
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
    }
    sim.run_for(SimDuration::from_secs(5));
    // The "failure fraction" applies to infrastructure: with one server,
    // any fraction ≥ the threshold where we'd kill ≥ 1 of 1 servers.
    let kill_server = failure_fraction >= 1.0 / N_INSTANCES as f64;
    let mut posts_sent = 0u64;
    for round in 0..POSTS_PER_CLIENT {
        if round == 1 && kill_server {
            sim.kill(server);
        }
        for &c in &clients {
            if sim
                .with_ctx(c, |n, ctx| {
                    n.post(ctx, 1, LOAD.post_bytes, PostLabel::Legit)
                })
                .is_some()
            {
                posts_sent += 1;
            }
        }
        sim.run_for(SimDuration::from_secs(10));
    }
    let mut reads = Vec::new();
    for &c in &clients {
        for _ in 0..READS_PER_CLIENT {
            if let Some(op) = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)) {
                reads.push((c, op));
            }
        }
    }
    sim.run_for(SimDuration::from_secs(60));
    for (c, op) in reads {
        // Drain so unanswered reads count via comm.reads_failed (timer).
        let _ = sim.node_mut(c).take_read(op);
    }
    outcome_from(sim.metrics(), posts_sent, (n_clients - 1) as u64)
}

fn run_federated(seed: u64, failure_fraction: f64, mode: ReplicationMode) -> CommOutcome {
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..N_INSTANCES as u32).map(NodeId).collect();
    for i in 0..N_INSTANCES {
        let peers: Vec<NodeId> = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(peers, mode, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
    }
    let mut clients = Vec::new();
    for &instance in &instance_ids {
        for _ in 0..CLIENTS_PER_INSTANCE {
            clients.push(sim.add_node(FedNode::client(instance), DeviceClass::PersonalComputer));
        }
    }
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.run_for(SimDuration::from_secs(5));
    let n_kill = (failure_fraction * N_INSTANCES as f64).round() as usize;
    let mut posts_sent = 0u64;
    for round in 0..POSTS_PER_CLIENT {
        if round == 1 {
            // Kill instances *including the room origin* (instance 0) first —
            // the single-home worst case the paper describes.
            for &inst in instance_ids.iter().take(n_kill) {
                sim.kill(inst);
            }
        }
        for &c in &clients {
            if sim
                .with_ctx(c, |n, ctx| {
                    n.post(ctx, 1, LOAD.post_bytes, PostLabel::Legit)
                })
                .is_some()
            {
                posts_sent += 1;
            }
        }
        sim.run_for(SimDuration::from_secs(10));
    }
    let mut reads = Vec::new();
    for &c in &clients {
        for _ in 0..READS_PER_CLIENT {
            if let Some(op) = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)) {
                reads.push((c, op));
            }
        }
    }
    sim.run_for(SimDuration::from_secs(60));
    for (c, op) in reads {
        let _ = sim.node_mut(c).take_read(op);
    }
    // Audience: clients of live instances only get deliveries; use the full
    // audience for a comparable delivery-rate basis.
    outcome_from(sim.metrics(), posts_sent, (clients.len() - 1) as u64)
}

fn run_social(seed: u64, failure_fraction: f64) -> (CommOutcome, u64) {
    let n = N_INSTANCES * CLIENTS_PER_INSTANCE;
    let mut sim = Simulation::new(seed);
    // Friend graph: ring with chords — each peer befriends the next 4.
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for i in 0..n {
        let friends: Vec<NodeId> = (1..=4).map(|d| ids[(i + d) % n]).collect();
        // Make friendship symmetric by also adding the previous 4.
        let mut all = friends;
        for d in 1..=4 {
            all.push(ids[(i + n - d) % n]);
        }
        sim.add_node(SocialNode::new(all, true), DeviceClass::PersonalComputer);
    }
    sim.run_for(SimDuration::from_secs(2));
    let n_kill = (failure_fraction * n as f64).round() as usize;
    let mut posts_sent = 0u64;
    for round in 0..POSTS_PER_CLIENT {
        if round == 1 {
            for &id in ids.iter().take(n_kill) {
                sim.kill(id);
            }
        }
        for &id in &ids {
            if sim
                .with_ctx(id, |node, ctx| {
                    node.post(ctx, LOAD.post_bytes, PostLabel::Legit)
                })
                .is_some()
            {
                posts_sent += 1;
            }
        }
        sim.run_for(SimDuration::from_secs(10));
    }
    let mut reads = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        for r in 0..READS_PER_CLIENT {
            // Read a friend's feed (friends are the ±4 neighbours).
            let owner = ids[(i + 1 + r) % n];
            if let Some(op) = sim.with_ctx(id, |node, ctx| node.read_feed(ctx, owner)) {
                reads.push((id, op));
            }
        }
    }
    sim.run_for(SimDuration::from_mins(2));
    let mut denied = 0u64;
    for (c, op) in reads {
        if sim.node_mut(c).take_read(op) == Some(ReadResult::Denied) {
            denied += 1;
        }
    }
    // Audience per post = 8 friends.
    (outcome_from(sim.metrics(), posts_sent, 8), denied)
}

/// E3: the same workload on all four architectures while a fraction of the
/// serving infrastructure fails.
pub fn e3_groupcomm_availability(seed: u64, failure_fraction: f64) -> (E3Result, Report) {
    let centralized = run_centralized(seed, failure_fraction);
    let single_home = run_federated(seed + 1, failure_fraction, ReplicationMode::SingleHome);
    let replicated = run_federated(seed + 2, failure_fraction, ReplicationMode::FullReplication);
    let (social, _) = run_social(seed + 3, failure_fraction);
    let result = E3Result {
        failure_fraction,
        centralized,
        single_home,
        replicated,
        social,
    };
    let row = |name: &str, o: &CommOutcome| {
        format!(
            "  {:<24} delivery {:>5.1}%   reads {:>5.1}%\n",
            name,
            o.delivery_rate * 100.0,
            o.read_success * 100.0
        )
    };
    let mut body = format!(
        "Failure fraction: {:.0}% of serving infrastructure killed mid-run\n",
        failure_fraction * 100.0
    );
    body.push_str(&row("centralized", &result.centralized));
    body.push_str(&row("federated single-home", &result.single_home));
    body.push_str(&row("federated replicated", &result.replicated));
    body.push_str(&row("socially-aware P2P", &result.social));
    (
        result,
        Report {
            id: "E3",
            title: "Group communication: connectedness under failures",
            claim: "OStatus-style instances are single points of failure; \
                    Matrix-style replication provides high availability; \
                    socially-aware P2P trades availability away (§3.2)",
            body,
        },
    )
}

/// E4 results: metadata exposure per architecture (no failures).
#[derive(Clone, Debug)]
pub struct E4Result {
    /// Server-side metadata observations per delivered post, centralized.
    pub centralized_metadata: f64,
    /// Same, federated single-home.
    pub single_home_metadata: f64,
    /// Same, federated replicated.
    pub replicated_metadata: f64,
    /// Server-class observations in social P2P (should be zero).
    pub social_server_metadata: f64,
    /// Stranger reads denied by trust gating in the social architecture.
    pub social_denied_reads: u64,
}

/// E4: who sees the metadata?
pub fn e4_privacy(seed: u64) -> (E4Result, Report) {
    let centralized = run_centralized(seed, 0.0);
    let single_home = run_federated(seed + 1, 0.0, ReplicationMode::SingleHome);
    let replicated = run_federated(seed + 2, 0.0, ReplicationMode::FullReplication);
    let (social, denied) = run_social(seed + 3, 0.0);
    let result = E4Result {
        centralized_metadata: centralized.metadata_per_post,
        single_home_metadata: single_home.metadata_per_post,
        replicated_metadata: replicated.metadata_per_post,
        social_server_metadata: social.metadata_per_post,
        social_denied_reads: denied,
    };
    let body = format!(
        "Server/instance metadata observations per delivered post:\n\
         \x20 centralized           : {:.3} (ONE observer — but it sees 100% of posts)\n\
         \x20 federated single-home : {:.3} (home + member instances each observe)\n\
         \x20 federated replicated  : {:.3} (every relaying instance observes)\n\
         \x20 socially-aware P2P    : {:.3} (no server-class observer exists)\n\
         Trust gating: {} stranger reads denied in the social run\n",
        result.centralized_metadata,
        result.single_home_metadata,
        result.replicated_metadata,
        result.social_server_metadata,
        result.social_denied_reads,
    );
    (
        result,
        Report {
            id: "E4",
            title: "Group communication: metadata exposure",
            claim: "even with E2E encryption, metadata is readable by the \
                    servers that store it (§3.2, Matrix); socially-aware P2P \
                    confines exposure to chosen friends",
            body,
        },
    )
}

fn comm_outcome_metrics(m: &mut Metrics, prefix: &str, o: &CommOutcome) {
    m.gauge_set(&format!("{prefix}.delivery_rate"), o.delivery_rate);
    m.gauge_set(&format!("{prefix}.read_success"), o.read_success);
    m.gauge_set(&format!("{prefix}.metadata_per_post"), o.metadata_per_post);
}

/// Flatten an E3 run at one failure fraction into harness metrics
/// (keys `e3.*`). The failure fraction is the harness sweep parameter.
pub fn e3_metrics(seed: u64, failure_fraction: f64) -> Metrics {
    let (r, _) = e3_groupcomm_availability(seed, failure_fraction);
    let mut m = Metrics::new();
    comm_outcome_metrics(&mut m, "e3.centralized", &r.centralized);
    comm_outcome_metrics(&mut m, "e3.single_home", &r.single_home);
    comm_outcome_metrics(&mut m, "e3.replicated", &r.replicated);
    comm_outcome_metrics(&mut m, "e3.social", &r.social);
    m
}

/// Flatten an E4 run into harness metrics (keys `e4.*`).
pub fn e4_metrics(seed: u64) -> Metrics {
    let (r, _) = e4_privacy(seed);
    let mut m = Metrics::new();
    m.gauge_set("e4.centralized_metadata", r.centralized_metadata);
    m.gauge_set("e4.single_home_metadata", r.single_home_metadata);
    m.gauge_set("e4.replicated_metadata", r.replicated_metadata);
    m.gauge_set("e4.social_server_metadata", r.social_server_metadata);
    m.incr("e4.social_denied_reads", r.social_denied_reads);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_no_failures_everyone_works() {
        let (r, _) = e3_groupcomm_availability(21, 0.0);
        assert!(r.centralized.delivery_rate > 0.95, "{r:?}");
        assert!(r.centralized.read_success > 0.95, "{r:?}");
        assert!(r.replicated.read_success > 0.95, "{r:?}");
        assert!(r.single_home.read_success > 0.95, "{r:?}");
        assert!(r.social.read_success > 0.9, "{r:?}");
    }

    #[test]
    fn e3_failures_separate_the_architectures() {
        // Kill 20% of infrastructure (= the only server for centralized,
        // one instance of five for federated, 20% of peers for social).
        let (r, _) = e3_groupcomm_availability(23, 0.2);
        // Centralized collapses entirely.
        assert!(r.centralized.read_success < 0.1, "{:?}", r.centralized);
        // Replicated federation barely notices for reads.
        assert!(r.replicated.read_success > 0.7, "{:?}", r.replicated);
        // Single-home: the origin died, so remote-history reads fail —
        // strictly worse than replicated.
        assert!(
            r.single_home.read_success < r.replicated.read_success,
            "single-home {:?} vs replicated {:?}",
            r.single_home,
            r.replicated
        );
    }

    #[test]
    fn e4_privacy_ordering() {
        let (r, _) = e4_privacy(29);
        // Social P2P: no server-class observations at all.
        assert_eq!(r.social_server_metadata, 0.0);
        // Every other architecture observes at least once per post.
        assert!(r.centralized_metadata > 0.0);
        assert!(r.single_home_metadata > 0.0);
        assert!(r.replicated_metadata > 0.0);
        assert!(
            r.social_denied_reads == 0,
            "friends-only reads in this workload"
        );
    }
}

//! E12 (moderation vs freedom of expression) and E13 (the financing gap).
//!
//! * E12 — §3.2: "moderation is often in direct tension with freedom of
//!   expression"; federations let each instance choose its own norms, which
//!   means the *most tolerant* instance sets the room's abuse floor.
//! * E13 — §2.2/§5.3: "financial constraints are a key limiting factor for
//!   democratized Internet service architectures" — a cost model over the
//!   architecture families, with documented assumptions.

use agora_comm::{AbuseKind, FedNode, ModerationPolicy, PostLabel, ReplicationMode};
use agora_sim::{DeviceClass, NodeId, SimDuration, Simulation};

use super::Report;

/// E12 results: (config label, abuse leak rate, legit suppression rate).
#[derive(Clone, Debug)]
pub struct E12Result {
    /// Outcomes per federation configuration.
    pub rows: Vec<(String, f64, f64)>,
}

fn federation_moderation_run(seed: u64, policies: Vec<ModerationPolicy>) -> (f64, f64) {
    let n = policies.len();
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for (i, policy) in policies.into_iter().enumerate() {
        let peers = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(peers, ReplicationMode::FullReplication, policy),
            DeviceClass::DatacenterServer,
        );
    }
    // One legit user and one abuser per instance, all in one room.
    let mut users = Vec::new();
    for &inst in &instance_ids {
        for _ in 0..2 {
            users.push(sim.add_node(FedNode::client(inst), DeviceClass::PersonalComputer));
        }
    }
    for &u in &users {
        sim.with_ctx(u, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    let rounds = 30u64;
    let mut abuse_sent = 0u64;
    let mut legit_sent = 0u64;
    for _ in 0..rounds {
        for (i, &u) in users.iter().enumerate() {
            let label = if i % 2 == 0 {
                legit_sent += 1;
                PostLabel::Legit
            } else {
                abuse_sent += 1;
                PostLabel::Abuse(AbuseKind::HateSpeech)
            };
            sim.with_ctx(u, |n, ctx| n.post(ctx, 1, 150, label));
        }
        sim.run_for(SimDuration::from_secs(5));
    }
    sim.run_for(SimDuration::from_secs(30));
    let audience = (users.len() - 1) as u64;
    let abuse_delivered = sim.metrics().counter("comm.abuse_delivered");
    let delivered = sim.metrics().counter("comm.posts_delivered");
    let legit_delivered = delivered - abuse_delivered;
    let abuse_leak = abuse_delivered as f64 / (abuse_sent * audience) as f64;
    let suppression = 1.0 - legit_delivered as f64 / (legit_sent * audience) as f64;
    (abuse_leak, suppression)
}

/// E12: moderation vs freedom across federation policy mixes.
pub fn e12_moderation_tension(seed: u64) -> (E12Result, Report) {
    let configs: Vec<(&str, Vec<ModerationPolicy>)> = vec![
        ("all instances: none", vec![ModerationPolicy::none(); 3]),
        (
            "all instances: platform-default",
            vec![ModerationPolicy::platform_default(); 3],
        ),
        ("all instances: strict", vec![ModerationPolicy::strict(); 3]),
        (
            "mixed: strict + default + tolerant",
            vec![
                ModerationPolicy::strict(),
                ModerationPolicy::platform_default(),
                ModerationPolicy::spam_only(), // tolerates hate speech
            ],
        ),
    ];
    let mut rows = Vec::new();
    for (i, (label, policies)) in configs.into_iter().enumerate() {
        let (leak, suppression) = federation_moderation_run(seed + i as u64, policies);
        rows.push((label.to_owned(), leak, suppression));
    }
    let result = E12Result { rows };
    let mut body = format!(
        "{:<36} {:>12} {:>14}\n",
        "federation policy mix", "abuse leak", "legit suppressed"
    );
    for (label, leak, supp) in &result.rows {
        body.push_str(&format!(
            "{:<36} {:>11.1}% {:>13.1}%\n",
            label,
            leak * 100.0,
            supp * 100.0
        ));
    }
    body.push_str(
        "\nThe Pareto frontier is visible: zero moderation leaks everything;\n\
         strict moderation suppresses legitimate speech; and in a *mixed*\n\
         federation the tolerant instance's users leak their abuse into the\n\
         shared room — per-instance norms set only a local floor (§3.2).\n",
    );
    (
        result,
        Report {
            id: "E12",
            title: "Moderation vs freedom of expression across federations",
            claim: "moderation is often in direct tension with freedom of \
                    expression ... federations define their own rules on \
                    abuse (§3.2)",
            body,
        },
    )
}

// ---------------------------------------------------------------------------
// E13 — the financing gap
// ---------------------------------------------------------------------------

/// Who ultimately pays for an architecture's infrastructure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payer {
    /// Operator, recouped by monetizing users (ads / data).
    OperatorViaMonetization,
    /// Volunteer admins and donations.
    Donations,
    /// Users directly (fees).
    UsersDirectly,
    /// Nobody: users' own idle devices.
    OwnDevices,
}

/// Per-user monthly economics of one architecture (USD; documented,
/// sweepable assumptions — this is a §2.2-style back-of-the-envelope).
#[derive(Clone, Debug)]
pub struct CostRow {
    /// Architecture label.
    pub label: &'static str,
    /// Infrastructure cost per user-month.
    pub infra_cost: f64,
    /// Revenue (or recovered value) per user-month under the model.
    pub revenue: f64,
    /// Who pays.
    pub payer: Payer,
}

impl CostRow {
    /// Surplus (negative = structurally underfunded).
    pub fn surplus(&self) -> f64 {
        self.revenue - self.infra_cost
    }
}

/// E13 results.
#[derive(Clone, Debug)]
pub struct E13Result {
    /// One row per architecture.
    pub rows: Vec<CostRow>,
}

/// E13: the financing model. Assumptions (all in the row constructors):
/// a datacenter server amortizes to ~$100/month and serves ~10k active
/// users of a typical OSN workload (hence $0.01/user); ad/data monetization
/// of an active user is ~$2/month (public OSN ARPU figures are $2–$10);
/// a volunteer federation instance costs ~$40/month and hosts ~500 users,
/// funded by ~$15/month of donations; blockchain naming costs users ~$0.50
/// of fees/month amortized; user devices contribute idle resources at ~$0.30
/// of marginal energy.
/// The model is analytic (no randomness); the seed parameter keeps the
/// signature uniform with every other experiment so the harness can drive
/// them all through one entry-point shape.
pub fn e13_financing_gap(_seed: u64) -> (E13Result, Report) {
    let rows = vec![
        CostRow {
            label: "Centralized platform",
            infra_cost: 0.01,
            revenue: 2.00,
            payer: Payer::OperatorViaMonetization,
        },
        CostRow {
            label: "Federated instance",
            infra_cost: 0.08, // $40 / 500 users
            revenue: 0.03,    // $15 donations / 500 users
            payer: Payer::Donations,
        },
        CostRow {
            label: "Blockchain-backed",
            infra_cost: 0.50, // fees + miner costs passed through
            revenue: 0.50,    // paid by users; clears by construction
            payer: Payer::UsersDirectly,
        },
        CostRow {
            label: "Socially-aware P2P",
            infra_cost: 0.30, // marginal device energy/wear
            revenue: 0.00,
            payer: Payer::OwnDevices,
        },
    ];
    let result = E13Result { rows };
    let mut body = format!(
        "{:<22} {:>11} {:>11} {:>10}  payer\n",
        "architecture", "cost/u/mo", "rev/u/mo", "surplus"
    );
    for r in &result.rows {
        body.push_str(&format!(
            "{:<22} {:>10.2}$ {:>10.2}$ {:>9.2}$  {:?}\n",
            r.label,
            r.infra_cost,
            r.revenue,
            r.surplus(),
            r.payer
        ));
    }
    body.push_str(
        "\nThe centralized platform runs a ~200x margin on monetized users —\n\
         that margin funds the engineering the paper says alternatives lack\n\
         (§5.3: 'significant engineering hours go into building Google,\n\
         Facebook, etc.'). Every democratized architecture either runs a\n\
         structural deficit (federation), charges users directly for what\n\
         incumbents give 'free' (blockchain fees), or externalizes cost to\n\
         user devices (P2P). This is §2.2's 'financial constraints are a key\n\
         limiting factor', made explicit. Token incentives (Table 2) are the\n\
         one mechanism that routes payment to providers without an operator.\n",
    );
    (
        result,
        Report {
            id: "E13",
            title: "The financing gap",
            claim: "financial constraints are a key limiting factor for \
                    democratized Internet service architectures (§2.2); \
                    incentivizing development ... is a hard problem (§5.3)",
            body,
        },
    )
}

/// Flatten an E12 run into harness metrics (keys `e12.*`).
pub fn e12_metrics(seed: u64) -> agora_sim::Metrics {
    use super::metric_key_segment;
    let (r, _) = e12_moderation_tension(seed);
    let mut m = agora_sim::Metrics::new();
    for (label, leak, suppression) in &r.rows {
        let key = metric_key_segment(label);
        m.gauge_set(&format!("e12.{key}.abuse_leak"), *leak);
        m.gauge_set(&format!("e12.{key}.legit_suppression"), *suppression);
    }
    m
}

/// Flatten an E13 run into harness metrics (keys `e13.*`).
pub fn e13_metrics(seed: u64) -> agora_sim::Metrics {
    use super::metric_key_segment;
    let (r, _) = e13_financing_gap(seed);
    let mut m = agora_sim::Metrics::new();
    for row in &r.rows {
        let key = metric_key_segment(row.label);
        m.gauge_set(&format!("e13.{key}.infra_cost"), row.infra_cost);
        m.gauge_set(&format!("e13.{key}.revenue"), row.revenue);
        m.gauge_set(&format!("e13.{key}.surplus"), row.surplus());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_pareto_shape() {
        let (r, report) = e12_moderation_tension(71);
        let get = |prefix: &str| {
            r.rows
                .iter()
                .find(|(l, _, _)| l.starts_with(prefix))
                .cloned()
                .expect("row")
        };
        let none = get("all instances: none");
        let default = get("all instances: platform-default");
        let strict = get("all instances: strict");
        let mixed = get("mixed");
        // No moderation leaks (almost) everything, suppresses nothing.
        assert!(none.1 > 0.9, "{none:?}");
        assert!(none.2 < 0.05, "{none:?}");
        // Stricter ⇒ less leak, more suppression.
        assert!(default.1 < none.1);
        assert!(strict.1 <= default.1 + 0.02);
        assert!(
            strict.2 > default.2,
            "strict {strict:?} vs default {default:?}"
        );
        // Mixed leaks more than uniformly-default: the tolerant instance's
        // abusers reach the whole room.
        assert!(
            mixed.1 > default.1,
            "mixed {mixed:?} vs default {default:?}"
        );
        assert!(report.body.contains("Pareto"));
    }

    #[test]
    fn e13_financing_shape() {
        let (r, report) = e13_financing_gap(0);
        let get = |label: &str| r.rows.iter().find(|x| x.label == label).expect("row");
        assert!(get("Centralized platform").surplus() > 1.0);
        assert!(
            get("Federated instance").surplus() < 0.0,
            "structural deficit"
        );
        assert_eq!(get("Blockchain-backed").surplus(), 0.0);
        assert_eq!(get("Socially-aware P2P").revenue, 0.0);
        assert!(report.body.contains("financial constraints"));
    }
}

//! E17: the storage market under fire — durability and repair traffic for
//! erasure coding vs plain replication across escalating chaos.
//!
//! §5's financing argument says decentralized storage dies because nobody
//! pays for durable capacity: providers churn, shards rot, and without an
//! audit/slashing loop the honest majority subsidizes the cheaters. E17
//! runs the live `agora-storage::market` subsystem — staked contracts, a
//! deterministic challenge oracle, slashing, reputation-ranked repair —
//! over a provider fleet containing discarding and partially-keeping
//! cheaters, under the same chaos intensities as E15. Three codecs
//! compete: RS(4, 2), RS(8, 4), and RS(1, 2) (replication as the k = 1
//! special case). The output is durability and repair-traffic curves; the
//! paper-facing claim is that erasure coding holds durability at a
//! fraction of replication's repair bytes, because each repair moves a
//! shard (object/k bytes), not a whole copy.
//!
//! A fourth, `agora-workload`-driven variant routes population-scale
//! demand at the market and answers requests only from *funded* contracts
//! (live stake, live provider, bytes in hand): availability then measures
//! the financing loop itself, not just the bytes.

use agora_sim::{
    AsymPartition, ChaosController, ChaosSpec, CrashWaves, DeviceClass, LinkFlaps, Metrics, NodeId,
    SimDuration, Simulation, Storm,
};
use agora_storage::{MarketSpec, ProviderStrategy, StorageMarket, StorageNode};
use agora_workload::{
    BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, LogNormalSessions, WorkloadDriver,
    WorkloadSpec, ZoneMix,
};

use super::Report;

/// The chaos intensity grid swept by the report and the harness matrix.
pub const E17_INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// Provider fleet size: 4 of every 16 are cheaters (two discard after
/// ack, two keep ~70% of shards), so the audit loop has work to do even
/// at intensity 0.
const N_PROVIDERS: usize = 16;

/// One codec's point on the durability / repair-traffic curve.
#[derive(Clone, Copy, Debug)]
pub struct CodecPoint {
    /// Fraction of objects still reconstructible at the end of the run.
    pub durability: f64,
    /// Bytes re-uploaded by the repair actor (the write side).
    pub repair_bytes: u64,
    /// Bytes read from survivors to reconstruct (erasure amplification).
    pub repair_read_bytes: u64,
    /// Challenges the oracle opened.
    pub challenges: u64,
    /// Challenges that expired (slash events).
    pub slashes: u64,
    /// Total stake slashed to the auditor.
    pub stake_lost: u64,
    /// Objects declared unrecoverable.
    pub objects_lost: u64,
}

/// E17 results at one chaos intensity.
#[derive(Clone, Debug)]
pub struct E17Result {
    /// Fault intensity in [0, 1] scaling the whole chaos schedule.
    pub intensity: f64,
    /// RS(4, 2): 1.5x overhead, repairs move object/4 bytes.
    pub rs42: CodecPoint,
    /// RS(8, 4): same overhead, finer shards, repairs move object/8 bytes.
    pub rs84: CodecPoint,
    /// RS(1, 2): plain 3x replication; repairs move whole objects.
    pub rep: CodecPoint,
}

/// The E15 chaos schedule shape at a given intensity (same knobs, scaled
/// together; kept local so the two experiments can evolve independently).
fn spec_for(intensity: f64) -> ChaosSpec {
    if intensity <= 0.0 {
        return ChaosSpec::default();
    }
    ChaosSpec {
        crash: Some(CrashWaves {
            waves: 2,
            fraction: 0.6 * intensity,
            hold: SimDuration::from_secs(60),
            amnesia: false,
        }),
        flaps: Some(LinkFlaps {
            count: (4.0 * intensity).round() as u32,
            down_for: SimDuration::from_secs(10),
        }),
        asym: (intensity >= 0.5).then_some(AsymPartition {
            fraction: 0.3,
            start_frac: 0.55,
            duration: SimDuration::from_secs(45),
        }),
        storm: Some(Storm {
            peak_loss: 0.25 * intensity,
            latency_factor: 1.0 + 2.0 * intensity,
            steps: 4,
        }),
        dup_rate: 0.05 * intensity,
        reorder: SimDuration::from_millis((50.0 * intensity) as u64),
    }
}

/// The provider fleet: mostly honest, seasoned with both cheating modes.
fn strategy_for(i: usize) -> ProviderStrategy {
    match i % 8 {
        3 => ProviderStrategy::DiscardAfterAck,
        6 => ProviderStrategy::PartialKeep(70),
        _ => ProviderStrategy::Honest,
    }
}

fn market_spec(k: usize, m: usize) -> MarketSpec {
    MarketSpec {
        k,
        m,
        ..MarketSpec::default()
    }
}

fn build_fleet(seed: u64) -> (Simulation<StorageNode>, Vec<NodeId>) {
    let mut sim = Simulation::new(seed);
    let providers: Vec<NodeId> = (0..N_PROVIDERS)
        .map(|i| {
            sim.add_node(
                StorageNode::provider(strategy_for(i)),
                DeviceClass::PersonalComputer,
            )
        })
        .collect();
    (sim, providers)
}

/// Run one codec at one intensity: install the market, install the chaos
/// schedule over the same horizon, and drive both to the horizon (plus a
/// settle window so the last challenges resolve).
fn run_codec(seed: u64, intensity: f64, k: usize, m: usize) -> CodecPoint {
    let spec = market_spec(k, m);
    let (mut sim, providers) = build_fleet(seed);
    let mut market = StorageMarket::install(&mut sim, spec, seed, providers.clone());
    let schedule = spec_for(intensity).compile(seed, &providers, spec.horizon);
    let mut chaos = ChaosController::install(&mut sim, schedule, seed ^ 0x5EED);
    let end = sim.now() + spec.horizon + spec.challenge_ttl;
    market.run_until_with(&mut sim, end, &mut |sim, t| {
        chaos.run_until(sim, t, &mut |_, _| {});
    });
    CodecPoint {
        durability: market.durability(&sim),
        repair_bytes: market.repair_bytes(),
        repair_read_bytes: market.repair_read_bytes(),
        challenges: market.challenges(),
        slashes: market.slashes(),
        stake_lost: market.stake_lost(),
        objects_lost: market.objects_lost(),
    }
}

/// E17 at a single intensity: the same fleet and chaos for all codecs.
pub fn e17_market_point(seed: u64, intensity: f64) -> E17Result {
    E17Result {
        intensity,
        rs42: run_codec(seed, intensity, 4, 2),
        rs84: run_codec(seed + 1, intensity, 8, 4),
        rep: run_codec(seed + 2, intensity, 1, 2),
    }
}

/// The workload-driven variant: population-scale demand routed at the
/// market, answered only by funded contracts. Diurnal churn takes
/// providers offline through the same kill/revive path chaos uses, so
/// churn costs stake exactly as §5 predicts.
#[derive(Clone, Copy, Debug)]
pub struct E17Workload {
    /// Weighted fraction of demand served from funded contracts.
    pub availability: f64,
    /// Slash events over the horizon.
    pub slashes: u64,
    /// Repair bytes moved to keep contracts serviceable.
    pub repair_bytes: u64,
    /// End-of-run durability.
    pub durability: f64,
    /// Aggregate (weighted) requests issued.
    pub requests: f64,
}

fn e17_workload_spec(objects: usize) -> WorkloadSpec {
    WorkloadSpec {
        population: 10_000,
        cohorts: 4,
        actions_per_user_day: 40.0,
        model: DemandModel {
            zones: ZoneMix::single(DiurnalCurve::residential()),
            flash: None,
        },
        ranks: objects,
        zipf_alpha: 0.9,
        sizes: BoundedPareto::new(2_000, 200_000, 1.2),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: SimDuration::from_mins(2),
        rep_cap: 2,
        churn: Some(ChurnCurve {
            offline_at_peak: 0.1,
            offline_at_trough: 0.4,
        }),
    }
}

/// Run the workload variant: RS(4, 2) market + diurnal provider churn.
pub fn e17_workload_point(seed: u64) -> E17Workload {
    let spec = market_spec(4, 2);
    let (mut sim, providers) = build_fleet(seed);
    let mut market = StorageMarket::install(&mut sim, spec, seed, providers.clone());
    let wspec = e17_workload_spec(spec.objects);
    let sched = wspec.compile(seed ^ 0x3017, &providers, spec.horizon);
    let mut driver = WorkloadDriver::install(&sim, sched);
    // Coarse interleave: within each step the market settles first, then
    // the step's demand is issued against the settled placement. Both
    // sides are event-exact internally; only the market-vs-demand
    // ordering is at step granularity.
    let step = SimDuration::from_mins(1);
    let end = sim.now() + spec.horizon + spec.challenge_ttl;
    let mut served = 0.0f64;
    let mut requests = 0.0f64;
    let mut t = sim.now();
    while t < end {
        t = (t + step).min(end);
        market.run_until(&mut sim, t);
        let m = &market;
        driver.run_until(&mut sim, t, &mut |sim, d| {
            requests += d.weight;
            let object = d.rank as usize % spec.objects;
            if m.serviceable(sim, object) {
                served += d.weight;
            }
        });
    }
    E17Workload {
        availability: served / requests.max(1.0),
        slashes: market.slashes(),
        repair_bytes: market.repair_bytes(),
        durability: market.durability(&sim),
        requests,
    }
}

/// E17: sweep the intensity grid and render the codec curves.
pub fn e17_market_sweep(seed: u64) -> (Vec<E17Result>, Report) {
    let results: Vec<E17Result> = E17_INTENSITIES
        .iter()
        .map(|&i| e17_market_point(seed, i))
        .collect();
    let w = e17_workload_point(seed);
    let mut body = String::from(
        "Durability (fraction of objects reconstructible at end of run) and\n\
         repair traffic (bytes re-uploaded by the repair actor) as chaos\n\
         escalates, per codec. The fleet is 16 providers of which 2 discard\n\
         shards after acking and 2 keep only ~70% — the audit/slash loop\n\
         has cheaters to catch even before chaos starts:\n\n\
         \x20 intensity   codec     durability   repair_KiB   slashes   stake_lost\n",
    );
    for r in &results {
        for (name, p) in [
            ("RS(4,2)", &r.rs42),
            ("RS(8,4)", &r.rs84),
            ("RS(1,2)", &r.rep),
        ] {
            body.push_str(&format!(
                "  {:>6.2}      {:<8}  {:>7.3}      {:>8.1}   {:>6}    {:>7}\n",
                r.intensity,
                name,
                p.durability,
                p.repair_bytes as f64 / 1024.0,
                p.slashes,
                p.stake_lost,
            ));
        }
    }
    let last = &results[results.len() - 1];
    let erasure_wins = results
        .iter()
        .any(|r| r.rs42.durability >= r.rep.durability && r.rs42.repair_bytes < r.rep.repair_bytes);
    body.push_str(&format!(
        "\nAt max intensity replication moved {:.0} KiB of repair traffic vs\n\
         {:.0} KiB for RS(4,2) at durability {:.3} vs {:.3} — {}\n",
        last.rep.repair_bytes as f64 / 1024.0,
        last.rs42.repair_bytes as f64 / 1024.0,
        last.rep.durability,
        last.rs42.durability,
        if erasure_wins {
            "erasure coding holds durability at a fraction of the repair cost"
        } else {
            "UNEXPECTED: erasure coding did not beat replication"
        },
    ));
    body.push_str(&format!(
        "\nWorkload variant (RS(4,2) + diurnal provider churn, demand served\n\
         only from funded contracts): availability {:.3} over {:.0} weighted\n\
         requests; churn cost {} slashes and {:.1} KiB of repair — the\n\
         financing loop, not the bytes, is what users experience (§5).\n",
        w.availability,
        w.requests,
        w.slashes,
        w.repair_bytes as f64 / 1024.0,
    ));
    (
        results,
        Report {
            id: "E17",
            title: "Storage market: audit/slashing/repair under chaos",
            claim: "an audited, staked storage market keeps erasure-coded \
                    data durable at a fraction of replication's repair \
                    traffic — the financing loop §5 says decentralized \
                    storage is missing",
            body,
        },
    )
}

fn codec_metrics(m: &mut Metrics, prefix: &str, p: &CodecPoint) {
    m.gauge_set(&format!("{prefix}.durability"), p.durability);
    m.gauge_set(&format!("{prefix}.repair_bytes"), p.repair_bytes as f64);
    m.gauge_set(
        &format!("{prefix}.repair_read_bytes"),
        p.repair_read_bytes as f64,
    );
    m.gauge_set(&format!("{prefix}.challenges"), p.challenges as f64);
    m.gauge_set(&format!("{prefix}.slashes"), p.slashes as f64);
    m.gauge_set(&format!("{prefix}.stake_lost"), p.stake_lost as f64);
    m.gauge_set(&format!("{prefix}.objects_lost"), p.objects_lost as f64);
}

/// Flatten an E17 run at one intensity into harness metrics (keys
/// `e17.<codec>.*`). The intensity is the harness sweep parameter.
pub fn e17_metrics(seed: u64, intensity: f64) -> Metrics {
    let r = e17_market_point(seed, intensity);
    let mut m = Metrics::new();
    codec_metrics(&mut m, "e17.rs42", &r.rs42);
    codec_metrics(&mut m, "e17.rs84", &r.rs84);
    codec_metrics(&mut m, "e17.rep", &r.rep);
    m
}

/// Flatten the workload-driven variant into harness metrics
/// (keys `e17.workload.*`).
pub fn e17_workload_metrics(seed: u64) -> Metrics {
    let w = e17_workload_point(seed);
    let mut m = Metrics::new();
    m.gauge_set("e17.workload.availability", w.availability);
    m.gauge_set("e17.workload.slashes", w.slashes as f64);
    m.gauge_set("e17.workload.repair_bytes", w.repair_bytes as f64);
    m.gauge_set("e17.workload.durability", w.durability);
    m.gauge_set("e17.workload.requests", w.requests);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_audit_loop_catches_cheaters_without_chaos() {
        let r = e17_market_point(51, 0.0);
        // 4 of 16 providers cheat, so slashing happens even at intensity 0.
        for p in [&r.rs42, &r.rs84, &r.rep] {
            assert!(p.challenges > 0);
            assert!(p.slashes > 0, "cheaters must be caught: {p:?}");
            assert!(p.stake_lost > 0);
        }
        // And repair keeps everything durable anyway.
        assert_eq!(r.rs42.durability, 1.0, "{:?}", r.rs42);
        assert_eq!(r.rep.durability, 1.0, "{:?}", r.rep);
    }

    #[test]
    fn e17_erasure_beats_replication_on_repair_traffic() {
        // The acceptance criterion: equal-or-better durability at strictly
        // lower repair bytes for at least one (k, m) point and intensity.
        let wins = E17_INTENSITIES.iter().any(|&i| {
            let r = e17_market_point(51, i);
            r.rs42.durability >= r.rep.durability && r.rs42.repair_bytes < r.rep.repair_bytes
        });
        assert!(wins, "RS(4,2) must beat RS(1,2) replication somewhere");
    }

    #[test]
    fn e17_chaos_increases_repair_traffic() {
        let calm = e17_market_point(52, 0.0);
        let storm = e17_market_point(52, 1.0);
        // Crash waves take providers across challenge deadlines, so chaos
        // must cost extra slashes and repair on top of the cheater baseline.
        let calm_total = calm.rs42.slashes + calm.rs84.slashes + calm.rep.slashes;
        let storm_total = storm.rs42.slashes + storm.rs84.slashes + storm.rep.slashes;
        assert!(
            storm_total > calm_total,
            "storm {storm_total} vs calm {calm_total}"
        );
    }

    #[test]
    fn e17_workload_is_served_by_funded_contracts() {
        let w = e17_workload_point(53);
        assert!(w.requests > 100.0, "{w:?}");
        assert!(
            w.availability > 0.5 && w.availability <= 1.0,
            "availability {w:?}"
        );
        assert_eq!(w.durability, 1.0, "{w:?}");
    }

    #[test]
    fn e17_runs_are_deterministic() {
        let a = e17_market_point(54, 0.5);
        let b = e17_market_point(54, 0.5);
        assert_eq!(a.rs42.durability, b.rs42.durability);
        assert_eq!(a.rs42.repair_bytes, b.rs42.repair_bytes);
        assert_eq!(a.rs84.slashes, b.rs84.slashes);
        assert_eq!(a.rep.stake_lost, b.rep.stake_lost);
        let wa = e17_workload_point(54);
        let wb = e17_workload_point(54);
        assert_eq!(wa.availability, wb.availability);
        assert_eq!(wa.repair_bytes, wb.repair_bytes);
    }
}

//! E1 (the blockchain performance trade) and E2 (naming attack matrix).

use agora_chain::{ChainNode, ChainParams, MinerConfig};
use agora_crypto::{sha256, Hash256, SimKeyPair};
use agora_naming::{
    front_running_game, name_theft_by_rewrite, CentralRegistrar, CertAuthority, NameDb, NameOp,
    NamingRules, WebOfTrust,
};
use agora_sim::{DeviceClass, NodeId, SimDuration, SimRng, Simulation};

use super::Report;

/// E1 results: registration latency/throughput across schemes.
#[derive(Clone, Debug)]
pub struct E1Result {
    /// Centralized registrar round-trip (seconds, simulated PC↔datacenter).
    pub central_latency_secs: f64,
    /// Median blockchain registration-to-confirmation latency (seconds).
    pub chain_latency_secs: f64,
    /// Centralized ops/sec (bounded only by the round trip here).
    pub central_throughput_ops_per_sec: f64,
    /// Chain registrations/sec ceiling (block size / interval).
    pub chain_throughput_ops_per_sec: f64,
    /// How many of the submitted registrations confirmed.
    pub confirmed: usize,
    /// How many were submitted.
    pub submitted: usize,
}

impl E1Result {
    /// Latency penalty factor of consensus over the registrar.
    pub fn latency_factor(&self) -> f64 {
        self.chain_latency_secs / self.central_latency_secs.max(1e-9)
    }
}

/// E1: measure "blockchains essentially trade scalability and performance
/// for global consensus and security" (§3.1).
///
/// The registrar baseline is a request/response over simulated consumer
/// access links; the blockchain path runs a real mining network with
/// 60-second blocks (scaled from Namecoin's 10 minutes; the report notes
/// the scale factor) and waits for the params' confirmation depth.
pub fn e1_naming_tradeoff(seed: u64) -> (E1Result, Report) {
    // --- centralized baseline -------------------------------------------
    let mut registrar = CentralRegistrar::new();
    let pc = DeviceClass::PersonalComputer.profile();
    let dc = DeviceClass::DatacenterServer.profile();
    // One round trip over the access links (jitter-free expectation).
    let central_latency_secs = 2.0 * (pc.base_latency.secs_f64() + dc.base_latency.secs_f64());
    let n_central = 200;
    for i in 0..n_central {
        registrar
            .register(&format!("user-{i}"), sha256(&[i as u8]), sha256(b"z"))
            .expect("fresh name");
    }
    let central_throughput = 1.0 / central_latency_secs;

    // --- blockchain path --------------------------------------------------
    let params = ChainParams {
        target_block_interval: SimDuration::from_secs(60), // 10x scale
        initial_difficulty_bits: 10,
        confirmation_depth: 6,
        ..ChainParams::default()
    };
    let user = SimKeyPair::from_seed(b"e1-user");
    let premine: Vec<(Hash256, u64)> = vec![(user.public().id(), 1_000_000)];

    let mut sim: Simulation<ChainNode> = Simulation::new(seed);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..4 {
        let miner = if i == 0 {
            Some(MinerConfig {
                account: sha256(b"e1-miner"),
                // 2^10 hashes / 60 s target.
                hashrate: 1024.0 / 60.0,
            })
        } else {
            None
        };
        ids.push(sim.add_node(
            ChainNode::new("e1", params.clone(), &premine, miner),
            DeviceClass::DatacenterServer,
        ));
    }
    for &id in &ids {
        let peers = ids.clone();
        sim.node_mut(id).set_peers(peers);
    }
    sim.run_for(SimDuration::from_mins(5));

    let rules = NamingRules {
        min_preorder_age: 1,
        ..NamingRules::default()
    };
    let submitted = 10usize;
    let mut nonce = 0u64;
    let mut submit_times = Vec::new();
    let mut reg_txids = Vec::new();
    for i in 0..submitted {
        let name = format!("user-{i}.agora");
        let salt = i as u64;
        let account = user.public().id();
        let pre = NameOp::Preorder {
            commitment: NameOp::commitment(&name, salt, &account),
        }
        .into_tx(&user, nonce, 1);
        nonce += 1;
        sim.with_ctx(ids[1], |n, ctx| n.submit_tx(ctx, pre));
        // Wait for the preorder to land before revealing.
        sim.run_for(SimDuration::from_mins(3));
        let reg = NameOp::Register {
            name,
            salt,
            zone_hash: sha256(b"zone"),
        }
        .into_tx(&user, nonce, 1);
        nonce += 1;
        let txid = reg.id();
        submit_times.push(sim.now());
        reg_txids.push(txid);
        sim.with_ctx(ids[1], |n, ctx| n.submit_tx(ctx, reg));
        sim.run_for(SimDuration::from_mins(2));
    }
    // Let confirmations accumulate.
    let mut latencies = Vec::new();
    let mut confirmed = 0usize;
    let deadline = sim.now() + SimDuration::from_hours(3);
    let mut pending: Vec<(usize, Hash256)> = reg_txids.iter().copied().enumerate().collect();
    while !pending.is_empty() && sim.now() < deadline {
        sim.run_for(SimDuration::from_mins(1));
        pending.retain(|(i, txid)| {
            if sim.node(ids[0]).ledger().is_confirmed(txid) {
                latencies.push(sim.now().since(submit_times[*i]).secs_f64());
                confirmed += 1;
                false
            } else {
                true
            }
        });
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let chain_latency = latencies
        .get(latencies.len() / 2)
        .copied()
        .unwrap_or(f64::INFINITY);
    let chain_throughput = params.max_block_txs as f64 / params.target_block_interval.secs_f64();

    // Check the names actually resolve via the derived NameDb.
    let db = NameDb::from_ledger(sim.node(ids[0]).ledger(), &rules);
    let resolvable = (0..submitted)
        .filter(|i| {
            db.resolve(
                &format!("user-{i}.agora"),
                sim.node(ids[0]).ledger().best_height(),
            )
            .is_some()
        })
        .count();

    let result = E1Result {
        central_latency_secs,
        chain_latency_secs: chain_latency,
        central_throughput_ops_per_sec: central_throughput,
        chain_throughput_ops_per_sec: chain_throughput,
        confirmed,
        submitted,
    };
    let body = format!(
        "Centralized registrar : {:>10.3} s/op   {:>10.1} ops/s  ({} names registered)\n\
         Blockchain naming     : {:>10.1} s/op   {:>10.2} ops/s  ({}/{} confirmed, {} resolvable)\n\
         Latency penalty factor: {:.0}x  (at 60 s blocks; Namecoin's 600 s blocks ⇒ ~{:.0}x)\n",
        result.central_latency_secs,
        result.central_throughput_ops_per_sec,
        n_central,
        result.chain_latency_secs,
        result.chain_throughput_ops_per_sec,
        confirmed,
        submitted,
        resolvable,
        result.latency_factor(),
        result.latency_factor() * 10.0,
    );
    (
        result,
        Report {
            id: "E1",
            title: "Name registration: consensus vs registrar",
            claim: "blockchains essentially trade scalability and performance \
                    for global consensus and security (§3.1)",
            body,
        },
    )
}

/// E2 results: the attack matrix.
#[derive(Clone, Debug)]
pub struct E2Result {
    /// Steal rate without preorders at 0.9 attacker priority.
    pub front_run_no_preorder: f64,
    /// Steal rate with preorders at 0.9 attacker priority.
    pub front_run_with_preorder: f64,
    /// (alpha, theft probability) for chain rewrites at 6 confirmations.
    pub rewrite_curve: Vec<(f64, f64)>,
    /// Whether a compromised CA's rogue cert was accepted.
    pub ca_compromise_succeeds: bool,
    /// Sybil acceptance at quorum 1 / 2 with one bridged endorsement.
    pub wot_sybil_q1: bool,
    /// Sybil acceptance at quorum 2 with one bridged endorsement.
    pub wot_sybil_q2: bool,
}

/// E2: attack every naming scheme with the §3.1-cited attacks.
pub fn e2_naming_attacks(seed: u64) -> (E2Result, Report) {
    let mut rng = SimRng::new(seed);
    let no_pre = front_running_game(false, 0.9, 2000, &mut rng).steal_rate;
    let with_pre = front_running_game(true, 0.9, 2000, &mut rng).steal_rate;

    let mut rewrite_curve = Vec::new();
    for alpha in [0.1, 0.2, 0.3, 0.4, 0.45, 0.51] {
        let p = name_theft_by_rewrite(alpha, 6, 3000, &mut rng);
        rewrite_curve.push((alpha, p));
    }

    // CA compromise, actually executed.
    let mut ca = CertAuthority::new(b"e2-root");
    let _legit = ca.issue("bank.example", sha256(b"bank-key"));
    let stolen = ca.compromise();
    let rogue_body = agora_crypto::Enc::new()
        .str("bank.example")
        .hash(&sha256(b"attacker-key"))
        .u64(999)
        .done();
    let rogue = agora_naming::Certificate {
        name: "bank.example".into(),
        subject_key: sha256(b"attacker-key"),
        issuer: ca.public(),
        serial: 999,
        signature: stolen.sign(&rogue_body),
    };
    let ca_compromise_succeeds = rogue.verify(&ca.public());

    // WoT Sybil, actually executed.
    let mut wot = WebOfTrust::new();
    let anchor = sha256(b"anchor");
    let honest = sha256(b"honest");
    wot.endorse(anchor, honest);
    let sybils: Vec<Hash256> = (0..8u8)
        .map(|i| sha256(format!("sybil-{i}").as_bytes()))
        .collect();
    let rogue_id = sha256(b"rogue");
    for s in &sybils {
        wot.endorse(*s, rogue_id);
        for t in &sybils {
            if s != t {
                wot.endorse(*s, *t);
            }
        }
    }
    wot.claim(rogue_id, "bank.example", sha256(b"attacker-key"));
    wot.endorse(honest, sybils[0]); // one social-engineered keysigning
    let wot_sybil_q1 = wot.verify(
        &[anchor],
        rogue_id,
        "bank.example",
        sha256(b"attacker-key"),
        4,
        1,
    );
    let wot_sybil_q2 = wot.verify(
        &[anchor],
        rogue_id,
        "bank.example",
        sha256(b"attacker-key"),
        4,
        2,
    );

    let result = E2Result {
        front_run_no_preorder: no_pre,
        front_run_with_preorder: with_pre,
        rewrite_curve,
        ca_compromise_succeeds,
        wot_sybil_q1,
        wot_sybil_q2,
    };
    let mut body = format!(
        "Front-running (attacker priority 0.9):\n\
         \x20 without preorder : {:>5.1}% of names stolen\n\
         \x20 with preorder    : {:>5.1}% of names stolen\n\n\
         Chain-rewrite name theft (6 confirmations):\n",
        100.0 * result.front_run_no_preorder,
        100.0 * result.front_run_with_preorder,
    );
    for (alpha, p) in &result.rewrite_curve {
        body.push_str(&format!(
            "  alpha {:>4.2} → theft probability {:>6.3}\n",
            alpha, p
        ));
    }
    body.push_str(&format!(
        "\nCA compromise mints accepted rogue cert : {}\n\
         WoT Sybil (1 bridge) fools quorum-1      : {}\n\
         WoT Sybil (1 bridge) fools quorum-2      : {}\n",
        result.ca_compromise_succeeds, result.wot_sybil_q1, result.wot_sybil_q2
    ));
    (
        result,
        Report {
            id: "E2",
            title: "Naming attack matrix",
            claim: "CAs and WoT suffer compromise/Sybil weaknesses; \
                    blockchain naming resists below 51% (§3.1)",
            body,
        },
    )
}

/// Flatten an E1 run into harness metrics (keys `e1.*`).
pub fn e1_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e1_naming_tradeoff(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e1.central_latency_secs", r.central_latency_secs);
    m.gauge_set("e1.chain_latency_secs", r.chain_latency_secs);
    m.gauge_set(
        "e1.central_throughput_ops",
        r.central_throughput_ops_per_sec,
    );
    m.gauge_set("e1.chain_throughput_ops", r.chain_throughput_ops_per_sec);
    m.gauge_set("e1.latency_factor", r.latency_factor());
    m.incr("e1.confirmed", r.confirmed as u64);
    m.incr("e1.submitted", r.submitted as u64);
    m
}

/// Flatten an E2 run into harness metrics (keys `e2.*`).
pub fn e2_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e2_naming_attacks(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e2.front_run_no_preorder", r.front_run_no_preorder);
    m.gauge_set("e2.front_run_with_preorder", r.front_run_with_preorder);
    for (alpha, theft) in &r.rewrite_curve {
        m.gauge_set(&format!("e2.rewrite_theft.a{alpha:.2}"), *theft);
    }
    m.gauge_set(
        "e2.ca_compromise_succeeds",
        r.ca_compromise_succeeds as u64 as f64,
    );
    m.gauge_set("e2.wot_sybil_q1", r.wot_sybil_q1 as u64 as f64);
    m.gauge_set("e2.wot_sybil_q2", r.wot_sybil_q2 as u64 as f64);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_chain_orders_of_magnitude_slower() {
        let (r, report) = e1_naming_tradeoff(11);
        assert!(r.confirmed >= r.submitted / 2, "{r:?}");
        assert!(
            r.latency_factor() > 100.0,
            "consensus should cost orders of magnitude: {r:?}"
        );
        assert!(r.central_throughput_ops_per_sec > r.chain_throughput_ops_per_sec);
        assert!(report.body.contains("Latency penalty"));
    }

    #[test]
    fn e2_attack_matrix_shape() {
        let (r, report) = e2_naming_attacks(13);
        assert!(r.front_run_no_preorder > 0.8);
        assert_eq!(r.front_run_with_preorder, 0.0);
        assert!(r.ca_compromise_succeeds);
        assert!(r.wot_sybil_q1);
        assert!(!r.wot_sybil_q2);
        // Theft curve is monotone and jumps to ~1 past 50%.
        let first = r.rewrite_curve.first().unwrap().1;
        let last = r.rewrite_curve.last().unwrap().1;
        assert!(first < 0.05);
        assert!(last > 0.9);
        assert!(report.body.contains("alpha"));
    }
}

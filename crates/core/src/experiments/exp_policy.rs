//! E16 policy variants: demand-adaptive substrates.
//!
//! The E16 day replayed on the consumer-uplink classes with a reactive
//! policy engaged: a `PolicyHub` (crate `agora-policy`) installed as the
//! simulation's probe sink watches observer verdicts and the modeled
//! `net.uplink_util` signal, and the runner acts on its hysteresis level
//! at drain boundaries — gateways cache hot keys (`dht/cache`), admission
//! control sheds and backs arrivals off (`dht/shed`), the storage client
//! re-replicates hot objects through the market path
//! (`storage/replicate`), reserve seeders auto-join the swarm
//! (`swarm/seeders`).
//!
//! Per pair the headline number is the **absorbed fraction**: how much of
//! the policy-off peak uplink overload the policy removed. Seeds match
//! [`e16_population_point`](super::e16_population_point) exactly, so the
//! policy-off rows here are byte-identical to E16's own rows — the
//! dormancy proof that an uninstalled policy changes nothing.

use agora_sim::Metrics;

use super::exp_workload::{
    run_dht_impl, run_storage_impl, run_swarm_impl, ClassOutcome, DhtPolicy, PolicyStats, COHORTS,
    E16_POPULATIONS,
};
use super::Report;

/// One policy's on/off pair on one substrate class, same seed both ways.
#[derive(Clone, Debug)]
pub struct PolicyPair {
    /// Substrate class ("dht", "storage", "swarm").
    pub class: &'static str,
    /// Policy name ("cache", "shed", "replicate", "seeders").
    pub policy: &'static str,
    /// The policy-off outcome (byte-identical to the E16 row).
    pub off: ClassOutcome,
    /// The policy-on outcome under the same seed.
    pub on: ClassOutcome,
    /// Engagement cycles and exact recorded action totals.
    pub stats: PolicyStats,
}

impl PolicyPair {
    /// Fraction of the policy-off peak uplink overload the policy
    /// absorbed: `(off - on) / off`. Zero when the day never overloaded.
    pub fn absorbed(&self) -> f64 {
        if self.off.peak_overload <= 0.0 {
            return 0.0;
        }
        (self.off.peak_overload - self.on.peak_overload) / self.off.peak_overload
    }
}

/// E16 policy results at one population.
#[derive(Clone, Debug)]
pub struct E16PolicyResult {
    /// Simulated population.
    pub population: u64,
    /// All four policy pairs.
    pub pairs: Vec<PolicyPair>,
}

/// Run every policy pair at one population. Class seeds match
/// [`e16_population_point`](super::e16_population_point) (`seed + 2..=4`)
/// so the off rows reproduce E16's rows exactly.
pub fn e16_policy_point(seed: u64, population: u64) -> E16PolicyResult {
    let (dht_off, _) = run_dht_impl(seed + 2, population, COHORTS, DhtPolicy::Off);
    let (dht_cache, cache_stats) = run_dht_impl(seed + 2, population, COHORTS, DhtPolicy::Cache);
    let (dht_shed, shed_stats) = run_dht_impl(seed + 2, population, COHORTS, DhtPolicy::Shed);
    let (sto_off, _) = run_storage_impl(seed + 3, population, COHORTS, false);
    let (sto_on, sto_stats) = run_storage_impl(seed + 3, population, COHORTS, true);
    let (sw_off, _) = run_swarm_impl(seed + 4, population, COHORTS, false);
    let (sw_on, sw_stats) = run_swarm_impl(seed + 4, population, COHORTS, true);
    E16PolicyResult {
        population,
        pairs: vec![
            PolicyPair {
                class: "dht",
                policy: "cache",
                off: dht_off,
                on: dht_cache,
                stats: cache_stats,
            },
            PolicyPair {
                class: "dht",
                policy: "shed",
                off: dht_off,
                on: dht_shed,
                stats: shed_stats,
            },
            PolicyPair {
                class: "storage",
                policy: "replicate",
                off: sto_off,
                on: sto_on,
                stats: sto_stats,
            },
            PolicyPair {
                class: "swarm",
                policy: "seeders",
                off: sw_off,
                on: sw_on,
                stats: sw_stats,
            },
        ],
    }
}

/// E16p: sweep the population grid with each policy engaged and report
/// the absorbed fraction of the policy-off overload peak.
pub fn e16_policy_sweep(seed: u64) -> (Vec<E16PolicyResult>, Report) {
    let results: Vec<E16PolicyResult> = E16_POPULATIONS
        .iter()
        .map(|&p| e16_policy_point(seed, p))
        .collect();
    let mut body = String::from(
        "The E16 day replayed with reactive overload policies subscribed\n\
         to the probe plane (hysteresis over observer verdicts and the\n\
         modeled uplink-utilization signal; actions at drain boundaries\n\
         only). Policy-off rows are byte-identical to E16's; absorbed =\n\
         fraction of the policy-off peak uplink overload removed:\n",
    );
    for r in &results {
        body.push_str(&format!("\n  population {:>9}:\n", r.population));
        for p in &r.pairs {
            body.push_str(&format!(
                "    {:<7} {:<9} overload {:>9.2} -> {:>9.2}  absorbed {:>5.1}%  \
                 avail {:>5.3} -> {:>5.3}  engages {:>2}\n",
                p.class,
                p.policy,
                p.off.peak_overload,
                p.on.peak_overload,
                p.absorbed() * 100.0,
                p.off.availability,
                p.on.availability,
                p.stats.engages,
            ));
        }
    }
    let last = &results[results.len() - 1];
    let best = last
        .pairs
        .iter()
        .max_by(|a, b| a.absorbed().total_cmp(&b.absorbed()))
        .expect("four pairs");
    let still = last
        .pairs
        .iter()
        .map(|p| p.on.peak_overload)
        .fold(f64::MAX, f64::min);
    body.push_str(&format!(
        "\nVerdict: reactive control bends E16's curve without flattening\n\
         it. At 1M users the best absorber ({} {}) removes {:.0}% of the\n\
         {:.0}x policy-off peak, yet every consumer-uplink substrate still\n\
         ends the day overloaded (best remaining peak {:.1}x): demand\n\
         adaptivity narrows — but does not close — the gap the paper's\n\
         \"roughly sufficient\" capacity argument (S5) leaves at the one\n\
         node the flash crowd actually hits.\n",
        best.class,
        best.policy,
        best.absorbed() * 100.0,
        best.off.peak_overload,
        still,
    ));
    (
        results,
        Report {
            id: "E16p",
            title: "Demand-adaptive substrates: reactive overload policies",
            claim: "a decentralized substrate can defend itself against the \
                    flash crowd the paper warns about only by sensing \
                    overload and adapting — caching, shedding, replicating, \
                    or recruiting capacity — and even then the consumer \
                    uplink remains the binding constraint",
            body,
        },
    )
}

/// Flatten the policy pairs at one population into harness metrics (keys
/// `e16.policy.*`). Gauges carry the outcome deltas; counters carry the
/// exact action totals recorded through the policy handle.
pub fn e16_policy_metrics(seed: u64, population: u64) -> Metrics {
    let r = e16_policy_point(seed, population);
    let mut m = Metrics::new();
    for p in &r.pairs {
        let prefix = format!("e16.policy.{}_{}", p.class, p.policy);
        m.gauge_set(&format!("{prefix}.off_peak_overload"), p.off.peak_overload);
        m.gauge_set(&format!("{prefix}.peak_overload"), p.on.peak_overload);
        m.gauge_set(&format!("{prefix}.absorbed"), p.absorbed());
        m.gauge_set(&format!("{prefix}.availability"), p.on.availability);
        m.gauge_set(&format!("{prefix}.busiest_share"), p.on.busiest_share);
        m.incr(&format!("{prefix}.engages"), p.stats.engages);
        m.incr(&format!("{prefix}.releases"), p.stats.releases);
        for (kind, n) in &p.stats.actions {
            let k = kind.strip_prefix("policy.").unwrap_or(kind);
            m.incr(&format!("{prefix}.{k}"), *n);
        }
    }
    m
}

/// A policy-parameterized E16 class runner: `(seed, population,
/// cohorts) -> ClassOutcome`.
pub type CohortRunner = fn(u64, u64, u32) -> ClassOutcome;

/// The policy-parameterized E16 class runners, keyed for the perf
/// artifact's cohort-error section: `cohorts == population` is the exact
/// per-user ground truth the standard 8-cohort approximation is measured
/// against.
pub fn e16_cohort_runners() -> Vec<(&'static str, CohortRunner)> {
    fn dht_off(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_dht_impl(s, p, c, DhtPolicy::Off).0
    }
    fn dht_cache(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_dht_impl(s, p, c, DhtPolicy::Cache).0
    }
    fn dht_shed(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_dht_impl(s, p, c, DhtPolicy::Shed).0
    }
    fn storage_off(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_storage_impl(s, p, c, false).0
    }
    fn storage_rebalance(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_storage_impl(s, p, c, true).0
    }
    fn swarm_off(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_swarm_impl(s, p, c, false).0
    }
    fn swarm_seeders(s: u64, p: u64, c: u32) -> ClassOutcome {
        run_swarm_impl(s, p, c, true).0
    }
    vec![
        ("dht.off", dht_off),
        ("dht.cache", dht_cache),
        ("dht.shed", dht_shed),
        ("storage.off", storage_off),
        ("storage.rebalance", storage_rebalance),
        ("swarm.off", swarm_off),
        ("swarm.seeders", swarm_seeders),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_engage_and_absorb_overload_at_scale() {
        let r = e16_policy_point(81, 1_000_000);
        assert_eq!(r.pairs.len(), 4);
        for p in &r.pairs {
            assert!(
                p.stats.engages >= 1,
                "{}/{} never engaged at 1M users",
                p.class,
                p.policy
            );
            assert!(
                p.off.peak_overload > 1.0,
                "{}/{} off-day never overloaded",
                p.class,
                p.policy
            );
        }
        let best = r
            .pairs
            .iter()
            .map(PolicyPair::absorbed)
            .fold(f64::MIN, f64::max);
        assert!(best > 0.1, "no policy absorbed >10% of the peak: {r:#?}");
    }

    #[test]
    fn policy_off_rows_reproduce_e16() {
        let e16 = super::super::e16_population_point(61, 10_000);
        let p = e16_policy_point(61, 10_000);
        assert_eq!(p.pairs[0].off.peak_overload, e16.dht.peak_overload);
        assert_eq!(p.pairs[0].off.availability, e16.dht.availability);
        assert_eq!(p.pairs[2].off.peak_overload, e16.storage.peak_overload);
        assert_eq!(p.pairs[3].off.peak_overload, e16.swarm.peak_overload);
        // The two dht pairs share one off row.
        assert_eq!(p.pairs[0].off.busiest_share, p.pairs[1].off.busiest_share);
    }

    #[test]
    fn policy_runs_are_deterministic() {
        let a = e16_policy_point(83, 100_000);
        let b = e16_policy_point(83, 100_000);
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(x.on.peak_overload, y.on.peak_overload);
            assert_eq!(x.on.availability, y.on.availability);
            assert_eq!(x.stats.engages, y.stats.engages);
            assert_eq!(x.stats.releases, y.stats.releases);
            assert_eq!(x.stats.actions, y.stats.actions);
        }
    }

    #[test]
    fn cohort_runners_cover_every_policy_and_accept_exact_mode() {
        let runners = e16_cohort_runners();
        assert_eq!(runners.len(), 7);
        // Exact mode on a small population: cohorts == population.
        let (name, run) = runners[0];
        assert_eq!(name, "dht.off");
        let exact = run(91, 200, 200);
        let approx = run(91, 200, COHORTS);
        assert!(exact.requests > 0 && approx.requests > 0);
    }
}

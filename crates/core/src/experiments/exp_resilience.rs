//! E15: graceful degradation under escalating, deterministic fault
//! injection — the same client workload on each architecture class
//! (centralized, federated, P2P, chain-backed) while a seed-derived chaos
//! schedule kills nodes in correlated waves, flaps links, opens asymmetric
//! partitions, and ramps loss/latency storms. The output is an
//! availability-vs-intensity and latency-vs-intensity curve per class.
//!
//! Fault intensity scales every knob of the schedule together, and victim
//! selection is a prefix of one seeded permutation, so a higher intensity
//! always faults a superset of a lower one: the measured curves are
//! monotone by construction, not by luck.

use agora_chain::{ChainNode, ChainParams, MinerConfig, Transaction, TxPayload};
use agora_comm::{CentralNode, FedNode, ModerationPolicy, PostLabel, ReplicationMode, SocialNode};
use agora_crypto::{sha256, Hash256, SimKeyPair};
use agora_sim::{
    AsymPartition, ChaosController, ChaosSpec, CrashWaves, DeviceClass, LinkFlaps, Metrics, NodeId,
    RetryPolicy, SimDuration, Simulation, Storm,
};

use super::Report;

/// One architecture's point on the degradation curve.
#[derive(Clone, Copy, Debug)]
pub struct DegradationPoint {
    /// Fraction of issued reads (or submitted transactions) that succeeded.
    pub availability: f64,
    /// Mean observed delivery/confirmation latency in seconds.
    pub mean_latency_secs: f64,
    /// Scheduled faults actually applied during the run.
    pub faults_injected: usize,
}

/// E15 results at one fault intensity.
#[derive(Clone, Debug)]
pub struct E15Result {
    /// Fault intensity in [0, 1] scaling the whole chaos schedule.
    pub intensity: f64,
    /// Centralized platform (one server, retrying clients).
    pub centralized: DegradationPoint,
    /// Federated, fully replicated, hedged+retrying clients.
    pub federated: DegradationPoint,
    /// Socially-aware P2P.
    pub p2p: DegradationPoint,
    /// Chain-backed (transaction confirmation as the availability op).
    pub chain: DegradationPoint,
}

const ROUNDS: usize = 6;
const STEP: SimDuration = SimDuration::from_secs(90);
const SETTLE: SimDuration = SimDuration::from_secs(120);

fn horizon() -> SimDuration {
    SimDuration::from_secs(STEP.micros() / 1_000_000 * ROUNDS as u64)
}

/// The intensity grid swept by the report and the harness matrix.
pub const E15_INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The chaos schedule at a given intensity: every knob scales together.
fn spec_for(intensity: f64) -> ChaosSpec {
    if intensity <= 0.0 {
        return ChaosSpec::default();
    }
    ChaosSpec {
        crash: Some(CrashWaves {
            waves: 2,
            fraction: 0.6 * intensity,
            hold: SimDuration::from_secs(60),
            amnesia: false,
        }),
        flaps: Some(LinkFlaps {
            count: (4.0 * intensity).round() as u32,
            down_for: SimDuration::from_secs(10),
        }),
        asym: (intensity >= 0.5).then_some(AsymPartition {
            fraction: 0.3,
            start_frac: 0.55,
            duration: SimDuration::from_secs(45),
        }),
        storm: Some(Storm {
            peak_loss: 0.25 * intensity,
            latency_factor: 1.0 + 2.0 * intensity,
            steps: 4,
        }),
        dup_rate: 0.05 * intensity,
        reorder: SimDuration::from_millis((50.0 * intensity) as u64),
    }
}

/// Retry policy for centralized clients.
fn client_retry() -> RetryPolicy {
    RetryPolicy::standard()
}

/// Federated clients hedge reads to a backup instance as well as retrying.
fn fed_retry() -> RetryPolicy {
    RetryPolicy {
        hedge_after: Some(SimDuration::from_secs(2)),
        ..RetryPolicy::standard()
    }
}

fn comm_point(m: &Metrics, faults: usize) -> DegradationPoint {
    let ok = m.counter("comm.reads_ok");
    let failed = m.counter("comm.reads_failed");
    let denied = m.counter("comm.reads_denied");
    let total = (ok + failed + denied).max(1);
    let latency = m
        .histogram("comm.delivery_secs")
        .filter(|h| h.count() > 0)
        .map_or(0.0, |h| h.mean());
    DegradationPoint {
        availability: ok as f64 / total as f64,
        mean_latency_secs: latency,
        faults_injected: faults,
    }
}

fn run_centralized(seed: u64, intensity: f64) -> DegradationPoint {
    const N_CLIENTS: usize = 12;
    let mut sim = Simulation::new(seed);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let clients: Vec<NodeId> = (0..N_CLIENTS)
        .map(|_| {
            sim.add_node(
                CentralNode::client_with_retry(server, client_retry()),
                DeviceClass::PersonalComputer,
            )
        })
        .collect();
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
    }
    sim.run_for(SimDuration::from_secs(5));
    // Faults target the serving infrastructure: the one server.
    let schedule = spec_for(intensity).compile(seed, &[server], horizon());
    let mut chaos = ChaosController::install(&mut sim, schedule, seed ^ 0x5EED);
    let mut reads = Vec::new();
    for _ in 0..ROUNDS {
        for &c in &clients {
            sim.with_ctx(c, |n, ctx| {
                n.post(ctx, 1, 200, PostLabel::Legit);
            });
            if let Some(op) = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)) {
                reads.push((c, op));
            }
        }
        chaos.run_for(&mut sim, STEP, &mut |_, _| {});
    }
    sim.run_for(SETTLE);
    for (c, op) in reads {
        let _ = sim.node_mut(c).take_read(op);
    }
    comm_point(sim.metrics(), chaos.applied())
}

fn run_federated(seed: u64, intensity: f64) -> DegradationPoint {
    const N_INSTANCES: usize = 5;
    const CLIENTS_PER_INSTANCE: usize = 2;
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..N_INSTANCES as u32).map(NodeId).collect();
    for i in 0..N_INSTANCES {
        let peers: Vec<NodeId> = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(
                peers,
                ReplicationMode::FullReplication,
                ModerationPolicy::none(),
            ),
            DeviceClass::DatacenterServer,
        );
    }
    let mut clients = Vec::new();
    for (i, &instance) in instance_ids.iter().enumerate() {
        let backups: Vec<NodeId> = (1..N_INSTANCES)
            .take(2)
            .map(|d| instance_ids[(i + d) % N_INSTANCES])
            .collect();
        for _ in 0..CLIENTS_PER_INSTANCE {
            clients.push(sim.add_node(
                FedNode::client_with_retry(instance, backups.clone(), fed_retry()),
                DeviceClass::PersonalComputer,
            ));
        }
    }
    for &c in &clients {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.run_for(SimDuration::from_secs(5));
    // Faults target the serving infrastructure: the five instances.
    let schedule = spec_for(intensity).compile(seed, &instance_ids, horizon());
    let mut chaos = ChaosController::install(&mut sim, schedule, seed ^ 0x5EED);
    let mut reads = Vec::new();
    for _ in 0..ROUNDS {
        for &c in &clients {
            sim.with_ctx(c, |n, ctx| {
                n.post(ctx, 1, 200, PostLabel::Legit);
            });
            if let Some(op) = sim.with_ctx(c, |n, ctx| n.read(ctx, 1)) {
                reads.push((c, op));
            }
        }
        chaos.run_for(&mut sim, STEP, &mut |_, _| {});
    }
    sim.run_for(SETTLE);
    for (c, op) in reads {
        let _ = sim.node_mut(c).take_read(op);
    }
    comm_point(sim.metrics(), chaos.applied())
}

fn run_p2p(seed: u64, intensity: f64) -> DegradationPoint {
    const N_PEERS: usize = 16;
    let mut sim = Simulation::new(seed);
    let ids: Vec<NodeId> = (0..N_PEERS as u32).map(NodeId).collect();
    for i in 0..N_PEERS {
        let mut friends: Vec<NodeId> = (1..=4).map(|d| ids[(i + d) % N_PEERS]).collect();
        for d in 1..=4 {
            friends.push(ids[(i + N_PEERS - d) % N_PEERS]);
        }
        sim.add_node(
            SocialNode::new(friends, true),
            DeviceClass::PersonalComputer,
        );
    }
    sim.run_for(SimDuration::from_secs(2));
    // No infrastructure: every peer is a fault target.
    let schedule = spec_for(intensity).compile(seed, &ids, horizon());
    let mut chaos = ChaosController::install(&mut sim, schedule, seed ^ 0x5EED);
    let mut reads = Vec::new();
    for round in 0..ROUNDS {
        for (i, &id) in ids.iter().enumerate() {
            sim.with_ctx(id, |n, ctx| n.post(ctx, 200, PostLabel::Legit));
            // Stay inside the ±4 friend set: strangers' feeds are trust-gated.
            let owner = ids[(i + 1 + (round % 4)) % N_PEERS];
            if let Some(op) = sim.with_ctx(id, |n, ctx| n.read_feed(ctx, owner)) {
                reads.push((id, op));
            }
        }
        chaos.run_for(&mut sim, STEP, &mut |_, _| {});
    }
    sim.run_for(SETTLE);
    for (c, op) in reads {
        let _ = sim.node_mut(c).take_read(op);
    }
    comm_point(sim.metrics(), chaos.applied())
}

fn run_chain(seed: u64, intensity: f64) -> DegradationPoint {
    const N_NODES: usize = 5;
    let params = ChainParams {
        target_block_interval: SimDuration::from_secs(60),
        initial_difficulty_bits: 8,
        ..ChainParams::default()
    };
    let user = SimKeyPair::from_seed(b"e15-user");
    let premine: Vec<(Hash256, u64)> = vec![(user.public().id(), 1_000_000)];
    let mut sim: Simulation<ChainNode> = Simulation::new(seed);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..N_NODES {
        let miner = (i < 2).then(|| MinerConfig {
            account: sha256(format!("e15-miner-{i}").as_bytes()),
            // Two equal miners sharing the 60 s target at 8 difficulty bits.
            hashrate: 256.0 / 120.0,
        });
        ids.push(sim.add_node(
            ChainNode::new("e15", params.clone(), &premine, miner),
            DeviceClass::DatacenterServer,
        ));
    }
    for &id in &ids {
        sim.node_mut(id).set_peers(ids.clone());
    }
    sim.run_for(SimDuration::from_secs(5));
    let schedule = spec_for(intensity).compile(seed, &ids, horizon());
    let mut chaos = ChaosController::install(&mut sim, schedule, seed ^ 0x5EED);
    let bob = sha256(b"e15-bob");
    // The chain client retries like every other workload in E15: each round
    // it re-submits every still-unconfirmed transaction to every node.
    // `seen_txs` dedup makes the retry a no-op everywhere except the exact
    // failure it repairs — a node (typically a revived miner) whose copy of
    // the original flood was lost to chaos. Without this, one lost gossip
    // blocks every later nonce and availability collapses on gossip luck
    // instead of degrading with fault intensity.
    let mut outstanding: Vec<(Transaction, f64)> = Vec::new();
    let mut nonce = 0u64;
    let mut submitted = 0u64;
    let mut confirmed = 0u64;
    let mut latency_sum = 0.0f64;
    let observer = ids[N_NODES - 1];
    for _ in 0..ROUNDS {
        for _ in 0..2 {
            let tx =
                Transaction::create(&user, nonce, 1, TxPayload::Transfer { to: bob, amount: 1 });
            outstanding.push((tx, sim.now().secs_f64()));
            nonce += 1;
            submitted += 1;
        }
        // (Re-)broadcast everything unconfirmed to every live node.
        for (tx, _) in &outstanding {
            for &id in &ids {
                let tx = tx.clone();
                sim.with_ctx(id, |n, ctx| {
                    n.submit_tx(ctx, tx);
                });
            }
        }
        chaos.run_for(&mut sim, STEP, &mut |_, _| {});
        // Transfers confirm in nonce order, so the k-th unit of balance is
        // the k-th submitted transaction: attribute confirmation latency.
        let balance = sim.node(observer).ledger().state().balance(&bob);
        while confirmed < balance {
            let (_, sent_at) = outstanding.remove(0);
            latency_sum += sim.now().secs_f64() - sent_at;
            confirmed += 1;
        }
    }
    // Final retry pass, then let the mempool drain.
    for (tx, _) in &outstanding {
        for &id in &ids {
            let tx = tx.clone();
            sim.with_ctx(id, |n, ctx| {
                n.submit_tx(ctx, tx);
            });
        }
    }
    sim.run_for(SETTLE + SimDuration::from_secs(120));
    let balance = sim.node(observer).ledger().state().balance(&bob);
    while confirmed < balance {
        let (_, sent_at) = outstanding.remove(0);
        latency_sum += sim.now().secs_f64() - sent_at;
        confirmed += 1;
    }
    DegradationPoint {
        availability: confirmed as f64 / submitted.max(1) as f64,
        mean_latency_secs: latency_sum / confirmed.max(1) as f64,
        faults_injected: chaos.applied(),
    }
}

/// E15 at a single intensity: the same workload shape on all four classes.
pub fn e15_degradation_point(seed: u64, intensity: f64) -> E15Result {
    E15Result {
        intensity,
        centralized: run_centralized(seed, intensity),
        federated: run_federated(seed + 1, intensity),
        p2p: run_p2p(seed + 2, intensity),
        chain: run_chain(seed + 3, intensity),
    }
}

/// E15: sweep the intensity grid and render the degradation curves.
pub fn e15_degradation_sweep(seed: u64) -> (Vec<E15Result>, Report) {
    let results: Vec<E15Result> = E15_INTENSITIES
        .iter()
        .map(|&i| e15_degradation_point(seed, i))
        .collect();
    let mut body = String::from(
        "Availability (fraction of reads/confirmations that succeeded) as\n\
         fault intensity escalates (crash waves, link flaps, asymmetric\n\
         partitions, loss/latency storms — all scaled together):\n\n\
         \x20 intensity   centralized   federated   p2p     chain\n",
    );
    for r in &results {
        body.push_str(&format!(
            "  {:>6.2}      {:>6.3}        {:>6.3}      {:>6.3}  {:>6.3}\n",
            r.intensity,
            r.centralized.availability,
            r.federated.availability,
            r.p2p.availability,
            r.chain.availability,
        ));
    }
    body.push_str("\nMean delivery / confirmation latency (seconds):\n\n");
    body.push_str("  intensity   centralized   federated   p2p       chain\n");
    for r in &results {
        body.push_str(&format!(
            "  {:>6.2}      {:>8.2}      {:>8.2}    {:>6.2}  {:>8.1}\n",
            r.intensity,
            r.centralized.mean_latency_secs,
            r.federated.mean_latency_secs,
            r.p2p.mean_latency_secs,
            r.chain.mean_latency_secs,
        ));
    }
    let first = &results[0];
    let last = &results[results.len() - 1];
    let central_drop = first.centralized.availability - last.centralized.availability;
    let p2p_drop = first.p2p.availability - last.p2p.availability;
    body.push_str(&format!(
        "\nVerdict: at max intensity centralized availability fell {:.1}% \
         vs {:.1}% for P2P — {}\n",
        central_drop * 100.0,
        p2p_drop * 100.0,
        if central_drop > p2p_drop {
            "the single point of failure degrades steepest, as §3.2 predicts"
        } else {
            "UNEXPECTED: centralized did not degrade steepest"
        },
    ));
    (
        results,
        Report {
            id: "E15",
            title: "Graceful degradation under escalating fault injection",
            claim: "centralized platforms fail abruptly when their single \
                    server is faulted, while decentralized architectures \
                    degrade gracefully — at the price of higher latency \
                    (§3.2, §4)",
            body,
        },
    )
}

fn point_metrics(m: &mut Metrics, prefix: &str, p: &DegradationPoint) {
    m.gauge_set(&format!("{prefix}.availability"), p.availability);
    m.gauge_set(&format!("{prefix}.latency_secs"), p.mean_latency_secs);
}

/// Flatten an E15 run at one intensity into harness metrics (keys `e15.*`).
/// The intensity is the harness sweep parameter.
pub fn e15_metrics(seed: u64, intensity: f64) -> Metrics {
    let r = e15_degradation_point(seed, intensity);
    let mut m = Metrics::new();
    point_metrics(&mut m, "e15.centralized", &r.centralized);
    point_metrics(&mut m, "e15.federated", &r.federated);
    point_metrics(&mut m, "e15.p2p", &r.p2p);
    point_metrics(&mut m, "e15.chain", &r.chain);
    let faults = r.centralized.faults_injected
        + r.federated.faults_injected
        + r.p2p.faults_injected
        + r.chain.faults_injected;
    m.incr("e15.faults_injected", faults as u64);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_no_chaos_everyone_works() {
        let r = e15_degradation_point(41, 0.0);
        assert!(r.centralized.availability > 0.95, "{r:?}");
        assert!(r.federated.availability > 0.95, "{r:?}");
        assert!(r.p2p.availability > 0.9, "{r:?}");
        assert!(r.chain.availability > 0.9, "{r:?}");
        assert_eq!(r.centralized.faults_injected, 0);
    }

    #[test]
    fn e15_max_intensity_separates_the_architectures() {
        let calm = e15_degradation_point(41, 0.0);
        let storm = e15_degradation_point(41, 1.0);
        assert!(storm.centralized.faults_injected > 0);
        let central_drop = calm.centralized.availability - storm.centralized.availability;
        let p2p_drop = calm.p2p.availability - storm.p2p.availability;
        assert!(
            central_drop > p2p_drop,
            "centralized should degrade steepest: centralized {central_drop:.3} \
             vs p2p {p2p_drop:.3}"
        );
        // Replication + hedging keeps the federation usable.
        assert!(
            storm.federated.availability > storm.centralized.availability,
            "federated {:?} vs centralized {:?}",
            storm.federated,
            storm.centralized
        );
    }

    #[test]
    fn e15_runs_are_deterministic() {
        let a = e15_degradation_point(43, 0.75);
        let b = e15_degradation_point(43, 0.75);
        assert_eq!(a.centralized.availability, b.centralized.availability);
        assert_eq!(a.federated.availability, b.federated.availability);
        assert_eq!(a.p2p.availability, b.p2p.availability);
        assert_eq!(a.chain.availability, b.chain.availability);
        assert_eq!(a.chain.faults_injected, b.chain.faults_injected);
    }
}

//! E5 (storage proofs vs cheaters), E6 (durability design space) and
//! E8 (quality vs quantity of infrastructure).

use agora_sim::{DeviceClass, NodeId, SimDuration, SimRng, Simulation};
use agora_storage::{
    discard_detection_probability, play_porep_game, simulate_durability, AttackEnv, CheatStrategy,
    DurabilityParams, ProviderStrategy, StorageNode, StorageResult,
};
use agora_workload::StorageLoad;

use super::Report;

/// The pinned paper-default storage load (values are part of the
/// checked-in baseline contract — see `agora_workload::load`).
const LOAD: StorageLoad = StorageLoad::paper_default();

/// E5 results.
#[derive(Clone, Debug)]
pub struct E5Result {
    /// (strategy, pass rate) in the proof-of-replication game.
    pub porep: Vec<(CheatStrategy, f64)>,
    /// (keep fraction, detection probability after 20 audits).
    pub discard_curve: Vec<(f64, f64)>,
    /// Audit failures observed in the live protocol run with one discarding
    /// provider.
    pub protocol_audit_failures: u64,
    /// Repairs completed in that run.
    pub protocol_repairs: u64,
}

/// E5: play every §3.3 cheating strategy against the proof schemes, then
/// confirm the full network protocol detects and repairs a real cheater.
pub fn e5_storage_proofs(seed: u64) -> (E5Result, Report) {
    let mut rng = SimRng::new(seed);
    // Scaled sealing environment (same deadline-to-seal ratio as a 64 MB
    // production sector; see agora-storage::attacks tests).
    let mut env = AttackEnv::default();
    env.seal.seal_throughput_bps = 50_000;
    env.seal.response_deadline = SimDuration::from_secs(1);
    let data = vec![0xabu8; LOAD.seal_probe_bytes];

    let mut porep = Vec::new();
    for s in CheatStrategy::all() {
        let r = play_porep_game(s, &data, 3, 120, &env, &mut rng);
        porep.push((s, r.pass_rate));
    }

    let discard_curve: Vec<(f64, f64)> = [1.0, 0.9, 0.5, 0.1, 0.0]
        .iter()
        .map(|&k| (k, discard_detection_probability(k, 20)))
        .collect();

    // Live protocol: 6 providers, one discards; audits + repair.
    let mut sim = Simulation::new(seed);
    let mut providers = Vec::new();
    for i in 0..6 {
        let strategy = if i == 0 {
            ProviderStrategy::DiscardAfterAck
        } else {
            ProviderStrategy::Honest
        };
        providers.push(sim.add_node(
            StorageNode::provider(strategy),
            DeviceClass::PersonalComputer,
        ));
    }
    let client = sim.add_node(
        StorageNode::client(providers.clone(), SimDuration::from_secs(30)),
        DeviceClass::PersonalComputer,
    );
    let data2 = vec![7u8; LOAD.audit_object_bytes];
    sim.with_ctx(client, |n, ctx| n.start_put(ctx, &data2, 4, 2));
    sim.run_for(SimDuration::from_mins(20));

    let result = E5Result {
        porep,
        discard_curve,
        protocol_audit_failures: sim.metrics().counter("storage.audit_fail")
            + sim.metrics().counter("storage.audit_timeout"),
        protocol_repairs: sim.metrics().counter("storage.repairs_completed"),
    };
    let mut body = String::from("Proof-of-replication challenge game (3 claimed replicas):\n");
    for (s, pass) in &result.porep {
        body.push_str(&format!(
            "  {:<34} pass rate {:>5.1}%\n",
            s.label(),
            pass * 100.0
        ));
    }
    body.push_str("\nAck-then-discard detection after 20 retrievability audits:\n");
    for (keep, p) in &result.discard_curve {
        body.push_str(&format!(
            "  keeps {:>4.0}% of shards → detected with p = {:.4}\n",
            keep * 100.0,
            p
        ));
    }
    body.push_str(&format!(
        "\nLive protocol (1 discarding provider of 6): {} audit failures, {} repairs completed\n",
        result.protocol_audit_failures, result.protocol_repairs
    ));
    (
        result,
        Report {
            id: "E5",
            title: "Storage proofs vs Sybil / outsourcing / generation attacks",
            claim: "proof-of-replication defeats storing-once-under-many-\
                    identities, fetching-from-others and generating-on-demand \
                    (§3.3); audits catch discarders and incentives keep nodes \
                    honest",
            body,
        },
    )
}

/// E6 results.
#[derive(Clone, Debug)]
pub struct E6Result {
    /// (label, overhead, survival rate, repair transfers per object-year).
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// E6: the §3.3 design space — replica counts vs erasure codes vs repair
/// cadence, under correlated failures.
pub fn e6_durability(seed: u64) -> (E6Result, Report) {
    let mut rng = SimRng::new(seed);
    let configs: [(&str, u32, u32); 5] = [
        ("replication x2 (k=1,m=1)", 1, 1),
        ("replication x3 (k=1,m=2)", 1, 2),
        ("RS(4,2)  1.5x overhead", 4, 2),
        ("RS(4,8)  3.0x overhead", 4, 8),
        ("RS(10,20) 3.0x overhead", 10, 20),
    ];
    let mut rows = Vec::new();
    for (label, k, m) in configs {
        for repair_days in [1.0, 14.0] {
            let params = DurabilityParams {
                k,
                m,
                provider_mttf_days: 60.0,
                repair_interval_days: repair_days,
                correlated_event_prob: 0.01,
                correlated_severity: 0.3,
                horizon_days: 365.0,
            };
            let r = simulate_durability(&params, 4000, &mut rng);
            rows.push((
                format!("{label}, repair every {repair_days:>4.0} d"),
                r.storage_overhead,
                r.survival_rate,
                r.repair_transfers_per_object_year,
            ));
        }
    }
    let result = E6Result { rows };
    let mut body = format!(
        "{:<40} {:>9} {:>10} {:>12}\n",
        "configuration", "overhead", "survival", "repairs/obj-yr"
    );
    for (label, overhead, survival, repairs) in &result.rows {
        body.push_str(&format!(
            "{:<40} {:>8.1}x {:>9.4} {:>12.1}\n",
            label, overhead, survival, repairs
        ));
    }
    (
        result,
        Report {
            id: "E6",
            title: "Durability design space (replication vs erasure, repair cadence)",
            claim: "storage design decisions involve inherent trade-offs among \
                    durability, availability, consistency, and performance \
                    (§3.3)",
            body,
        },
    )
}

/// E8 results.
#[derive(Clone, Debug)]
pub struct E8Result {
    /// Datacenter-provider get success rate.
    pub datacenter_success: f64,
    /// Consumer-device get success at baseline redundancy RS(4,2).
    pub device_success_low: f64,
    /// Consumer-device get success at boosted redundancy RS(4,8).
    pub device_success_high: f64,
    /// Median get latency (seconds) on datacenter providers.
    pub datacenter_p50_secs: f64,
    /// Median get latency (seconds) on consumer devices (high redundancy).
    pub device_p50_secs: f64,
}

fn run_storage_quality(
    seed: u64,
    class: DeviceClass,
    churn: bool,
    k: usize,
    m: usize,
    gets: usize,
) -> (f64, f64) {
    let n_providers = (k + m) * 2;
    let mut sim = Simulation::new(seed);
    let mut providers: Vec<NodeId> = Vec::new();
    for _ in 0..n_providers {
        let id = sim.add_node(StorageNode::provider(ProviderStrategy::Honest), class);
        if churn {
            sim.enable_churn(id);
        }
        providers.push(id);
    }
    let client = sim.add_node(
        StorageNode::client(providers, SimDuration::from_secs(60)),
        DeviceClass::PersonalComputer,
    );
    let data = vec![5u8; LOAD.object_bytes];
    let (_, object) = sim
        .with_ctx(client, |n, ctx| n.start_put(ctx, &data, k, m))
        .expect("client up");
    sim.run_for(SimDuration::from_mins(5));
    let mut ok = 0usize;
    let mut latencies = Vec::new();
    for _ in 0..gets {
        let started = sim.now();
        let Some(op) = sim.with_ctx(client, |n, ctx| n.start_get(ctx, object)) else {
            continue;
        };
        // Step in 100 ms increments so the completion time is observed at
        // event granularity rather than at a fixed polling horizon.
        let mut done = false;
        for _ in 0..3600 {
            sim.run_for(SimDuration::from_millis(100));
            match sim.node_mut(client).take_result(op) {
                Some(StorageResult::Retrieved(_)) => {
                    ok += 1;
                    latencies.push(sim.now().since(started).secs_f64());
                    done = true;
                    break;
                }
                Some(_) => {
                    done = true;
                    break;
                }
                None => {}
            }
        }
        let _ = done;
        sim.run_for(SimDuration::from_mins(10)); // let churn move between gets
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50 = latencies
        .get(latencies.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    (ok as f64 / gets as f64, p50)
}

/// E8: the same storage workload on datacenter-class infrastructure vs
/// churning consumer devices, and the redundancy needed to compensate.
pub fn e8_quality_vs_quantity(seed: u64) -> (E8Result, Report) {
    let gets = LOAD.gets;
    let (dc_ok, dc_p50) =
        run_storage_quality(seed, DeviceClass::DatacenterServer, false, 4, 2, gets);
    let (dev_lo, _) =
        run_storage_quality(seed + 1, DeviceClass::PersonalComputer, true, 4, 2, gets);
    let (dev_hi, dev_p50) =
        run_storage_quality(seed + 2, DeviceClass::PersonalComputer, true, 4, 8, gets);
    let result = E8Result {
        datacenter_success: dc_ok,
        device_success_low: dev_lo,
        device_success_high: dev_hi,
        datacenter_p50_secs: dc_p50,
        device_p50_secs: dev_p50,
    };
    let body = format!(
        "Same 1 MB object, RS-coded, audited & repaired; get success over a churning day:\n\
         \x20 datacenter providers, RS(4,2)      : {:>5.1}% success, p50 {:>7.3} s\n\
         \x20 consumer devices,    RS(4,2)       : {:>5.1}% success\n\
         \x20 consumer devices,    RS(4,8)       : {:>5.1}% success, p50 {:>7.3} s\n\
         Quantity can substitute for quality only by spending redundancy \
         (and the paper's 'intermittency, higher failure rates, variable \
         performance' shows up as the latency gap).\n",
        result.datacenter_success * 100.0,
        result.datacenter_p50_secs,
        result.device_success_low * 100.0,
        result.device_success_high * 100.0,
        result.device_p50_secs,
    );
    (
        result,
        Report {
            id: "E8",
            title: "Infrastructure quality vs quantity",
            claim: "user-device capacity is plentiful but much poorer than a \
                    datacenter's; systems must cope with intermittency, \
                    failures and variable performance (§4, §5.2)",
            body,
        },
    )
}

/// Flatten an E5 run into harness metrics (keys `e5.*`).
pub fn e5_metrics(seed: u64) -> agora_sim::Metrics {
    use super::metric_key_segment;
    let (r, _) = e5_storage_proofs(seed);
    let mut m = agora_sim::Metrics::new();
    for (strategy, pass_rate) in &r.porep {
        let key = metric_key_segment(&format!("{strategy:?}"));
        m.gauge_set(&format!("e5.porep_pass.{key}"), *pass_rate);
    }
    for (keep, detection) in &r.discard_curve {
        m.gauge_set(&format!("e5.discard_detect.k{keep:.2}"), *detection);
    }
    m.incr("e5.protocol_audit_failures", r.protocol_audit_failures);
    m.incr("e5.protocol_repairs", r.protocol_repairs);
    m
}

/// Flatten an E6 run into harness metrics (keys `e6.*`).
pub fn e6_metrics(seed: u64) -> agora_sim::Metrics {
    use super::metric_key_segment;
    let (r, _) = e6_durability(seed);
    let mut m = agora_sim::Metrics::new();
    for (label, overhead, survival, repair) in &r.rows {
        let key = metric_key_segment(label);
        m.gauge_set(&format!("e6.{key}.overhead"), *overhead);
        m.gauge_set(&format!("e6.{key}.survival"), *survival);
        m.gauge_set(&format!("e6.{key}.repair_per_object_year"), *repair);
    }
    m
}

/// Flatten an E8 run into harness metrics (keys `e8.*`).
pub fn e8_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e8_quality_vs_quantity(seed);
    let mut m = agora_sim::Metrics::new();
    m.gauge_set("e8.datacenter_success", r.datacenter_success);
    m.gauge_set("e8.device_success_low", r.device_success_low);
    m.gauge_set("e8.device_success_high", r.device_success_high);
    m.gauge_set("e8.datacenter_p50_secs", r.datacenter_p50_secs);
    m.gauge_set("e8.device_p50_secs", r.device_p50_secs);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_detection_matrix() {
        let (r, _) = e5_storage_proofs(41);
        let get = |s: CheatStrategy| r.porep.iter().find(|(x, _)| *x == s).unwrap().1;
        assert_eq!(get(CheatStrategy::Honest), 1.0);
        assert_eq!(get(CheatStrategy::Outsource), 0.0);
        assert_eq!(get(CheatStrategy::Generation), 0.0);
        let sybil = get(CheatStrategy::Sybil);
        assert!(sybil > 0.2 && sybil < 0.5, "sybil {sybil}");
        assert!(r.protocol_audit_failures >= 1);
        assert!(r.protocol_repairs >= 1);
    }

    #[test]
    fn e6_shapes() {
        let (r, _) = e6_durability(43);
        // Fast repair always beats slow repair at the same code.
        for pair in r.rows.chunks(2) {
            assert!(
                pair[0].2 >= pair[1].2,
                "daily repair should not lose to fortnightly: {pair:?}"
            );
        }
        // RS(4,8) with daily repair is highly durable and beats 3x
        // replication at the same overhead.
        let find = |prefix: &str, days: &str| {
            r.rows
                .iter()
                .find(|(l, _, _, _)| l.starts_with(prefix) && l.contains(days))
                .cloned()
                .expect("row present")
        };
        let rs48 = find("RS(4,8)", "   1 d");
        let repl3 = find("replication x3", "   1 d");
        assert!(rs48.2 > 0.98, "{rs48:?}");
        assert!(rs48.2 >= repl3.2, "rs48 {rs48:?} vs repl3 {repl3:?}");
    }

    #[test]
    fn e8_quality_gap() {
        let (r, _) = e8_quality_vs_quantity(47);
        assert!(r.datacenter_success >= 0.99, "{r:?}");
        // Extra redundancy must not hurt.
        assert!(r.device_success_high >= r.device_success_low, "{r:?}");
        // Devices are slower than datacenters (1 Mbps uplinks moving 50 KB
        // shards vs 10 Gbps pipes).
        assert!(
            r.device_p50_secs > r.datacenter_p50_secs,
            "device p50 {} vs dc {}",
            r.device_p50_secs,
            r.datacenter_p50_secs
        );
    }
}

//! E14: the Usenet collapse, replayed — what full replication costs as the
//! federation grows.
//!
//! §3.2: "Usenet eventually collapsed under its own traffic load." In a
//! fully-replicating federation, *every* instance stores and relays the
//! whole network's activity, so per-instance burden scales with global
//! traffic, not local membership. Single-homing (OStatus) partitions the
//! archive across origins — which is exactly why it has the availability
//! problem E3 measures. This experiment makes the dilemma quantitative.

use agora_comm::{FedNode, ModerationPolicy, PostLabel, ReplicationMode};
use agora_sim::{DeviceClass, NodeId, SimDuration, Simulation};

use super::Report;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct UsenetRow {
    /// Number of instances in the federation.
    pub instances: usize,
    /// Total posts made network-wide.
    pub total_posts: u64,
    /// Mean posts stored per instance (full replication).
    pub replicated_store_per_instance: f64,
    /// Mean posts stored per instance (single-home).
    pub single_home_store_per_instance: f64,
    /// Total network bytes (full replication).
    pub replicated_bytes: u64,
    /// Total network bytes (single-home).
    pub single_home_bytes: u64,
}

/// E14 results.
#[derive(Clone, Debug)]
pub struct E14Result {
    /// One row per federation size.
    pub rows: Vec<UsenetRow>,
}

fn run_mode(seed: u64, n_instances: usize, mode: ReplicationMode) -> (f64, u64, u64) {
    const CLIENTS_PER_INSTANCE: usize = 2;
    const POSTS_PER_CLIENT: usize = 4;
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..n_instances as u32).map(NodeId).collect();
    for i in 0..n_instances {
        let peers = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(peers, mode, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
    }
    let mut clients = Vec::new();
    for &instance in &instance_ids {
        for _ in 0..CLIENTS_PER_INSTANCE {
            clients.push(sim.add_node(FedNode::client(instance), DeviceClass::PersonalComputer));
        }
    }
    // One "newsgroup" per instance; its first joiner (a local client) makes
    // that instance the origin. Everyone joins every group.
    for (room, _) in instance_ids.iter().enumerate() {
        let local_first = clients[room * CLIENTS_PER_INSTANCE];
        sim.with_ctx(local_first, |n, ctx| n.join(ctx, room as u32));
        sim.run_for(SimDuration::from_millis(200));
        for &c in &clients {
            if c != local_first {
                sim.with_ctx(c, |n, ctx| n.join(ctx, room as u32));
            }
        }
        sim.run_for(SimDuration::from_millis(200));
    }
    // Everyone posts to every group.
    for round in 0..POSTS_PER_CLIENT {
        for &c in &clients {
            let room = (round % n_instances) as u32;
            sim.with_ctx(c, |n, ctx| n.post(ctx, room, 300, PostLabel::Legit));
        }
        sim.run_for(SimDuration::from_secs(5));
    }
    sim.run_for(SimDuration::from_secs(20));
    let total_stored: usize = instance_ids
        .iter()
        .map(|&i| {
            (0..n_instances as u32)
                .map(|room| sim.node(i).room_history_len(room))
                .sum::<usize>()
        })
        .sum();
    let per_instance = total_stored as f64 / n_instances as f64;
    let bytes = sim.metrics().counter("net.sent_bytes");
    let posts = (clients.len() * POSTS_PER_CLIENT) as u64;
    (per_instance, bytes, posts)
}

/// E14: per-instance burden vs federation size, both replication modes.
pub fn e14_usenet_collapse(seed: u64) -> (E14Result, Report) {
    let mut rows = Vec::new();
    for (i, n) in [2usize, 4, 6].into_iter().enumerate() {
        let (rep_store, rep_bytes, posts) =
            run_mode(seed + i as u64, n, ReplicationMode::FullReplication);
        let (sh_store, sh_bytes, _) =
            run_mode(seed + 10 + i as u64, n, ReplicationMode::SingleHome);
        rows.push(UsenetRow {
            instances: n,
            total_posts: posts,
            replicated_store_per_instance: rep_store,
            single_home_store_per_instance: sh_store,
            replicated_bytes: rep_bytes,
            single_home_bytes: sh_bytes,
        });
    }
    let result = E14Result { rows };
    let mut body = format!(
        "{:>9} {:>11} {:>22} {:>22} {:>14} {:>14}\n",
        "instances",
        "total posts",
        "stored/instance (repl)",
        "stored/instance (s-h)",
        "bytes (repl)",
        "bytes (s-h)"
    );
    for r in &result.rows {
        body.push_str(&format!(
            "{:>9} {:>11} {:>22.1} {:>22.1} {:>14} {:>14}\n",
            r.instances,
            r.total_posts,
            r.replicated_store_per_instance,
            r.single_home_store_per_instance,
            r.replicated_bytes,
            r.single_home_bytes
        ));
    }
    body.push_str(
        "\nFull replication: every instance archives the *whole network's*\n\
         posts — per-instance burden grows with global activity (Usenet's\n\
         failure mode). Single-homing keeps per-instance archives near the\n\
         local share, at the price E3 measures: origin loss takes the\n\
         archive with it. (Wire traffic is delivery-dominated and near-equal\n\
         in both modes; the burden that grows without bound is the archive.)\n\
         The §3.2 dilemma, in one table.\n",
    );
    (
        result,
        Report {
            id: "E14",
            title: "The Usenet collapse: replication burden vs federation size",
            claim: "Usenet eventually collapsed under its own traffic load \
                    (§3.2)",
            body,
        },
    )
}

/// Flatten an E14 run into harness metrics (keys `e14.*`).
pub fn e14_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e14_usenet_collapse(seed);
    let mut m = agora_sim::Metrics::new();
    for row in &r.rows {
        let n = row.instances;
        m.incr(&format!("e14.n{n}.total_posts"), row.total_posts);
        m.gauge_set(
            &format!("e14.n{n}.replicated_store_per_instance"),
            row.replicated_store_per_instance,
        );
        m.gauge_set(
            &format!("e14.n{n}.single_home_store_per_instance"),
            row.single_home_store_per_instance,
        );
        m.incr(&format!("e14.n{n}.replicated_bytes"), row.replicated_bytes);
        m.incr(
            &format!("e14.n{n}.single_home_bytes"),
            row.single_home_bytes,
        );
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_replication_burden_scales_with_network() {
        let (r, report) = e14_usenet_collapse(71);
        for row in &r.rows {
            // Full replication: every instance stores ~all posts.
            assert!(
                row.replicated_store_per_instance >= row.total_posts as f64 * 0.9,
                "{row:?}"
            );
            // Single-home: per-instance storage is ~the local share.
            assert!(
                row.single_home_store_per_instance
                    <= row.total_posts as f64 / row.instances as f64 + 1.0,
                "{row:?}"
            );
            // Replication also costs more wire bytes.
            assert!(row.replicated_bytes >= row.single_home_bytes, "{row:?}");
        }
        // Per-instance replicated burden grows with federation size
        // (more instances ⇒ more clients ⇒ more global posts per instance).
        let first = &r.rows[0];
        let last = r.rows.last().unwrap();
        assert!(
            last.replicated_store_per_instance > first.replicated_store_per_instance * 2.0,
            "burden should grow with the network: {first:?} vs {last:?}"
        );
        assert!(report.body.contains("Usenet"));
    }
}

//! E7: hostless-site availability as a function of visitor seeding.

use agora_sim::{DeviceClass, SimDuration, Simulation};
use agora_web::{SitePublisher, SwarmNode, VisitResult};

use super::Report;

/// E7 results.
#[derive(Clone, Debug)]
pub struct E7Result {
    /// (prior visitors, post-origin-death visit success rate).
    pub survival_by_seeders: Vec<(usize, f64)>,
}

/// E7: publish a site, let `w` visitors fetch it, kill the origin, then
/// measure whether fresh visitors can still load the site — §3.4's "seeded
/// and served by visitors" property, quantified.
pub fn e7_web_availability(seed: u64) -> (E7Result, Report) {
    let mut survival_by_seeders = Vec::new();
    for first_wave in [0usize, 1, 3, 5] {
        let mut sim = Simulation::new(seed + first_wave as u64);
        let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
        let origin = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
        let mut peers = Vec::new();
        for _ in 0..8 {
            peers.push(sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer));
        }
        let mut publisher = SitePublisher::new(b"e7-site");
        let content = vec![42u8; 80_000];
        let bundle = publisher.publish(&[("index.html", content.as_slice())]);
        let site = publisher.site_id();
        sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle));
        sim.run_for(SimDuration::from_secs(5));

        // First wave visits while the origin is alive.
        let mut wave_ops = Vec::new();
        for &p in peers.iter().take(first_wave) {
            if let Some(op) = sim.with_ctx(p, |n, ctx| n.start_visit(ctx, site)) {
                wave_ops.push((p, op));
            }
        }
        sim.run_for(SimDuration::from_mins(5));
        for (p, op) in wave_ops {
            let _ = sim.node_mut(p).take_result(op);
        }

        // Origin dies.
        sim.kill(origin);
        sim.run_for(SimDuration::from_secs(5));

        // Second wave: three fresh visitors.
        let second: Vec<_> = peers.iter().skip(5).copied().collect();
        let mut ok = 0usize;
        let mut total = 0usize;
        for p in second {
            total += 1;
            if let Some(op) = sim.with_ctx(p, |n, ctx| n.start_visit(ctx, site)) {
                sim.run_for(SimDuration::from_mins(5));
                if matches!(
                    sim.node_mut(p).take_result(op),
                    Some(VisitResult::Ok { .. })
                ) {
                    ok += 1;
                }
            }
        }
        survival_by_seeders.push((first_wave, ok as f64 / total as f64));
    }
    let result = E7Result {
        survival_by_seeders,
    };
    let mut body = String::from(
        "Origin publishes an 80 KB site, N visitors fetch it, origin dies,\n\
         then 3 fresh visitors try to load it:\n",
    );
    for (n, rate) in &result.survival_by_seeders {
        body.push_str(&format!(
            "  prior visitors = {:>2} → post-death visit success {:>5.1}%\n",
            n,
            rate * 100.0
        ));
    }
    (
        result,
        Report {
            id: "E7",
            title: "Hostless web apps: availability via visitor seeding",
            claim: "web applications are seeded and served by visitors via the \
                    BitTorrent protocol (§3.4): the site outlives its origin \
                    iff visitors seed it",
            body,
        },
    )
}

/// Flatten an E7 run into harness metrics (keys `e7.*`).
pub fn e7_metrics(seed: u64) -> agora_sim::Metrics {
    let (r, _) = e7_web_availability(seed);
    let mut m = agora_sim::Metrics::new();
    for (seeders, survival) in &r.survival_by_seeders {
        m.gauge_set(&format!("e7.survival.w{seeders}"), *survival);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_seeding_threshold() {
        let (r, report) = e7_web_availability(51);
        let rate = |n: usize| {
            r.survival_by_seeders
                .iter()
                .find(|(w, _)| *w == n)
                .unwrap()
                .1
        };
        // With no prior visitors the site dies with its origin.
        assert_eq!(rate(0), 0.0);
        // With several prior visitors it survives.
        assert!(rate(5) > 0.9, "{:?}", r.survival_by_seeders);
        // Monotone in seeders.
        assert!(rate(5) >= rate(1));
        assert!(report.body.contains("prior visitors"));
    }
}

//! E16: a population-scale diurnal day with an embedded flash crowd,
//! replayed against the architecture classes at 10k → 1M users.
//!
//! The workload engine (`agora-workload`) compiles one simulated day of
//! heavy-tailed, timezone-mixed demand — 20 actions/user/day, Zipf(0.9)
//! popularity over 64 objects, bounded-Pareto sizes, and a 12× flash
//! crowd at lunchtime UTC — into a cohort-aggregated schedule: the engine
//! processes O(cohorts) events per tick no matter the population, while
//! per-demand *weights* carry the full population's request volume.
//! Consumer-device serving capacity (DHT nodes, storage providers, web
//! seeders) additionally churns diurnally: half the devices sleep at the
//! activity trough, 10% at the peak.
//!
//! Measured per class: weighted availability, delivery-latency quantiles
//! (P² streaming estimators over the substrate latency histograms where
//! the substrate records one; drain-granularity op timing otherwise),
//! per-node load imbalance (busiest node's share of weighted demand), and
//! the peak uplink-overload factor — modeled weighted bytes per tick
//! against the serving device's §4 uplink. The overload factor is the
//! population-scaled observable: at 10k users the flash crowd is noise,
//! at 1M it saturates whoever the demand skew concentrates on.

use std::collections::{BTreeMap, HashMap};

use agora_comm::{CentralNode, FedNode, ModerationPolicy, PostLabel, ReadResult, ReplicationMode};
use agora_crypto::{sha256, Hash256};
use agora_dht::{Contact, DhtConfig, DhtNode, DhtResult};
use agora_policy::{PolicyConfig, PolicyHandle, PolicyHub};
use agora_sim::{
    DeviceClass, Jitter, Metrics, NodeId, P2Quantile, Protocol, Retrier, RetryPolicy, SimDuration,
    SimRng, SimTime, Simulation,
};
use agora_storage::{ProviderStrategy, StorageNode, StorageResult};
use agora_web::{SitePublisher, SwarmNode, VisitResult};
use agora_workload::{
    BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, FlashCrowd, LogNormalSessions,
    WorkloadDriver, WorkloadSpec, ZoneMix,
};

use super::Report;

/// Scheduling tick: demand integrates per tick, churn moves per tick.
const TICK: SimDuration = SimDuration::from_mins(15);
/// The simulated horizon: one full day.
const DAY: SimDuration = SimDuration::from_days(1);
/// How often pending substrate ops are drained (latency resolution for
/// the classes without an event-time latency histogram).
const DRAIN: SimDuration = SimDuration::from_secs(30);
/// Cohorts the population aggregates into.
pub(crate) const COHORTS: u32 = 8;
/// Representative demands per cohort-tick.
const REP_CAP: u32 = 2;
/// Content catalogue size.
const RANKS: usize = 64;
/// Zipf popularity exponent.
const ZIPF_ALPHA: f64 = 0.9;
/// Post payload for the content-producing side of the comm classes.
const POST_BYTES: u64 = agora_workload::CommLoad::paper_default().post_bytes;

/// The populations swept by the report and the harness matrix.
pub const E16_POPULATIONS: [u64; 3] = [10_000, 100_000, 1_000_000];

/// The E16 workload: one diurnal day, three timezone regions, flash crowd
/// at 12:45 UTC ramping to 12× over 30 min, held an hour.
fn e16_spec(population: u64) -> WorkloadSpec {
    e16_spec_cohorts(population, COHORTS)
}

/// [`e16_spec`] with the cohort count as a knob: `cohorts == population`
/// is exact per-user generation (every cohort is one real user), the
/// ground truth the cohort approximation is measured against.
pub(crate) fn e16_spec_cohorts(population: u64, cohorts: u32) -> WorkloadSpec {
    WorkloadSpec {
        population,
        cohorts,
        actions_per_user_day: 20.0,
        model: DemandModel {
            zones: ZoneMix::global_three_region(DiurnalCurve::residential()),
            flash: Some(FlashCrowd {
                start: SimDuration::from_secs(45_900),
                ramp: SimDuration::from_mins(30),
                plateau: SimDuration::from_mins(60),
                decay: SimDuration::from_mins(30),
                peak: 12.0,
            }),
        },
        ranks: RANKS,
        zipf_alpha: ZIPF_ALPHA,
        sizes: BoundedPareto::new(2_000, 1_000_000, 1.3),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: TICK,
        rep_cap: REP_CAP,
        churn: Some(ChurnCurve {
            offline_at_peak: 0.1,
            offline_at_trough: 0.5,
        }),
    }
}

// ---------------------------------------------------------------------------
// Reactive policy plumbing (DESIGN.md §17). A PolicyHub installed as the
// simulation's probe sink watches the same frames and observer verdicts
// the trace plane sees; runners poll its handle and act only at drain
// boundaries — deterministic sim times in the canonical event order — so
// policy-on runs stay byte-identical at any harness thread count or
// engine shard count. Policy-off runs never construct a hub: they are
// byte-identical to the pre-policy runners.
// ---------------------------------------------------------------------------

/// Which reactive policy a DHT run engages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DhtPolicy {
    /// No policy: byte-identical to the pre-policy runner.
    Off,
    /// Gateways cache hot keys while overloaded and serve repeats off
    /// their own uplinks (`policy.cache`).
    Cache,
    /// Admission control: shed a level-scaled fraction of arrivals into a
    /// bounded backoff queue while overloaded (`policy.shed`).
    Shed,
}

/// What a policy did during a run: engagement cycles plus the exact
/// per-action totals recorded through the [`PolicyHandle`].
#[derive(Clone, Debug, Default)]
pub struct PolicyStats {
    /// How many times the policy engaged.
    pub engages: u64,
    /// How many times the policy released.
    pub releases: u64,
    /// Exact recorded action totals by kind (`policy.shed`, ...).
    pub actions: BTreeMap<&'static str, u64>,
}

fn stats_of(handle: Option<&PolicyHandle>) -> PolicyStats {
    handle.map_or_else(PolicyStats::default, |h| PolicyStats {
        engages: h.engages(),
        releases: h.releases(),
        actions: h.totals(),
    })
}

/// Wire a fresh policy hub into `sim` as its probe sink and return the
/// handle runners poll at drain boundaries.
fn install_policy<P: Protocol>(sim: &mut Simulation<P>) -> PolicyHandle {
    let hub = PolicyHub::new(PolicyConfig::default());
    let handle = hub.handle();
    let cadence = hub.cadence();
    sim.set_probe_sink(hub.into_sink(), cadence);
    handle
}

/// Client backoff under admission control: decorrelated exponential from
/// one minute toward a fifteen-minute cap, eight attempts total.
fn shed_retry() -> RetryPolicy {
    RetryPolicy {
        base: SimDuration::from_secs(60),
        factor: 2.0,
        cap: SimDuration::from_mins(15),
        max_attempts: 8,
        jitter: Jitter::Decorrelated,
        hedge_after: None,
    }
}

/// Bound on demands deferred by admission control; arrivals shed past
/// this are dropped outright (`policy.shed_drop`).
const SHED_QUEUE_CAP: usize = 4096;

/// A demand deferred by admission control, waiting out its backoff.
struct ShedItem {
    rank: usize,
    weight: f64,
    bytes: u64,
    due: SimTime,
    retrier: Retrier,
}

/// One architecture's outcome under the E16 day.
#[derive(Clone, Copy, Debug)]
pub struct ClassOutcome {
    /// Weight-averaged fraction of demands that succeeded.
    pub availability: f64,
    /// Median latency (seconds).
    pub p50: f64,
    /// 95th-percentile latency (seconds).
    pub p95: f64,
    /// 99th-percentile latency (seconds).
    pub p99: f64,
    /// True per-operation median (seconds): quantile of the substrate's
    /// event-time completion histogram, free of the drain-granularity
    /// bias the legacy `p50`/`p95`/`p99` fields carry for the storage and
    /// swarm classes (their pending ops used to be timed at drain
    /// boundaries only).
    pub op_p50: f64,
    /// True per-operation 95th percentile (seconds).
    pub op_p95: f64,
    /// True per-operation 99th percentile (seconds).
    pub op_p99: f64,
    /// Busiest serving node's share of total weighted demand (1.0 = one
    /// node carries everything).
    pub busiest_share: f64,
    /// Peak modeled uplink utilization: max over nodes and ticks of
    /// weighted bytes·8 / tick / uplink_bps. > 1 means the §4 uplink
    /// cannot carry the attributed load.
    pub peak_overload: f64,
    /// Total population-scale requests represented by the schedule.
    pub requests: u64,
}

/// E16 results at one population.
#[derive(Clone, Debug)]
pub struct E16Result {
    /// Simulated population.
    pub population: u64,
    /// Centralized platform (one datacenter server).
    pub centralized: ClassOutcome,
    /// Federation of five single-home instances.
    pub federated: ClassOutcome,
    /// Kademlia DHT on churning consumer devices.
    pub dht: ClassOutcome,
    /// Erasure-coded storage on churning consumer providers.
    pub storage: ClassOutcome,
    /// Visitor-seeded web swarm.
    pub swarm: ClassOutcome,
}

/// Weighted per-node load accounting shared by every class.
pub(crate) struct LoadLedger {
    /// uplink_bps per attributable serving node.
    uplink: HashMap<NodeId, f64>,
    total: HashMap<NodeId, f64>,
    tick_bytes: HashMap<NodeId, f64>,
    tick_weight: f64,
    grand_total: f64,
    pub(crate) peak_overload: f64,
}

impl LoadLedger {
    pub(crate) fn new(serving: &[(NodeId, DeviceClass)]) -> LoadLedger {
        LoadLedger {
            uplink: serving
                .iter()
                .map(|&(id, class)| (id, class.profile().uplink_bps as f64))
                .collect(),
            total: HashMap::new(),
            tick_bytes: HashMap::new(),
            tick_weight: 0.0,
            grand_total: 0.0,
            peak_overload: 0.0,
        }
    }

    /// Attribute `weight` requests of `bytes` each to one node.
    pub(crate) fn add(&mut self, node: NodeId, weight: f64, bytes: u64) {
        *self.total.entry(node).or_insert(0.0) += weight;
        *self.tick_bytes.entry(node).or_insert(0.0) += weight * bytes as f64;
        self.tick_weight += weight;
        self.grand_total += weight;
    }

    /// Attribute evenly across a serving set.
    fn spread(&mut self, nodes: &[NodeId], weight: f64, bytes: u64) {
        if nodes.is_empty() {
            return;
        }
        let w = weight / nodes.len() as f64;
        for &n in nodes {
            self.add(n, w, bytes);
        }
        // `add` already bumped grand_total per share; nothing further.
    }

    /// Close a tick: fold this tick's per-node bytes into the peak
    /// overload factor and reset the tick accumulators. Returns the tick's
    /// weighted demand and its max utilization factor (> 1 means some
    /// serving uplink cannot carry its attributed demand) so callers can
    /// feed both to the probes: demand is the smooth surge-shaped series
    /// (flash onset), utilization is the noisy saturation level.
    pub(crate) fn end_tick(&mut self) -> (f64, f64) {
        let tick_secs = TICK.secs_f64();
        let mut tick_util = 0.0f64;
        for (n, b) in self.tick_bytes.drain() {
            let uplink = self.uplink.get(&n).copied().unwrap_or(f64::INFINITY);
            let demand_bps = b * 8.0 / tick_secs;
            tick_util = tick_util.max(demand_bps / uplink);
        }
        self.peak_overload = self.peak_overload.max(tick_util);
        let tick_weight = self.tick_weight;
        self.tick_weight = 0.0;
        (tick_weight, tick_util)
    }

    pub(crate) fn busiest_share(&self) -> f64 {
        if self.grand_total <= 0.0 {
            return 0.0;
        }
        self.total.values().cloned().fold(0.0, f64::max) / self.grand_total
    }
}

/// P² quantiles over an iterator of latency samples.
pub(crate) fn quantiles<I: IntoIterator<Item = f64>>(samples: I) -> (f64, f64, f64) {
    let (mut q50, mut q95, mut q99) = (P2Quantile::p50(), P2Quantile::p95(), P2Quantile::p99());
    for s in samples {
        q50.record(s);
        q95.record(s);
        q99.record(s);
    }
    (q50.value(), q95.value(), q99.value())
}

/// Quantiles straight from a recorded substrate histogram.
pub(crate) fn histogram_quantiles(m: &Metrics, key: &str) -> (f64, f64, f64) {
    quantiles(
        m.histogram(key)
            .map(|h| h.samples().to_vec())
            .unwrap_or_default(),
    )
}

/// The weighted-success accumulator shared by every class.
#[derive(Default)]
struct Outcomes {
    ok_w: f64,
    total_w: f64,
}

impl Outcomes {
    fn resolve(&mut self, weight: f64, ok: bool) {
        if ok {
            self.ok_w += weight;
        }
    }
    fn availability(&self) -> f64 {
        if self.total_w <= 0.0 {
            return 0.0;
        }
        self.ok_w / self.total_w
    }
}

// ---------------------------------------------------------------------------
// Centralized: one datacenter server, a handful of always-on access
// gateways issuing the population's reads. Every weighted byte lands on
// the server: busiest_share is 1.0 by construction and the flash crowd
// scales its overload factor linearly with population.
// ---------------------------------------------------------------------------

fn run_centralized(seed: u64, population: u64) -> ClassOutcome {
    const GATEWAYS: usize = 6;
    let spec = e16_spec(population);
    let mut sim = Simulation::new(seed);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::none()),
        DeviceClass::DatacenterServer,
    );
    let gateways: Vec<NodeId> = (0..GATEWAYS)
        .map(|_| sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer))
        .collect();
    for &g in &gateways {
        sim.with_ctx(g, |n, ctx| n.join(ctx, 1));
    }
    sim.run_for(SimDuration::from_secs(5));

    // Datacenter infrastructure does not sleep: no churnable nodes.
    let sched = spec.compile(seed ^ 0xE16, &[], DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let mut ledger = LoadLedger::new(&[(server, DeviceClass::DatacenterServer)]);
    let mut out = Outcomes::default();
    let mut pending: Vec<(NodeId, u64, f64)> = Vec::new();
    let mut rr = 0usize;
    let base = sim.now();
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        let poster = gateways[(k as usize) % gateways.len()];
        sim.with_ctx(poster, |n, ctx| {
            n.post(ctx, 1, POST_BYTES, PostLabel::Legit);
        });
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                out.total_w += d.weight;
                ledger.add(server, d.weight, d.bytes);
                let g = gateways[rr % gateways.len()];
                rr += 1;
                if let Some(op) = sim.with_ctx(g, |n, ctx| n.read(ctx, 1)) {
                    pending.push((g, op, d.weight));
                }
            });
            pending.retain(|&(g, op, w)| match sim.node_mut(g).take_read(op) {
                Some(r) => {
                    out.resolve(w, matches!(r, ReadResult::Ok(_)));
                    false
                }
                None => true,
            });
        }
        let (tick_demand, tick_util) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util);
    }
    sim.run_for(SimDuration::from_mins(10));
    for (g, op, w) in pending {
        let ok = matches!(sim.node_mut(g).take_read(op), Some(ReadResult::Ok(_)));
        out.resolve(w, ok);
    }
    let (p50, p95, p99) = histogram_quantiles(sim.metrics(), "comm.delivery_secs");
    ClassOutcome {
        availability: out.availability(),
        p50,
        p95,
        p99,
        // comm.delivery_secs is already event-time: the op view is the same.
        op_p50: p50,
        op_p95: p95,
        op_p99: p99,
        busiest_share: ledger.busiest_share(),
        peak_overload: ledger.peak_overload,
        requests,
    }
}

// ---------------------------------------------------------------------------
// Federated: five single-home instances; rooms are sharded rank % 5, so
// Zipf skew concentrates on the instance that homes the hot room — less
// than centralized's 1.0, far more than a balanced 0.2.
// ---------------------------------------------------------------------------

fn run_federated(seed: u64, population: u64) -> ClassOutcome {
    const INSTANCES: usize = 5;
    const GATEWAYS_PER_INSTANCE: usize = 2;
    let spec = e16_spec(population);
    let mut sim = Simulation::new(seed);
    let instance_ids: Vec<NodeId> = (0..INSTANCES as u32).map(NodeId).collect();
    for i in 0..INSTANCES {
        let peers: Vec<NodeId> = instance_ids
            .iter()
            .copied()
            .filter(|&p| p != instance_ids[i])
            .collect();
        sim.add_node(
            FedNode::instance(peers, ReplicationMode::SingleHome, ModerationPolicy::none()),
            DeviceClass::DatacenterServer,
        );
    }
    let mut gateways = Vec::new();
    for &instance in &instance_ids {
        for _ in 0..GATEWAYS_PER_INSTANCE {
            gateways.push(sim.add_node(FedNode::client(instance), DeviceClass::PersonalComputer));
        }
    }
    // Room r (1..=5) is first joined by a gateway homed on instance r-1,
    // pinning the room's origin there; everyone else joins after.
    for room in 1..=INSTANCES as u32 {
        let first = (room as usize - 1) * GATEWAYS_PER_INSTANCE;
        sim.with_ctx(gateways[first], |n, ctx| n.join(ctx, room));
        sim.run_for(SimDuration::from_millis(100));
        for (gi, &g) in gateways.iter().enumerate() {
            if gi != first {
                sim.with_ctx(g, |n, ctx| n.join(ctx, room));
            }
        }
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.run_for(SimDuration::from_secs(5));

    let sched = spec.compile(seed ^ 0xE16, &[], DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let serving: Vec<(NodeId, DeviceClass)> = instance_ids
        .iter()
        .map(|&id| (id, DeviceClass::DatacenterServer))
        .collect();
    let mut ledger = LoadLedger::new(&serving);
    let mut out = Outcomes::default();
    let mut pending: Vec<(NodeId, u64, f64)> = Vec::new();
    let mut rr = 0usize;
    let base = sim.now();
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        let room = 1 + (k as u32) % INSTANCES as u32;
        let poster = gateways[(k as usize) % gateways.len()];
        sim.with_ctx(poster, |n, ctx| {
            n.post(ctx, room, POST_BYTES, PostLabel::Legit);
        });
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                out.total_w += d.weight;
                let room = 1 + d.rank % INSTANCES as u32;
                // Single-home: the room's history lives on its origin.
                ledger.add(instance_ids[(room - 1) as usize], d.weight, d.bytes);
                let g = gateways[rr % gateways.len()];
                rr += 1;
                if let Some(op) = sim.with_ctx(g, |n, ctx| n.read(ctx, room)) {
                    pending.push((g, op, d.weight));
                }
            });
            pending.retain(|&(g, op, w)| match sim.node_mut(g).take_read(op) {
                Some(r) => {
                    out.resolve(w, matches!(r, ReadResult::Ok(_)));
                    false
                }
                None => true,
            });
        }
        let (tick_demand, tick_util) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util);
    }
    sim.run_for(SimDuration::from_mins(10));
    for (g, op, w) in pending {
        let ok = matches!(sim.node_mut(g).take_read(op), Some(ReadResult::Ok(_)));
        out.resolve(w, ok);
    }
    let (p50, p95, p99) = histogram_quantiles(sim.metrics(), "comm.delivery_secs");
    ClassOutcome {
        availability: out.availability(),
        p50,
        p95,
        p99,
        op_p50: p50,
        op_p95: p95,
        op_p99: p99,
        busiest_share: ledger.busiest_share(),
        peak_overload: ledger.peak_overload,
        requests,
    }
}

// ---------------------------------------------------------------------------
// DHT: the catalogue lives in a Kademlia overlay of consumer devices that
// churn with the diurnal cycle. Four always-on access gateways publish
// (and, as origins, republish) the values and issue the population's
// gets. Load is attributed to the XOR-closest overlay node per key —
// consistent hashing spreads the catalogue but cannot spread one hot key.
// ---------------------------------------------------------------------------

fn run_dht(seed: u64, population: u64) -> ClassOutcome {
    run_dht_impl(seed, population, COHORTS, DhtPolicy::Off).0
}

pub(crate) fn run_dht_impl(
    seed: u64,
    population: u64,
    cohorts: u32,
    policy: DhtPolicy,
) -> (ClassOutcome, PolicyStats) {
    const DEVICES: usize = 24;
    const GATEWAYS: usize = 4;
    let spec = e16_spec_cohorts(population, cohorts);
    let mut sim: Simulation<DhtNode> = Simulation::new(seed);
    let handle = (policy != DhtPolicy::Off).then(|| install_policy(&mut sim));
    let boot_key = sha256(b"e16-dht-0");
    let mut keys: Vec<Hash256> = Vec::new();
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..DEVICES + GATEWAYS {
        let key = sha256(format!("e16-dht-{i}").as_bytes());
        let bootstrap = if i == 0 {
            vec![]
        } else {
            vec![Contact {
                key: boot_key,
                addr: ids[0],
            }]
        };
        keys.push(key);
        ids.push(sim.add_node(
            DhtNode::new(key, DhtConfig::default(), bootstrap),
            DeviceClass::PersonalComputer,
        ));
    }
    let devices: Vec<NodeId> = ids[..DEVICES].to_vec();
    let gateways: Vec<NodeId> = ids[DEVICES..].to_vec();
    // Warm routing tables.
    for (i, &id) in ids.iter().enumerate() {
        let target = sha256(format!("e16-warm-{i}").as_bytes());
        sim.with_ctx(id, |n, ctx| n.start_find_node(ctx, target));
    }
    sim.run_for(SimDuration::from_secs(60));

    // Publish the catalogue from the gateways (origins republish, keeping
    // values alive across device churn). Sizes come from the workload's
    // bounded-Pareto, drawn from a dedicated stream.
    let mut sizes_rng = SimRng::new(seed ^ 0x0B1E);
    let content_keys: Vec<Hash256> = (0..RANKS)
        .map(|r| sha256(format!("e16-rank-{r}").as_bytes()))
        .collect();
    for (r, &key) in content_keys.iter().enumerate() {
        let size = spec.sizes.sample(&mut sizes_rng) as usize;
        let payload = vec![(r % 251) as u8; size];
        sim.with_ctx(gateways[r % GATEWAYS], |n, ctx| {
            n.start_put(ctx, key, payload);
        });
    }
    sim.run_for(SimDuration::from_secs(120));

    let sched = spec.compile(seed ^ 0xE16, &devices, DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let serving: Vec<(NodeId, DeviceClass)> = ids
        .iter()
        .map(|&id| (id, DeviceClass::PersonalComputer))
        .collect();
    let mut ledger = LoadLedger::new(&serving);
    // XOR-closest overlay node per content key (the replica-set anchor).
    let closest: Vec<NodeId> = content_keys
        .iter()
        .map(|ck| {
            let mut best = 0usize;
            let mut best_d = [0xffu8; 32];
            for (i, nk) in keys.iter().enumerate() {
                let mut d = [0u8; 32];
                for (b, byte) in d.iter_mut().enumerate() {
                    *byte = ck.0[b] ^ nk.0[b];
                }
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            ids[best]
        })
        .collect();
    let mut out = Outcomes::default();
    let mut pending: Vec<(NodeId, u64, f64)> = Vec::new();
    let mut rr = 0usize;
    let mut shed_rng = SimRng::new(seed ^ 0x5ED);
    let mut shed_q: Vec<ShedItem> = Vec::new();
    let mut cache_on = false;
    let base = sim.now();
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                out.total_w += d.weight;
                let rank = d.rank as usize % RANKS;
                let engaged = handle.as_ref().is_some_and(|h| h.engaged());
                if policy == DhtPolicy::Shed && engaged {
                    // Level-scaled admission control: shed lvl/(lvl+2) of
                    // arrivals into the backoff queue instead of serving
                    // them at the peak.
                    let h = handle.as_ref().expect("engaged implies handle");
                    let lvl = f64::from(h.level());
                    if shed_rng.f64() < lvl / (lvl + 2.0) {
                        if shed_q.len() >= SHED_QUEUE_CAP {
                            h.record("policy.shed_drop", 1);
                            out.resolve(d.weight, false);
                        } else {
                            let mut retrier = Retrier::new(shed_retry());
                            let b = retrier.next_backoff(&mut shed_rng).expect("first backoff");
                            shed_q.push(ShedItem {
                                rank,
                                weight: d.weight,
                                bytes: d.bytes,
                                due: sim.now() + b,
                                retrier,
                            });
                            h.record("policy.shed", 1);
                        }
                        return;
                    }
                }
                let g = gateways[rr % gateways.len()];
                rr += 1;
                if policy == DhtPolicy::Cache && engaged && sim.node(g).cached(&content_keys[rank])
                {
                    // The gateway answers the repeat off its own uplink
                    // instead of concentrating on the overlay anchor.
                    ledger.add(g, d.weight, d.bytes);
                    handle.as_ref().expect("engaged").record("policy.cache", 1);
                } else {
                    ledger.add(closest[rank], d.weight, d.bytes);
                }
                if let Some(op) = sim.with_ctx(g, |n, ctx| n.start_get(ctx, content_keys[rank])) {
                    pending.push((g, op, d.weight));
                }
            });
            pending.retain(|&(g, op, w)| match sim.node_mut(g).take_result(op) {
                Some(r) => {
                    out.resolve(w, matches!(r, DhtResult::Found { .. }));
                    false
                }
                None => true,
            });
            // Drain-boundary reconcile: the only place policy state takes
            // effect on the substrate, at a deterministic sim time.
            if let Some(h) = &handle {
                match policy {
                    DhtPolicy::Cache => {
                        if h.engaged() != cache_on {
                            cache_on = h.engaged();
                            for &g in &gateways {
                                sim.node_mut(g).set_cache(cache_on);
                            }
                            let kind = if cache_on {
                                "policy.cache_on"
                            } else {
                                "policy.cache_off"
                            };
                            h.record(kind, 1);
                        }
                    }
                    DhtPolicy::Shed => {
                        let now = sim.now();
                        let engaged = h.engaged();
                        let mut still = Vec::with_capacity(shed_q.len());
                        for mut item in shed_q.drain(..) {
                            if now < item.due {
                                still.push(item);
                            } else if engaged {
                                // Still overloaded: back off again, or give
                                // up once the attempt budget runs out.
                                match item.retrier.next_backoff(&mut shed_rng) {
                                    Some(b) => {
                                        item.due = now + b;
                                        still.push(item);
                                    }
                                    None => {
                                        h.record("policy.shed_give_up", 1);
                                        out.resolve(item.weight, false);
                                    }
                                }
                            } else {
                                // Released: admit the deferred demand.
                                ledger.add(closest[item.rank], item.weight, item.bytes);
                                let g = gateways[rr % gateways.len()];
                                rr += 1;
                                if let Some(op) = sim
                                    .with_ctx(g, |n, ctx| n.start_get(ctx, content_keys[item.rank]))
                                {
                                    pending.push((g, op, item.weight));
                                }
                                h.record("policy.shed_admit", 1);
                            }
                        }
                        shed_q = still;
                    }
                    DhtPolicy::Off => {}
                }
            }
        }
        let (tick_demand, tick_util) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util);
    }
    sim.run_for(SimDuration::from_mins(10));
    for (g, op, w) in pending {
        let ok = matches!(
            sim.node_mut(g).take_result(op),
            Some(DhtResult::Found { .. })
        );
        out.resolve(w, ok);
    }
    // Demands still queued when the day ends never completed.
    if let Some(h) = &handle {
        for item in shed_q.drain(..) {
            h.record("policy.shed_give_up", 1);
            out.resolve(item.weight, false);
        }
    }
    let (p50, p95, p99) = histogram_quantiles(sim.metrics(), "dht.lookup_secs");
    (
        ClassOutcome {
            availability: out.availability(),
            p50,
            p95,
            p99,
            op_p50: p50,
            op_p95: p95,
            op_p99: p99,
            busiest_share: ledger.busiest_share(),
            peak_overload: ledger.peak_overload,
            requests,
        },
        stats_of(handle.as_ref()),
    )
}

// ---------------------------------------------------------------------------
// Storage: the catalogue is erasure-coded (k=4, m=2) across churning
// consumer providers, audited and repaired by an always-on client that
// also issues the population's gets. Random shard placement spreads even
// the hot object's load across k providers — the imbalance antidote the
// other classes lack. Attribution models that placement with one seeded
// shuffle per object.
// ---------------------------------------------------------------------------

fn run_storage(seed: u64, population: u64) -> ClassOutcome {
    run_storage_impl(seed, population, COHORTS, false).0
}

pub(crate) fn run_storage_impl(
    seed: u64,
    population: u64,
    cohorts: u32,
    rebalance: bool,
) -> (ClassOutcome, PolicyStats) {
    const PROVIDERS: usize = 12;
    const OBJECTS: usize = 16;
    const K: usize = 4;
    const M: usize = 2;
    let spec = e16_spec_cohorts(population, cohorts);
    let mut sim = Simulation::new(seed);
    let handle = rebalance.then(|| install_policy(&mut sim));
    let providers: Vec<NodeId> = (0..PROVIDERS)
        .map(|_| {
            sim.add_node(
                StorageNode::provider(ProviderStrategy::Honest),
                DeviceClass::PersonalComputer,
            )
        })
        .collect();
    let client = sim.add_node(
        StorageNode::client(providers.clone(), SimDuration::from_secs(600)),
        DeviceClass::PersonalComputer,
    );
    let mut sizes_rng = SimRng::new(seed ^ 0x0B1E);
    let mut objects: Vec<Hash256> = Vec::new();
    let mut datas: Vec<Vec<u8>> = Vec::new();
    for o in 0..OBJECTS {
        let size = (spec.sizes.sample(&mut sizes_rng) as usize).max(K * 64);
        let data = vec![(o as u8).wrapping_mul(37).wrapping_add(1); size];
        let (_, object) = sim
            .with_ctx(client, |n, ctx| n.start_put(ctx, &data, K, M))
            .expect("client up");
        objects.push(object);
        datas.push(data);
        sim.run_for(SimDuration::from_secs(5));
    }
    sim.run_for(SimDuration::from_mins(5));

    // Modeled placement for attribution: the real client scatters each
    // object's k+m shards over a shuffled provider order; mirror that
    // with one seeded shuffle per object and attribute a get to the k
    // data-shard holders.
    let placement: Vec<Vec<NodeId>> = (0..OBJECTS)
        .map(|o| {
            let mut order = providers.clone();
            SimRng::new(seed ^ 0x9A7 ^ o as u64).shuffle(&mut order);
            order[..K].to_vec()
        })
        .collect();
    // The re-balanced serving set per object: the original k data-shard
    // holders plus k more from a second seeded shuffle — the modeled
    // attribution once the policy has re-replicated an object.
    let expanded: Vec<Vec<NodeId>> = (0..OBJECTS)
        .map(|o| {
            let mut order = providers.clone();
            SimRng::new(seed ^ 0x9A8 ^ o as u64).shuffle(&mut order);
            let mut set = placement[o].clone();
            for &p in &order {
                if set.len() >= 2 * K {
                    break;
                }
                if !set.contains(&p) {
                    set.push(p);
                }
            }
            set
        })
        .collect();
    let mut replicated = 0usize;

    let sched = spec.compile(seed ^ 0xE16, &providers, DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let serving: Vec<(NodeId, DeviceClass)> = providers
        .iter()
        .map(|&id| (id, DeviceClass::PersonalComputer))
        .collect();
    let mut ledger = LoadLedger::new(&serving);
    let mut out = Outcomes::default();
    let mut pending: Vec<(u64, SimTime, f64)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let base = sim.now();
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                out.total_w += d.weight;
                let o = d.rank as usize % OBJECTS;
                // Re-replicated objects serve off twice the providers.
                if o < replicated {
                    ledger.spread(&expanded[o], d.weight, d.bytes);
                } else {
                    ledger.spread(&placement[o], d.weight, d.bytes);
                }
                if let Some(op) = sim.with_ctx(client, |n, ctx| n.start_get(ctx, objects[o])) {
                    pending.push((op, sim.now(), d.weight));
                }
            });
            let now = sim.now();
            pending.retain(
                |&(op, started, w)| match sim.node_mut(client).take_result(op) {
                    Some(r) => {
                        let ok = matches!(r, StorageResult::Retrieved(_));
                        if ok {
                            latencies.push(now.since(started).secs_f64());
                        }
                        out.resolve(w, ok);
                        false
                    }
                    None => true,
                },
            );
            // Drain-boundary reconcile: each escalation level re-publishes
            // one more of the hottest objects through the real market
            // path; replicas persist after the policy releases.
            if let Some(h) = &handle {
                let want = if h.engaged() {
                    (h.level() as usize).min(OBJECTS)
                } else {
                    replicated
                };
                while replicated < want {
                    let data = &datas[replicated];
                    sim.with_ctx(client, |n, ctx| {
                        n.start_put(ctx, data, K, M);
                    });
                    h.record("policy.replicate", 1);
                    replicated += 1;
                }
            }
        }
        let (tick_demand, tick_util) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util);
    }
    sim.run_for(SimDuration::from_mins(10));
    let now = sim.now();
    for (op, started, w) in pending {
        let ok = matches!(
            sim.node_mut(client).take_result(op),
            Some(StorageResult::Retrieved(_))
        );
        if ok {
            latencies.push(now.since(started).secs_f64());
        }
        out.resolve(w, ok);
    }
    let (p50, p95, p99) = quantiles(latencies);
    // The legacy quantiles above time pending gets at drain boundaries
    // (30 s granularity); the node's own event-time completion histogram
    // gives the true per-op distribution.
    let (op_p50, op_p95, op_p99) = histogram_quantiles(sim.metrics(), "storage.get_secs");
    (
        ClassOutcome {
            availability: out.availability(),
            p50,
            p95,
            p99,
            op_p50,
            op_p95,
            op_p99,
            busiest_share: ledger.busiest_share(),
            peak_overload: ledger.peak_overload,
            requests,
        },
        stats_of(handle.as_ref()),
    )
}

// ---------------------------------------------------------------------------
// Swarm: one site, seeded by its visitors. The origin and the seed
// population churn diurnally; a few always-on gateways issue the
// population's visits (and become seeders themselves — virality is the
// point). Load spreads over whoever is up and seeding.
// ---------------------------------------------------------------------------

fn run_swarm(seed: u64, population: u64) -> ClassOutcome {
    run_swarm_impl(seed, population, COHORTS, false).0
}

pub(crate) fn run_swarm_impl(
    seed: u64,
    population: u64,
    cohorts: u32,
    seeder_pool: bool,
) -> (ClassOutcome, PolicyStats) {
    const SEEDERS: usize = 20;
    const GATEWAYS: usize = 6;
    const POOL: usize = 24;
    let spec = e16_spec_cohorts(population, cohorts);
    let mut sim = Simulation::new(seed);
    let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
    let origin = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    let seeders: Vec<NodeId> = (0..SEEDERS)
        .map(|_| sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer))
        .collect();
    let gateways: Vec<NodeId> = (0..GATEWAYS)
        .map(|_| sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer))
        .collect();
    // Reserve seeders for the auto-join policy: always-on peers holding
    // nothing until activated. Only created when the policy is on — the
    // off run's node set (and therefore its bytes) is untouched.
    let pool: Vec<NodeId> = if seeder_pool {
        (0..POOL)
            .map(|_| sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer))
            .collect()
    } else {
        Vec::new()
    };
    let handle = seeder_pool.then(|| install_policy(&mut sim));
    let mut publisher = SitePublisher::new(b"e16-site");
    let content = vec![42u8; 200_000];
    let bundle = publisher.publish(&[("index.html", content.as_slice())]);
    let site = publisher.site_id();
    sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle));
    sim.run_for(SimDuration::from_secs(5));
    // Seed wave: every seeder fetches the site while the origin is up.
    let mut warm = Vec::new();
    for &s in &seeders {
        if let Some(op) = sim.with_ctx(s, |n, ctx| n.start_visit(ctx, site)) {
            warm.push((s, op));
        }
    }
    sim.run_for(SimDuration::from_mins(5));
    for (s, op) in warm {
        let _ = sim.node_mut(s).take_result(op);
    }

    // The origin churns with everyone else: the site must outlive it.
    let mut churnable = vec![origin];
    churnable.extend(&seeders);
    let sched = spec.compile(seed ^ 0xE16, &churnable, DAY);
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    let mut swarm_members: Vec<(NodeId, DeviceClass)> = churnable
        .iter()
        .map(|&id| (id, DeviceClass::PersonalComputer))
        .collect();
    swarm_members.extend(
        gateways
            .iter()
            .map(|&id| (id, DeviceClass::PersonalComputer)),
    );
    swarm_members.extend(pool.iter().map(|&id| (id, DeviceClass::PersonalComputer)));
    let mut ledger = LoadLedger::new(&swarm_members);
    let mut out = Outcomes::default();
    let mut pending: Vec<(NodeId, u64, SimTime, f64)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut rr = 0usize;
    let mut active = 0usize;
    let base = sim.now();
    let ticks = DAY.micros() / TICK.micros();
    for k in 0..ticks {
        let tick_end = base + TICK * (k + 1);
        let mut t = base + TICK * k;
        while t < tick_end {
            t = (t + DRAIN).min(tick_end);
            driver.run_until(&mut sim, t, &mut |sim, d| {
                out.total_w += d.weight;
                // Serving capacity: whoever is up and has the pieces —
                // the origin, the seed wave, the gateways themselves, and
                // any policy-activated reserve seeders that finished
                // fetching the site.
                let live: Vec<NodeId> = churnable
                    .iter()
                    .chain(gateways.iter())
                    .copied()
                    .filter(|&n| sim.is_up(n))
                    .chain(
                        pool[..active]
                            .iter()
                            .copied()
                            .filter(|&p| sim.node(p).seeds(&site)),
                    )
                    .collect();
                ledger.spread(&live, d.weight, d.bytes);
                let g = gateways[rr % gateways.len()];
                rr += 1;
                if let Some(op) = sim.with_ctx(g, |n, ctx| n.start_visit(ctx, site)) {
                    pending.push((g, op, sim.now(), d.weight));
                }
            });
            let now = sim.now();
            pending.retain(
                |&(g, op, started, w)| match sim.node_mut(g).take_result(op) {
                    Some(r) => {
                        let ok = matches!(r, VisitResult::Ok { .. });
                        if ok {
                            latencies.push(now.since(started).secs_f64());
                        }
                        out.resolve(w, ok);
                        false
                    }
                    None => true,
                },
            );
            // Drain-boundary reconcile: four reserve seeders join per
            // escalation level; all retire once the policy releases.
            if let Some(h) = &handle {
                let want = if h.engaged() {
                    (h.level() as usize * 4).min(pool.len())
                } else {
                    0
                };
                while active < want {
                    let p = pool[active];
                    sim.with_ctx(p, |n, ctx| {
                        n.start_visit(ctx, site);
                    });
                    h.record("policy.seed", 1);
                    active += 1;
                }
                while active > want {
                    active -= 1;
                    let p = pool[active];
                    sim.with_ctx(p, |n, ctx| n.retire(ctx, site));
                    h.record("policy.retire", 1);
                }
            }
        }
        let (tick_demand, tick_util) = ledger.end_tick();
        sim.probe_note("workload.demand", tick_demand);
        sim.probe_note("net.uplink_util", tick_util);
    }
    sim.run_for(SimDuration::from_mins(10));
    let now = sim.now();
    for (g, op, started, w) in pending {
        let ok = matches!(
            sim.node_mut(g).take_result(op),
            Some(VisitResult::Ok { .. })
        );
        if ok {
            latencies.push(now.since(started).secs_f64());
        }
        out.resolve(w, ok);
    }
    let (p50, p95, p99) = quantiles(latencies);
    let (op_p50, op_p95, op_p99) = histogram_quantiles(sim.metrics(), "web.visit_secs");
    (
        ClassOutcome {
            availability: out.availability(),
            p50,
            p95,
            p99,
            op_p50,
            op_p95,
            op_p99,
            busiest_share: ledger.busiest_share(),
            peak_overload: ledger.peak_overload,
            requests,
        },
        stats_of(handle.as_ref()),
    )
}

/// E16 at a single population: the same day on all five classes.
pub fn e16_population_point(seed: u64, population: u64) -> E16Result {
    E16Result {
        population,
        centralized: run_centralized(seed, population),
        federated: run_federated(seed + 1, population),
        dht: run_dht(seed + 2, population),
        storage: run_storage(seed + 3, population),
        swarm: run_swarm(seed + 4, population),
    }
}

/// E16: sweep the population grid and render the flash-crowd report.
pub fn e16_flash_crowd_sweep(seed: u64) -> (Vec<E16Result>, Report) {
    let results: Vec<E16Result> = E16_POPULATIONS
        .iter()
        .map(|&p| e16_population_point(seed, p))
        .collect();
    let mut body = String::from(
        "One diurnal day (three timezone regions, residential curve) with a\n\
         12x flash crowd at 12:45 UTC, cohort-aggregated so 1M users cost\n\
         O(cohorts) engine events. Weighted availability | busiest node's\n\
         share of demand | peak uplink overload factor:\n",
    );
    for r in &results {
        body.push_str(&format!("\n  population {:>9}:\n", r.population));
        for (name, c) in [
            ("centralized", &r.centralized),
            ("federated", &r.federated),
            ("dht", &r.dht),
            ("storage", &r.storage),
            ("swarm", &r.swarm),
        ] {
            body.push_str(&format!(
                "    {name:<12} avail {:>6.3}  busiest {:>5.3}  overload {:>10.2}  p99 {:>7.2}s\n",
                c.availability, c.busiest_share, c.peak_overload, c.p99
            ));
        }
    }
    let first = &results[0];
    let last = &results[results.len() - 1];
    body.push_str(&format!(
        "\nVerdict: the centralized server takes the whole flash crowd\n\
         (busiest share {:.3}) yet its datacenter uplink absorbs it\n\
         ({:.2}x at 1M users), while the consumer-uplink substrates\n\
         overload despite spreading demand: the DHT peaks at {:.0}x and\n\
         erasure-coded storage at {:.0}x per device (busiest shares\n\
         {:.3} / {:.3}). Growing 10k -> 1M multiplies P2P overload\n\
         {:.0}x but leaves the datacenter flat — the paper's \"roughly\n\
         sufficient\" capacity (S5) holds on average, not at the skewed\n\
         node the flash crowd actually hits.\n",
        last.centralized.busiest_share,
        last.centralized.peak_overload,
        last.dht.peak_overload,
        last.storage.peak_overload,
        last.dht.busiest_share,
        last.storage.busiest_share,
        last.dht.peak_overload / first.dht.peak_overload.max(1e-9),
    ));
    (
        results,
        Report {
            id: "E16",
            title: "Population-scale flash crowd across architecture classes",
            claim: "the paper's per-device capacity argument (§4, §5) survives \
                    population scale only when the architecture spreads \
                    heavy-tailed demand: load skew, not raw capacity, is what \
                    breaks decentralized substrates under a flash crowd",
            body,
        },
    )
}

fn class_metrics(m: &mut Metrics, prefix: &str, c: &ClassOutcome) {
    m.gauge_set(&format!("{prefix}.availability"), c.availability);
    m.gauge_set(&format!("{prefix}.p99_secs"), c.p99);
    m.gauge_set(&format!("{prefix}.op_p50_secs"), c.op_p50);
    m.gauge_set(&format!("{prefix}.op_p99_secs"), c.op_p99);
    m.gauge_set(&format!("{prefix}.busiest_share"), c.busiest_share);
    m.gauge_set(&format!("{prefix}.peak_overload"), c.peak_overload);
}

/// Flatten an E16 run at one population into harness metrics (keys
/// `e16.*`). The population is the harness sweep parameter.
pub fn e16_metrics(seed: u64, population: u64) -> Metrics {
    let r = e16_population_point(seed, population);
    let mut m = Metrics::new();
    class_metrics(&mut m, "e16.centralized", &r.centralized);
    class_metrics(&mut m, "e16.federated", &r.federated);
    class_metrics(&mut m, "e16.dht", &r.dht);
    class_metrics(&mut m, "e16.storage", &r.storage);
    class_metrics(&mut m, "e16.swarm", &r.swarm);
    let requests = r.centralized.requests
        + r.federated.requests
        + r.dht.requests
        + r.storage.requests
        + r.swarm.requests;
    m.incr("e16.requests", requests);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_point_is_sane_and_separates_classes() {
        let r = e16_population_point(61, 10_000);
        // Infrastructure classes stay available; device classes track churn.
        assert!(r.centralized.availability > 0.9, "{:?}", r.centralized);
        assert!(r.federated.availability > 0.8, "{:?}", r.federated);
        assert!(r.dht.availability > 0.3, "{:?}", r.dht);
        assert!(r.swarm.availability > 0.5, "{:?}", r.swarm);
        // Imbalance: one server carries everything; sharded classes less.
        assert!((r.centralized.busiest_share - 1.0).abs() < 1e-9);
        assert!(r.federated.busiest_share < 0.9, "{:?}", r.federated);
        assert!(
            r.storage.busiest_share < r.centralized.busiest_share,
            "erasure coding must spread load: {:?}",
            r.storage
        );
        // Demand volume is population-scale.
        assert!(r.centralized.requests > 150_000, "{:?}", r.centralized);
    }

    #[test]
    fn e16_overload_scales_with_population_not_event_count() {
        let small = run_centralized(67, 10_000);
        let large = run_centralized(67, 1_000_000);
        // 100x the population, ~100x the modeled peak load...
        assert!(
            large.peak_overload > small.peak_overload * 20.0,
            "small {small:?} large {large:?}"
        );
        // ...from the same order of representative requests (the cohort
        // layer's O(cohorts) claim, visible as comparable availability
        // denominators rather than 100x the ops).
        assert!(large.requests > small.requests * 50);
    }

    #[test]
    fn e16_runs_are_deterministic() {
        let a = e16_population_point(71, 10_000);
        let b = e16_population_point(71, 10_000);
        for (x, y) in [
            (&a.centralized, &b.centralized),
            (&a.federated, &b.federated),
            (&a.dht, &b.dht),
            (&a.storage, &b.storage),
            (&a.swarm, &b.swarm),
        ] {
            assert_eq!(x.availability, y.availability);
            assert_eq!(x.busiest_share, y.busiest_share);
            assert_eq!(x.peak_overload, y.peak_overload);
            assert_eq!(x.requests, y.requests);
        }
    }
}

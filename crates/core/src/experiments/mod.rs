//! The experiment harness: every table and derived experiment of
//! EXPERIMENTS.md, runnable one-shot.
//!
//! Each experiment returns a structured result with public numeric fields
//! (asserted in tests, re-measured in benches) plus a rendered
//! [`Report`] for the harness binaries.

pub mod exp_agenda;
pub mod exp_app;
pub mod exp_chain;
pub mod exp_comm;
pub mod exp_governance;
pub mod exp_market;
pub mod exp_naming;
pub mod exp_policy;
pub mod exp_resilience;
pub mod exp_storage;
pub mod exp_usenet;
pub mod exp_web;
pub mod exp_workload;

use std::fmt;

pub use exp_agenda::{
    e10_federated_failover, e10_metrics, e11_guerrilla_relay, e11_metrics, E10Result, E11Result,
};
pub use exp_app::{e18_app_point, e18_app_sweep, e18_metrics, AppOutcome, E18Result};
pub use exp_chain::{e9_chain_costs, e9_metrics, E9Result};
pub use exp_comm::{
    e3_groupcomm_availability, e3_metrics, e4_metrics, e4_privacy, E3Result, E4Result,
};
pub use exp_governance::{
    e12_metrics, e12_moderation_tension, e13_financing_gap, e13_metrics, CostRow, E12Result,
    E13Result, Payer,
};
pub use exp_market::{
    e17_market_point, e17_market_sweep, e17_metrics, e17_workload_metrics, e17_workload_point,
    CodecPoint, E17Result, E17Workload, E17_INTENSITIES,
};
pub use exp_naming::{
    e1_metrics, e1_naming_tradeoff, e2_metrics, e2_naming_attacks, E1Result, E2Result,
};
pub use exp_policy::{
    e16_cohort_runners, e16_policy_metrics, e16_policy_point, e16_policy_sweep, CohortRunner,
    E16PolicyResult, PolicyPair,
};
pub use exp_resilience::{
    e15_degradation_point, e15_degradation_sweep, e15_metrics, DegradationPoint, E15Result,
    E15_INTENSITIES,
};
pub use exp_storage::{
    e5_metrics, e5_storage_proofs, e6_durability, e6_metrics, e8_metrics, e8_quality_vs_quantity,
    E5Result, E6Result, E8Result,
};
pub use exp_usenet::{e14_metrics, e14_usenet_collapse, E14Result, UsenetRow};
pub use exp_web::{e7_metrics, e7_web_availability, E7Result};
pub use exp_workload::{
    e16_flash_crowd_sweep, e16_metrics, e16_population_point, ClassOutcome, E16Result, PolicyStats,
    E16_POPULATIONS,
};

/// Normalize a free-form row label into a metric-key segment: lowercase
/// alphanumerics and dots survive, everything else collapses to `_`.
pub fn metric_key_segment(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_underscore = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
            out.push(c.to_ascii_lowercase());
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    out.trim_matches('_').to_owned()
}

/// A rendered experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id ("T1", "E3", ...).
    pub id: &'static str,
    /// Title.
    pub title: &'static str,
    /// The paper claim under test.
    pub claim: &'static str,
    /// Rendered findings.
    pub body: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "Paper claim: {}", self.claim)?;
        writeln!(f)?;
        write!(f, "{}", self.body)
    }
}

/// T1: regenerate Table 1 from the live registry.
pub fn t1_taxonomy() -> Report {
    let mut body = crate::taxonomy::render_table1();
    body.push('\n');
    body.push_str(crate::taxonomy::freedom_js_note());
    body.push('\n');
    Report {
        id: "T1",
        title: "Decentralization problems and projects (Table 1)",
        claim: "The surveyed projects fall into four problem categories: \
                naming, group communication, data storage, web applications",
        body,
    }
}

/// T2: regenerate Table 2 from the live storage profiles and exercise each
/// profile's proof/incentive mechanism once.
pub fn t2_storage_systems() -> Report {
    use agora_sim::SimRng;
    use agora_storage::{
        por_make_audits, por_respond, por_verify, profiles::table2_profiles, seal,
        sealed_commitment, BitswapLedger, Manifest, PosChallenge, PosResponse, ProofScheme,
        ResourceScore, SealParams,
    };

    let mut body = agora_storage::render_table2();
    body.push('\n');
    body.push_str("Mechanism check (each profile's proof/incentive exercised):\n");
    let mut rng = SimRng::new(2);
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    for p in table2_profiles() {
        let ok = match p.proof {
            ProofScheme::ProofOfStorage => {
                let (manifest, chunks) = Manifest::build(&data, 4096);
                let ch = PosChallenge {
                    object: manifest.object_id,
                    index: 3,
                    nonce: rng.next_u64(),
                };
                PosResponse::build(&ch, &manifest, chunks[3].clone())
                    .map(|r| r.verify(&ch))
                    .unwrap_or(false)
            }
            ProofScheme::ProofOfRetrievability => {
                let audits = por_make_audits(&data, 4, &mut rng);
                audits
                    .iter()
                    .all(|a| por_verify(a, &por_respond(a.nonce, &data)))
            }
            ProofScheme::ProofOfReplication => {
                let params = SealParams::default();
                let id = agora_crypto::sha256(p.name.as_bytes());
                let sealed = seal(&data, &id);
                let commitment = sealed_commitment(&sealed, &params);
                let (_, chunks) = Manifest::build(&sealed, params.sealed_chunk_size);
                let ch = PosChallenge {
                    object: commitment.object_id,
                    index: 1,
                    nonce: rng.next_u64(),
                };
                PosResponse::build(&ch, &commitment, chunks[1].clone())
                    .map(|r| r.verify(&ch))
                    .unwrap_or(false)
            }
            ProofScheme::None => {
                // IPFS / Blockstack: exercise the incentive layer instead.
                let mut ledger = BitswapLedger::new(1_000_000);
                let peer = agora_crypto::sha256(b"peer");
                ledger.record_sent(peer, 500_000);
                let mut rs = ResourceScore::new();
                rs.record_audit(peer, true);
                ledger.will_serve(&peer, 100_000) && rs.eligible(&peer)
            }
        };
        body.push_str(&format!(
            "  {:<11} {:?} redundancy {:.1}x ... {}\n",
            p.name,
            p.proof,
            p.redundancy.overhead(),
            if ok { "ok" } else { "FAILED" }
        ));
    }
    Report {
        id: "T2",
        title: "Comparison of surveyed storage systems (Table 2)",
        claim: "Storage systems differ in blockchain usage and incentive \
                scheme; all listed mechanisms are implementable and sound",
        body,
    }
}

/// T3: regenerate Table 3 exactly, plus sufficiency ratios, the duty-cycle
/// discount extension, and a sensitivity sweep.
pub fn t3_feasibility() -> Report {
    use agora_feasibility::{render_table3, sensitivity_sweep, Assumptions};
    let a = Assumptions::default();
    let mut body = render_table3(&a);
    let s = a.sufficiency();
    body.push_str(&format!(
        "\nSufficiency (user/cloud): bandwidth {:.1}x, cores {:.2}x, storage {:.2}x\n",
        s.bandwidth_tbps, s.cores_millions, s.storage_eb
    ));
    let eff = a.effective_user_devices(0.45, 0.30);
    let cloud = a.cloud();
    body.push_str(&format!(
        "With duty-cycle discounts (PC 45%, mobile 30%): {:.0} Tbps, {:.0} M cores, {:.0} EB\n",
        eff.bandwidth_tbps, eff.cores_millions, eff.storage_eb
    ));
    body.push_str(&format!(
        "  → cores fall below cloud ({:.0} M < {:.0} M): §5.2's quality-vs-quantity caveat\n",
        eff.cores_millions, cloud.cores_millions
    ));
    body.push_str("\nSensitivity (sufficiency ratios under ±2x on each assumption):\n");
    for row in sensitivity_sweep(&[0.5, 2.0]) {
        body.push_str(&format!(
            "  {:<22} x{:<4} → bw {:>6.1} cores {:>5.2} storage {:>5.2}\n",
            row.assumption,
            row.factor,
            row.sufficiency.bandwidth_tbps,
            row.sufficiency.cores_millions,
            row.sufficiency.storage_eb
        ));
    }
    Report {
        id: "T3",
        title: "Cloud vs user-device capacity (Table 3)",
        claim: "200 Tbps / 400 M cores / 80 EB (cloud) vs 5000 Tbps / 500 M \
                cores / 210 EB (devices): roughly sufficient capacity exists",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_renders_all_categories() {
        let r = t1_taxonomy();
        for label in [
            "Naming",
            "Group Communication",
            "Data storage",
            "Web applications",
        ] {
            assert!(r.body.contains(label));
        }
        assert_eq!(r.id, "T1");
    }

    #[test]
    fn t2_all_mechanisms_pass() {
        let r = t2_storage_systems();
        assert!(!r.body.contains("FAILED"), "{}", r.body);
        assert!(r.body.contains("Filecoin"));
        assert!(r.body.contains("ok"));
    }

    #[test]
    fn t3_contains_paper_numbers_and_caveat() {
        let r = t3_feasibility();
        for v in ["5000", "210", "400", "80"] {
            assert!(r.body.contains(v), "missing {v}");
        }
        assert!(r.body.contains("quality-vs-quantity"));
    }

    #[test]
    fn report_display_includes_header() {
        let r = t1_taxonomy();
        let s = format!("{r}");
        assert!(s.starts_with("=== T1"));
        assert!(s.contains("Paper claim:"));
    }
}

//! # agora — a simulation framework for studying re-democratized Internet
//! architectures
//!
//! A full reproduction of *"The Barriers to Overthrowing Internet Feudalism"*
//! (Liu, Tariq, Chen & Raghavan — HotNets-XVI 2017). The paper is a position
//! paper: it surveys the systems people build to decentralize naming, group
//! communication, storage and web hosting, and asks what stands in their way.
//! This workspace implements working simulated instances of every mechanism
//! class the paper discusses and turns its claims into experiments:
//!
//! * [`taxonomy`] — the two-axis (distribution × control) model and the
//!   Table 1 registry, backed by the implementing modules.
//! * [`properties`] — the §2.1/§3.2 property rubric scored across the five
//!   architecture families.
//! * [`experiments`] — the harness regenerating every table (T1–T3) and
//!   running every derived experiment (E1–E9) of EXPERIMENTS.md.
//! * [`stack`] — the composed stack: names on the chain, zone files in the
//!   DHT, sites in the swarm, every hand-off cryptographically verified.
//!
//! Substrates live in sibling crates: `agora-sim` (deterministic DES),
//! `agora-crypto`, `agora-chain`, `agora-dht`, `agora-naming`,
//! `agora-storage`, `agora-comm`, `agora-web`, `agora-feasibility`.
//!
//! ## Quickstart
//!
//! ```
//! use agora::stack::demo_full_stack;
//! let out = demo_full_stack(7, "alice.agora").expect("end-to-end stack");
//! assert_eq!(out.site_version, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod properties;
pub mod stack;
pub mod taxonomy;

pub use experiments::{t1_taxonomy, t2_storage_systems, t3_feasibility, Report};
pub use properties::{render_property_matrix, Architecture, Property};
pub use stack::{demo_full_stack, FullStackOutcome, StackError};
pub use taxonomy::{render_table1, table1_registry, Problem, ProjectEntry};

/// Re-export of the Zooko-triangle comparison table from `agora-naming`.
pub use agora_naming::render_zooko_table as naming_zooko_table;

// Re-export the substrate crates so downstream users need only one dependency.
pub use agora_app as app;
pub use agora_chain as chain;
pub use agora_comm as comm;
pub use agora_crypto as crypto;
pub use agora_dht as dht;
pub use agora_feasibility as feasibility;
pub use agora_naming as naming;
pub use agora_sim as sim;
pub use agora_storage as storage;
pub use agora_web as web;

//! The paper's property framework (§2.1, §2.2, §3.2), as a scoring rubric
//! applied to the implemented architectures.
//!
//! §2.1 names the forces that keep users and operators on centralized
//! platforms (convenience, homogeneity, cost; performance, security,
//! financing); §3.2 adds the communication-specific requirements
//! (connectedness, abuse prevention, privacy). Scores here are graded
//! 0–2 and each carries a mechanism-level rationale pointing at the module
//! (and usually the test or experiment) that backs it.

/// The properties of §2.1 (user-facing and operator-facing) and §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Property {
    /// Always-on, no self-hosted maintenance (§2.1 user).
    Convenience,
    /// Same platform everywhere; network effects (§2.1 user).
    Homogeneity,
    /// Cheap or free to end users (§2.1 user).
    Cost,
    /// Scale and latency (§2.1 operator).
    Performance,
    /// Simple trust model, fast uniform patching (§2.1 operator).
    Security,
    /// Economies of scale, monetization (§2.1 operator).
    Financing,
    /// Communication survives node failures (§3.2).
    Connectedness,
    /// Abuse is handled, however defined (§3.2).
    AbusePrevention,
    /// No identifying information leaks to unauthorized parties (§3.2).
    Privacy,
}

impl Property {
    /// All properties.
    pub fn all() -> [Property; 9] {
        [
            Property::Convenience,
            Property::Homogeneity,
            Property::Cost,
            Property::Performance,
            Property::Security,
            Property::Financing,
            Property::Connectedness,
            Property::AbusePrevention,
            Property::Privacy,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Property::Convenience => "Convenience",
            Property::Homogeneity => "Homogeneity",
            Property::Cost => "Cost",
            Property::Performance => "Performance",
            Property::Security => "Security",
            Property::Financing => "Financing",
            Property::Connectedness => "Connectedness",
            Property::AbusePrevention => "Abuse prevention",
            Property::Privacy => "Privacy",
        }
    }
}

/// The architecture families compared throughout the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// One operator, one platform (§2).
    Centralized,
    /// Federated instances, single-homed history (OStatus class).
    FederatedSingleHome,
    /// Federated instances, fully replicated history (Matrix class).
    FederatedReplicated,
    /// Socially-aware P2P (PrPl/Persona class).
    SocialP2p,
    /// Blockchain-anchored systems (Namecoin/Sia/Filecoin class).
    BlockchainBacked,
}

impl Architecture {
    /// All architectures.
    pub fn all() -> [Architecture; 5] {
        [
            Architecture::Centralized,
            Architecture::FederatedSingleHome,
            Architecture::FederatedReplicated,
            Architecture::SocialP2p,
            Architecture::BlockchainBacked,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Centralized => "Centralized",
            Architecture::FederatedSingleHome => "Federated (single-home)",
            Architecture::FederatedReplicated => "Federated (replicated)",
            Architecture::SocialP2p => "Socially-aware P2P",
            Architecture::BlockchainBacked => "Blockchain-backed",
        }
    }

    /// Score a property 0 (poor) / 1 (partial) / 2 (strong), with the
    /// mechanism-level rationale.
    pub fn score(self, p: Property) -> (u8, &'static str) {
        use Architecture as A;
        use Property as P;
        match (self, p) {
            (A::Centralized, P::Convenience) => (2, "operator runs everything (§2.1)"),
            (A::Centralized, P::Homogeneity) => (2, "single platform, full network effects"),
            (A::Centralized, P::Cost) => (2, "free at point of use; paid with data"),
            (A::Centralized, P::Performance) => (2, "co-designed datacenter stack (§2.1)"),
            (A::Centralized, P::Security) => (1, "uniform patching, but single point of compromise"),
            (A::Centralized, P::Financing) => (2, "economies of scale + monetized users"),
            (A::Centralized, P::Connectedness) => (1, "excellent until the operator fails or revokes access (comm::centralized::server_down_means_total_outage)"),
            (A::Centralized, P::AbusePrevention) => (2, "one enforced policy (comm experiments E3)"),
            (A::Centralized, P::Privacy) => (0, "operator observes all metadata and monetizes it (E4)"),

            (A::FederatedSingleHome, P::Convenience) => (1, "someone must run each instance"),
            (A::FederatedSingleHome, P::Homogeneity) => (1, "protocol-level compat, instance-level variation"),
            (A::FederatedSingleHome, P::Cost) => (1, "volunteer-funded instances"),
            (A::FederatedSingleHome, P::Performance) => (1, "instance-sized scaling"),
            (A::FederatedSingleHome, P::Security) => (1, "per-instance practice varies"),
            (A::FederatedSingleHome, P::Financing) => (0, "donations; the paper's hard problem"),
            (A::FederatedSingleHome, P::Connectedness) => (0, "origin instance is a SPOF (E3: origin_failure_kills_single_home_reads)"),
            (A::FederatedSingleHome, P::AbusePrevention) => (1, "per-instance policies (federated::per_instance_policies_differ)"),
            (A::FederatedSingleHome, P::Privacy) => (1, "home instance sees metadata"),

            (A::FederatedReplicated, P::Convenience) => (1, "someone must run each instance"),
            (A::FederatedReplicated, P::Homogeneity) => (1, "protocol-level compat"),
            (A::FederatedReplicated, P::Cost) => (1, "replication multiplies instance cost"),
            (A::FederatedReplicated, P::Performance) => (1, "replication traffic overhead (E3 bytes)"),
            (A::FederatedReplicated, P::Security) => (1, "E2E possible (comm::ratchet), instances vary"),
            (A::FederatedReplicated, P::Financing) => (0, "donations; the paper's hard problem"),
            (A::FederatedReplicated, P::Connectedness) => (2, "history survives any instance failure (E3)"),
            (A::FederatedReplicated, P::AbusePrevention) => (1, "per-application policies (§3.2 Matrix)"),
            (A::FederatedReplicated, P::Privacy) => (1, "bodies E2E-encrypted, metadata visible to instances (E4)"),

            (A::SocialP2p, P::Convenience) => (0, "users run their own nodes; tedious trust setup (§3.2)"),
            (A::SocialP2p, P::Homogeneity) => (0, "fragmented small networks"),
            (A::SocialP2p, P::Cost) => (2, "users' existing devices"),
            (A::SocialP2p, P::Performance) => (0, "consumer uplinks and device churn (E8)"),
            (A::SocialP2p, P::Security) => (1, "trust-gated connections shrink the attack surface"),
            (A::SocialP2p, P::Financing) => (1, "no infrastructure to finance"),
            (A::SocialP2p, P::Connectedness) => (0, "owner offline ⇒ data unavailable (E4/social tests); caching only partially helps"),
            (A::SocialP2p, P::AbusePrevention) => (1, "trust gating blocks strangers, not misbehaving friends"),
            (A::SocialP2p, P::Privacy) => (2, "only chosen friends ever observe anything (E4)"),

            (A::BlockchainBacked, P::Convenience) => (1, "global, always-on, but keys/fees on users"),
            (A::BlockchainBacked, P::Homogeneity) => (2, "one global consensus namespace"),
            (A::BlockchainBacked, P::Cost) => (0, "fees + wasteful mining (E9)"),
            (A::BlockchainBacked, P::Performance) => (0, "consensus trades performance away (E1: minutes vs ms)"),
            (A::BlockchainBacked, P::Security) => (2, "forgery needs 51% of hash power (E2)"),
            (A::BlockchainBacked, P::Financing) => (2, "token incentives fund providers (Table 2 systems)"),
            (A::BlockchainBacked, P::Connectedness) => (2, "ledger replicated everywhere (chain tests)"),
            (A::BlockchainBacked, P::AbusePrevention) => (0, "append-only, nobody can moderate (§3.2 n3)"),
            (A::BlockchainBacked, P::Privacy) => (0, "public ledger; pseudonymous at best"),
        }
    }

    /// Sum of all property scores (max 18).
    pub fn total_score(self) -> u8 {
        Property::all().iter().map(|&p| self.score(p).0).sum()
    }
}

/// Render the property comparison matrix.
pub fn render_property_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<17}", "Property"));
    for a in Architecture::all() {
        out.push_str(&format!(" | {:>23}", a.label()));
    }
    out.push('\n');
    out.push_str(&format!("{}\n", "-".repeat(17 + 26 * 5)));
    for p in Property::all() {
        out.push_str(&format!("{:<17}", p.label()));
        for a in Architecture::all() {
            out.push_str(&format!(" | {:>23}", a.score(p).0));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<17}", "TOTAL"));
    for a in Architecture::all() {
        out.push_str(&format!(" | {:>23}", a.total_score()));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_scored_with_rationale() {
        for a in Architecture::all() {
            for p in Property::all() {
                let (s, why) = a.score(p);
                assert!(s <= 2, "{:?}/{:?}", a, p);
                assert!(!why.is_empty());
            }
        }
    }

    #[test]
    fn papers_core_tensions_encoded() {
        use Architecture as A;
        use Property as P;
        // Centralized wins privacy-for-convenience trade; P2P the reverse.
        assert!(A::Centralized.score(P::Convenience).0 > A::SocialP2p.score(P::Convenience).0);
        assert!(A::SocialP2p.score(P::Privacy).0 > A::Centralized.score(P::Privacy).0);
        // Blockchains trade performance for security (§3.1).
        assert!(
            A::BlockchainBacked.score(P::Security).0 > A::BlockchainBacked.score(P::Performance).0
        );
        // Full replication beats single-home on connectedness (§3.2).
        assert!(
            A::FederatedReplicated.score(P::Connectedness).0
                > A::FederatedSingleHome.score(P::Connectedness).0
        );
        // Financing is the decentralized architectures' weak spot (§5.3).
        assert_eq!(A::FederatedSingleHome.score(P::Financing).0, 0);
        assert_eq!(A::FederatedReplicated.score(P::Financing).0, 0);
    }

    #[test]
    fn no_architecture_dominates() {
        // The paper's whole point: nothing scores 2 everywhere.
        for a in Architecture::all() {
            assert!(
                Property::all().iter().any(|&p| a.score(p).0 < 2),
                "{} dominates — the trade-off structure is broken",
                a.label()
            );
        }
    }

    #[test]
    fn matrix_renders() {
        let m = render_property_matrix();
        for a in Architecture::all() {
            assert!(m.contains(a.label()));
        }
        assert!(m.contains("TOTAL"));
    }
}

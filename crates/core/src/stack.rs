//! The composed democratized stack: identity on the chain, zone files in
//! the DHT, content in the swarm — the §3 subsystems working *together*.
//!
//! Composition is at the artifact level: each subsystem runs in its own
//! deterministic simulation and the cryptographic artifacts (ledger, zone
//! files, signed site manifests) flow between them, exactly as a Blockstack-
//! style deployment separates its layers. Every hand-off is verified — the
//! zone file must hash to the on-chain commitment, and the fetched site must
//! be signed by the key the zone file names.

use agora_chain::{ChainNode, ChainParams, MinerConfig};
use agora_crypto::{sha256, Hash256, SimKeyPair};
use agora_dht::{Contact, DhtConfig, DhtNode, DhtResult};
use agora_naming::{NameDb, NameOp, NamingRules, ZoneFile};
use agora_sim::{DeviceClass, NodeId, SimDuration, Simulation};
use agora_web::{SitePublisher, SwarmNode, VisitResult};

/// Errors from the full-stack scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// The name never confirmed on the chain.
    NameNotConfirmed,
    /// The zone file could not be fetched from the DHT.
    ZoneFetchFailed,
    /// Fetched zone file does not hash to the on-chain commitment.
    ZoneHashMismatch,
    /// The zone file was undecodable.
    ZoneCorrupt,
    /// The site could not be fetched from the swarm.
    SiteFetchFailed,
    /// The fetched site is not signed by the zone file's key.
    SiteKeyMismatch,
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}
impl std::error::Error for StackError {}

/// Outcome of the end-to-end scenario.
#[derive(Clone, Debug)]
pub struct FullStackOutcome {
    /// The human-meaningful name registered and resolved.
    pub name: String,
    /// The owning account on-chain.
    pub resolved_owner: Hash256,
    /// Chain height at resolution time.
    pub chain_height: u64,
    /// DHT replicas holding the zone file.
    pub zone_replicas: usize,
    /// Site version fetched from the swarm.
    pub site_version: u64,
    /// Site bytes transferred.
    pub site_bytes: u64,
}

/// Run the full democratized stack end-to-end:
///
/// 1. Alice publishes a site (signed, key-addressed) — `agora-web`.
/// 2. She writes a zone file naming her key and the site address.
/// 3. She preorders + registers `name` on the chain, committing to the zone
///    file hash — `agora-chain` + `agora-naming`.
/// 4. The zone file is stored in the DHT under its hash — `agora-dht`.
/// 5. Bob resolves: chain → zone hash → DHT → zone file → site address →
///    swarm → verified site.
pub fn demo_full_stack(seed: u64, name: &str) -> Result<FullStackOutcome, StackError> {
    // -- 1. the site ---------------------------------------------------------
    let alice = SimKeyPair::from_seed(b"alice-stack");
    let mut publisher = SitePublisher::new(b"alice-stack");
    let bundle = publisher.publish(&[
        ("index.html", b"<h1>alice, feudal-lord-free</h1>".as_slice()),
        ("style.css", b"h1 { color: teal }".as_slice()),
    ]);
    let site_id = publisher.site_id();
    debug_assert_eq!(site_id, alice.public().id(), "same seed, same key");

    // -- 2. the zone file -----------------------------------------------------
    let zone = ZoneFile {
        name: name.to_owned(),
        public_key: alice.public().id(),
        endpoints: vec![format!("site={}", site_id.to_hex())],
    };
    let zone_hash = zone.hash();

    // -- 3. chain registration -------------------------------------------------
    let params = ChainParams {
        target_block_interval: SimDuration::from_secs(10),
        initial_difficulty_bits: 8,
        confirmation_depth: 3,
        ..ChainParams::default()
    };
    let premine = vec![(alice.public().id(), 10_000)];
    let mut chain_sim: Simulation<ChainNode> = Simulation::new(seed);
    let mut chain_ids: Vec<NodeId> = Vec::new();
    for i in 0..3 {
        let miner = (i == 0).then(|| MinerConfig {
            account: sha256(b"stack-miner"),
            hashrate: 256.0 / 10.0,
        });
        chain_ids.push(chain_sim.add_node(
            ChainNode::new("stack", params.clone(), &premine, miner),
            DeviceClass::DatacenterServer,
        ));
    }
    for &id in &chain_ids {
        let peers = chain_ids.clone();
        chain_sim.node_mut(id).set_peers(peers);
    }
    chain_sim.run_for(SimDuration::from_secs(30));

    let salt = seed;
    let pre = NameOp::Preorder {
        commitment: NameOp::commitment(name, salt, &alice.public().id()),
    }
    .into_tx(&alice, 0, 1);
    chain_sim.with_ctx(chain_ids[1], |n, ctx| n.submit_tx(ctx, pre));
    chain_sim.run_for(SimDuration::from_secs(60));
    let reg = NameOp::Register {
        name: name.to_owned(),
        salt,
        zone_hash,
    }
    .into_tx(&alice, 1, 1);
    let reg_id = reg.id();
    chain_sim.with_ctx(chain_ids[1], |n, ctx| n.submit_tx(ctx, reg));
    let deadline = chain_sim.now() + SimDuration::from_mins(20);
    while !chain_sim.node(chain_ids[2]).ledger().is_confirmed(&reg_id) {
        if chain_sim.now() >= deadline {
            return Err(StackError::NameNotConfirmed);
        }
        chain_sim.run_for(SimDuration::from_secs(30));
    }

    // -- 4. zone file into the DHT ----------------------------------------------
    let mut dht_sim: Simulation<DhtNode> = Simulation::new(seed + 1);
    let boot_key = sha256(b"dht-0");
    let mut dht_ids = Vec::new();
    for i in 0..12 {
        let key = sha256(format!("dht-{i}").as_bytes());
        let bootstrap = if i == 0 {
            vec![]
        } else {
            vec![Contact {
                key: boot_key,
                addr: NodeId(0),
            }]
        };
        dht_ids.push(dht_sim.add_node(
            DhtNode::new(key, DhtConfig::default(), bootstrap),
            DeviceClass::PersonalComputer,
        ));
    }
    dht_sim.run_for(SimDuration::from_secs(30));
    let put_op = dht_sim
        .with_ctx(dht_ids[1], |n, ctx| {
            n.start_put(ctx, zone_hash, zone.encode())
        })
        .expect("node up");
    dht_sim.run_for(SimDuration::from_secs(30));
    let zone_replicas = match dht_sim.node_mut(dht_ids[1]).take_result(put_op) {
        Some(DhtResult::Stored { replicas }) => replicas,
        _ => return Err(StackError::ZoneFetchFailed),
    };

    // -- 5. Bob resolves -----------------------------------------------------------
    // Chain → name record.
    let ledger = chain_sim.node(chain_ids[2]).ledger();
    let rules = NamingRules {
        min_preorder_age: 1,
        ..NamingRules::default()
    };
    let db = NameDb::from_ledger(ledger, &rules);
    let height = ledger.best_height();
    let record = db
        .resolve(name, height)
        .ok_or(StackError::NameNotConfirmed)?;

    // DHT → zone file (verified against the on-chain hash).
    let get_op = dht_sim
        .with_ctx(dht_ids[7], |n, ctx| n.start_get(ctx, record.zone_hash))
        .expect("node up");
    dht_sim.run_for(SimDuration::from_secs(30));
    let zone_bytes = match dht_sim.node_mut(dht_ids[7]).take_result(get_op) {
        Some(DhtResult::Found { data, .. }) => data,
        _ => return Err(StackError::ZoneFetchFailed),
    };
    if sha256(&zone_bytes) != record.zone_hash {
        return Err(StackError::ZoneHashMismatch);
    }
    let fetched_zone = ZoneFile::decode(&zone_bytes).map_err(|_| StackError::ZoneCorrupt)?;

    // Zone → site address → swarm fetch.
    let site_hex = fetched_zone
        .endpoints
        .iter()
        .find_map(|e| e.strip_prefix("site="))
        .ok_or(StackError::ZoneCorrupt)?;
    let mut site_key = [0u8; 32];
    for (i, byte) in site_key.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&site_hex[2 * i..2 * i + 2], 16)
            .map_err(|_| StackError::ZoneCorrupt)?;
    }
    let site_addr = Hash256(site_key);

    let mut swarm_sim: Simulation<SwarmNode> = Simulation::new(seed + 2);
    let tracker = swarm_sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
    let origin = swarm_sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    let bob = swarm_sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    swarm_sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle));
    swarm_sim.run_for(SimDuration::from_secs(2));
    let visit = swarm_sim
        .with_ctx(bob, |n, ctx| n.start_visit(ctx, site_addr))
        .expect("bob up");
    swarm_sim.run_for(SimDuration::from_mins(3));
    let (site_version, site_bytes) = match swarm_sim.node_mut(bob).take_result(visit) {
        Some(VisitResult::Ok { version, bytes }) => (version, bytes),
        _ => return Err(StackError::SiteFetchFailed),
    };
    // The site address IS the publisher key fingerprint, and the swarm
    // verified the manifest signature against it; confirm the zone file
    // named the same key.
    if fetched_zone.public_key != site_addr {
        return Err(StackError::SiteKeyMismatch);
    }

    Ok(FullStackOutcome {
        name: name.to_owned(),
        resolved_owner: record.owner,
        chain_height: height,
        zone_replicas,
        site_version,
        site_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stack_end_to_end() {
        let out = demo_full_stack(71, "alice.agora").expect("stack works");
        assert_eq!(out.name, "alice.agora");
        assert_eq!(
            out.resolved_owner,
            SimKeyPair::from_seed(b"alice-stack").public().id()
        );
        assert!(out.zone_replicas >= 2);
        assert_eq!(out.site_version, 1);
        assert!(out.site_bytes > 30);
        assert!(out.chain_height >= 3);
    }

    #[test]
    fn full_stack_is_deterministic() {
        let a = demo_full_stack(72, "bob.agora").expect("ok");
        let b = demo_full_stack(72, "bob.agora").expect("ok");
        assert_eq!(a.chain_height, b.chain_height);
        assert_eq!(a.zone_replicas, b.zone_replicas);
        assert_eq!(a.site_bytes, b.site_bytes);
    }
}

//! The paper's §2 taxonomy and the Table 1 registry.
//!
//! Two orthogonal axes: **distribution** (where the machines are) and
//! **control** (who holds authority over them). The paper's thesis is that
//! the Internet moved from partially-centralized/democratic to
//! distributed/feudal, and the goal is distributed/democratic.
//!
//! Table 1 categorizes the surveyed projects by the decentralization problem
//! they attack; here every project maps to the implemented mechanism class
//! in this workspace that represents it, so the rendered table is backed by
//! running code.

/// The distribution axis: where the physical resources sit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// One machine / one site.
    Centralized,
    /// Many machines across the planet.
    Distributed,
}

/// The control axis: who holds authority.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Control {
    /// Authority spread across many individuals/organizations.
    Democratic,
    /// Authority held by a few.
    Feudal,
}

/// A position in the two-axis space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArchitecturePosition {
    /// Distribution axis.
    pub distribution: Distribution,
    /// Control axis.
    pub control: Control,
}

impl ArchitecturePosition {
    /// Today's cloud Internet: distributed and feudal (§2).
    pub fn todays_internet() -> ArchitecturePosition {
        ArchitecturePosition {
            distribution: Distribution::Distributed,
            control: Control::Feudal,
        }
    }

    /// The 1980s–90s Internet: partially centralized, democratic (§2 fn 2).
    pub fn internet_of_the_past() -> ArchitecturePosition {
        ArchitecturePosition {
            distribution: Distribution::Centralized,
            control: Control::Democratic,
        }
    }

    /// The paper's goal: distributed *and* democratic.
    pub fn goal() -> ArchitecturePosition {
        ArchitecturePosition {
            distribution: Distribution::Distributed,
            control: Control::Democratic,
        }
    }
}

/// The four decentralization problem areas of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Problem {
    /// Name registration (§3.1).
    Naming,
    /// Group communication: messaging + social networking (§3.2).
    GroupCommunication,
    /// Data storage (§3.3).
    DataStorage,
    /// Serverless/hostless web applications (§3.4).
    WebApplications,
}

impl Problem {
    /// All problems, in Table 1's row order.
    pub fn all() -> [Problem; 4] {
        [
            Problem::Naming,
            Problem::GroupCommunication,
            Problem::DataStorage,
            Problem::WebApplications,
        ]
    }

    /// Table 1's row label.
    pub fn label(self) -> &'static str {
        match self {
            Problem::Naming => "Naming",
            Problem::GroupCommunication => "Group Communication",
            Problem::DataStorage => "Data storage",
            Problem::WebApplications => "Web applications",
        }
    }
}

/// One surveyed project and the implemented mechanism class representing it.
#[derive(Clone, Copy, Debug)]
pub struct ProjectEntry {
    /// Project name as in Table 1.
    pub name: &'static str,
    /// Which problem row it belongs to.
    pub problem: Problem,
    /// The module in this workspace implementing its mechanism class.
    pub implemented_by: &'static str,
}

/// The Table 1 registry: every project row of the paper, each mapped to the
/// workspace module that implements its mechanism class.
pub fn table1_registry() -> Vec<ProjectEntry> {
    use Problem::*;
    let rows: [(&str, Problem, &str); 22] = [
        // Naming.
        (
            "Namecoin",
            Naming,
            "agora_naming::chain_naming (preorder/register on agora-chain)",
        ),
        (
            "Emercoin",
            Naming,
            "agora_naming::chain_naming (preorder/register on agora-chain)",
        ),
        (
            "Blockstack",
            Naming,
            "agora_naming::chain_naming + record::ZoneFile (off-chain zone files)",
        ),
        // Group communication.
        (
            "Matrix",
            GroupCommunication,
            "agora_comm::federated (FullReplication) + ratchet",
        ),
        (
            "Riot",
            GroupCommunication,
            "agora_comm::federated (FullReplication) + ratchet",
        ),
        (
            "Ring",
            GroupCommunication,
            "agora_comm::social (P2P, trust-gated)",
        ),
        (
            "Nextcloud",
            GroupCommunication,
            "agora_comm::federated (SingleHome)",
        ),
        (
            "GNU social",
            GroupCommunication,
            "agora_comm::federated (SingleHome / OStatus class)",
        ),
        (
            "Mastodon",
            GroupCommunication,
            "agora_comm::federated (SingleHome) + per-instance moderation",
        ),
        (
            "Friendica",
            GroupCommunication,
            "agora_comm::federated (SingleHome) + moderation",
        ),
        (
            "Identi.ca",
            GroupCommunication,
            "agora_comm::federated (SingleHome / pump.io class)",
        ),
        // Data storage.
        (
            "IPFS",
            DataStorage,
            "agora_storage (content addressing) + incentives::BitswapLedger + agora-dht",
        ),
        (
            "Blockstack (storage)",
            DataStorage,
            "agora_storage::profiles (NameBinding; delegated store)",
        ),
        (
            "Maidsafe",
            DataStorage,
            "agora_storage::incentives::ResourceScore + node audits",
        ),
        (
            "Secure-scuttlebutt",
            DataStorage,
            "agora_comm::social (append-only friend feeds)",
        ),
        (
            "Nextcloud (storage)",
            DataStorage,
            "agora_storage::node (single-provider placement)",
        ),
        (
            "Sia",
            DataStorage,
            "agora_storage::contract + proofs (proof-of-storage) + erasure",
        ),
        (
            "Storj",
            DataStorage,
            "agora_storage::proofs (proof-of-retrievability audits)",
        ),
        (
            "Swarm",
            DataStorage,
            "agora_storage::contract (SWEAR collateral slashing)",
        ),
        (
            "Filecoin",
            DataStorage,
            "agora_storage::proofs (seal/PoRep/PoSt) + attacks",
        ),
        // Web applications.
        (
            "Beaker",
            WebApplications,
            "agora_web::site (fork/merge) + swarm",
        ),
        (
            "ZeroNet",
            WebApplications,
            "agora_web::site (key-addressed) + swarm (visitor seeding)",
        ),
    ];
    rows.into_iter()
        .map(|(name, problem, implemented_by)| ProjectEntry {
            name,
            problem,
            implemented_by,
        })
        .collect()
}

/// Render Table 1 from the registry.
pub fn render_table1() -> String {
    let reg = table1_registry();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} | {}\n",
        "Decentralization Problem", "Recent Projects"
    ));
    out.push_str(&format!("{}\n", "-".repeat(100)));
    for p in Problem::all() {
        let names: Vec<&str> = reg
            .iter()
            .filter(|e| e.problem == p)
            .map(|e| e.name)
            .collect();
        out.push_str(&format!("{:<24} | {}\n", p.label(), names.join(", ")));
    }
    out
}

/// Freedom.js spans three problems (identity, storage, transport); the
/// paper lists it under web applications. We expose it separately because a
/// single mechanism class doesn't capture it.
pub fn freedom_js_note() -> &'static str {
    "freedom.js: identity → agora_naming, storage → agora_dht/agora_storage, \
     transport → agora_sim links; listed under Web applications in Table 1"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_positions() {
        assert_eq!(
            ArchitecturePosition::todays_internet().control,
            Control::Feudal
        );
        assert_eq!(
            ArchitecturePosition::goal().distribution,
            Distribution::Distributed
        );
        assert_ne!(
            ArchitecturePosition::todays_internet(),
            ArchitecturePosition::goal()
        );
        // The goal differs from the past on distribution, from the present
        // on control — "not to undo the trend towards wide distribution".
        let past = ArchitecturePosition::internet_of_the_past();
        let goal = ArchitecturePosition::goal();
        assert_eq!(past.control, goal.control);
        assert_ne!(past.distribution, goal.distribution);
    }

    #[test]
    fn every_problem_row_is_populated() {
        let reg = table1_registry();
        for p in Problem::all() {
            let n = reg.iter().filter(|e| e.problem == p).count();
            assert!(n >= 2, "{} has {n} projects", p.label());
        }
    }

    #[test]
    fn paper_headline_projects_present() {
        let reg = table1_registry();
        for name in [
            "Namecoin",
            "Blockstack",
            "Matrix",
            "Mastodon",
            "IPFS",
            "Sia",
            "Storj",
            "Swarm",
            "Filecoin",
            "Maidsafe",
            "Beaker",
            "ZeroNet",
        ] {
            assert!(
                reg.iter().any(|e| e.name == name),
                "{name} missing from registry"
            );
        }
    }

    #[test]
    fn every_entry_maps_to_an_implementation() {
        for e in table1_registry() {
            assert!(
                e.implemented_by.starts_with("agora_"),
                "{} not mapped",
                e.name
            );
        }
    }

    #[test]
    fn rendered_table_has_all_rows() {
        let t = render_table1();
        for p in Problem::all() {
            assert!(t.contains(p.label()));
        }
        assert!(t.contains("Namecoin, Emercoin, Blockstack"));
    }
}

//! Minimal canonical byte encoding.
//!
//! Transactions, block headers, name operations and storage contracts all
//! need a stable byte representation to hash and to size wire messages. This
//! is a deliberately tiny length-prefixed, big-endian codec — no reflection,
//! no derive, no external dependency — so encodings are canonical by
//! construction (one encoder, one decoder, both in this file).

use crate::sha256::Hash256;

/// Append-only byte writer.
#[derive(Default, Clone, Debug)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Single byte.
    pub fn u8(mut self, v: u8) -> Enc {
        self.buf.push(v);
        self
    }

    /// Big-endian u32.
    pub fn u32(mut self, v: u32) -> Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Big-endian u64.
    pub fn u64(mut self, v: u64) -> Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// 32-byte hash.
    pub fn hash(mut self, h: &Hash256) -> Enc {
        self.buf.extend_from_slice(h.as_bytes());
        self
    }

    /// Length-prefixed byte string (u32 length).
    pub fn bytes(mut self, b: &[u8]) -> Enc {
        self.buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(self, s: &str) -> Enc {
        self.bytes(s.as_bytes())
    }

    /// Finish, yielding the encoded bytes.
    pub fn done(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the requested field.
    Truncated,
    /// A declared length exceeds remaining input.
    BadLength,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An enum discriminant was out of range.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadLength => write!(f, "declared length exceeds input"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8"),
            DecodeError::BadTag(t) => write!(f, "invalid tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sequential byte reader matching [`Enc`].
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Read from a byte slice.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// 32-byte hash.
    pub fn hash(&mut self) -> Result<Hash256, DecodeError> {
        Ok(Hash256(self.take(32)?.try_into().expect("32")))
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        if self.pos + len > self.buf.len() {
            return Err(DecodeError::BadLength);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// True when all input has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn round_trip_all_types() {
        let h = sha256(b"x");
        let buf = Enc::new()
            .u8(7)
            .u32(1234)
            .u64(u64::MAX)
            .hash(&h)
            .bytes(b"payload")
            .str("name")
            .done();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 1234);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.hash().unwrap(), h);
        assert_eq!(d.bytes().unwrap(), b"payload");
        assert_eq!(d.str().unwrap(), "name");
        assert!(d.finished());
    }

    #[test]
    fn truncated_input_errors() {
        let buf = Enc::new().u64(1).done();
        let mut d = Dec::new(&buf[..4]);
        assert_eq!(d.u64(), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_length_errors() {
        // Declared length 100 but only 2 bytes follow.
        let buf = Enc::new().u32(100).u8(1).u8(2).done();
        let mut d = Dec::new(&buf);
        assert_eq!(d.bytes(), Err(DecodeError::BadLength));
    }

    #[test]
    fn bad_utf8_errors() {
        let buf = Enc::new().bytes(&[0xff, 0xfe]).done();
        let mut d = Dec::new(&buf);
        assert_eq!(d.str(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn empty_bytes_and_strings() {
        let buf = Enc::new().bytes(b"").str("").done();
        let mut d = Dec::new(&buf);
        assert_eq!(d.bytes().unwrap(), Vec::<u8>::new());
        assert_eq!(d.str().unwrap(), "");
        assert!(d.finished());
    }

    #[test]
    fn remaining_tracks_position() {
        let buf = Enc::new().u32(1).u32(2).done();
        let mut d = Dec::new(&buf);
        assert_eq!(d.remaining(), 8);
        d.u32().unwrap();
        assert_eq!(d.remaining(), 4);
        assert!(!d.finished());
    }

    #[test]
    fn encoding_is_canonical() {
        let a = Enc::new().str("alice").u64(5).done();
        let b = Enc::new().str("alice").u64(5).done();
        assert_eq!(a, b);
        let c = Enc::new().u64(5).str("alice").done();
        assert_ne!(a, c, "field order matters");
    }
}

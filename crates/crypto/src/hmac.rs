//! HMAC-SHA256 (RFC 2104) and a two-step extract/expand KDF in the HKDF
//! (RFC 5869) style, built on the in-repo SHA-256.
//!
//! Used by the double-ratchet-style session encryption in `agora-comm` and
//! for deriving per-purpose keys from node secrets.

use crate::sha256::{Hash256, Sha256};

/// HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Hash256 {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        let kh = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..32].copy_from_slice(kh.as_bytes());
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(data);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

/// HKDF-Extract: PRK = HMAC(salt, ikm).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Hash256 {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand producing `n` output blocks of 32 bytes each.
pub fn hkdf_expand(prk: &Hash256, info: &[u8], n: u8) -> Vec<Hash256> {
    assert!(n >= 1, "at least one output block");
    let mut out = Vec::with_capacity(n as usize);
    let mut prev: Vec<u8> = Vec::new();
    for i in 1..=n {
        let mut data = prev.clone();
        data.extend_from_slice(info);
        data.push(i);
        let block = hmac_sha256(prk.as_bytes(), &data);
        prev = block.as_bytes().to_vec();
        out.push(block);
    }
    out
}

/// Derive one 32-byte key for a named purpose from input key material.
pub fn derive_key(ikm: &[u8], purpose: &str) -> Hash256 {
    let prk = hkdf_extract(b"agora-kdf", ikm);
    hkdf_expand(&prk, purpose.as_bytes(), 1)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hkdf_expand_blocks_differ_and_are_deterministic() {
        let prk = hkdf_extract(b"salt", b"secret");
        let a = hkdf_expand(&prk, b"ctx", 3);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
        assert_eq!(hkdf_expand(&prk, b"ctx", 3), a);
        assert_ne!(hkdf_expand(&prk, b"other", 1)[0], a[0]);
    }

    #[test]
    fn derive_key_separates_purposes() {
        let k1 = derive_key(b"ikm", "chain-signing");
        let k2 = derive_key(b"ikm", "storage-encryption");
        assert_ne!(k1, k2);
        assert_eq!(derive_key(b"ikm", "chain-signing"), k1);
    }
}

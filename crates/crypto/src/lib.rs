//! # agora-crypto — cryptographic substrate, built from scratch
//!
//! Every system the paper surveys leans on the same primitives: content
//! addressing, Merkle commitments, proof-of-work, signatures, and key-derived
//! session secrets. This crate implements them without external dependencies:
//!
//! * [`sha256`](crate::sha256) — real FIPS 180-4 SHA-256 (test-vector
//!   checked) and the universal [`Hash256`] identifier type.
//! * [`hmac`](crate::hmac) — HMAC-SHA256 (RFC 4231-checked) and an
//!   HKDF-style KDF.
//! * [`merkle`](crate::merkle) — domain-separated Merkle trees with
//!   inclusion proofs.
//! * [`wots`](crate::wots) — a *real* hash-based many-time signature scheme
//!   (Winternitz OTS under a Merkle tree), genuinely unforgeable, capacity-
//!   bounded; for low-volume signing (name registrations, site manifests).
//! * [`sig`](crate::sig) — a fast, interface-faithful signature *simulation*
//!   for high-volume protocol experiments (see that module's security note).
//!
//! Content addressing, PoW and Merkle proofs throughout the workspace are
//! honest because SHA-256 here is real; only discrete-log-style asymmetric
//! crypto is simulated, as documented in DESIGN.md §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sig;
pub mod wots;

pub use codec::{Dec, DecodeError, Enc};
pub use hmac::{derive_key, hkdf_expand, hkdf_extract, hmac_sha256};
pub use merkle::{leaf_hash, MerkleProof, MerkleTree, ProofStep};
pub use sha256::{sha256, sha256_concat, sha256_into, tagged_hash, Hash256, Sha256, TailHasher};
pub use sig::{SimKeyPair, SimPublicKey, SimSignature, PK_WIRE_SIZE, SIG_WIRE_SIZE};
pub use wots::{SignError, WotsKeyPair, WotsPublicKey, WotsSignature};

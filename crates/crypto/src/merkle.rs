//! Merkle trees with inclusion proofs.
//!
//! Used for block transaction commitments (`agora-chain`), proof-of-storage
//! challenges (`agora-storage`), site manifests (`agora-web`) and the
//! many-time signature scheme (`wots`).
//!
//! Leaf and interior hashes are domain-separated (`0x00`/`0x01` prefixes) so a
//! 64-byte leaf cannot masquerade as an interior node (the classic Merkle
//! second-preimage pitfall). Odd nodes are promoted, not duplicated, avoiding
//! the CVE-2012-2459 duplication ambiguity.

use crate::sha256::{sha256_concat, Hash256};

/// Hash a leaf's raw bytes (domain-separated).
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    sha256_concat(&[&[0x00], data])
}

fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    sha256_concat(&[&[0x01], left.as_bytes(), right.as_bytes()])
}

/// One step of an inclusion proof: a sibling hash and which side it sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash to combine with.
    pub sibling: Hash256,
    /// True if the sibling is the *right* child at this level.
    pub sibling_is_right: bool,
}

/// An inclusion proof for one leaf.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MerkleProof {
    /// Bottom-up list of siblings.
    pub steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Recompute the root implied by this proof for the given leaf hash.
    pub fn compute_root(&self, leaf: Hash256) -> Hash256 {
        let mut acc = leaf;
        for step in &self.steps {
            acc = if step.sibling_is_right {
                node_hash(&acc, &step.sibling)
            } else {
                node_hash(&step.sibling, &acc)
            };
        }
        acc
    }

    /// Verify that `leaf` is included under `root`.
    pub fn verify(&self, leaf: Hash256, root: Hash256) -> bool {
        self.compute_root(leaf) == root
    }

    /// Wire size estimate in bytes (for simulated message sizing).
    pub fn wire_size(&self) -> u64 {
        self.steps.len() as u64 * 33
    }
}

/// A Merkle tree over a list of leaf hashes. Stores all levels for O(log n)
/// proof extraction.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaves; last level has exactly one node (the root).
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Build from pre-hashed leaves. An empty leaf set yields a tree whose
    /// root is the hash of the empty string under the leaf domain (a defined,
    /// stable sentinel).
    pub fn from_leaf_hashes(leaves: Vec<Hash256>) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![leaf_hash(b"")]],
            };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(node_hash(&prev[i], &prev[i + 1]));
                i += 2;
            }
            if i < prev.len() {
                // Odd node: promote unchanged.
                next.push(prev[i]);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Build from raw leaf data (hashes each leaf with the leaf domain).
    pub fn from_data<D: AsRef<[u8]>>(items: &[D]) -> MerkleTree {
        MerkleTree::from_leaf_hashes(items.iter().map(|d| leaf_hash(d.as_ref())).collect())
    }

    /// The root commitment.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("root level")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True if built from zero leaves (sentinel tree).
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0].len() == 1 && self.levels[0][0] == leaf_hash(b"")
    }

    /// Leaf hash at an index.
    pub fn leaf(&self, index: usize) -> Option<Hash256> {
        self.levels[0].get(index).copied()
    }

    /// Inclusion proof for the leaf at `index`. `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                steps.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_is_right: sibling_idx > idx,
                });
            }
            // If no sibling (odd promoted node) the node carries up unchanged
            // and contributes no step.
            idx /= 2;
        }
        Some(MerkleProof { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n)
            .map(|i| sha256(format!("leaf-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let t = MerkleTree::from_leaf_hashes(l.clone());
        assert_eq!(t.root(), l[0]);
        assert_eq!(t.len(), 1);
        let p = t.prove(0).unwrap();
        assert!(p.steps.is_empty());
        assert!(p.verify(l[0], t.root()));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100] {
            let l = leaves(n);
            let t = MerkleTree::from_leaf_hashes(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let p = t.prove(i).unwrap_or_else(|| panic!("proof {i}/{n}"));
                assert!(p.verify(*leaf, t.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(8);
        let t = MerkleTree::from_leaf_hashes(l.clone());
        let p = t.prove(3).unwrap();
        assert!(!p.verify(l[4], t.root()));
        assert!(!p.verify(sha256(b"forged"), t.root()));
    }

    #[test]
    fn tampered_proof_fails() {
        let l = leaves(8);
        let t = MerkleTree::from_leaf_hashes(l.clone());
        let mut p = t.prove(2).unwrap();
        p.steps[1].sibling = sha256(b"evil");
        assert!(!p.verify(l[2], t.root()));
        let mut p2 = t.prove(2).unwrap();
        p2.steps[0].sibling_is_right = !p2.steps[0].sibling_is_right;
        assert!(!p2.verify(l[2], t.root()));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::from_leaf_hashes(leaves(4));
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_leaf_hashes(leaves(4));
        let mut other = leaves(4);
        other[2] = sha256(b"changed");
        let b = MerkleTree::from_leaf_hashes(other);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn order_matters() {
        let l = leaves(2);
        let a = MerkleTree::from_leaf_hashes(vec![l[0], l[1]]);
        let b = MerkleTree::from_leaf_hashes(vec![l[1], l[0]]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn from_data_uses_leaf_domain() {
        let t = MerkleTree::from_data(&[b"a".as_slice(), b"b".as_slice()]);
        assert_eq!(t.leaf(0).unwrap(), leaf_hash(b"a"));
        // Raw sha256 of the data is NOT the leaf hash (domain separation).
        assert_ne!(t.leaf(0).unwrap(), sha256(b"a"));
    }

    #[test]
    fn empty_tree_sentinel() {
        let t = MerkleTree::from_leaf_hashes(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.root(), leaf_hash(b""));
        let t2 = MerkleTree::from_data::<&[u8]>(&[]);
        assert_eq!(t2.root(), t.root());
    }

    #[test]
    fn proof_wire_size_logarithmic() {
        let t = MerkleTree::from_leaf_hashes(leaves(1024));
        let p = t.prove(512).unwrap();
        assert_eq!(p.steps.len(), 10);
        assert_eq!(p.wire_size(), 330);
    }

    #[test]
    fn leaf_cannot_fake_interior() {
        // An attacker who controls leaf *data* equal to two concatenated
        // hashes cannot produce an interior node, because domains differ.
        let l = leaves(2);
        let t = MerkleTree::from_leaf_hashes(l.clone());
        let mut fake = vec![0x01u8];
        fake.extend_from_slice(l[0].as_bytes());
        fake.extend_from_slice(l[1].as_bytes());
        assert_ne!(leaf_hash(&fake[1..]), t.root());
    }
}

//! SHA-256, implemented from scratch per FIPS 180-4.
//!
//! This is a real, test-vector-checked implementation — content addressing,
//! Merkle proofs and proof-of-work in the rest of the workspace are honest
//! because this hash is. Both a one-shot [`sha256`] and an incremental
//! [`Sha256`] API are provided.

use std::fmt;

/// A 256-bit hash value. The universal identifier type of the workspace:
/// content addresses, node IDs, transaction IDs, name hashes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (useful as a sentinel, e.g. genesis prev-hash).
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Interpret the first 8 bytes as a big-endian integer (for PoW targets
    /// and sampling).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// Number of leading zero bits — the proof-of-work difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut n = 0;
        for &b in &self.0 {
            if b == 0 {
                n += 8;
            } else {
                n += b.leading_zeros();
                break;
            }
        }
        n
    }

    /// Hex string (lowercase, 64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Short hex prefix for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_owned()
    }

    /// XOR distance to another hash (Kademlia metric), as a 256-bit value in
    /// byte array form.
    pub fn xor(&self, other: &Hash256) -> Hash256 {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Hash256(out)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", self.short())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Expand the 16 loaded message words into the full 64-word schedule
/// (FIPS 180-4 §6.2.2 step 1).
#[inline(always)]
fn expand(w: &mut [u32; 64]) {
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
}

/// Run rounds `from..64` of the compression from working state `init`.
/// `from` is nonzero only on the [`TailHasher`] fast path, which has already
/// executed the rounds whose schedule words are tail-invariant.
#[inline(always)]
fn rounds(init: [u32; 8], w: &[u32; 64], from: usize) -> [u32; 8] {
    rounds_range(init, w, from, 64)
}

/// Rounds `from..to` of the compression. Callers pass literal bounds where
/// unrolling matters.
#[inline(always)]
fn rounds_range(init: [u32; 8], w: &[u32; 64], from: usize, to: usize) -> [u32; 8] {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = init;
    for i in from..to {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    [a, b, c, d, e, f, g, h]
}

/// One compression over a 64-byte block (FIPS 180-4 §6.2.2). Shared by the
/// incremental hasher and the [`TailHasher`] midstate fast path.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    expand(&mut w);
    let out = rounds(*state, &w, 0);
    for i in 0..8 {
        state[i] = state[i].wrapping_add(out[i]);
    }
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finish and produce the digest.
    pub fn finalize(self) -> Hash256 {
        let mut out = [0u8; 32];
        self.finalize_into(&mut out);
        Hash256(out)
    }

    /// Finish, writing the digest into a caller-provided buffer (no return
    /// value to move, useful in hashing loops that reuse one scratch buffer).
    pub fn finalize_into(mut self, out: &mut [u8; 32]) {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buf_len, 0);
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// Freeze the absorbed prefix into a [`TailHasher`] that finishes the
    /// digest for any `TAIL`-byte suffix with **exactly one compression and
    /// zero heap allocation** — the Bitcoin-style "midstate" optimization for
    /// grinding a fixed-width field (a PoW nonce) at the end of an otherwise
    /// constant message.
    ///
    /// Returns `None` when the suffix cannot fit in the final padded block,
    /// i.e. unless `buffered_prefix_len + TAIL + 9 <= 64` (9 bytes: the 0x80
    /// padding marker plus the 64-bit length field).
    pub fn tail_hasher<const TAIL: usize>(&self) -> Option<TailHasher<TAIL>> {
        let off = self.buf_len;
        if off + TAIL + 9 > 64 {
            return None;
        }
        // Pre-pad the final block: buffered prefix, TAIL bytes of slack to be
        // filled per call, then 0x80 and the big-endian total bit length.
        let mut block = [0u8; 64];
        block[..off].copy_from_slice(&self.buf[..off]);
        block[off + TAIL] = 0x80;
        let bit_len = self.total_len.wrapping_add(TAIL as u64).wrapping_mul(8);
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        // Hoist everything tail-invariant out of the per-call compression:
        // the block as schedule words (tail region zero), and the working
        // state after the leading rounds whose words hold no tail bytes
        // (rounds 0..off/4 — word i covers bytes 4i..4i+4, all prefix).
        let mut w_base = [0u32; 16];
        for (i, word) in w_base.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let pre = off / 4;
        let mut w = [0u32; 64];
        w[..16].copy_from_slice(&w_base);
        let mut pre_state = self.state;
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = pre_state;
        for i in 0..pre {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        pre_state = [a, b, c, d, e, f, g, h];
        Some(TailHasher {
            state: self.state,
            pre_state,
            w_base,
            pre,
            off,
        })
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress(&mut self.state, block);
    }
}

/// A frozen SHA-256 midstate plus a pre-padded final block. Produced by
/// [`Sha256::tail_hasher`]; each [`TailHasher::hash`] call costs less than
/// one full compression — the schedule words and leading rounds that cannot
/// depend on the tail are precomputed — and touches only stack memory.
#[derive(Clone)]
pub struct TailHasher<const TAIL: usize> {
    /// Midstate at the start of the final block (the feed-forward term).
    state: [u32; 8],
    /// Working state after rounds `0..pre`, which use only prefix words.
    pre_state: [u32; 8],
    /// The pre-padded final block as schedule words, tail bytes zeroed.
    w_base: [u32; 16],
    /// Number of leading rounds already folded into `pre_state`.
    pre: usize,
    /// Byte offset of the tail within the final block.
    off: usize,
}

impl<const TAIL: usize> TailHasher<TAIL> {
    /// Digest of `prefix || tail`, where `prefix` is everything absorbed by
    /// the [`Sha256`] this midstate was frozen from.
    pub fn hash(&self, tail: &[u8; TAIL]) -> Hash256 {
        let mut w = self.w_base;
        // Splice the tail bytes into their schedule words (big-endian lanes).
        // TAIL == 8 (the PoW nonce) gets a three-word u64 splice; the const
        // generic branch folds away for other widths.
        if TAIL == 8 {
            let v = u64::from_be_bytes(tail[..8].try_into().expect("8 bytes"));
            let i = self.off / 4;
            let sh = 8 * (self.off % 4) as u32;
            if sh == 0 {
                w[i] |= (v >> 32) as u32;
                w[i + 1] |= v as u32;
            } else {
                w[i] |= (v >> (32 + sh)) as u32;
                w[i + 1] |= (v >> sh) as u32;
                w[i + 2] |= (v as u32) << (32 - sh);
            }
        } else {
            for (j, &byte) in tail.iter().enumerate() {
                let at = self.off + j;
                w[at / 4] |= u32::from(byte) << (8 * (3 - (at % 4)));
            }
        }
        // Rounds `pre..16`. The mining midstate (97-byte prefix, 33 bytes
        // buffered) always lands on pre == 8, so that case gets constant
        // bounds the compiler unrolls; anything else takes the runtime loop.
        let mut s = self.pre_state;
        if self.pre == 8 {
            for i in 8..16 {
                s = one_round(s, K[i].wrapping_add(w[i]));
            }
        } else {
            for i in self.pre..16 {
                s = one_round(s, K[i].wrapping_add(w[i]));
            }
        }
        // ...then rounds 16..64 with the schedule expanded in place over a
        // rolling 16-word window (w[t mod 16] becomes w[t]). Constant bounds
        // throughout so the compiler can unroll and keep `w` in registers.
        for chunk in 0..3 {
            for j in 0..16 {
                let s0 = w[(j + 1) % 16].rotate_right(7)
                    ^ w[(j + 1) % 16].rotate_right(18)
                    ^ (w[(j + 1) % 16] >> 3);
                let s1 = w[(j + 14) % 16].rotate_right(17)
                    ^ w[(j + 14) % 16].rotate_right(19)
                    ^ (w[(j + 14) % 16] >> 10);
                w[j] = w[j]
                    .wrapping_add(s0)
                    .wrapping_add(w[(j + 9) % 16])
                    .wrapping_add(s1);
                s = one_round(s, K[16 + chunk * 16 + j].wrapping_add(w[j]));
            }
        }
        let mut digest = [0u8; 32];
        for i in 0..8 {
            let word = self.state[i].wrapping_add(s[i]);
            digest[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(digest)
    }
}

/// One SHA-256 round with the `K[i] + w[i]` term already summed.
#[inline(always)]
fn one_round(s: [u32; 8], kw: u32) -> [u32; 8] {
    let [a, b, c, d, e, f, g, h] = s;
    let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
    let ch = (e & f) ^ (!e & g);
    let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(kw);
    let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
    let maj = (a & b) ^ (a & c) ^ (b & c);
    let t2 = s0.wrapping_add(maj);
    [t1.wrapping_add(t2), a, b, c, d.wrapping_add(t1), e, f, g]
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 into a caller-provided buffer (no heap, no value move).
pub fn sha256_into(data: &[u8], out: &mut [u8; 32]) {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize_into(out);
}

/// Hash the concatenation of several byte slices (saves allocating).
pub fn sha256_concat(parts: &[&[u8]]) -> Hash256 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Domain-separated hash: `sha256(tag-len || tag || data)`. Used everywhere a
/// hash must not collide with a hash of the same bytes in another role.
pub fn tagged_hash(tag: &str, data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[tag.len() as u8]);
    h.update(tag.as_bytes());
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash256) -> String {
        h.to_hex()
    }

    // NIST / well-known vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_55_56_63_64_65_bytes() {
        // Padding boundary cases: compare incremental against one-shot on
        // lengths that straddle the 56-byte and 64-byte boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
            let oneshot = sha256(&data);
            let mut inc = Sha256::new();
            for chunk in data.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(inc.finalize(), oneshot, "len {len}");
        }
    }

    #[test]
    fn incremental_equals_oneshot_random_splits() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        let expect = sha256(&data);
        for split in [1usize, 3, 63, 64, 65, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn concat_helper_matches_manual() {
        let whole = sha256(b"hello world");
        assert_eq!(sha256_concat(&[b"hello", b" ", b"world"]), whole);
    }

    #[test]
    fn sha256_into_matches_oneshot() {
        for len in [0usize, 1, 55, 56, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i % 249) as u8).collect();
            let mut out = [0u8; 32];
            sha256_into(&data, &mut out);
            assert_eq!(Hash256(out), sha256(&data), "len {len}");
            let mut inc_out = [0u8; 32];
            let mut h = Sha256::new();
            h.update(&data);
            h.finalize_into(&mut inc_out);
            assert_eq!(inc_out, out, "finalize_into len {len}");
        }
    }

    #[test]
    fn tail_hasher_matches_oneshot_across_block_boundaries() {
        // Midstate correctness on every interesting prefix length: straddling
        // the 55/56/63/64/65-byte padding and block boundaries, plus longer
        // multi-block prefixes (the mining path uses a 97-byte prefix).
        for prefix_len in [0usize, 1, 54, 55, 56, 63, 64, 65, 97, 119, 120, 127, 128] {
            let prefix: Vec<u8> = (0..prefix_len as u32).map(|i| (i % 253) as u8).collect();
            let mut pre = Sha256::new();
            pre.update(&prefix);
            let Some(tail8) = pre.tail_hasher::<8>() else {
                // Suffix doesn't fit the final block: buffered + 8 + 9 > 64.
                assert!(prefix_len % 64 + 8 + 9 > 64, "prefix {prefix_len}");
                continue;
            };
            for nonce in [0u64, 1, 0xdead_beef, u64::MAX] {
                let tail = nonce.to_be_bytes();
                let mut whole = prefix.clone();
                whole.extend_from_slice(&tail);
                assert_eq!(
                    tail8.hash(&tail),
                    sha256(&whole),
                    "prefix {prefix_len} nonce {nonce:#x}"
                );
            }
        }
    }

    #[test]
    fn tail_hasher_rejects_oversized_tails() {
        // 48 buffered + 8 tail + 9 padding = 65 > 64: must refuse.
        let mut pre = Sha256::new();
        pre.update(&[0u8; 48]);
        assert!(pre.tail_hasher::<8>().is_none());
        // 47 buffered + 8 + 9 = 64: exactly fits.
        let mut pre = Sha256::new();
        pre.update(&[0u8; 47]);
        assert!(pre.tail_hasher::<8>().is_some());
        // Zero-length tails degenerate to finalize().
        let mut pre = Sha256::new();
        pre.update(b"abc");
        let t0 = pre.tail_hasher::<0>().expect("fits");
        assert_eq!(t0.hash(&[]), sha256(b"abc"));
    }

    #[test]
    fn tail_hasher_is_reusable_and_clonable() {
        let mut pre = Sha256::new();
        pre.update(b"constant prefix");
        let t = pre.tail_hasher::<8>().expect("fits");
        let a = t.hash(&1u64.to_be_bytes());
        let b = t.clone().hash(&1u64.to_be_bytes());
        assert_eq!(a, b, "hashing must not consume the midstate");
        assert_ne!(a, t.hash(&2u64.to_be_bytes()));
    }

    #[test]
    fn tagged_hash_separates_domains() {
        assert_ne!(tagged_hash("a", b"x"), tagged_hash("b", b"x"));
        assert_ne!(tagged_hash("a", b"x"), sha256(b"x"));
        // And is deterministic.
        assert_eq!(tagged_hash("a", b"x"), tagged_hash("a", b"x"));
    }

    #[test]
    fn leading_zero_bits() {
        assert_eq!(Hash256::ZERO.leading_zero_bits(), 256);
        let mut h = [0u8; 32];
        h[0] = 0b0001_0000;
        assert_eq!(Hash256(h).leading_zero_bits(), 3);
        h[0] = 0;
        h[1] = 0b1000_0000;
        assert_eq!(Hash256(h).leading_zero_bits(), 8);
    }

    #[test]
    fn xor_metric_properties() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_eq!(a.xor(&a), Hash256::ZERO);
        assert_eq!(a.xor(&b), b.xor(&a));
        let c = sha256(b"c");
        // XOR associativity ⇒ (a^b)^(b^c) = a^c.
        assert_eq!(a.xor(&b).xor(&b.xor(&c)), a.xor(&c));
    }

    #[test]
    fn display_and_short() {
        let h = sha256(b"abc");
        assert_eq!(format!("{h}").len(), 64);
        assert_eq!(h.short().len(), 12);
        assert!(format!("{h:?}").starts_with("Hash256("));
    }

    #[test]
    fn prefix_u64_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Hash256(b).prefix_u64(), 1);
        b[0] = 0x80;
        assert!(Hash256(b).prefix_u64() > u64::MAX / 2);
    }
}

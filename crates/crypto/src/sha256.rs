//! SHA-256, implemented from scratch per FIPS 180-4.
//!
//! This is a real, test-vector-checked implementation — content addressing,
//! Merkle proofs and proof-of-work in the rest of the workspace are honest
//! because this hash is. Both a one-shot [`sha256`] and an incremental
//! [`Sha256`] API are provided.

use std::fmt;

/// A 256-bit hash value. The universal identifier type of the workspace:
/// content addresses, node IDs, transaction IDs, name hashes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (useful as a sentinel, e.g. genesis prev-hash).
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Interpret the first 8 bytes as a big-endian integer (for PoW targets
    /// and sampling).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// Number of leading zero bits — the proof-of-work difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut n = 0;
        for &b in &self.0 {
            if b == 0 {
                n += 8;
            } else {
                n += b.leading_zeros();
                break;
            }
        }
        n
    }

    /// Hex string (lowercase, 64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Short hex prefix for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_owned()
    }

    /// XOR distance to another hash (Kademlia metric), as a 256-bit value in
    /// byte array form.
    pub fn xor(&self, other: &Hash256) -> Hash256 {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Hash256(out)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", self.short())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hash the concatenation of several byte slices (saves allocating).
pub fn sha256_concat(parts: &[&[u8]]) -> Hash256 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Domain-separated hash: `sha256(tag-len || tag || data)`. Used everywhere a
/// hash must not collide with a hash of the same bytes in another role.
pub fn tagged_hash(tag: &str, data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[tag.len() as u8]);
    h.update(tag.as_bytes());
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash256) -> String {
        h.to_hex()
    }

    // NIST / well-known vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_55_56_63_64_65_bytes() {
        // Padding boundary cases: compare incremental against one-shot on
        // lengths that straddle the 56-byte and 64-byte boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
            let oneshot = sha256(&data);
            let mut inc = Sha256::new();
            for chunk in data.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(inc.finalize(), oneshot, "len {len}");
        }
    }

    #[test]
    fn incremental_equals_oneshot_random_splits() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        let expect = sha256(&data);
        for split in [1usize, 3, 63, 64, 65, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn concat_helper_matches_manual() {
        let whole = sha256(b"hello world");
        assert_eq!(sha256_concat(&[b"hello", b" ", b"world"]), whole);
    }

    #[test]
    fn tagged_hash_separates_domains() {
        assert_ne!(tagged_hash("a", b"x"), tagged_hash("b", b"x"));
        assert_ne!(tagged_hash("a", b"x"), sha256(b"x"));
        // And is deterministic.
        assert_eq!(tagged_hash("a", b"x"), tagged_hash("a", b"x"));
    }

    #[test]
    fn leading_zero_bits() {
        assert_eq!(Hash256::ZERO.leading_zero_bits(), 256);
        let mut h = [0u8; 32];
        h[0] = 0b0001_0000;
        assert_eq!(Hash256(h).leading_zero_bits(), 3);
        h[0] = 0;
        h[1] = 0b1000_0000;
        assert_eq!(Hash256(h).leading_zero_bits(), 8);
    }

    #[test]
    fn xor_metric_properties() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_eq!(a.xor(&a), Hash256::ZERO);
        assert_eq!(a.xor(&b), b.xor(&a));
        let c = sha256(b"c");
        // XOR associativity ⇒ (a^b)^(b^c) = a^c.
        assert_eq!(a.xor(&b).xor(&b.xor(&c)), a.xor(&c));
    }

    #[test]
    fn display_and_short() {
        let h = sha256(b"abc");
        assert_eq!(format!("{h}").len(), 64);
        assert_eq!(h.short().len(), 12);
        assert!(format!("{h:?}").starts_with("Hash256("));
    }

    #[test]
    fn prefix_u64_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Hash256(b).prefix_u64(), 1);
        b[0] = 0x80;
        assert!(Hash256(b).prefix_u64() > u64::MAX / 2);
    }
}

//! Fast interface-faithful signature *simulation* for high-volume protocols.
//!
//! ## What this is (and is not)
//!
//! The real hash-based scheme in [`crate::wots`] is genuinely unforgeable but
//! costs tens of thousands of hashes per keypair and is capacity-bounded.
//! Protocol simulations that mint thousands of identities and sign millions
//! of messages need something with ed25519-like costs. Real elliptic-curve
//! crypto is out of scope (and out of spirit) for a deterministic simulator,
//! so this module provides an **in-model** signature scheme:
//!
//! * `sign(sk, m) = H(seed ‖ m)`, `pk = H("pub" ‖ seed)`.
//! * Verification recomputes the MAC using the seed, which travels *inside*
//!   [`SimPublicKey`] as a private field. Module privacy is the security
//!   boundary: honest code (everything outside explicit attack models) can
//!   only reach the seed through [`SimPublicKey::leak_seed_for_attack_model`],
//!   which is loudly named for exactly that purpose.
//!
//! Within the simulation this gives the properties experiments rely on —
//! only the keyholder produces valid signatures, any bit-flip in message or
//! signature verifies false, identities are unlinkable hashes — at one hash
//! per operation. Wire sizes are reported as ed25519-like (64-byte
//! signatures, 32-byte keys) so message-size accounting stays realistic.
//!
//! **Never use this outside a simulation.**

use crate::sha256::{sha256_concat, tagged_hash, Hash256};

/// Wire size of a simulated signature (ed25519-like).
pub const SIG_WIRE_SIZE: u64 = 64;
/// Wire size of a simulated public key (ed25519-like).
pub const PK_WIRE_SIZE: u64 = 32;

/// A signing keypair. Hold this privately; hand out [`SimPublicKey`]s.
#[derive(Clone, Debug)]
pub struct SimKeyPair {
    seed: Hash256,
}

/// A public key / identity. `Eq`/`Hash`/`Ord` and display use only the
/// fingerprint, so the embedded seed never influences observable identity.
#[derive(Clone, Copy, Debug)]
pub struct SimPublicKey {
    fingerprint: Hash256,
    seed: Hash256,
}

impl PartialEq for SimPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
    }
}
impl Eq for SimPublicKey {}
impl PartialOrd for SimPublicKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimPublicKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.fingerprint.cmp(&other.fingerprint)
    }
}
impl std::hash::Hash for SimPublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.fingerprint.hash(state);
    }
}

impl std::fmt::Display for SimPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pk:{}", self.fingerprint.short())
    }
}

/// A signature over a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimSignature {
    signer: Hash256,
    mac: Hash256,
}

impl SimKeyPair {
    /// Derive a keypair deterministically from arbitrary seed material.
    pub fn from_seed(material: &[u8]) -> SimKeyPair {
        SimKeyPair {
            seed: tagged_hash("simsig-seed", material),
        }
    }

    /// The corresponding public key.
    pub fn public(&self) -> SimPublicKey {
        SimPublicKey {
            fingerprint: tagged_hash("simsig-pub", self.seed.as_bytes()),
            seed: self.seed,
        }
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> SimSignature {
        SimSignature {
            signer: tagged_hash("simsig-pub", self.seed.as_bytes()),
            mac: sha256_concat(&[b"simsig-mac", self.seed.as_bytes(), msg]),
        }
    }
}

impl SimPublicKey {
    /// The identity fingerprint (safe to share, compare, store).
    pub fn id(&self) -> Hash256 {
        self.fingerprint
    }

    /// Verify a signature over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &SimSignature) -> bool {
        sig.signer == self.fingerprint
            && sig.mac == sha256_concat(&[b"simsig-mac", self.seed.as_bytes(), msg])
    }

    /// **Attack-model escape hatch**: recover the seed, as a key-compromise
    /// event would. Using this anywhere but an explicit attack scenario is a
    /// bug; the name is deliberately unwieldy.
    pub fn leak_seed_for_attack_model(&self) -> SimKeyPair {
        SimKeyPair { seed: self.seed }
    }
}

impl SimSignature {
    /// Fingerprint of the claimed signer.
    pub fn signer_id(&self) -> Hash256 {
        self.signer
    }

    /// Construct a forgery attempt with arbitrary MAC bytes (for negative
    /// tests and adversary models). Will not verify under any real key unless
    /// the MAC happens to be correct.
    pub fn forged(signer: Hash256, mac: Hash256) -> SimSignature {
        SimSignature { signer, mac }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn sign_verify_round_trip() {
        let kp = SimKeyPair::from_seed(b"alice");
        let pk = kp.public();
        let sig = kp.sign(b"hello");
        assert!(pk.verify(b"hello", &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let kp = SimKeyPair::from_seed(b"alice");
        let sig = kp.sign(b"hello");
        assert!(!kp.public().verify(b"other", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let alice = SimKeyPair::from_seed(b"alice");
        let bob = SimKeyPair::from_seed(b"bob");
        let sig = alice.sign(b"msg");
        assert!(!bob.public().verify(b"msg", &sig));
    }

    #[test]
    fn forgery_without_seed_fails() {
        let alice = SimKeyPair::from_seed(b"alice").public();
        // Adversary knows the public fingerprint and the message but not the
        // seed; any MAC it can compute from public data fails.
        let forged = SimSignature::forged(alice.id(), sha256(b"msg"));
        assert!(!alice.verify(b"msg", &forged));
        let forged2 = SimSignature::forged(
            alice.id(),
            sha256_concat(&[b"simsig-mac", alice.id().as_bytes(), b"msg"]),
        );
        assert!(!alice.verify(b"msg", &forged2));
    }

    #[test]
    fn key_compromise_enables_forgery() {
        let alice = SimKeyPair::from_seed(b"alice");
        let pk = alice.public();
        // The attack-model hatch restores full signing power — exactly what a
        // key compromise means.
        let stolen = pk.leak_seed_for_attack_model();
        let sig = stolen.sign(b"evil");
        assert!(pk.verify(b"evil", &sig));
    }

    #[test]
    fn identity_is_stable_and_distinct() {
        let a1 = SimKeyPair::from_seed(b"alice").public();
        let a2 = SimKeyPair::from_seed(b"alice").public();
        let b = SimKeyPair::from_seed(b"bob").public();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.id(), a2.id());
    }

    #[test]
    fn signature_binds_signer() {
        let alice = SimKeyPair::from_seed(b"alice");
        let bob = SimKeyPair::from_seed(b"bob");
        let sig = alice.sign(b"msg");
        assert_eq!(sig.signer_id(), alice.public().id());
        assert_ne!(sig.signer_id(), bob.public().id());
    }

    #[test]
    fn display_uses_fingerprint_prefix() {
        let pk = SimKeyPair::from_seed(b"alice").public();
        let s = format!("{pk}");
        assert!(s.starts_with("pk:"));
        assert_eq!(s.len(), 3 + 12);
    }
}

//! A real hash-based many-time signature scheme: Winternitz one-time
//! signatures (w = 16) under a Merkle tree of one-time keys (XMSS-style,
//! without the bitmask hardening — adequate for a research artifact, and
//! genuinely unforgeable given SHA-256, unlike the oracle scheme in
//! [`crate::sig`]).
//!
//! A keypair with tree height `h` can sign `2^h` messages; signing past that
//! returns [`SignError::Exhausted`]. Key generation costs roughly
//! `2^h × 67 × 15` hashes, so pick the height to fit the use: name
//! registrations and site manifests sign rarely (h = 4–8), while high-volume
//! protocol simulation should use [`crate::sig`] instead.

use crate::merkle::{MerkleProof, MerkleTree};
use crate::sha256::{sha256_concat, tagged_hash, Hash256};

/// Winternitz parameter: digits are base-16 (4 bits per chain).
const W: u32 = 16;
/// 256-bit digests → 64 message digits.
const MSG_CHAINS: usize = 64;
/// Max checksum = 64 × 15 = 960 < 16^3, so 3 checksum digits.
const CSUM_CHAINS: usize = 3;
/// Total chains per one-time key.
const CHAINS: usize = MSG_CHAINS + CSUM_CHAINS;

/// Errors from signing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignError {
    /// All `2^h` one-time keys have been used.
    Exhausted,
}

impl std::fmt::Display for SignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignError::Exhausted => write!(f, "one-time keys exhausted"),
        }
    }
}

impl std::error::Error for SignError {}

/// Public key: the Merkle root over one-time public keys, plus tree height.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WotsPublicKey {
    /// Merkle root committing to all one-time public keys.
    pub root: Hash256,
    /// Tree height (capacity = 2^height signatures).
    pub height: u8,
}

impl WotsPublicKey {
    /// Wire size in bytes (root + height).
    pub const WIRE_SIZE: u64 = 33;
}

/// A signature: which leaf was used, the Winternitz chain values, and the
/// Merkle path from that one-time key to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WotsSignature {
    leaf_index: u32,
    chain_values: Vec<Hash256>,
    proof: MerkleProof,
}

impl WotsSignature {
    /// Wire size in bytes: 67 chain hashes + Merkle path + index.
    pub fn wire_size(&self) -> u64 {
        4 + self.chain_values.len() as u64 * 32 + self.proof.wire_size()
    }
}

/// The signing key: a seed, the precomputed Merkle tree, and a use counter.
pub struct WotsKeyPair {
    seed: Hash256,
    height: u8,
    next_leaf: u32,
    tree: MerkleTree,
}

/// Split a 256-bit digest into 64 base-16 digits plus 3 checksum digits.
fn digits(msg_hash: &Hash256) -> [u8; CHAINS] {
    let mut out = [0u8; CHAINS];
    for (i, &b) in msg_hash.as_bytes().iter().enumerate() {
        out[2 * i] = b >> 4;
        out[2 * i + 1] = b & 0x0f;
    }
    let csum: u32 = out[..MSG_CHAINS].iter().map(|&d| (W - 1) - d as u32).sum();
    // Base-16 big-endian checksum digits.
    out[MSG_CHAINS] = ((csum >> 8) & 0x0f) as u8;
    out[MSG_CHAINS + 1] = ((csum >> 4) & 0x0f) as u8;
    out[MSG_CHAINS + 2] = (csum & 0x0f) as u8;
    out
}

/// Iterate the chain function `n` times.
fn chain(mut x: Hash256, n: u32) -> Hash256 {
    for _ in 0..n {
        x = sha256_concat(&[b"wots-chain", x.as_bytes()]);
    }
    x
}

/// Secret chain start for (leaf, chain) derived from the seed.
fn chain_secret(seed: &Hash256, leaf: u32, chain_idx: u32) -> Hash256 {
    let mut data = Vec::with_capacity(40);
    data.extend_from_slice(seed.as_bytes());
    data.extend_from_slice(&leaf.to_be_bytes());
    data.extend_from_slice(&chain_idx.to_be_bytes());
    tagged_hash("wots-sk", &data)
}

/// Hash all chain tops of a leaf into its one-time public key hash.
fn leaf_public(seed: &Hash256, leaf: u32) -> Hash256 {
    let mut concat = Vec::with_capacity(CHAINS * 32);
    for c in 0..CHAINS as u32 {
        let top = chain(chain_secret(seed, leaf, c), W - 1);
        concat.extend_from_slice(top.as_bytes());
    }
    tagged_hash("wots-leaf", &concat)
}

impl WotsKeyPair {
    /// Generate a keypair from a seed. Capacity is `2^height` signatures;
    /// `height` is clamped to [0, 16] (65,536 signatures max).
    pub fn generate(seed: Hash256, height: u8) -> WotsKeyPair {
        let height = height.min(16);
        let n_leaves = 1u32 << height;
        let leaves: Vec<Hash256> = (0..n_leaves).map(|i| leaf_public(&seed, i)).collect();
        let tree = MerkleTree::from_leaf_hashes(leaves);
        WotsKeyPair {
            seed,
            height,
            next_leaf: 0,
            tree,
        }
    }

    /// The public key.
    pub fn public(&self) -> WotsPublicKey {
        WotsPublicKey {
            root: self.tree.root(),
            height: self.height,
        }
    }

    /// Signatures remaining before exhaustion.
    pub fn remaining(&self) -> u32 {
        (1u32 << self.height) - self.next_leaf
    }

    /// Sign a message (the message is hashed internally). Consumes one
    /// one-time key.
    pub fn sign(&mut self, msg: &[u8]) -> Result<WotsSignature, SignError> {
        if self.next_leaf >= (1u32 << self.height) {
            return Err(SignError::Exhausted);
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let msg_hash = tagged_hash("wots-msg", msg);
        let d = digits(&msg_hash);
        let chain_values = (0..CHAINS)
            .map(|c| chain(chain_secret(&self.seed, leaf, c as u32), d[c] as u32))
            .collect();
        let proof = self.tree.prove(leaf as usize).expect("leaf in range");
        Ok(WotsSignature {
            leaf_index: leaf,
            chain_values,
            proof,
        })
    }
}

impl WotsPublicKey {
    /// Verify a signature over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &WotsSignature) -> bool {
        if sig.chain_values.len() != CHAINS {
            return false;
        }
        if sig.leaf_index >= (1u32 << self.height) {
            return false;
        }
        // The tree is full (2^height leaves), so the proof has exactly
        // `height` steps and its direction bits encode the leaf index; bind
        // the claimed index to the path so leaf reuse can be audited.
        if sig.proof.steps.len() != self.height as usize {
            return false;
        }
        let path_index: u32 = sig
            .proof
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| if s.sibling_is_right { 0 } else { 1u32 << i })
            .sum();
        if path_index != sig.leaf_index {
            return false;
        }
        let msg_hash = tagged_hash("wots-msg", msg);
        let d = digits(&msg_hash);
        // Walk each chain the *remaining* w-1-d steps to recover the tops.
        let mut concat = Vec::with_capacity(CHAINS * 32);
        for (value, digit) in sig.chain_values.iter().zip(d.iter()) {
            let top = chain(*value, (W - 1) - u32::from(*digit));
            concat.extend_from_slice(top.as_bytes());
        }
        let leaf = tagged_hash("wots-leaf", &concat);
        sig.proof.verify(leaf, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn kp(height: u8) -> WotsKeyPair {
        WotsKeyPair::generate(sha256(b"test-seed"), height)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut k = kp(2);
        let pk = k.public();
        let sig = k.sign(b"hello agora").unwrap();
        assert!(pk.verify(b"hello agora", &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let mut k = kp(2);
        let pk = k.public();
        let sig = k.sign(b"message A").unwrap();
        assert!(!pk.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let mut k1 = kp(2);
        let k2 = WotsKeyPair::generate(sha256(b"other-seed"), 2);
        let sig = k1.sign(b"msg").unwrap();
        assert!(!k2.public().verify(b"msg", &sig));
    }

    #[test]
    fn each_signature_uses_fresh_leaf() {
        let mut k = kp(2);
        let pk = k.public();
        let s1 = k.sign(b"one").unwrap();
        let s2 = k.sign(b"two").unwrap();
        assert_ne!(s1.leaf_index, s2.leaf_index);
        assert!(pk.verify(b"one", &s1));
        assert!(pk.verify(b"two", &s2));
    }

    #[test]
    fn exhaustion() {
        let mut k = kp(1); // capacity 2
        assert_eq!(k.remaining(), 2);
        k.sign(b"1").unwrap();
        k.sign(b"2").unwrap();
        assert_eq!(k.remaining(), 0);
        assert_eq!(k.sign(b"3"), Err(SignError::Exhausted));
    }

    #[test]
    fn height_zero_single_signature() {
        let mut k = kp(0);
        let pk = k.public();
        let sig = k.sign(b"only").unwrap();
        assert!(pk.verify(b"only", &sig));
        assert_eq!(k.sign(b"again"), Err(SignError::Exhausted));
    }

    #[test]
    fn tampered_signature_fails() {
        let mut k = kp(2);
        let pk = k.public();
        let mut sig = k.sign(b"msg").unwrap();
        sig.chain_values[10] = sha256(b"tamper");
        assert!(!pk.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_leaf_index_fails() {
        let mut k = kp(3);
        let pk = k.public();
        let mut sig = k.sign(b"msg").unwrap();
        sig.leaf_index = 5; // valid range but wrong proof path
        assert!(!pk.verify(b"msg", &sig));
        sig.leaf_index = 1u32 << 7; // out of range entirely
        assert!(!pk.verify(b"msg", &sig));
    }

    #[test]
    fn truncated_signature_fails() {
        let mut k = kp(2);
        let pk = k.public();
        let mut sig = k.sign(b"msg").unwrap();
        sig.chain_values.pop();
        assert!(!pk.verify(b"msg", &sig));
    }

    #[test]
    fn digits_checksum_invariant() {
        // Checksum digits must encode sum(15 - d_i) exactly.
        let h = sha256(b"whatever");
        let d = digits(&h);
        let csum: u32 = d[..MSG_CHAINS].iter().map(|&x| 15 - x as u32).sum();
        let encoded = ((d[MSG_CHAINS] as u32) << 8)
            | ((d[MSG_CHAINS + 1] as u32) << 4)
            | d[MSG_CHAINS + 2] as u32;
        assert_eq!(csum, encoded);
    }

    #[test]
    fn signature_wire_size_realistic() {
        let mut k = kp(4);
        let sig = k.sign(b"msg").unwrap();
        // 67 chains × 32 B ≈ 2.1 KB plus a 4-step Merkle path.
        assert!(sig.wire_size() > 2_000);
        assert!(sig.wire_size() < 3_000);
    }

    #[test]
    fn deterministic_keygen() {
        let a = WotsKeyPair::generate(sha256(b"s"), 2).public();
        let b = WotsKeyPair::generate(sha256(b"s"), 2).public();
        assert_eq!(a, b);
        let c = WotsKeyPair::generate(sha256(b"s"), 3).public();
        assert_ne!(a.root, c.root);
    }
}

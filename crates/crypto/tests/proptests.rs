// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the cryptographic substrate.

use agora_crypto::{
    hmac_sha256, leaf_hash, sha256, Dec, Enc, Hash256, MerkleTree, Sha256, SimKeyPair, WotsKeyPair,
};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot for every chunking of the input.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let expect = sha256(&data);
        let mut positions: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        positions.push(0);
        positions.push(data.len());
        positions.sort_unstable();
        positions.dedup();
        let mut h = Sha256::new();
        for w in positions.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), expect);
    }

    /// SHA-256 behaves injectively on distinct small inputs (no accidental
    /// state-sharing bugs between calls).
    #[test]
    fn sha256_distinct_inputs_distinct_digests(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// HMAC differs under different keys and different messages.
    #[test]
    fn hmac_key_and_message_sensitivity(
        k1 in proptest::collection::vec(any::<u8>(), 1..100),
        k2 in proptest::collection::vec(any::<u8>(), 1..100),
        msg in any::<Vec<u8>>(),
        msg2 in any::<Vec<u8>>(),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
        if msg != msg2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k1, &msg2));
        }
    }

    /// Every leaf of every tree proves; proofs do not transfer to other
    /// leaves or other roots.
    #[test]
    fn merkle_proofs_sound_and_bound(
        n in 1usize..64,
        pick in any::<prop::sample::Index>(),
        other in any::<prop::sample::Index>(),
    ) {
        let leaves: Vec<Hash256> = (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect();
        let tree = MerkleTree::from_leaf_hashes(leaves.clone());
        let i = pick.index(n);
        let proof = tree.prove(i).expect("in range");
        prop_assert!(proof.verify(leaves[i], tree.root()));
        let j = other.index(n);
        if j != i {
            prop_assert!(!proof.verify(leaves[j], tree.root()), "proof transfer i={i} j={j}");
        }
        prop_assert!(!proof.verify(leaves[i], sha256(b"other-root")));
    }

    /// Leaf-domain hashing never collides with raw hashing.
    #[test]
    fn leaf_domain_separated(data in any::<Vec<u8>>()) {
        prop_assert_ne!(leaf_hash(&data), sha256(&data));
    }

    /// The codec round-trips arbitrary field sequences.
    #[test]
    fn codec_round_trip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        bytes in any::<Vec<u8>>(),
        text in "\\PC{0,64}",
    ) {
        let h = sha256(&bytes);
        let buf = Enc::new().u8(a).u32(b).u64(c).hash(&h).bytes(&bytes).str(&text).done();
        let mut d = Dec::new(&buf);
        prop_assert_eq!(d.u8().unwrap(), a);
        prop_assert_eq!(d.u32().unwrap(), b);
        prop_assert_eq!(d.u64().unwrap(), c);
        prop_assert_eq!(d.hash().unwrap(), h);
        prop_assert_eq!(d.bytes().unwrap(), bytes);
        prop_assert_eq!(d.str().unwrap(), text);
        prop_assert!(d.finished());
    }

    /// Truncating an encoding at any point yields an error, never a panic
    /// or a silent wrong value.
    #[test]
    fn codec_truncation_safe(
        c in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..100),
        cut in any::<prop::sample::Index>(),
    ) {
        let buf = Enc::new().u64(c).bytes(&bytes).done();
        let cut_at = cut.index(buf.len()); // strictly less than full length
        let mut d = Dec::new(&buf[..cut_at]);
        // Either the u64 fails, or the bytes fail; nothing panics.
        match d.u64() {
            Err(_) => {}
            Ok(v) => {
                prop_assert_eq!(v, c);
                prop_assert!(d.bytes().is_err());
            }
        }
    }

    /// SimSig: valid signatures verify; any other (key, message) pair fails.
    #[test]
    fn simsig_eufcma_in_model(
        seed1 in any::<Vec<u8>>(),
        seed2 in any::<Vec<u8>>(),
        msg1 in any::<Vec<u8>>(),
        msg2 in any::<Vec<u8>>(),
    ) {
        let k1 = SimKeyPair::from_seed(&seed1);
        let sig = k1.sign(&msg1);
        prop_assert!(k1.public().verify(&msg1, &sig));
        if msg1 != msg2 {
            prop_assert!(!k1.public().verify(&msg2, &sig));
        }
        if seed1 != seed2 {
            let k2 = SimKeyPair::from_seed(&seed2);
            prop_assert!(!k2.public().verify(&msg1, &sig));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))] // keygen is pricey

    /// WOTS: arbitrary messages sign and verify; cross-verification fails.
    #[test]
    fn wots_arbitrary_messages(msgs in proptest::collection::vec(any::<Vec<u8>>(), 1..4)) {
        let mut kp = WotsKeyPair::generate(sha256(b"prop-wots"), 2);
        let pk = kp.public();
        let mut sigs = Vec::new();
        for m in &msgs {
            sigs.push(kp.sign(m).expect("capacity 4"));
        }
        for (m, s) in msgs.iter().zip(&sigs) {
            prop_assert!(pk.verify(m, s));
        }
        // A signature for message i must not verify message j != i.
        if msgs.len() >= 2 && msgs[0] != msgs[1] {
            prop_assert!(!pk.verify(&msgs[1], &sigs[0]));
        }
    }
}

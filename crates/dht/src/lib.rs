//! # agora-dht — Kademlia distributed hash table
//!
//! The peer-to-peer routing and storage substrate that IPFS-like content
//! addressing, ZeroNet/Beaker-style peer discovery (`agora-web`) and
//! off-chain zone-file storage (`agora-naming`) build on.
//!
//! * [`routing`] — the XOR-metric k-bucket routing table.
//! * [`node`] — the full protocol over `agora-sim`: iterative FIND_NODE /
//!   FIND_VALUE lookups with α-parallelism, STORE replication to the k
//!   closest nodes, origin republish, TTL expiry, and churn recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod routing;

pub use node::{DhtConfig, DhtMsg, DhtNode, DhtResult};
pub use routing::{Contact, RoutingTable};

//! A Kademlia node as a simulated protocol: iterative lookups, STORE /
//! FIND_VALUE, replication to the k closest, origin republish, TTL expiry.
//!
//! Lookups are asynchronous: the harness calls [`DhtNode::start_get`] /
//! [`DhtNode::start_put`] / [`DhtNode::start_find_node`] inside
//! `Simulation::with_ctx`, receives an operation id, runs the simulation,
//! and collects the outcome with [`DhtNode::take_result`].

use std::collections::HashMap;
use std::rc::Rc;

use agora_crypto::Hash256;
use agora_sim::retry::{CTR_RETRY_ATTEMPTS, CTR_RETRY_GAVE_UP};
use agora_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};

use crate::routing::{Contact, RoutingTable};

/// Protocol configuration.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// Bucket size / replication factor.
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Per-RPC timeout before a contact is considered failed.
    pub rpc_timeout: SimDuration,
    /// Times a timed-out RPC is re-sent to the same contact before that
    /// contact is marked failed. 0 (the default) reproduces the
    /// pre-hardening fail-on-first-timeout behaviour byte-for-byte.
    pub rpc_retries: u32,
    /// Lookup progress tick.
    pub tick: SimDuration,
    /// Abort a lookup after this many ticks.
    pub max_ticks: u32,
    /// How often the origin republishes its values.
    pub republish_interval: SimDuration,
    /// How long replicas hold a value without hearing from the origin.
    pub value_ttl: SimDuration,
    /// How long a hot-key cache entry stays servable once caching is
    /// switched on (see [`DhtNode::set_cache`]). Decay, not refresh: a
    /// cached value is never republished, it just expires.
    pub cache_ttl: SimDuration,
}

impl Default for DhtConfig {
    fn default() -> DhtConfig {
        DhtConfig {
            k: 8,
            alpha: 3,
            rpc_timeout: SimDuration::from_millis(1500),
            rpc_retries: 0,
            tick: SimDuration::from_millis(500),
            max_ticks: 60,
            republish_interval: SimDuration::from_mins(30),
            value_ttl: SimDuration::from_mins(75),
            cache_ttl: SimDuration::from_mins(5),
        }
    }
}

/// Wire messages.
#[derive(Clone, Debug)]
pub enum DhtMsg {
    /// Find the k closest contacts to a target key.
    FindNode {
        /// Operation id at the initiator.
        op: u64,
        /// Key being located.
        target: Hash256,
        /// Sender's overlay key (for the receiver's routing table).
        sender_key: Hash256,
    },
    /// Reply to `FindNode` / value-less reply to `FindValue`.
    Nodes {
        /// Initiator's operation id, echoed.
        op: u64,
        /// Responder's overlay key.
        sender_key: Hash256,
        /// The closest contacts the responder knows.
        closer: Vec<Contact>,
    },
    /// Find a value; falls back to `Nodes` when the responder lacks it.
    FindValue {
        /// Operation id at the initiator.
        op: u64,
        /// Key being fetched.
        target: Hash256,
        /// Sender's overlay key.
        sender_key: Hash256,
    },
    /// Value reply.
    Value {
        /// Initiator's operation id, echoed.
        op: u64,
        /// Responder's overlay key.
        sender_key: Hash256,
        /// The value bytes, shared so fan-out clones are refcount bumps.
        data: Rc<[u8]>,
    },
    /// Store a value at the receiver.
    Store {
        /// Key under which to store.
        key: Hash256,
        /// Value bytes, shared: replicating to k closest clones the `Rc`,
        /// not the payload.
        data: Rc<[u8]>,
        /// Sender's overlay key.
        sender_key: Hash256,
    },
}

impl DhtMsg {
    fn wire_size(&self) -> u64 {
        match self {
            DhtMsg::FindNode { .. } | DhtMsg::FindValue { .. } => 8 + 32 + 32 + 16,
            DhtMsg::Nodes { closer, .. } => 8 + 32 + 16 + closer.len() as u64 * 36,
            DhtMsg::Value { data, .. } => 8 + 32 + 16 + data.len() as u64,
            DhtMsg::Store { data, .. } => 32 + 32 + 16 + data.len() as u64,
        }
    }
}

/// Outcome of a completed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhtResult {
    /// FIND_VALUE succeeded.
    Found {
        /// The fetched bytes (shared with the responder's reply message).
        data: Rc<[u8]>,
        /// Lookup hop count (RPC rounds consumed).
        hops: u32,
    },
    /// FIND_VALUE exhausted the search without locating the value.
    NotFound,
    /// PUT stored the value at this many replicas.
    Stored {
        /// Number of replicas that received a STORE.
        replicas: usize,
    },
    /// FIND_NODE completed with these closest contacts.
    Closest(Vec<Contact>),
    /// The operation timed out entirely.
    TimedOut,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PeerState {
    Unqueried,
    /// Queried, awaiting a reply since the instant; the count is how many
    /// retries have already been spent on this contact.
    Pending(SimTime, u32),
    Responded,
    Failed,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpKind {
    FindNode,
    Get,
    Put,
}

struct Lookup {
    kind: OpKind,
    target: Hash256,
    put_data: Option<Rc<[u8]>>,
    shortlist: Vec<(Contact, PeerState)>,
    started: SimTime,
    ticks: u32,
    hops: u32,
}

struct StoredValue {
    data: Rc<[u8]>,
    refreshed_at: SimTime,
}

const TAG_MAINT: u64 = u64::MAX;

/// A Kademlia node.
pub struct DhtNode {
    key: Hash256,
    cfg: DhtConfig,
    table: RoutingTable,
    store: HashMap<Hash256, StoredValue>,
    origin_values: HashMap<Hash256, Rc<[u8]>>,
    /// Hot-key cache: values seen in GET replies, servable to our own
    /// lookups and to FindValue queries while `cache_on`. Empty (and
    /// dormant, byte-for-byte) until [`DhtNode::set_cache`] enables it.
    cache: HashMap<Hash256, StoredValue>,
    cache_on: bool,
    lookups: HashMap<u64, Lookup>,
    results: HashMap<u64, DhtResult>,
    next_op: u64,
    bootstrap: Vec<Contact>,
}

impl DhtNode {
    /// Create a node with the given overlay key and bootstrap contacts.
    pub fn new(key: Hash256, cfg: DhtConfig, bootstrap: Vec<Contact>) -> DhtNode {
        let table = RoutingTable::new(key, cfg.k);
        DhtNode {
            key,
            cfg,
            table,
            store: HashMap::new(),
            origin_values: HashMap::new(),
            cache: HashMap::new(),
            cache_on: false,
            lookups: HashMap::new(),
            results: HashMap::new(),
            next_op: 0,
            bootstrap,
        }
    }

    /// This node's overlay key.
    pub fn key(&self) -> Hash256 {
        self.key
    }

    /// Routing-table size (diagnostics).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Number of values this node holds as a replica.
    pub fn replica_count(&self) -> usize {
        self.store.len()
    }

    /// Whether this node currently stores `key` locally.
    pub fn holds(&self, key: &Hash256) -> bool {
        self.store.contains_key(key)
    }

    /// Switch hot-key caching on or off. Off (the default) is fully
    /// dormant — no lookups change, no extra state accrues. Switching off
    /// drops the cache so disengaging a policy reverts the node cleanly.
    pub fn set_cache(&mut self, on: bool) {
        self.cache_on = on;
        if !on {
            self.cache.clear();
        }
    }

    /// Unexpired entries currently cached (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether `key` currently has a cache entry. Freshness is enforced
    /// at lookup time; expired entries linger only until the next lookup
    /// or maintenance pass prunes them.
    pub fn cached(&self, key: &Hash256) -> bool {
        self.cache.contains_key(key)
    }

    /// Begin an iterative FIND_NODE. Returns the operation id.
    pub fn start_find_node(&mut self, ctx: &mut Ctx<'_, DhtMsg>, target: Hash256) -> u64 {
        self.begin(ctx, OpKind::FindNode, target, None)
    }

    /// Begin a GET (iterative FIND_VALUE). With caching enabled, an
    /// unexpired cache entry answers immediately — zero hops, zero RPCs —
    /// and the lookup never reaches the network.
    pub fn start_get(&mut self, ctx: &mut Ctx<'_, DhtMsg>, key: Hash256) -> u64 {
        if self.cache_on {
            let fresh = self
                .cache
                .get(&key)
                .is_some_and(|v| ctx.now().since(v.refreshed_at) <= self.cfg.cache_ttl);
            if fresh {
                let data = self.cache[&key].data.clone();
                let op = self.next_op;
                self.next_op += 1;
                ctx.metrics().incr("dht.cache_hit", 1);
                ctx.metrics().incr("dht.get_found", 1);
                ctx.metrics().sample("dht.lookup_secs", 0.0);
                ctx.metrics().sample("dht.lookup_hops", 0.0);
                ctx.trace_point("dht.cache_hit", 1.0);
                ctx.probe_signal("dht.lookup_secs", 0.0);
                ctx.probe_signal("dht.lookup_hops", 0.0);
                self.results.insert(op, DhtResult::Found { data, hops: 0 });
                return op;
            }
            // Expired entries decay lazily at the point of use.
            self.cache.remove(&key);
        }
        self.begin(ctx, OpKind::Get, key, None)
    }

    /// Begin a PUT: locate the k closest nodes, then STORE at each. The
    /// origin keeps the value and republishes it periodically.
    pub fn start_put(
        &mut self,
        ctx: &mut Ctx<'_, DhtMsg>,
        key: Hash256,
        data: impl Into<Rc<[u8]>>,
    ) -> u64 {
        let data: Rc<[u8]> = data.into();
        self.origin_values.insert(key, data.clone());
        self.begin(ctx, OpKind::Put, key, Some(data))
    }

    /// Collect the outcome of a finished operation, if any.
    pub fn take_result(&mut self, op: u64) -> Option<DhtResult> {
        self.results.remove(&op)
    }

    fn begin(
        &mut self,
        ctx: &mut Ctx<'_, DhtMsg>,
        kind: OpKind,
        target: Hash256,
        put_data: Option<Rc<[u8]>>,
    ) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        let mut seeds = self.table.closest(&target, self.cfg.k);
        if seeds.is_empty() {
            seeds = self.bootstrap.clone();
        }
        let shortlist = seeds
            .into_iter()
            .filter(|c| c.key != self.key)
            .map(|c| (c, PeerState::Unqueried))
            .collect();
        self.lookups.insert(
            op,
            Lookup {
                kind,
                target,
                put_data,
                shortlist,
                started: ctx.now(),
                ticks: 0,
                hops: 0,
            },
        );
        self.drive(ctx, op);
        ctx.set_timer(self.cfg.tick, op);
        op
    }

    /// Issue queries / check termination for one lookup.
    fn drive(&mut self, ctx: &mut Ctx<'_, DhtMsg>, op: u64) {
        let Some(lk) = self.lookups.get_mut(&op) else {
            return;
        };
        let now = ctx.now();

        // Expire stale pending queries: re-send while the contact has
        // retry budget (rpc_retries, default 0 = dormant), then fail it
        // and prune it from the table.
        let timeout = self.cfg.rpc_timeout;
        let rpc_retries = self.cfg.rpc_retries;
        let mut failed_keys = Vec::new();
        let mut retry_sends = Vec::new();
        for (c, st) in lk.shortlist.iter_mut() {
            if let PeerState::Pending(since, tries) = *st {
                if now.since(since) > timeout {
                    if tries < rpc_retries {
                        *st = PeerState::Pending(now, tries + 1);
                        retry_sends.push(*c);
                    } else {
                        *st = PeerState::Failed;
                        failed_keys.push(c.key);
                        if rpc_retries > 0 {
                            ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
                            ctx.trace_point("retry.gave_up", op as f64);
                        }
                    }
                }
            }
        }
        if !retry_sends.is_empty() {
            let kind = lk.kind;
            let target = lk.target;
            let my_key = self.key;
            for c in retry_sends {
                let msg = match kind {
                    OpKind::Get => DhtMsg::FindValue {
                        op,
                        target,
                        sender_key: my_key,
                    },
                    _ => DhtMsg::FindNode {
                        op,
                        target,
                        sender_key: my_key,
                    },
                };
                let size = msg.wire_size();
                ctx.metrics().incr(CTR_RETRY_ATTEMPTS, 1);
                ctx.trace_point("retry.attempt", op as f64);
                ctx.send(c.addr, msg, size);
                ctx.metrics().incr("dht.rpc_sent", 1);
            }
        }
        let lk = self.lookups.get_mut(&op).expect("checked above");

        // Sort by distance so "k closest" is a prefix.
        let target = lk.target;
        lk.shortlist.sort_by_key(|(c, _)| c.key.xor(&target));

        // Termination: the k closest entries have all resolved (responded or
        // failed) and none is pending/unqueried.
        let k = self.cfg.k;
        let alpha = self.cfg.alpha;
        let head = lk.shortlist.iter().take(k);
        let done = lk
            .shortlist
            .iter()
            .take(k)
            .all(|(_, st)| matches!(st, PeerState::Responded | PeerState::Failed))
            && head.clone().any(|(_, st)| *st == PeerState::Responded)
            || lk.shortlist.is_empty();

        if done {
            self.finish(ctx, op);
            for k in failed_keys {
                self.table.remove(&k);
            }
            return;
        }

        // Issue up to alpha concurrent queries to the closest unqueried.
        let in_flight = lk
            .shortlist
            .iter()
            .filter(|(_, st)| matches!(st, PeerState::Pending(..)))
            .count();
        let mut to_query = Vec::new();
        if in_flight < alpha {
            for (c, st) in lk.shortlist.iter_mut().take(k + alpha) {
                if *st == PeerState::Unqueried && to_query.len() + in_flight < alpha {
                    *st = PeerState::Pending(now, 0);
                    to_query.push(*c);
                }
            }
        }
        if !to_query.is_empty() {
            lk.hops += 1;
        }
        let kind = lk.kind;
        let my_key = self.key;
        for c in to_query {
            let msg = match kind {
                OpKind::Get => DhtMsg::FindValue {
                    op,
                    target,
                    sender_key: my_key,
                },
                _ => DhtMsg::FindNode {
                    op,
                    target,
                    sender_key: my_key,
                },
            };
            let size = msg.wire_size();
            ctx.send(c.addr, msg, size);
            ctx.metrics().incr("dht.rpc_sent", 1);
        }
        for k in failed_keys {
            self.table.remove(&k);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, DhtMsg>, op: u64) {
        let Some(lk) = self.lookups.remove(&op) else {
            return;
        };
        let k = self.cfg.k;
        let responded: Vec<Contact> = lk
            .shortlist
            .iter()
            .filter(|(_, st)| *st == PeerState::Responded)
            .map(|(c, _)| *c)
            .take(k)
            .collect();
        let result = match lk.kind {
            OpKind::FindNode => {
                if responded.is_empty() {
                    DhtResult::TimedOut
                } else {
                    DhtResult::Closest(responded)
                }
            }
            OpKind::Get => {
                ctx.metrics().incr("dht.get_notfound", 1);
                if responded.is_empty() {
                    DhtResult::TimedOut
                } else {
                    DhtResult::NotFound
                }
            }
            OpKind::Put => {
                let data = lk.put_data.clone().unwrap_or_else(|| Rc::from(Vec::new()));
                // Store at the k closest responders — and locally if we are
                // among the k closest overall. One message, multicast: each
                // replica's copy is an `Rc` clone of the same payload.
                let replicas: Vec<NodeId> = responded.iter().map(|c| c.addr).collect();
                let msg = DhtMsg::Store {
                    key: lk.target,
                    data: data.clone(),
                    sender_key: self.key,
                };
                let size = msg.wire_size();
                ctx.multicast(&replicas, msg, size);
                ctx.metrics().incr("dht.puts", 1);
                self.store.insert(
                    lk.target,
                    StoredValue {
                        data,
                        refreshed_at: ctx.now(),
                    },
                );
                DhtResult::Stored {
                    replicas: responded.len(),
                }
            }
        };
        let elapsed = ctx.now().since(lk.started).secs_f64();
        ctx.metrics().sample("dht.lookup_secs", elapsed);
        ctx.metrics().sample("dht.lookup_hops", lk.hops as f64);
        ctx.trace_point("dht.lookup_secs", elapsed);
        ctx.trace_point("dht.lookup_hops", lk.hops as f64);
        ctx.probe_signal("dht.lookup_secs", elapsed);
        ctx.probe_signal("dht.lookup_hops", lk.hops as f64);
        self.results.insert(op, result);
    }

    fn handle_reply(
        &mut self,
        ctx: &mut Ctx<'_, DhtMsg>,
        op: u64,
        sender_key: Hash256,
        closer: Vec<Contact>,
        value: Option<Rc<[u8]>>,
    ) {
        let Some(lk) = self.lookups.get_mut(&op) else {
            return;
        };
        // Mark the responder.
        for (c, st) in lk.shortlist.iter_mut() {
            if c.key == sender_key {
                *st = PeerState::Responded;
            }
        }
        if let Some(data) = value {
            if lk.kind == OpKind::Get {
                let hops = lk.hops;
                let started = lk.started;
                let target = lk.target;
                self.lookups.remove(&op);
                if self.cache_on {
                    self.cache.insert(
                        target,
                        StoredValue {
                            data: data.clone(),
                            refreshed_at: ctx.now(),
                        },
                    );
                }
                ctx.metrics().incr("dht.get_found", 1);
                let elapsed = ctx.now().since(started).secs_f64();
                ctx.metrics().sample("dht.lookup_secs", elapsed);
                ctx.metrics().sample("dht.lookup_hops", hops as f64);
                ctx.trace_point("dht.lookup_secs", elapsed);
                ctx.trace_point("dht.lookup_hops", hops as f64);
                ctx.probe_signal("dht.lookup_secs", elapsed);
                ctx.probe_signal("dht.lookup_hops", hops as f64);
                self.results.insert(op, DhtResult::Found { data, hops });
                return;
            }
        }
        // Merge new contacts.
        let my_key = self.key;
        let lk = self.lookups.get_mut(&op).expect("still present");
        for c in closer {
            if c.key == my_key {
                continue;
            }
            if !lk.shortlist.iter().any(|(e, _)| e.key == c.key) {
                lk.shortlist.push((c, PeerState::Unqueried));
            }
        }
        self.drive(ctx, op);
    }

    fn maintenance(&mut self, ctx: &mut Ctx<'_, DhtMsg>) {
        let now = ctx.now();
        // Expire replicas the origin stopped refreshing.
        let ttl = self.cfg.value_ttl;
        self.store
            .retain(|k, v| now.since(v.refreshed_at) <= ttl || self.origin_values.contains_key(k));
        // Decay the hot-key cache (a no-op on the empty map when caching
        // has never been on).
        let cache_ttl = self.cfg.cache_ttl;
        self.cache
            .retain(|_, v| now.since(v.refreshed_at) <= cache_ttl);
        // Republish everything we originated, in key order: HashMap
        // iteration order is randomized per process, and the op-id/message
        // sequence it produces must be reproducible across runs.
        let mut originals: Vec<(Hash256, Rc<[u8]>)> = self
            .origin_values
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        originals.sort_unstable_by_key(|(k, _)| *k);
        for (key, data) in originals {
            self.begin(ctx, OpKind::Put, key, Some(data));
        }
        ctx.set_timer(self.cfg.republish_interval, TAG_MAINT);
    }
}

impl Protocol for DhtNode {
    type Msg = DhtMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DhtMsg>) {
        // Join: learn bootstrap contacts and look up our own key.
        for c in self.bootstrap.clone() {
            if c.key != self.key {
                self.table.observe(c);
            }
        }
        if !self.table.is_empty() {
            let target = self.key;
            self.begin(ctx, OpKind::FindNode, target, None);
        }
        ctx.set_timer(self.cfg.republish_interval, TAG_MAINT);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DhtMsg>, from: NodeId, msg: DhtMsg) {
        match msg {
            DhtMsg::FindNode {
                op,
                target,
                sender_key,
            } => {
                self.table.observe(Contact {
                    key: sender_key,
                    addr: from,
                });
                let mut closer = self.table.closest(&target, self.cfg.k);
                closer.retain(|c| c.key != sender_key);
                let reply = DhtMsg::Nodes {
                    op,
                    sender_key: self.key,
                    closer,
                };
                let size = reply.wire_size();
                ctx.send(from, reply, size);
            }
            DhtMsg::FindValue {
                op,
                target,
                sender_key,
            } => {
                self.table.observe(Contact {
                    key: sender_key,
                    addr: from,
                });
                // Authoritative replicas first; then, with caching on, a
                // fresh cache entry — this is what shortens lookup paths
                // for everyone else once a hot key has been fetched once.
                let mut hit = self.store.get(&target).map(|v| (v.data.clone(), false));
                if hit.is_none() && self.cache_on {
                    if let Some(v) = self.cache.get(&target) {
                        if ctx.now().since(v.refreshed_at) <= self.cfg.cache_ttl {
                            hit = Some((v.data.clone(), true));
                        }
                    }
                }
                if let Some((data, from_cache)) = hit {
                    let reply = DhtMsg::Value {
                        op,
                        sender_key: self.key,
                        data,
                    };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                    if from_cache {
                        ctx.metrics().incr("dht.cache_serve", 1);
                    }
                } else {
                    let mut closer = self.table.closest(&target, self.cfg.k);
                    closer.retain(|c| c.key != sender_key);
                    let reply = DhtMsg::Nodes {
                        op,
                        sender_key: self.key,
                        closer,
                    };
                    let size = reply.wire_size();
                    ctx.send(from, reply, size);
                }
            }
            DhtMsg::Nodes {
                op,
                sender_key,
                closer,
            } => {
                self.table.observe(Contact {
                    key: sender_key,
                    addr: from,
                });
                for c in &closer {
                    if c.key != self.key {
                        self.table.observe(*c);
                    }
                }
                self.handle_reply(ctx, op, sender_key, closer, None);
            }
            DhtMsg::Value {
                op,
                sender_key,
                data,
            } => {
                self.table.observe(Contact {
                    key: sender_key,
                    addr: from,
                });
                self.handle_reply(ctx, op, sender_key, Vec::new(), Some(data));
            }
            DhtMsg::Store {
                key,
                data,
                sender_key,
            } => {
                self.table.observe(Contact {
                    key: sender_key,
                    addr: from,
                });
                ctx.metrics().incr("dht.stores_received", 1);
                ctx.trace_point("dht.stores_received", 1.0);
                self.store.insert(
                    key,
                    StoredValue {
                        data,
                        refreshed_at: ctx.now(),
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DhtMsg>, tag: u64) {
        if tag == TAG_MAINT {
            self.maintenance(ctx);
            return;
        }
        // Lookup tick.
        let op = tag;
        let Some(lk) = self.lookups.get_mut(&op) else {
            return;
        };
        lk.ticks += 1;
        if lk.ticks > self.cfg.max_ticks {
            self.finish(ctx, op);
            return;
        }
        self.drive(ctx, op);
        if self.lookups.contains_key(&op) {
            ctx.set_timer(self.cfg.tick, op);
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, DhtMsg>) {
        // Rejoin after an outage: refresh our neighbourhood.
        if !self.table.is_empty() || !self.bootstrap.is_empty() {
            for c in self.bootstrap.clone() {
                if c.key != self.key {
                    self.table.observe(c);
                }
            }
            let target = self.key;
            self.begin(ctx, OpKind::FindNode, target, None);
        }
        ctx.set_timer(self.cfg.republish_interval, TAG_MAINT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;
    use agora_sim::{DeviceClass, SimDuration, Simulation};

    /// Build an n-node DHT where every node bootstraps off node 0.
    fn build(n: usize, seed: u64) -> (Simulation<DhtNode>, Vec<NodeId>, Vec<Hash256>) {
        let mut sim = Simulation::new(seed);
        let mut ids = Vec::new();
        let mut keys = Vec::new();
        let boot_key = sha256(b"node-0");
        for i in 0..n {
            let key = sha256(format!("node-{i}").as_bytes());
            let bootstrap = if i == 0 {
                vec![]
            } else {
                vec![Contact {
                    key: boot_key,
                    addr: NodeId(0),
                }]
            };
            let node = DhtNode::new(key, DhtConfig::default(), bootstrap);
            ids.push(sim.add_node(node, DeviceClass::PersonalComputer));
            keys.push(key);
        }
        // Let joins settle.
        sim.run_for(SimDuration::from_secs(30));
        (sim, ids, keys)
    }

    #[test]
    fn rpc_retries_resend_under_loss_and_stay_dormant_by_default() {
        // Same topology and seed, once with retries and once without: the
        // retrying run re-sends timed-out RPCs (retry.attempts > 0) while
        // the default run never touches the retry counters.
        let run = |retries: u32| {
            let mut sim = Simulation::new(33);
            let boot_key = sha256(b"node-0");
            let mut ids = Vec::new();
            for i in 0..12 {
                let key = sha256(format!("node-{i}").as_bytes());
                let bootstrap = if i == 0 {
                    vec![]
                } else {
                    vec![Contact {
                        key: boot_key,
                        addr: NodeId(0),
                    }]
                };
                let cfg = DhtConfig {
                    rpc_retries: retries,
                    ..DhtConfig::default()
                };
                ids.push(sim.add_node(
                    DhtNode::new(key, cfg, bootstrap),
                    DeviceClass::PersonalComputer,
                ));
            }
            sim.run_for(SimDuration::from_secs(30));
            sim.set_loss_rate(0.5);
            let target = sha256(b"lossy-target");
            sim.with_ctx(ids[3], |n, ctx| n.start_find_node(ctx, target))
                .unwrap();
            sim.run_for(SimDuration::from_secs(60));
            (
                sim.metrics().counter("retry.attempts"),
                sim.metrics().counter("dht.rpc_sent"),
            )
        };
        let (attempts_off, sent_off) = run(0);
        assert_eq!(attempts_off, 0, "dormant config must not retry");
        let (attempts_on, sent_on) = run(2);
        assert!(attempts_on > 0, "retries must fire under 50% loss");
        assert!(sent_on > sent_off, "retries add RPCs");
    }

    #[test]
    fn join_populates_routing_tables() {
        let (sim, ids, _) = build(20, 1);
        for &id in &ids {
            assert!(
                sim.node(id).table_len() >= 3,
                "node {id} has {} contacts",
                sim.node(id).table_len()
            );
        }
    }

    #[test]
    fn put_then_get_from_another_node() {
        let (mut sim, ids, _) = build(20, 2);
        let key = sha256(b"the-key");
        let put_op = sim
            .with_ctx(ids[3], |n, ctx| {
                n.start_put(ctx, key, b"hello dht".to_vec())
            })
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        match sim.node_mut(ids[3]).take_result(put_op) {
            Some(DhtResult::Stored { replicas }) => assert!(replicas >= 2, "replicas {replicas}"),
            other => panic!("put failed: {other:?}"),
        }
        let get_op = sim
            .with_ctx(ids[15], |n, ctx| n.start_get(ctx, key))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        match sim.node_mut(ids[15]).take_result(get_op) {
            Some(DhtResult::Found { data, .. }) => assert_eq!(&data[..], b"hello dht"),
            other => panic!("get failed: {other:?}"),
        }
    }

    #[test]
    fn get_missing_value_is_notfound() {
        let (mut sim, ids, _) = build(15, 3);
        let op = sim
            .with_ctx(ids[5], |n, ctx| n.start_get(ctx, sha256(b"missing")))
            .unwrap();
        sim.run_for(SimDuration::from_secs(40));
        assert_eq!(
            sim.node_mut(ids[5]).take_result(op),
            Some(DhtResult::NotFound)
        );
    }

    #[test]
    fn find_node_returns_closest() {
        let (mut sim, ids, keys) = build(25, 4);
        let target = sha256(b"somewhere");
        let op = sim
            .with_ctx(ids[2], |n, ctx| n.start_find_node(ctx, target))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        match sim.node_mut(ids[2]).take_result(op) {
            Some(DhtResult::Closest(contacts)) => {
                assert!(!contacts.is_empty());
                // The returned head should be the globally closest live key
                // (all nodes are up in this test).
                let mut all = keys.clone();
                all.sort_by_key(|k| k.xor(&target));
                let returned_best = contacts[0].key.xor(&target);
                let global_best = all[0].xor(&target);
                // Initiator excludes itself; allow the second-best too.
                let global_second = all[1].xor(&target);
                assert!(
                    returned_best == global_best || returned_best == global_second,
                    "lookup converged to a non-closest node"
                );
            }
            other => panic!("find_node failed: {other:?}"),
        }
    }

    #[test]
    fn value_survives_churn_with_republish() {
        let (mut sim, ids, _) = build(25, 5);
        let key = sha256(b"durable");
        sim.with_ctx(ids[1], |n, ctx| n.start_put(ctx, key, b"v".to_vec()))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        // Kill half the network (not the origin).
        for &id in ids.iter().skip(13) {
            sim.kill(id);
        }
        // Run past a republish interval so the origin re-replicates.
        sim.run_for(SimDuration::from_mins(35));
        let get_op = sim
            .with_ctx(ids[2], |n, ctx| n.start_get(ctx, key))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        match sim.node_mut(ids[2]).take_result(get_op) {
            Some(DhtResult::Found { data, .. }) => assert_eq!(&data[..], b"v"),
            other => panic!("value lost under churn: {other:?}"),
        }
    }

    #[test]
    fn replicas_expire_without_republish() {
        let cfg = DhtConfig {
            value_ttl: SimDuration::from_secs(10),
            republish_interval: SimDuration::from_hours(100), // effectively never
            ..DhtConfig::default()
        };
        let mut sim: Simulation<DhtNode> = Simulation::new(6);
        let boot_key = sha256(b"node-0");
        let mut ids = Vec::new();
        for i in 0..10 {
            let key = sha256(format!("node-{i}").as_bytes());
            let bootstrap = if i == 0 {
                vec![]
            } else {
                vec![Contact {
                    key: boot_key,
                    addr: NodeId(0),
                }]
            };
            ids.push(sim.add_node(
                DhtNode::new(key, cfg.clone(), bootstrap),
                DeviceClass::PersonalComputer,
            ));
        }
        sim.run_for(SimDuration::from_secs(20));
        let key = sha256(b"ephemeral");
        sim.with_ctx(ids[1], |n, ctx| n.start_put(ctx, key, b"v".to_vec()))
            .unwrap();
        sim.run_for(SimDuration::from_secs(10));
        let holders_before: usize = ids.iter().filter(|&&id| sim.node(id).holds(&key)).count();
        assert!(holders_before >= 2);
        // Kill the origin so it cannot refresh, then outlive the TTL.
        sim.kill(ids[1]);
        sim.run_for(SimDuration::from_hours(99));
        // TTL pruning happens lazily at maintenance; force it by waiting
        // beyond the republish interval of the *other* nodes.
        sim.run_for(SimDuration::from_hours(2));
        let holders_after: usize = ids
            .iter()
            .filter(|&&id| id != ids[1] && sim.node(id).holds(&key))
            .count();
        assert_eq!(holders_after, 0, "replicas should expire");
    }

    #[test]
    fn hot_key_cache_serves_repeats_and_stays_dormant_by_default() {
        // Same topology, seed, and GET sequence, once with the gateway
        // caching and once without: the caching run answers repeat GETs
        // locally (cache_hit > 0, fewer RPCs) while the default run never
        // touches the cache counters — the dormancy contract.
        let run = |cache: bool| {
            let (mut sim, ids, _) = build(20, 8);
            let key = sha256(b"hot-key");
            sim.with_ctx(ids[0], |n, ctx| n.start_put(ctx, key, b"v".to_vec()))
                .unwrap();
            sim.run_for(SimDuration::from_secs(30));
            if cache {
                sim.node_mut(ids[9]).set_cache(true);
            }
            let mut found = 0;
            for _ in 0..5 {
                let op = sim
                    .with_ctx(ids[9], |n, ctx| n.start_get(ctx, key))
                    .unwrap();
                sim.run_for(SimDuration::from_secs(20));
                if let Some(DhtResult::Found { .. }) = sim.node_mut(ids[9]).take_result(op) {
                    found += 1;
                }
            }
            (
                found,
                sim.metrics().counter("dht.cache_hit"),
                sim.metrics().counter("dht.rpc_sent"),
            )
        };
        let (found_off, hits_off, sent_off) = run(false);
        assert_eq!(found_off, 5);
        assert_eq!(hits_off, 0, "dormant config must not cache");
        let (found_on, hits_on, sent_on) = run(true);
        assert_eq!(found_on, 5);
        assert_eq!(hits_on, 4, "repeat GETs within TTL hit the cache");
        assert!(sent_on < sent_off, "cache hits save RPCs");
    }

    #[test]
    fn cache_entries_decay_after_ttl_and_clear_on_disable() {
        let (mut sim, ids, _) = build(20, 9);
        let key = sha256(b"decaying");
        sim.with_ctx(ids[0], |n, ctx| n.start_put(ctx, key, b"v".to_vec()))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        sim.node_mut(ids[9]).set_cache(true);
        let op = sim
            .with_ctx(ids[9], |n, ctx| n.start_get(ctx, key))
            .unwrap();
        sim.run_for(SimDuration::from_secs(20));
        assert!(sim.node_mut(ids[9]).take_result(op).is_some());
        assert_eq!(sim.node(ids[9]).cache_len(), 1);
        // Outlive the cache TTL (default 5 min): the next GET misses the
        // cache and goes back to the network.
        sim.run_for(SimDuration::from_mins(6));
        let op = sim
            .with_ctx(ids[9], |n, ctx| n.start_get(ctx, key))
            .unwrap();
        sim.run_for(SimDuration::from_secs(20));
        match sim.node_mut(ids[9]).take_result(op) {
            Some(DhtResult::Found { hops, .. }) => assert!(hops > 0, "expired entry must re-fetch"),
            other => panic!("get failed: {other:?}"),
        }
        // Disengage: the cache drops with the switch.
        assert_eq!(sim.node(ids[9]).cache_len(), 1);
        sim.node_mut(ids[9]).set_cache(false);
        assert_eq!(sim.node(ids[9]).cache_len(), 0);
    }

    #[test]
    fn lookup_metrics_recorded() {
        let (mut sim, ids, _) = build(20, 7);
        let key = sha256(b"metric-key");
        sim.with_ctx(ids[0], |n, ctx| n.start_put(ctx, key, vec![1]))
            .unwrap();
        sim.run_for(SimDuration::from_secs(20));
        let op = sim
            .with_ctx(ids[9], |n, ctx| n.start_get(ctx, key))
            .unwrap();
        sim.run_for(SimDuration::from_secs(20));
        assert!(sim.node_mut(ids[9]).take_result(op).is_some());
        assert!(sim.metrics().histogram("dht.lookup_hops").is_some());
        assert!(sim.metrics().counter("dht.rpc_sent") > 0);
    }
}

//! Kademlia routing table: 256 XOR-distance buckets of `k` contacts each.

use agora_crypto::Hash256;
use agora_sim::NodeId;

/// A DHT contact: overlay key plus transport address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contact {
    /// Overlay key (position in XOR space).
    pub key: Hash256,
    /// Simulator transport address.
    pub addr: NodeId,
}

/// The routing table of one node.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    own_key: Hash256,
    k: usize,
    buckets: Vec<Vec<Contact>>,
}

impl RoutingTable {
    /// Create an empty table for a node with the given overlay key.
    pub fn new(own_key: Hash256, k: usize) -> RoutingTable {
        RoutingTable {
            own_key,
            k: k.max(1),
            buckets: vec![Vec::new(); 256],
        }
    }

    /// Bucket index for a key: floor(log2(distance)). `None` for self.
    fn bucket_index(&self, key: &Hash256) -> Option<usize> {
        let dist = self.own_key.xor(key);
        let lz = dist.leading_zero_bits();
        if lz == 256 {
            None // distance zero: never store self
        } else {
            Some(255 - lz as usize)
        }
    }

    /// Record that a contact is alive. Known contacts move to the bucket's
    /// most-recently-seen end; new contacts fill free slots. Full buckets
    /// drop the newcomer (classic Kademlia favours long-lived contacts;
    /// failures are pruned via [`RoutingTable::remove`]).
    pub fn observe(&mut self, contact: Contact) {
        let Some(idx) = self.bucket_index(&contact.key) else {
            return;
        };
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|c| c.key == contact.key) {
            let c = bucket.remove(pos);
            bucket.push(c);
        } else if bucket.len() < self.k {
            bucket.push(contact);
        }
    }

    /// Remove a contact that failed to respond.
    pub fn remove(&mut self, key: &Hash256) {
        if let Some(idx) = self.bucket_index(key) {
            self.buckets[idx].retain(|c| &c.key != key);
        }
    }

    /// The `n` known contacts closest to `target` (by XOR distance).
    ///
    /// Selection, not a full sort: every lookup step calls this, so the XOR
    /// distances are computed once into a scratch vector, `select_nth_unstable`
    /// partitions out the `n` winners in O(len), and only that n-sized prefix
    /// is sorted. Distances to a fixed target are unique for distinct keys
    /// (XOR is a bijection), so the result is identical to sorting everything
    /// — locked down by `closest_matches_full_sort_reference` below.
    pub fn closest(&self, target: &Hash256, n: usize) -> Vec<Contact> {
        let mut all: Vec<(Hash256, Contact)> = self
            .buckets
            .iter()
            .flatten()
            .map(|c| (c.key.xor(target), *c))
            .collect();
        if n == 0 {
            return Vec::new();
        }
        if n < all.len() {
            all.select_nth_unstable_by(n - 1, |a, b| a.0.cmp(&b.0));
            all.truncate(n);
        }
        all.sort_unstable_by_key(|a| a.0);
        all.into_iter().map(|(_, c)| c).collect()
    }

    /// Total contacts stored.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// True if no contacts are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &Hash256) -> bool {
        self.bucket_index(key)
            .is_some_and(|i| self.buckets[i].iter().any(|c| &c.key == key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    fn contact(i: u32) -> Contact {
        Contact {
            key: sha256(&i.to_be_bytes()),
            addr: NodeId(i),
        }
    }

    #[test]
    fn self_key_never_stored() {
        let own = sha256(b"me");
        let mut t = RoutingTable::new(own, 20);
        t.observe(Contact {
            key: own,
            addr: NodeId(0),
        });
        assert!(t.is_empty());
    }

    #[test]
    fn observe_and_contains() {
        let mut t = RoutingTable::new(sha256(b"me"), 20);
        let c = contact(1);
        t.observe(c);
        assert!(t.contains(&c.key));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_bucket_drops_newcomer() {
        let own = sha256(b"me");
        let mut t = RoutingTable::new(own, 2);
        // Find several keys landing in the same bucket.
        let mut same_bucket = Vec::new();
        let mut i = 0u32;
        let target_idx = {
            let c = contact(0);
            let lz = own.xor(&c.key).leading_zero_bits();
            255 - lz as usize
        };
        while same_bucket.len() < 4 {
            let c = contact(i);
            let lz = own.xor(&c.key).leading_zero_bits() as usize;
            if lz < 256 && 255 - lz == target_idx {
                same_bucket.push(c);
            }
            i += 1;
        }
        for c in &same_bucket {
            t.observe(*c);
        }
        assert_eq!(t.len(), 2, "bucket capacity enforced");
        assert!(t.contains(&same_bucket[0].key), "oldest kept");
        assert!(!t.contains(&same_bucket[3].key), "newcomer dropped");
    }

    #[test]
    fn remove_prunes_failures() {
        let mut t = RoutingTable::new(sha256(b"me"), 20);
        let c = contact(1);
        t.observe(c);
        t.remove(&c.key);
        assert!(!t.contains(&c.key));
    }

    #[test]
    fn closest_orders_by_xor_distance() {
        let own = sha256(b"me");
        let mut t = RoutingTable::new(own, 20);
        for i in 0..50 {
            t.observe(contact(i));
        }
        let target = sha256(b"target");
        let got = t.closest(&target, 5);
        assert_eq!(got.len(), 5);
        for w in got.windows(2) {
            assert!(w[0].key.xor(&target) <= w[1].key.xor(&target));
        }
        // The first result really is the global minimum among stored.
        let all = t.closest(&target, 100);
        assert_eq!(got[0].key, all[0].key);
    }

    #[test]
    fn re_observe_moves_to_most_recent() {
        // With k=1 the bucket keeps its single occupant; re-observing it
        // must not duplicate.
        let mut t = RoutingTable::new(sha256(b"me"), 1);
        let c = contact(1);
        t.observe(c);
        t.observe(c);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn closest_on_empty_table() {
        let t = RoutingTable::new(sha256(b"me"), 20);
        assert!(t.closest(&sha256(b"x"), 3).is_empty());
    }

    #[test]
    fn closest_zero_returns_empty() {
        let mut t = RoutingTable::new(sha256(b"me"), 20);
        t.observe(contact(1));
        assert!(t.closest(&sha256(b"x"), 0).is_empty());
    }

    #[test]
    fn closest_matches_full_sort_reference() {
        // The selection-based `closest` must return exactly what the naive
        // sort-everything implementation returned, for every n from 0 past
        // the table size — order included.
        let own = sha256(b"me");
        let mut t = RoutingTable::new(own, 20);
        for i in 0..200 {
            t.observe(contact(i));
        }
        let stored = t.len();
        assert!(stored > 50, "need a meaningfully sized table, got {stored}");
        for target in [sha256(b"t1"), sha256(b"t2"), own, contact(7).key] {
            let mut reference: Vec<Contact> = t.buckets.iter().flatten().copied().collect();
            reference.sort_by_key(|c| c.key.xor(&target));
            for n in [0, 1, 2, 3, 5, 8, 16, 20, stored - 1, stored, stored + 10] {
                let mut want = reference.clone();
                want.truncate(n);
                assert_eq!(t.closest(&target, n), want, "n = {n}");
            }
        }
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the Kademlia routing table.

use agora_crypto::{sha256, Hash256};
use agora_dht::{Contact, RoutingTable};
use agora_sim::NodeId;
use proptest::prelude::*;

fn contacts(n: usize) -> Vec<Contact> {
    (0..n)
        .map(|i| Contact {
            key: sha256(&(i as u64).to_be_bytes()),
            addr: NodeId(i as u32),
        })
        .collect()
}

proptest! {
    /// The table never stores its own key, never exceeds k per bucket, and
    /// never duplicates a contact — under arbitrary observe/remove storms.
    #[test]
    fn table_invariants(
        k in 1usize..12,
        ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 0..300),
    ) {
        let own = sha256(b"own-key");
        let mut table = RoutingTable::new(own, k);
        table.observe(Contact { key: own, addr: NodeId(9999) });
        for (x, insert) in ops {
            let c = Contact {
                key: sha256(&x.to_be_bytes()),
                addr: NodeId(x as u32),
            };
            if insert {
                table.observe(c);
            } else {
                table.remove(&c.key);
            }
            prop_assert!(!table.contains(&own), "self-key stored");
        }
        // No duplicates: closest over everything returns unique keys.
        let all = table.closest(&own, usize::MAX);
        let mut keys: Vec<Hash256> = all.iter().map(|c| c.key).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate contacts");
        prop_assert_eq!(all.len(), table.len());
    }

    /// closest(target, n) is sorted by XOR distance and globally optimal
    /// among stored contacts.
    #[test]
    fn closest_is_sorted_and_optimal(
        n_contacts in 1usize..150,
        want in 1usize..25,
        target_seed in any::<u64>(),
    ) {
        let own = sha256(b"me");
        let mut table = RoutingTable::new(own, 20);
        let cs = contacts(n_contacts);
        for c in &cs {
            table.observe(*c);
        }
        let target = sha256(&target_seed.to_be_bytes());
        let got = table.closest(&target, want);
        prop_assert!(got.len() <= want);
        for w in got.windows(2) {
            prop_assert!(w[0].key.xor(&target) <= w[1].key.xor(&target));
        }
        // The head of the result is the global minimum among *stored*.
        if let Some(first) = got.first() {
            let stored = table.closest(&target, usize::MAX);
            prop_assert_eq!(first.key, stored[0].key);
        }
    }

    /// Re-observing contacts is idempotent on size.
    #[test]
    fn observe_idempotent(n in 1usize..80, repeats in 1usize..4) {
        let mut table = RoutingTable::new(sha256(b"me"), 8);
        let cs = contacts(n);
        for _ in 0..repeats {
            for c in &cs {
                table.observe(*c);
            }
        }
        let once = {
            let mut t = RoutingTable::new(sha256(b"me"), 8);
            for c in &cs {
                t.observe(*c);
            }
            t.len()
        };
        prop_assert_eq!(table.len(), once);
    }

    /// XOR distance is a metric compatible with the triangle property of
    /// XOR (d(a,c) <= d(a,b) ^ d(b,c) bitwise; here we check symmetry and
    /// identity which routing correctness relies on).
    #[test]
    fn xor_metric_identity_symmetry(a in any::<u64>(), b in any::<u64>()) {
        let ha = sha256(&a.to_be_bytes());
        let hb = sha256(&b.to_be_bytes());
        prop_assert_eq!(ha.xor(&ha), Hash256::ZERO);
        prop_assert_eq!(ha.xor(&hb), hb.xor(&ha));
        if a != b {
            prop_assert_ne!(ha.xor(&hb), Hash256::ZERO);
        }
    }
}

//! # agora-feasibility — the paper's §4 infrastructure-feasibility model
//!
//! "Even if an ideal democratized Internet service architecture were to be
//! developed, would the capacity exist for it to operate at service levels
//! comparable to today?" §4 answers with a back-of-the-envelope comparison
//! of global cloud capacity against the unproductive capacity of user
//! devices; Table 3 is its output.
//!
//! This crate encodes §4's constants as a typed, documented
//! [`Assumptions`] set with provenance notes, reproduces Table 3 *exactly*,
//! and extends the analysis with the sensitivity sweeps and duty-cycle
//! discounts the paper's §5.2 "quality vs quantity" discussion calls for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One resource triple: bandwidth, compute, storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Capacity {
    /// Aggregate bandwidth in terabits per second.
    pub bandwidth_tbps: f64,
    /// Server-equivalent cores, in millions.
    pub cores_millions: f64,
    /// Storage in exabytes.
    pub storage_eb: f64,
}

/// §4's input assumptions, with provenance.
#[derive(Clone, Debug)]
pub struct Assumptions {
    // -- cloud side ---------------------------------------------------------
    /// Google's extrapolated core count (paper: 1 M servers circa 2011
    /// reports → "we might extrapolate that today Google has about 100
    /// million cores").
    pub google_cores: f64,
    /// Google's extrapolated storage in EB (10 EB reported → 20 EB today).
    pub google_storage_eb: f64,
    /// Global Internet traffic in Tbps (Cisco VNI: "a little over 200 Tbps
    /// in 2016").
    pub internet_traffic_tbps: f64,
    /// Google's share of Internet traffic (Espresso announcement: 1/4).
    pub google_traffic_share: f64,

    // -- device side (Statista device counts) --------------------------------
    /// Personal computers in use worldwide.
    pub personal_computers: f64,
    /// Smartphones in use worldwide.
    pub smartphones: f64,
    /// Tablets in use worldwide.
    pub tablets: f64,

    // -- per-device resources (§4's assumed values) ---------------------------
    /// Unutilized cores per PC.
    pub pc_spare_cores: f64,
    /// Free storage per PC in GB.
    pub pc_free_storage_gb: f64,
    /// Free storage per tablet in GB.
    pub tablet_free_storage_gb: f64,
    /// Upstream bandwidth per device in Mbps ("slow broadband" / "slow 3G").
    pub uplink_mbps: f64,
    /// Derating factor turning PC cores into server-equivalent cores
    /// ("reduce their estimated capacity by a factor of 8").
    pub pc_core_derate: f64,
    /// Whether battery-constrained devices (phones, tablets) contribute
    /// compute (§4: they do not).
    pub battery_devices_compute: bool,
}

impl Default for Assumptions {
    /// Exactly the paper's numbers.
    fn default() -> Assumptions {
        Assumptions {
            google_cores: 100e6,
            google_storage_eb: 20.0,
            internet_traffic_tbps: 200.0,
            google_traffic_share: 0.25,
            personal_computers: 2e9,
            smartphones: 2e9,
            tablets: 1e9,
            pc_spare_cores: 2.0,
            pc_free_storage_gb: 100.0,
            tablet_free_storage_gb: 10.0,
            uplink_mbps: 1.0,
            pc_core_derate: 8.0,
            battery_devices_compute: false,
        }
    }
}

impl Assumptions {
    /// The cloud column of Table 3: scale Google's estimated resources by
    /// the inverse of its traffic share.
    pub fn cloud(&self) -> Capacity {
        let scale = 1.0 / self.google_traffic_share;
        Capacity {
            // Google carries share × traffic; all-cloud ≈ total traffic.
            bandwidth_tbps: self.internet_traffic_tbps * self.google_traffic_share * scale,
            cores_millions: self.google_cores * scale / 1e6,
            storage_eb: self.google_storage_eb * scale,
        }
    }

    /// The user-device column of Table 3.
    pub fn user_devices(&self) -> Capacity {
        let devices = self.personal_computers + self.smartphones + self.tablets;
        let bandwidth_tbps = devices * self.uplink_mbps / 1e6; // Mbps → Tbps
        let mut cores = self.personal_computers * self.pc_spare_cores / self.pc_core_derate;
        if self.battery_devices_compute {
            cores += (self.smartphones + self.tablets) * 1.0 / self.pc_core_derate;
        }
        let storage_eb = (self.personal_computers * self.pc_free_storage_gb
            + self.tablets * self.tablet_free_storage_gb)
            / 1e9; // GB → EB
        Capacity {
            bandwidth_tbps,
            cores_millions: cores / 1e6,
            storage_eb,
        }
    }

    /// Ratios (user-device ÷ cloud) per resource; ≥ 1.0 means the paper's
    /// "sufficient capacity among existing devices" claim holds for it.
    pub fn sufficiency(&self) -> Capacity {
        let c = self.cloud();
        let u = self.user_devices();
        Capacity {
            bandwidth_tbps: u.bandwidth_tbps / c.bandwidth_tbps,
            cores_millions: u.cores_millions / c.cores_millions,
            storage_eb: u.storage_eb / c.storage_eb,
        }
    }

    /// §5.2 extension: discount user-device capacity by availability duty
    /// cycles (the paper's quality-vs-quantity caveat, made quantitative).
    /// `pc_duty`, `mobile_duty` ∈ [0, 1].
    pub fn effective_user_devices(&self, pc_duty: f64, mobile_duty: f64) -> Capacity {
        let raw = self.user_devices();
        let pc_frac_bw =
            self.personal_computers / (self.personal_computers + self.smartphones + self.tablets);
        let bw_duty = pc_frac_bw * pc_duty + (1.0 - pc_frac_bw) * mobile_duty;
        let pc_storage = self.personal_computers * self.pc_free_storage_gb;
        let tab_storage = self.tablets * self.tablet_free_storage_gb;
        let storage_duty =
            (pc_storage * pc_duty + tab_storage * mobile_duty) / (pc_storage + tab_storage);
        Capacity {
            bandwidth_tbps: raw.bandwidth_tbps * bw_duty,
            cores_millions: raw.cores_millions * pc_duty, // compute is PC-only
            storage_eb: raw.storage_eb * storage_duty,
        }
    }
}

/// Render Table 3 ("Estimated capacity of global cloud infrastructure and
/// unused user resources") from the model.
pub fn render_table3(a: &Assumptions) -> String {
    let cloud = a.cloud();
    let user = a.user_devices();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} | {:>20} | {:>14}\n",
        "", "Cloud Infrastructure", "User Devices"
    ));
    out.push_str(&format!("{}\n", "-".repeat(52)));
    out.push_str(&format!(
        "{:<10} | {:>15} Tbps | {:>9} Tbps\n",
        "Bandwidth", cloud.bandwidth_tbps as u64, user.bandwidth_tbps as u64
    ));
    out.push_str(&format!(
        "{:<10} | {:>18} M | {:>12} M\n",
        "Cores", cloud.cores_millions as u64, user.cores_millions as u64
    ));
    out.push_str(&format!(
        "{:<10} | {:>17} EB | {:>11} EB\n",
        "Storage", cloud.storage_eb as u64, user.storage_eb as u64
    ));
    out
}

/// One row of a sensitivity sweep.
#[derive(Clone, Debug)]
pub struct SensitivityRow {
    /// Which assumption was varied.
    pub assumption: &'static str,
    /// Multiplier applied.
    pub factor: f64,
    /// Resulting sufficiency ratios.
    pub sufficiency: Capacity,
}

/// Sweep each load-bearing assumption by the given factors and report how
/// the sufficiency ratios move (experiment T3's sensitivity panel).
pub fn sensitivity_sweep(factors: &[f64]) -> Vec<SensitivityRow> {
    let mut rows = Vec::new();
    type Setter = fn(&mut Assumptions, f64);
    let knobs: [(&'static str, Setter); 6] = [
        ("uplink_mbps", |a, f| a.uplink_mbps *= f),
        ("pc_free_storage_gb", |a, f| a.pc_free_storage_gb *= f),
        ("pc_core_derate", |a, f| a.pc_core_derate *= f),
        ("google_traffic_share", |a, f| {
            a.google_traffic_share = (a.google_traffic_share * f).min(1.0)
        }),
        ("personal_computers", |a, f| a.personal_computers *= f),
        ("google_cores", |a, f| a.google_cores *= f),
    ];
    for (name, set) in knobs {
        for &f in factors {
            let mut a = Assumptions::default();
            set(&mut a, f);
            rows.push(SensitivityRow {
                assumption: name,
                factor: f,
                sufficiency: a.sufficiency(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_cloud_column_matches_paper() {
        let c = Assumptions::default().cloud();
        assert_eq!(c.bandwidth_tbps.round() as u64, 200);
        assert_eq!(c.cores_millions.round() as u64, 400);
        assert_eq!(c.storage_eb.round() as u64, 80);
    }

    #[test]
    fn table3_user_column_matches_paper() {
        let u = Assumptions::default().user_devices();
        assert_eq!(u.bandwidth_tbps.round() as u64, 5000);
        assert_eq!(u.cores_millions.round() as u64, 500);
        assert_eq!(u.storage_eb.round() as u64, 210);
    }

    #[test]
    fn paper_conclusion_sufficient_capacity() {
        // "Roughly speaking, there appears to be sufficient capacity among
        // existing devices" — every ratio ≥ 1.
        let s = Assumptions::default().sufficiency();
        assert!(s.bandwidth_tbps >= 1.0);
        assert!(s.cores_millions >= 1.0);
        assert!(s.storage_eb >= 1.0);
        // Bandwidth is the biggest surplus (25×), cores the thinnest (1.25×).
        assert!((s.bandwidth_tbps - 25.0).abs() < 0.01);
        assert!((s.cores_millions - 1.25).abs() < 0.01);
        assert!((s.storage_eb - 2.625).abs() < 0.01);
    }

    #[test]
    fn rendered_table_contains_paper_numbers() {
        let t = render_table3(&Assumptions::default());
        for v in ["200", "5000", "400", "500", "80", "210"] {
            assert!(t.contains(v), "missing {v} in:\n{t}");
        }
    }

    #[test]
    fn battery_inclusion_raises_cores() {
        let a = Assumptions {
            battery_devices_compute: true,
            ..Assumptions::default()
        };
        let with = a.user_devices().cores_millions;
        let without = Assumptions::default().user_devices().cores_millions;
        assert!(with > without);
    }

    #[test]
    fn duty_cycle_discount_flips_the_conclusion_for_cores() {
        // §5.2 made quantitative: at realistic duty cycles, compute no
        // longer clears the bar even though raw counts did.
        let a = Assumptions::default();
        let eff = a.effective_user_devices(0.45, 0.3);
        let cloud = a.cloud();
        assert!(
            eff.cores_millions < cloud.cores_millions,
            "effective cores {} vs cloud {}",
            eff.cores_millions,
            cloud.cores_millions
        );
        // Bandwidth surplus is large enough to survive the discount.
        assert!(eff.bandwidth_tbps > cloud.bandwidth_tbps);
    }

    #[test]
    fn duty_cycle_one_is_identity() {
        let a = Assumptions::default();
        let raw = a.user_devices();
        let eff = a.effective_user_devices(1.0, 1.0);
        assert!((raw.bandwidth_tbps - eff.bandwidth_tbps).abs() < 1e-9);
        assert!((raw.cores_millions - eff.cores_millions).abs() < 1e-9);
        assert!((raw.storage_eb - eff.storage_eb).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_monotonicity() {
        let rows = sensitivity_sweep(&[0.5, 1.0, 2.0]);
        // Doubling uplink doubles the bandwidth ratio.
        let bw = |f: f64| {
            rows.iter()
                .find(|r| r.assumption == "uplink_mbps" && r.factor == f)
                .unwrap()
                .sufficiency
                .bandwidth_tbps
        };
        assert!((bw(2.0) / bw(1.0) - 2.0).abs() < 1e-9);
        assert!((bw(0.5) / bw(1.0) - 0.5).abs() < 1e-9);
        // Halving the derate doubles the core ratio.
        let cores = |f: f64| {
            rows.iter()
                .find(|r| r.assumption == "pc_core_derate" && r.factor == f)
                .unwrap()
                .sufficiency
                .cores_millions
        };
        assert!((cores(0.5) / cores(1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn google_share_cancels_in_bandwidth() {
        // Cloud bandwidth = traffic × share ÷ share = traffic; the share
        // assumption only moves cores and storage.
        let a = Assumptions {
            google_traffic_share: 0.5,
            ..Assumptions::default()
        };
        assert_eq!(a.cloud().bandwidth_tbps, 200.0);
        assert_eq!(a.cloud().cores_millions, 200.0);
    }
}

//! Baseline snapshots and regression diffs.
//!
//! The harness's JSON artifact is deterministic, so regression detection is
//! a structural diff: walk baseline and current trees together, compare
//! numbers within a relative tolerance, and report added/removed/changed
//! paths. The checked-in snapshot (`BENCH_harness.json`) is the contract a
//! PR must either preserve or consciously update (`--update-baseline`).

use crate::json::Json;

/// One difference between baseline and current artifacts.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffEntry {
    /// Path exists only in the baseline.
    Removed(String),
    /// Path exists only in the current artifact.
    Added(String),
    /// Numeric value moved beyond tolerance: (path, baseline, current).
    Changed(String, f64, f64),
    /// Non-numeric value differs: (path, baseline, current) rendered.
    Replaced(String, String, String),
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffEntry::Removed(p) => write!(f, "- {p} (removed)"),
            DiffEntry::Added(p) => write!(f, "+ {p} (added)"),
            DiffEntry::Changed(p, b, c) => {
                let rel = if b.abs() > f64::EPSILON {
                    (c - b) / b.abs() * 100.0
                } else {
                    f64::INFINITY
                };
                write!(f, "~ {p}: {b} -> {c} ({rel:+.3}%)")
            }
            DiffEntry::Replaced(p, b, c) => write!(f, "~ {p}: {b} -> {c}"),
        }
    }
}

/// Compare two artifacts. Numbers are equal when
/// `|current - baseline| <= tolerance * max(1, |baseline|)` — relative for
/// large magnitudes, absolute near zero. Everything else must match
/// exactly. Returns an empty vec when the artifacts agree.
pub fn diff_json(baseline: &Json, current: &Json, tolerance: f64) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    walk(baseline, current, "$", tolerance, &mut out);
    out
}

fn walk(b: &Json, c: &Json, path: &str, tol: f64, out: &mut Vec<DiffEntry>) {
    match (b, c) {
        (Json::Num(bv), Json::Num(cv)) => {
            let scale = bv.abs().max(1.0);
            if (cv - bv).abs() > tol * scale {
                out.push(DiffEntry::Changed(path.to_owned(), *bv, *cv));
            }
        }
        (Json::Obj(bp), Json::Obj(cp)) => {
            for (k, bv) in bp {
                match c.get(k) {
                    Some(cv) => walk(bv, cv, &format!("{path}.{k}"), tol, out),
                    None => out.push(DiffEntry::Removed(format!("{path}.{k}"))),
                }
            }
            for (k, _) in cp {
                if b.get(k).is_none() {
                    out.push(DiffEntry::Added(format!("{path}.{k}")));
                }
            }
        }
        (Json::Arr(ba), Json::Arr(ca)) => {
            for (i, (bv, cv)) in ba.iter().zip(ca.iter()).enumerate() {
                walk(bv, cv, &format!("{path}[{i}]"), tol, out);
            }
            for i in ca.len()..ba.len() {
                out.push(DiffEntry::Removed(format!("{path}[{i}]")));
            }
            for i in ba.len()..ca.len() {
                out.push(DiffEntry::Added(format!("{path}[{i}]")));
            }
        }
        (b, c) if b == c => {}
        (b, c) => out.push(DiffEntry::Replaced(path.to_owned(), compact(b), compact(c))),
    }
}

fn compact(v: &Json) -> String {
    let rendered = v.render();
    let mut s = rendered.split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 60 {
        s.truncate(57);
        s.push_str("...");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num_obj(pairs: &[(&str, f64)]) -> Json {
        let mut o = Json::obj();
        for (k, v) in pairs {
            o.set(k, Json::Num(*v));
        }
        o
    }

    #[test]
    fn identical_artifacts_diff_empty() {
        let a = num_obj(&[("x", 1.0), ("y", 2.5)]);
        assert!(diff_json(&a, &a.clone(), 1e-9).is_empty());
    }

    #[test]
    fn tolerance_is_relative_for_large_values() {
        let a = num_obj(&[("x", 1_000_000.0)]);
        let b = num_obj(&[("x", 1_000_000.5)]);
        assert!(diff_json(&a, &b, 1e-6).is_empty());
        assert_eq!(diff_json(&a, &b, 1e-9).len(), 1);
    }

    #[test]
    fn tolerance_is_absolute_near_zero() {
        let a = num_obj(&[("x", 0.0)]);
        let b = num_obj(&[("x", 1e-12)]);
        assert!(diff_json(&a, &b, 1e-9).is_empty());
        let c = num_obj(&[("x", 0.5)]);
        assert_eq!(diff_json(&a, &c, 1e-9).len(), 1);
    }

    #[test]
    fn added_and_removed_keys_are_reported() {
        let a = num_obj(&[("gone", 1.0), ("kept", 2.0)]);
        let b = num_obj(&[("kept", 2.0), ("new", 3.0)]);
        let d = diff_json(&a, &b, 1e-9);
        assert!(d.contains(&DiffEntry::Removed("$.gone".to_owned())));
        assert!(d.contains(&DiffEntry::Added("$.new".to_owned())));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn type_changes_are_replacements() {
        let mut a = Json::obj();
        a.set("x", Json::Str("hello".to_owned()));
        let b = num_obj(&[("x", 1.0)]);
        let d = diff_json(&a, &b, 1e-9);
        assert!(matches!(&d[0], DiffEntry::Replaced(p, _, _) if p == "$.x"));
    }

    #[test]
    fn array_length_changes_are_reported() {
        let a = Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]);
        let b = Json::Arr(vec![Json::Num(1.0)]);
        let d = diff_json(&a, &b, 1e-9);
        assert_eq!(d, vec![DiffEntry::Removed("$[1]".to_owned())]);
    }
}

//! A minimal, dependency-free JSON value with a deterministic serializer
//! and a strict parser.
//!
//! The harness needs byte-identical artifacts for its determinism guarantee,
//! so the serializer is fully specified: objects keep insertion order (the
//! harness always inserts in sorted/stable order), arrays keep element
//! order, floats render via Rust's shortest-round-trip `Display` (never
//! scientific notation), and indentation is two spaces. The parser reads
//! back what we emit plus standard JSON (escapes, exponents) for
//! hand-edited baselines.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (and serialized).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on non-object")
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_owned(), value));
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline — the byte
    /// format of every artifact the harness writes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no whitespace — the JSONL form used by
    /// trace artifacts, one value per line. Same deterministic number and
    /// escape rules as [`Json::render`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    /// Errors carry the 1-based line and column of the offending byte.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos).map_err(|e| e.locate(bytes))?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing input").locate(bytes));
        }
        Ok(value)
    }

    /// As [`Json::parse`], but errors are prefixed with `source` (a file
    /// name or similar provenance label) so a failure names the artifact
    /// it came from, not just a position.
    pub fn parse_named(source: &str, input: &str) -> Result<Json, String> {
        Json::parse(input).map_err(|e| format!("{source}: {e}"))
    }

    /// Object field lookup that names the missing field (and the fields
    /// that *are* present) on failure, for digging into artifacts.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| match self {
            Json::Obj(pairs) => {
                let have: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                format!("missing field '{key}' (object has: {})", have.join(", "))
            }
            other => format!(
                "missing field '{key}': not an object ({})",
                type_name(other)
            ),
        })
    }
}

/// Read and parse a JSON file; every failure mode names the file.
pub fn read_json_file(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse_named(path, &text)
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// A parse failure at a byte offset, resolved to line/column on exit.
struct ParseError {
    offset: usize,
    what: String,
}

impl ParseError {
    fn at(offset: usize, what: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            what: what.into(),
        }
    }

    /// Render with the 1-based line and column of `offset` in `bytes`.
    fn locate(self, bytes: &[u8]) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in bytes.iter().take(self.offset) {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("line {line}, column {col}: {}", self.what)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Deterministic number rendering: integers (within f64's exact range) have
/// no fraction; everything else uses Rust's shortest-round-trip `Display`,
/// which never emits scientific notation. Non-finite values become `null`.
fn write_num(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Render the byte at the error position for a message: `'x'`, or
/// "end of input" when the input ran out.
fn found(b: Option<&u8>) -> String {
    match b {
        Some(&b) => format!("'{}'", b as char),
        None => "end of input".to_string(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::at(
            *pos,
            format!("expected '{}', found {}", b as char, found(bytes.get(*pos))),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => {
                        return Err(ParseError::at(
                            *pos,
                            format!("expected ',' or ']', found {}", found(other)),
                        ))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => {
                        return Err(ParseError::at(
                            *pos,
                            format!("expected ',' or '}}', found {}", found(other)),
                        ))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(
            *pos,
            format!("invalid literal (expected '{lit}')"),
        ))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|e| ParseError::at(*pos, e.to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| ParseError::at(*pos, e.to_string()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(ParseError::at(*pos, format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // `pos` always sits on a char boundary (we advance by whole
                // scalars), so re-validating the tail is infallible.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| ParseError::at(*pos, e.to_string()))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(ParseError::at(start, "expected a value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| ParseError::at(start, e.to_string()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| ParseError::at(start, format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut obj = Json::obj();
        obj.set("schema", Json::Num(1.0));
        obj.set("name", Json::Str("agora \"quoted\" \n".to_owned()));
        obj.set(
            "values",
            Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(true)]),
        );
        let mut inner = Json::obj();
        inner.set("empty_arr", Json::Arr(vec![]));
        inner.set("empty_obj", Json::obj());
        obj.set("inner", inner);
        let text = obj.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, obj);
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_num(&mut s, -0.125);
        assert_eq!(s, "-0.125");
        s.clear();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn parses_standard_json_extras() {
        let v = Json::parse(r#"{"a": 1e3, "b": "xAy", "c": [ ]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("xAy"));
        assert_eq!(v.get("c"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = Json::parse("{\n  \"a\": 1,\n  \"b\": !\n}").unwrap_err();
        assert_eq!(err, "line 3, column 8: expected a value");
        let err = Json::parse_named("BENCH_x.json", "{\"a\" 1}").unwrap_err();
        assert!(err.starts_with("BENCH_x.json: line 1, column 6"), "{err}");
    }

    #[test]
    fn require_names_the_field_and_the_neighbourhood() {
        let v = Json::parse(r#"{"have": 1, "also": 2}"#).unwrap();
        assert_eq!(v.require("have").map(|j| j.as_f64()), Ok(Some(1.0)));
        let err = v.require("missing").unwrap_err();
        assert!(
            err.contains("'missing'") && err.contains("have, also"),
            "{err}"
        );
        let err = Json::Num(3.0).require("x").unwrap_err();
        assert!(err.contains("not an object (number)"), "{err}");
    }

    #[test]
    fn read_json_file_names_the_file() {
        let err = read_json_file("/nonexistent/agora.json").unwrap_err();
        assert!(err.starts_with("/nonexistent/agora.json: "), "{err}");
    }

    #[test]
    fn compact_render_roundtrips_and_is_single_line() {
        let mut obj = Json::obj();
        obj.set("type", Json::Str("event".to_owned()));
        obj.set("key", Json::Str("0x0000001e".to_owned()));
        obj.set("vals", Json::Arr(vec![Json::Num(1.0), Json::Null]));
        let mut inner = Json::obj();
        inner.set("n", Json::Num(2.5));
        obj.set("inner", inner);
        let line = obj.render_compact();
        assert!(!line.contains('\n') && !line.contains(' '));
        assert_eq!(
            line,
            r#"{"type":"event","key":"0x0000001e","vals":[1,null],"inner":{"n":2.5}}"#
        );
        assert_eq!(Json::parse(&line).expect("parse back"), obj);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::obj();
        obj.set("k", Json::Num(1.0));
        obj.set("k", Json::Num(2.0));
        assert_eq!(obj.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(obj.render().matches("\"k\"").count(), 1);
    }

    #[test]
    fn render_is_stable_bytes() {
        let mut obj = Json::obj();
        obj.set("b", Json::Num(2.0));
        obj.set("a", Json::Num(1.0));
        // Insertion order, not alphabetical — callers control ordering.
        assert_eq!(obj.render(), "{\n  \"b\": 2,\n  \"a\": 1\n}\n");
    }
}

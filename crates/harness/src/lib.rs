//! `agora-harness` — parallel, deterministic experiment orchestration.
//!
//! The experiment suite in `agora::experiments` runs one trial at a time.
//! This crate turns it into a **trial matrix** — experiment × variant ×
//! seed — executed across OS threads by a small in-repo work-stealing pool
//! ([`pool`]), with:
//!
//! * **Deterministic seed derivation** ([`matrix::trial_seed`]): every trial
//!   gets an independent RNG stream derived from the root seed and its trial
//!   index via the xoshiro/splitmix implementation in `agora-sim`, so the
//!   schedule (thread count, steal order) never changes any result.
//! * **Panic isolation**: each trial runs under `catch_unwind`; a panicking
//!   experiment becomes a recorded failure, not a lost run.
//! * **Structured telemetry**: trials report `agora_sim::Metrics` (counters,
//!   gauges, histograms); trial wall-clock times stream into a
//!   `P2Quantile` sketch for the human report.
//! * **Order-independent aggregation**: outcomes are merged by trial index,
//!   serialized to JSON by the in-repo serializer ([`json`]), and are
//!   byte-identical regardless of worker count.
//! * **Regression baselines** ([`baseline`]): the JSON artifact diffs
//!   against a checked-in `BENCH_harness.json` with a relative tolerance,
//!   so perf/behaviour drift fails loudly in CI.
//! * **Tracing & provenance** ([`trace`], feature `trace`, default-on):
//!   `--trace <target>` replays one trial with the engine flight recorder
//!   installed and writes a deterministic, CI-diffable `TRACE_*.jsonl`;
//!   `--explain <metric>` walks a recorded sample's causal chain back to
//!   the external injection that started it.
//! * **Ops plane** ([`observe`], feature `observe`, default-on):
//!   `--observe <target>` replays one trial with the `agora-observer`
//!   signal probes installed and streams a deterministic, CI-diffable
//!   `OBS_*.jsonl` of cadence frames and anomaly-detector firings;
//!   `--watch` adds a wall-clock heartbeat on stderr (never in artifacts).
//!
//! The `agora-harness` binary (src/main.rs) drives all of this from the
//! command line; `agora-harness --reports` regenerates the classic
//! `experiments_output.txt` report stream.

pub mod baseline;
pub mod json;
pub mod matrix;
#[cfg(feature = "observe")]
pub mod observe;
pub mod perf;
pub mod pool;
pub mod registry;
pub mod report;
#[cfg(feature = "trace")]
pub mod trace;
pub mod watch;

pub use baseline::{diff_json, DiffEntry};
pub use json::{read_json_file, Json};
pub use matrix::{
    run_matrix, run_to_json, trial_seed, MatrixConfig, MatrixRun, TrialOutcome, TrialSpec,
    TrialStatus,
};
pub use perf::{
    perf_to_json, perf_to_json_scaled, perf_to_json_with, PhaseProfiler, COHORT_ERROR_POPULATION,
};
pub use registry::{registry, ExperimentDef, Variant};

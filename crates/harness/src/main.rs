//! `agora-harness` — run the experiment trial matrix in parallel, emit the
//! JSON telemetry artifact, and diff it against the checked-in baseline.
//!
//! Usage (from the repo root):
//!   agora-harness                         # run matrix, diff BENCH_harness.json
//!   agora-harness --update-baseline       # run matrix, rewrite the baseline
//!   agora-harness --threads 1 --json out.json
//!   agora-harness --shards 4              # sharded engine inside each trial
//!   agora-harness --filter e1,e3 --seeds 5
//!   agora-harness --filter e16p/p10k  # one variant of one experiment
//!   agora-harness --perf BENCH_perf.json   # also write wall-clock artifact
//!   agora-harness --speedup               # measure serial vs parallel wall clock
//!   agora-harness --reports               # classic experiments_output.txt stream
//!   agora-harness --trace dht             # replay one trial, write TRACE_dht.jsonl
//!   agora-harness --trace e3/f0.20 --explain e3.downtime_secs
//!   agora-harness --validate-trace TRACE_dht.jsonl
//!   agora-harness --observe e16/p10k      # replay one trial, write OBS_e16_p10k.jsonl
//!   agora-harness --observe e16/p1m --explain anomaly.overload
//!   agora-harness --validate-obs OBS_e16_p10k.jsonl
//!   agora-harness --watch                 # wall-clock heartbeat on stderr
//!
//! Exit codes: 0 ok; 1 usage error; 2 baseline regression; 3 trial panics.

use std::process::ExitCode;
use std::time::Duration;

use agora_harness::{
    diff_json, perf_to_json_with, read_json_file, registry, report, run_matrix, run_to_json,
    MatrixConfig, PhaseProfiler,
};

struct Options {
    cfg: MatrixConfig,
    baseline: String,
    json_out: Option<String>,
    perf_out: Option<String>,
    tolerance: f64,
    update_baseline: bool,
    speedup: bool,
    reports: bool,
    trace: Option<String>,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_out: Option<String>,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_cap: Option<usize>,
    explain: Option<String>,
    validate_trace: Option<String>,
    observe: Option<String>,
    #[cfg_attr(not(feature = "observe"), allow(dead_code))]
    observe_out: Option<String>,
    #[cfg_attr(not(feature = "observe"), allow(dead_code))]
    observe_cadence_secs: Option<u64>,
    validate_obs: Option<String>,
    watch: bool,
}

/// Handle `--trace`, `--explain`, and `--validate-trace`.
#[cfg(feature = "trace")]
fn run_trace_mode(opts: &Options) -> ExitCode {
    use agora_harness::trace;

    if let Some(path) = &opts.validate_trace {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("agora-harness: reading {path}: {e}");
                return ExitCode::from(1);
            }
        };
        return match trace::validate_jsonl(&text) {
            Ok(s) => {
                println!("{path}: OK ({} event(s), {} span(s))", s.events, s.spans);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("agora-harness: {path}: {e}");
                ExitCode::from(2)
            }
        };
    }

    // `--explain` without `--trace` explains the DHT provenance scenario.
    let target = opts.trace.clone().unwrap_or_else(|| "dht".to_owned());
    let cap = opts
        .trace_cap
        .unwrap_or(agora_sim::trace::DEFAULT_RING_CAPACITY);
    let run = match trace::run_trace_target(&registry(), &opts.cfg, &target, cap) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("agora-harness: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "traced {}/{} (seed {}): {} event(s) retained, {} evicted, {} span(s)",
        run.target,
        run.variant,
        run.seed,
        run.recorder.len(),
        run.recorder.evicted(),
        run.recorder.spans().count()
    );
    let out_path = opts
        .trace_out
        .clone()
        .unwrap_or_else(|| format!("TRACE_{}.jsonl", target.replace('/', "_")));
    if let Err(e) = std::fs::write(&out_path, trace::trace_to_jsonl(&run)) {
        eprintln!("agora-harness: writing {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote trace artifact to {out_path} (deterministic; safe to diff in CI)");

    if let Some(metric) = &opts.explain {
        match trace::explain_metric(&run.recorder, metric) {
            Some(ex) => {
                print!("{}", ex.text);
                println!("(resolved causal depth: {})", ex.depth);
            }
            None => {
                eprintln!("agora-harness: no recorded sample for metric '{metric}' in this trace");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Handle `--observe` and `--validate-obs`.
#[cfg(feature = "observe")]
fn run_observe_mode(opts: &Options) -> ExitCode {
    use agora_harness::observe;
    use std::cell::{Cell, RefCell};
    use std::io::Write;
    use std::rc::Rc;

    if let Some(path) = &opts.validate_obs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("agora-harness: reading {path}: {e}");
                return ExitCode::from(1);
            }
        };
        return match observe::validate_obs_jsonl(&text) {
            Ok(s) => {
                println!(
                    "{path}: OK ({} sim(s), {} frame(s), {} anomaly record(s))",
                    s.sims, s.frames, s.anomalies
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("agora-harness: {path}: {e}");
                ExitCode::from(2)
            }
        };
    }

    let target = opts
        .observe
        .clone()
        .expect("observe dispatch needs a target");
    #[cfg(not(feature = "trace"))]
    if opts.explain.is_some() {
        eprintln!(
            "agora-harness: --explain alongside --observe needs the 'trace' feature \
             (the causal walk reads the flight recorder)"
        );
        return ExitCode::from(1);
    }
    #[cfg(feature = "trace")]
    let trace_ring = opts.explain.as_ref().map(|_| {
        opts.trace_cap
            .unwrap_or(agora_sim::trace::DEFAULT_RING_CAPACITY)
    });
    #[cfg(not(feature = "trace"))]
    let trace_ring = None;

    let mut obs_cfg = agora_observer::ObserverConfig::default();
    if let Some(secs) = opts.observe_cadence_secs {
        if secs == 0 {
            eprintln!("agora-harness: --observe-cadence must be >= 1 (seconds)");
            return ExitCode::from(1);
        }
        obs_cfg.cadence = agora_sim::SimDuration::from_secs(secs);
    }

    let out_path = opts
        .observe_out
        .clone()
        .unwrap_or_else(|| format!("OBS_{}.jsonl", target.replace('/', "_")));
    let file = match std::fs::File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("agora-harness: creating {out_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let writer = Rc::new(RefCell::new(std::io::BufWriter::new(file)));
    let write_failed = Rc::new(Cell::new(false));
    let sink_writer = Rc::clone(&writer);
    let sink_failed = Rc::clone(&write_failed);
    // Each record is flushed as soon as the observer emits it, so a long
    // run's artifact is `tail -f`-able and survives a mid-run interrupt.
    let sink = Box::new(move |line: &str| {
        let mut w = sink_writer.borrow_mut();
        if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
            sink_failed.set(true);
        }
    });

    let _watch = opts
        .watch
        .then(|| agora_harness::watch::start(1, Duration::from_secs(2)));
    let run = match observe::run_observe_target(
        &registry(),
        &opts.cfg,
        &target,
        obs_cfg,
        trace_ring,
        sink,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("agora-harness: {e}");
            return ExitCode::from(1);
        }
    };
    agora_harness::watch::trial_finished();
    drop(writer);
    if write_failed.get() {
        eprintln!("agora-harness: writing {out_path} failed mid-stream");
        return ExitCode::from(1);
    }
    println!(
        "observed {}/{} (seed {}): {} sim(s), {} frame(s), {} anomaly record(s)",
        run.target,
        run.variant,
        run.seed,
        run.summary.sims,
        run.summary.frames,
        run.summary.anomalies.values().sum::<u64>()
    );
    println!("wrote observe artifact to {out_path} (deterministic; safe to diff in CI)");

    #[cfg(feature = "trace")]
    if let Some(metric) = &opts.explain {
        let rec = run.recorder.as_ref().expect("ring installed for --explain");
        match agora_harness::trace::explain_metric(rec, metric) {
            Some(ex) => {
                print!("{}", ex.text);
                println!("(resolved causal depth: {})", ex.depth);
            }
            None => {
                eprintln!("agora-harness: no recorded sample for metric '{metric}' in this run");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(not(feature = "observe"))]
fn run_observe_mode(_opts: &Options) -> ExitCode {
    eprintln!(
        "agora-harness: --observe/--validate-obs require the 'observe' feature; \
         this binary was built with --no-default-features"
    );
    ExitCode::from(1)
}

#[cfg(not(feature = "trace"))]
fn run_trace_mode(_opts: &Options) -> ExitCode {
    eprintln!(
        "agora-harness: --trace/--explain/--validate-trace require the 'trace' feature; \
         this binary was built with --no-default-features"
    );
    ExitCode::from(1)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        cfg: MatrixConfig::default(),
        baseline: "BENCH_harness.json".to_owned(),
        json_out: None,
        perf_out: None,
        tolerance: 1e-9,
        update_baseline: false,
        speedup: false,
        reports: false,
        trace: None,
        trace_out: None,
        trace_cap: None,
        explain: None,
        validate_trace: None,
        observe: None,
        observe_out: None,
        observe_cadence_secs: None,
        validate_obs: None,
        watch: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--threads" => {
                opts.cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--shards" => {
                opts.cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if opts.cfg.shards == 0 {
                    return Err("--shards must be >= 1".to_owned());
                }
            }
            "--seeds" => {
                opts.cfg.seeds_per_variant = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--root-seed" => {
                opts.cfg.root_seed = value("--root-seed")?
                    .parse()
                    .map_err(|e| format!("--root-seed: {e}"))?
            }
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
                opts.cfg.budget = Duration::from_secs(secs);
            }
            "--filter" => {
                opts.cfg.filter = Some(
                    value("--filter")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--baseline" => opts.baseline = value("--baseline")?,
            "--json" => opts.json_out = Some(value("--json")?),
            "--perf" => opts.perf_out = Some(value("--perf")?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--trace" => opts.trace = Some(value("--trace")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-cap" => {
                opts.trace_cap = Some(
                    value("--trace-cap")?
                        .parse()
                        .map_err(|e| format!("--trace-cap: {e}"))?,
                )
            }
            "--explain" => opts.explain = Some(value("--explain")?),
            "--validate-trace" => opts.validate_trace = Some(value("--validate-trace")?),
            "--observe" => opts.observe = Some(value("--observe")?),
            "--observe-out" => opts.observe_out = Some(value("--observe-out")?),
            "--observe-cadence" => {
                opts.observe_cadence_secs = Some(
                    value("--observe-cadence")?
                        .parse()
                        .map_err(|e| format!("--observe-cadence: {e}"))?,
                )
            }
            "--validate-obs" => opts.validate_obs = Some(value("--validate-obs")?),
            "--watch" => opts.watch = true,
            "--update-baseline" => opts.update_baseline = true,
            "--speedup" => opts.speedup = true,
            "--reports" => opts.reports = true,
            "--help" | "-h" => {
                return Err("see crate docs / README for usage".to_owned());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

/// Print the classic report stream (the contents of experiments_output.txt)
/// through the harness binary.
fn print_reports() {
    use agora::experiments::{
        e10_federated_failover, e11_guerrilla_relay, e12_moderation_tension, e13_financing_gap,
        e14_usenet_collapse, e15_degradation_sweep, e16_flash_crowd_sweep, e16_policy_sweep,
        e17_market_sweep, e18_app_sweep, e1_naming_tradeoff, e2_naming_attacks,
        e3_groupcomm_availability, e4_privacy, e5_storage_proofs, e6_durability,
        e7_web_availability, e8_quality_vs_quantity, e9_chain_costs, t1_taxonomy,
        t2_storage_systems, t3_feasibility,
    };
    const SEED: u64 = 20171130; // HotNets-XVI, day one
    println!("{}\n", t1_taxonomy());
    println!("{}\n", t2_storage_systems());
    println!("{}\n", t3_feasibility());
    println!("{}\n", e1_naming_tradeoff(SEED).1);
    println!("{}\n", e2_naming_attacks(SEED).1);
    for f in [0.0, 0.2, 0.4] {
        println!("{}\n", e3_groupcomm_availability(SEED, f).1);
    }
    println!("{}\n", e4_privacy(SEED).1);
    println!("{}\n", e5_storage_proofs(SEED).1);
    println!("{}\n", e6_durability(SEED).1);
    println!("{}\n", e7_web_availability(SEED).1);
    println!("{}\n", e8_quality_vs_quantity(SEED).1);
    println!("{}\n", e9_chain_costs(SEED).1);
    println!("{}\n", e10_federated_failover(SEED).1);
    println!("{}\n", e11_guerrilla_relay(SEED).1);
    println!("{}\n", e12_moderation_tension(SEED).1);
    println!("{}\n", e13_financing_gap(SEED).1);
    println!("{}\n", e14_usenet_collapse(SEED).1);
    println!("{}\n", e15_degradation_sweep(SEED).1);
    println!("{}\n", e16_flash_crowd_sweep(SEED).1);
    println!("{}\n", e16_policy_sweep(SEED).1);
    println!("{}\n", e17_market_sweep(SEED).1);
    println!("{}\n", e18_app_sweep(SEED).1);
    println!("{}", agora::render_property_matrix());
    println!("{}", agora::naming_zooko_table());
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("agora-harness: {msg}");
            return ExitCode::from(1);
        }
    };

    if opts.reports {
        print_reports();
        return ExitCode::SUCCESS;
    }

    // Observe mode wins when both could apply: `--observe X --explain M`
    // explains M against the observed run's recording, not a trace replay.
    if opts.observe.is_some() || opts.validate_obs.is_some() {
        return run_observe_mode(&opts);
    }

    if opts.trace.is_some() || opts.explain.is_some() || opts.validate_trace.is_some() {
        return run_trace_mode(&opts);
    }

    let reg = registry();

    let _watch = opts.watch.then(|| {
        let trials = agora_harness::matrix::build_trials(&reg, &opts.cfg).len();
        let total = if opts.speedup { trials * 2 } else { trials };
        agora_harness::watch::start(total, Duration::from_secs(2))
    });

    if opts.speedup {
        let serial_cfg = MatrixConfig {
            threads: 1,
            ..opts.cfg.clone()
        };
        let serial = run_matrix(&reg, &serial_cfg);
        let parallel = run_matrix(&reg, &opts.cfg);
        let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
        println!(
            "serial   ({} thread):  {:>7.2} s",
            1,
            serial.wall.as_secs_f64()
        );
        println!(
            "parallel ({} threads): {:>7.2} s",
            parallel.config.threads,
            parallel.wall.as_secs_f64()
        );
        println!("speedup: {speedup:.2}x");
        let identical = run_to_json(&serial).render() == run_to_json(&parallel).render();
        println!(
            "artifacts byte-identical across thread counts: {}",
            if identical {
                "yes"
            } else {
                "NO — determinism bug"
            }
        );
        return if identical {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }

    let mut prof = PhaseProfiler::new();
    let run = prof.time("matrix", || run_matrix(&reg, &opts.cfg));
    print!("{}", prof.time("report_render", || report::render(&run)));
    let (artifact, rendered) = prof.time("artifact_render", || {
        let artifact = run_to_json(&run);
        let rendered = artifact.render();
        (artifact, rendered)
    });

    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("agora-harness: writing {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote artifact to {path}");
    }

    if let Some(path) = &opts.perf_out {
        let perf = perf_to_json_with(&run, prof).render();
        if let Err(e) = std::fs::write(path, &perf) {
            eprintln!("agora-harness: writing {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote wall-clock perf artifact to {path} (not diffed in CI)");
    }

    if run.failures() > 0 {
        eprintln!("agora-harness: {} trial(s) panicked", run.failures());
        return ExitCode::from(3);
    }

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&opts.baseline, &rendered) {
            eprintln!("agora-harness: writing {}: {e}", opts.baseline);
            return ExitCode::from(1);
        }
        println!("baseline updated: {}", opts.baseline);
        return ExitCode::SUCCESS;
    }

    if std::path::Path::new(&opts.baseline).exists() {
        let baseline = match read_json_file(&opts.baseline) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("agora-harness: invalid baseline: {e}");
                return ExitCode::from(1);
            }
        };
        let diffs = diff_json(&baseline, &artifact, opts.tolerance);
        if diffs.is_empty() {
            println!(
                "baseline check: OK ({} within tolerance {})",
                opts.baseline, opts.tolerance
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "baseline REGRESSION vs {} ({} difference(s), tolerance {}):",
                opts.baseline,
                diffs.len(),
                opts.tolerance
            );
            for d in diffs.iter().take(50) {
                eprintln!("  {d}");
            }
            if diffs.len() > 50 {
                eprintln!("  ... and {} more", diffs.len() - 50);
            }
            eprintln!("(intentional change? re-run with --update-baseline)");
            ExitCode::from(2)
        }
    } else {
        println!(
            "no baseline at {}; run with --update-baseline to create one",
            opts.baseline
        );
        ExitCode::SUCCESS
    }
}

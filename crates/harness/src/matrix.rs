//! The trial matrix: experiment × variant × seed, executed in parallel with
//! per-trial panic isolation, then aggregated order-independently.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use agora_sim::{Metrics, SimRng};

use crate::json::Json;
use crate::pool;
use crate::registry::ExperimentDef;

/// Matrix run configuration.
#[derive(Clone, Debug)]
pub struct MatrixConfig {
    /// Root seed; every trial seed derives from this and the trial index.
    pub root_seed: u64,
    /// Trials per variant (distinct derived seeds).
    pub seeds_per_variant: u32,
    /// Worker threads. Never changes any output, only wall-clock time.
    pub threads: usize,
    /// Engine shards per trial (`--shards N`). Applied to every simulation a
    /// trial constructs, via [`agora_sim::with_shards`]. Like `threads`,
    /// this never changes any output — the sharded engine is byte-identical
    /// to the serial one — it only changes how event-queue work is spread
    /// across cores *within* one trial.
    pub shards: u32,
    /// Per-trial wall-clock budget. Exceeding it cannot abort a running
    /// trial (threads are not preemptible) but flags it in the human
    /// report so runaway experiments are visible.
    pub budget: Duration,
    /// When set, run only experiments whose id is listed.
    pub filter: Option<Vec<String>>,
}

impl Default for MatrixConfig {
    fn default() -> MatrixConfig {
        MatrixConfig {
            root_seed: 20171130, // HotNets-XVI, day one
            seeds_per_variant: 3,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 1,
            budget: Duration::from_secs(120),
            filter: None,
        }
    }
}

/// Identity of one trial in the matrix.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Position in the matrix (also the aggregation merge key).
    pub index: usize,
    /// Experiment id.
    pub experiment: &'static str,
    /// Variant label.
    pub variant: &'static str,
    /// Seed ordinal within the variant.
    pub seed_ordinal: u32,
    /// The derived seed the trial ran with.
    pub seed: u64,
}

/// How a trial ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialStatus {
    /// Completed and reported metrics.
    Ok,
    /// Panicked; the payload message is retained.
    Panicked(String),
}

/// One completed trial.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// Which trial this was.
    pub spec: TrialSpec,
    /// Completion status.
    pub status: TrialStatus,
    /// Reported metrics (empty when panicked).
    pub metrics: Metrics,
    /// Measured wall-clock time (excluded from the JSON artifact — it is
    /// the one non-deterministic field).
    pub elapsed: Duration,
}

/// A completed matrix run.
pub struct MatrixRun {
    /// Configuration it ran under.
    pub config: MatrixConfig,
    /// Outcomes in trial-index order, regardless of scheduling.
    pub outcomes: Vec<TrialOutcome>,
    /// Total wall-clock time of the parallel section.
    pub wall: Duration,
}

/// Derive the seed for trial `index` from the root seed using the xoshiro /
/// splitmix streams in `agora-sim`. Each trial's stream is independent of
/// every other's, and the derivation depends only on `(root, index)` — not
/// on scheduling — which is what makes thread count output-invariant.
pub fn trial_seed(root: u64, index: u64) -> u64 {
    SimRng::new(root).fork(index).next_u64()
}

/// Uniform seeded entry point of one trial (same shape as
/// [`crate::registry::Variant::run`]).
pub type TrialRunner = fn(u64) -> Metrics;

/// Whether one filter entry selects `(experiment, variant)`: a bare
/// experiment id ("e16") selects every variant; "e16p/p10k"
/// selects exactly one.
fn filter_selects(entry: &str, experiment: &str, variant: &str) -> bool {
    match entry.split_once('/') {
        Some((id, label)) => id == experiment && label == variant,
        None => entry == experiment,
    }
}

/// Expand the registry into the trial list for a config.
pub fn build_trials(
    registry: &[ExperimentDef],
    cfg: &MatrixConfig,
) -> Vec<(TrialSpec, TrialRunner)> {
    let mut trials = Vec::new();
    for def in registry {
        for variant in &def.variants {
            if let Some(filter) = &cfg.filter {
                if !filter
                    .iter()
                    .any(|f| filter_selects(f, def.id, variant.label))
                {
                    continue;
                }
            }
            for ordinal in 0..cfg.seeds_per_variant {
                let index = trials.len();
                trials.push((
                    TrialSpec {
                        index,
                        experiment: def.id,
                        variant: variant.label,
                        seed_ordinal: ordinal,
                        seed: trial_seed(cfg.root_seed, index as u64),
                    },
                    variant.run,
                ));
            }
        }
    }
    trials
}

/// Run the full matrix for a registry under `cfg`.
pub fn run_matrix(registry: &[ExperimentDef], cfg: &MatrixConfig) -> MatrixRun {
    let trials = build_trials(registry, cfg);
    let started = Instant::now();
    let outcomes = pool::run_indexed(trials.len(), cfg.threads, |i| {
        let (spec, run) = &trials[i];
        let seed = spec.seed;
        let trial_started = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            agora_sim::with_shards(cfg.shards, || run(seed))
        }));
        let elapsed = trial_started.elapsed();
        let (status, metrics) = match caught {
            Ok(metrics) => (TrialStatus::Ok, metrics),
            // `&*payload`: deref the box so we downcast its contents, not
            // the `Box<dyn Any>` itself (which also implements `Any`).
            Err(payload) => (
                TrialStatus::Panicked(panic_message(&*payload)),
                Metrics::new(),
            ),
        };
        crate::watch::trial_finished();
        TrialOutcome {
            spec: spec.clone(),
            status,
            metrics,
            elapsed,
        }
    });
    MatrixRun {
        config: cfg.clone(),
        outcomes,
        wall: started.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl MatrixRun {
    /// Panicked trial count.
    pub fn failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status != TrialStatus::Ok)
            .count()
    }

    /// Trials that blew the per-trial budget.
    pub fn over_budget(&self) -> Vec<&TrialOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.elapsed > self.config.budget)
            .collect()
    }
}

/// Serialize a run to the deterministic JSON artifact.
///
/// Everything in the artifact is a pure function of `(registry, config)` —
/// timings stay out — so two runs with the same config produce identical
/// bytes no matter how many worker threads executed them.
pub fn run_to_json(run: &MatrixRun) -> Json {
    let mut root = Json::obj();
    root.set("schema", Json::Num(1.0));
    root.set("root_seed", Json::Num(run.config.root_seed as f64));
    root.set(
        "seeds_per_variant",
        Json::Num(run.config.seeds_per_variant as f64),
    );

    let mut trials = Vec::with_capacity(run.outcomes.len());
    for outcome in &run.outcomes {
        let mut t = Json::obj();
        t.set("index", Json::Num(outcome.spec.index as f64));
        t.set("experiment", Json::Str(outcome.spec.experiment.to_owned()));
        t.set("variant", Json::Str(outcome.spec.variant.to_owned()));
        t.set("seed_ordinal", Json::Num(outcome.spec.seed_ordinal as f64));
        t.set("seed", Json::Num(outcome.spec.seed as f64));
        t.set(
            "status",
            Json::Str(match &outcome.status {
                TrialStatus::Ok => "ok".to_owned(),
                TrialStatus::Panicked(msg) => format!("panicked: {msg}"),
            }),
        );
        t.set("metrics", metrics_to_json(&outcome.metrics));
        trials.push(t);
    }
    root.set("trials", Json::Arr(trials));
    root.set("aggregates", aggregates_to_json(run));
    root
}

/// Flatten a metrics registry: counters and gauges as flat objects,
/// histograms as summary objects (exact percentiles — trial metrics are
/// bounded; the streaming P² sketch serves the unbounded telemetry paths).
fn metrics_to_json(m: &Metrics) -> Json {
    let mut out = Json::obj();
    let mut counters = Json::obj();
    for (k, v) in m.counters() {
        counters.set(k, Json::Num(v as f64));
    }
    out.set("counters", counters);
    let mut gauges = Json::obj();
    for (k, v) in m.gauges() {
        gauges.set(k, Json::Num(v));
    }
    out.set("gauges", gauges);
    let mut hists = Json::obj();
    for (k, h) in m.histograms() {
        let mut h = h.clone();
        let mut s = Json::obj();
        s.set("count", Json::Num(h.count() as f64));
        s.set("mean", Json::Num(h.mean()));
        s.set("min", Json::Num(h.try_min().unwrap_or(0.0)));
        s.set("max", Json::Num(h.try_max().unwrap_or(0.0)));
        s.set("p50", Json::Num(h.percentile(50.0)));
        s.set("p99", Json::Num(h.percentile(99.0)));
        hists.set(k, s);
    }
    out.set("histograms", hists);
    out
}

/// Cross-seed aggregates per `experiment/variant`: for every metric key,
/// mean/min/max across the variant's seeds. This is the surface the
/// baseline diff walks.
fn aggregates_to_json(run: &MatrixRun) -> Json {
    let mut out = Json::obj();
    // Group outcomes by (experiment, variant), preserving matrix order.
    let mut groups: Vec<((&str, &str), Vec<&TrialOutcome>)> = Vec::new();
    for o in &run.outcomes {
        let key = (o.spec.experiment, o.spec.variant);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(o),
            None => groups.push((key, vec![o])),
        }
    }
    for ((exp, variant), outcomes) in groups {
        let mut agg = Json::obj();
        // Metric keys in BTreeMap order from the first ok outcome; all
        // seeds of a variant emit the same key set.
        let ok: Vec<&&TrialOutcome> = outcomes
            .iter()
            .filter(|o| o.status == TrialStatus::Ok)
            .collect();
        agg.set("trials", Json::Num(outcomes.len() as f64));
        agg.set("ok", Json::Num(ok.len() as f64));
        let mut stats = Json::obj();
        if let Some(first) = ok.first() {
            let keys: Vec<(String, bool)> = first
                .metrics
                .counters()
                .map(|(k, _)| (k.to_owned(), true))
                .chain(first.metrics.gauges().map(|(k, _)| (k.to_owned(), false)))
                .collect();
            for (key, is_counter) in keys {
                let values: Vec<f64> = ok
                    .iter()
                    .map(|o| {
                        if is_counter {
                            o.metrics.counter(&key) as f64
                        } else {
                            o.metrics.gauge(&key)
                        }
                    })
                    .collect();
                let n = values.len() as f64;
                let mut s = Json::obj();
                s.set("mean", Json::Num(values.iter().sum::<f64>() / n));
                s.set(
                    "min",
                    Json::Num(values.iter().copied().fold(f64::INFINITY, f64::min)),
                );
                s.set(
                    "max",
                    Json::Num(values.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                );
                stats.set(&key, s);
            }
        }
        agg.set("metrics", stats);
        out.set(&format!("{exp}/{variant}"), agg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Variant;

    fn toy_registry() -> Vec<ExperimentDef> {
        fn ok_run(seed: u64) -> Metrics {
            let mut m = Metrics::new();
            m.gauge_set("toy.seed_mod", (seed % 97) as f64);
            m.incr("toy.runs", 1);
            m
        }
        fn panicky(seed: u64) -> Metrics {
            panic!("trial seed {seed} exploded");
        }
        vec![
            ExperimentDef {
                id: "toy",
                title: "toy experiment",
                variants: vec![Variant {
                    label: "default",
                    run: ok_run,
                }],
            },
            ExperimentDef {
                id: "panicky",
                title: "sometimes panics",
                variants: vec![Variant {
                    label: "default",
                    run: panicky,
                }],
            },
        ]
    }

    #[test]
    fn trial_seeds_are_independent_and_reproducible() {
        let a = trial_seed(42, 0);
        let b = trial_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, trial_seed(42, 0));
        assert_ne!(a, trial_seed(43, 0));
    }

    #[test]
    fn panics_are_isolated_and_recorded() {
        let cfg = MatrixConfig {
            seeds_per_variant: 4,
            threads: 2,
            ..MatrixConfig::default()
        };
        let run = run_matrix(&toy_registry(), &cfg);
        assert_eq!(run.outcomes.len(), 8);
        let panicked = run
            .outcomes
            .iter()
            .filter(|o| matches!(&o.status, TrialStatus::Panicked(m) if m.contains("exploded")))
            .count();
        assert_eq!(panicked, 4, "every panicky trial is recorded as failed");
        assert_eq!(run.failures(), panicked);
        let ok = run
            .outcomes
            .iter()
            .filter(|o| o.status == TrialStatus::Ok)
            .count();
        assert_eq!(ok, 4, "toy trials are unaffected by panicking neighbours");
        // Trials are ordered by index regardless of scheduling.
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.spec.index, i);
        }
    }

    #[test]
    fn json_is_thread_count_invariant() {
        let registry = toy_registry();
        let mut renders = Vec::new();
        for threads in [1, 3, 8] {
            let cfg = MatrixConfig {
                seeds_per_variant: 5,
                threads,
                ..MatrixConfig::default()
            };
            renders.push(run_to_json(&run_matrix(&registry, &cfg)).render());
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[1], renders[2]);
    }

    #[test]
    fn filter_restricts_experiments() {
        let cfg = MatrixConfig {
            seeds_per_variant: 2,
            filter: Some(vec!["toy".to_owned()]),
            ..MatrixConfig::default()
        };
        let run = run_matrix(&toy_registry(), &cfg);
        assert_eq!(run.outcomes.len(), 2);
        assert!(run.outcomes.iter().all(|o| o.spec.experiment == "toy"));
    }

    #[test]
    fn filter_selects_single_variants() {
        fn ok_run(_seed: u64) -> Metrics {
            Metrics::new()
        }
        let reg = vec![ExperimentDef {
            id: "multi",
            title: "two variants",
            variants: vec![
                Variant {
                    label: "a",
                    run: ok_run,
                },
                Variant {
                    label: "b",
                    run: ok_run,
                },
            ],
        }];
        let cfg = MatrixConfig {
            seeds_per_variant: 2,
            filter: Some(vec!["multi/b".to_owned()]),
            ..MatrixConfig::default()
        };
        let trials = build_trials(&reg, &cfg);
        assert_eq!(trials.len(), 2);
        assert!(trials.iter().all(|(s, _)| s.variant == "b"));
        // Trial seeds are positional within the filtered list, so the
        // variant-filtered run derives them from indices 0..n like any
        // other filter.
        assert_eq!(trials[0].0.seed, trial_seed(cfg.root_seed, 0));
        // A bare id still selects every variant.
        let cfg_all = MatrixConfig {
            seeds_per_variant: 1,
            filter: Some(vec!["multi".to_owned()]),
            ..MatrixConfig::default()
        };
        assert_eq!(build_trials(&reg, &cfg_all).len(), 2);
    }

    #[test]
    fn aggregates_report_cross_seed_stats() {
        let cfg = MatrixConfig {
            seeds_per_variant: 3,
            filter: Some(vec!["toy".to_owned()]),
            ..MatrixConfig::default()
        };
        let json = run_to_json(&run_matrix(&toy_registry(), &cfg));
        let agg = json
            .get("aggregates")
            .and_then(|a| a.get("toy/default"))
            .expect("toy aggregate");
        assert_eq!(agg.get("trials").and_then(Json::as_f64), Some(3.0));
        let runs = agg
            .get("metrics")
            .and_then(|m| m.get("toy.runs"))
            .expect("counter stat");
        assert_eq!(runs.get("mean").and_then(Json::as_f64), Some(1.0));
    }
}

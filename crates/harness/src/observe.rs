//! Harness surface of the `agora-observer` ops plane: run one registry
//! trial with deterministic signal probes installed, stream the observer's
//! record stream as `OBS_<target>.jsonl` lines (header, sim starts, cadence
//! frames, anomaly records, final summary), and validate such artifacts.
//!
//! Like `TRACE_*.jsonl`, OBS artifacts are **wall-clock-free**: every byte
//! is a pure function of `(target, seed, observer config)`, so repeated
//! runs — at any thread or shard count, with or without the `trace`
//! feature — are byte-identical and the files are CI-diffable. Lines are
//! handed to the caller one at a time as they are produced, so the harness
//! can flush each to disk immediately and multi-hour runs are observable
//! mid-flight (`tail -f`). Wall-clock progress belongs to `--watch` on
//! stderr, never in here.

use agora_observer::{
    AnomalyRecord, FrameRecord, ObsRecord, Observer, ObserverConfig, ObserverSummary,
};
use agora_sim::probe::with_thread_probe;
use agora_sim::{Metrics, NodeId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::Json;
use crate::matrix::{build_trials, MatrixConfig};
use crate::registry::ExperimentDef;

/// JSONL schema version for `OBS_*.jsonl`.
pub const OBS_SCHEMA: u32 = 1;

/// Where artifact lines go, one call per line, no trailing newline.
pub type ObsLineSink = Box<dyn FnMut(&str)>;

/// One completed observed trial.
pub struct ObserveRun {
    /// Target id (an experiment id from the registry).
    pub target: String,
    /// Variant label within the target.
    pub variant: String,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Metrics the trial reported. Identical to an unobserved run except
    /// for `anomaly.*` counters, which exist only when detectors fired.
    pub metrics: Metrics,
    /// Observer totals (what the artifact's summary line carries).
    pub summary: ObserverSummary,
    /// Flight recording taken alongside the probes (present when a trace
    /// ring was requested) — this is what `--explain anomaly.*` walks.
    #[cfg(feature = "trace")]
    pub recorder: Option<agora_sim::trace::FlightRecorder>,
}

/// Replay one registry trial of `target` with the observer installed,
/// streaming artifact lines to `sink` in emission order.
///
/// Targets use the trace grammar minus the `dht` special case: an
/// experiment id (`e16` — first variant) or `id/variant` (`e16/p10k`),
/// replaying the exact first matching trial of the default matrix — same
/// derived seed, same metrics. `trace_ring` additionally installs a flight
/// recorder of that capacity (requires the `trace` feature) so anomaly
/// trace points can be explained.
pub fn run_observe_target(
    registry: &[ExperimentDef],
    cfg: &MatrixConfig,
    target: &str,
    obs_cfg: ObserverConfig,
    trace_ring: Option<usize>,
    sink: ObsLineSink,
) -> Result<ObserveRun, String> {
    let (want_id, want_variant) = match target.split_once('/') {
        Some((id, v)) => (id, Some(v)),
        None => (target, None),
    };
    let (spec, run) = build_trials(registry, cfg)
        .into_iter()
        .find(|(spec, _)| {
            spec.experiment == want_id
                && want_variant.is_none_or(|v| spec.variant == v)
                && spec.seed_ordinal == 0
        })
        .ok_or_else(|| {
            format!(
                "unknown observe target '{target}' (try an experiment id like 'e16' or 'e16/p10k')"
            )
        })?;
    let (target_id, variant, seed) = (
        spec.experiment.to_owned(),
        spec.variant.to_owned(),
        spec.seed,
    );

    let sink: Rc<RefCell<ObsLineSink>> = Rc::new(RefCell::new(sink));
    (sink.borrow_mut())(&header_json(&target_id, &variant, seed, &obs_cfg).render_compact());

    let record_sink = Rc::clone(&sink);
    let observer = Observer::new(
        obs_cfg,
        Box::new(move |rec| {
            (record_sink.borrow_mut())(&record_to_json(&rec).render_compact());
        }),
    );

    // The probe factory is thread-local and removed on return, so every
    // `Simulation` the trial constructs — however deep — reports to this
    // observer and nothing leaks to later work on the thread. `--shards`
    // is honoured like the matrix does; sharded dispatch is the serial
    // order, so the OBS bytes don't depend on it. With the `trace` feature
    // a flight recorder nests inside the probe scope: tracing and probing
    // are independent taps on the same canonical event stream.
    let probe_handle = observer.clone();
    let cadence = observer.cadence();
    let probed = move |run: fn(u64) -> Metrics, seed: u64| {
        with_thread_probe(
            move || (probe_handle.make_sink(), cadence),
            move || run(seed),
        )
    };
    #[cfg(feature = "trace")]
    let (metrics, recorder) = {
        use agora_sim::trace::{with_thread_sink, FlightRecorder, SharedRecorder, TraceFilter};
        match trace_ring {
            Some(cap) => {
                // Points-only ring: an anomaly fires once at onset, then a
                // day of net/timer records would evict it long before the
                // run ends. Protocol and anomaly points are what observe-
                // mode `--explain` queries, so only they occupy ring slots;
                // span aggregation still sees every record class. Causal
                // chains degrade gracefully where parents were filtered.
                let filter = TraceFilter {
                    net: false,
                    timers: false,
                    churn: false,
                    points: true,
                };
                let shared =
                    SharedRecorder::from_recorder(FlightRecorder::with_filter(cap, filter));
                let handle = shared.clone();
                let metrics = agora_sim::with_shards(cfg.shards, || {
                    with_thread_sink(move || Box::new(handle.clone()), || probed(run, seed))
                });
                (metrics, Some(shared.snapshot()))
            }
            None => (
                agora_sim::with_shards(cfg.shards, || probed(run, seed)),
                None,
            ),
        }
    };
    #[cfg(not(feature = "trace"))]
    let metrics = {
        let _ = trace_ring;
        agora_sim::with_shards(cfg.shards, || probed(run, seed))
    };

    let summary = observer.summary();
    (sink.borrow_mut())(&summary_json(&summary).render_compact());
    Ok(ObserveRun {
        target: target_id,
        variant,
        seed,
        metrics,
        summary,
        #[cfg(feature = "trace")]
        recorder,
    })
}

fn node_json(node: NodeId) -> Json {
    if node == NodeId(u32::MAX) {
        Json::Str("sim".to_owned())
    } else {
        Json::Num(node.0 as f64)
    }
}

fn header_json(target: &str, variant: &str, seed: u64, obs_cfg: &ObserverConfig) -> Json {
    let mut header = Json::obj();
    header.set("type", Json::Str("header".to_owned()));
    header.set("schema", Json::Num(OBS_SCHEMA as f64));
    header.set("target", Json::Str(target.to_owned()));
    header.set("variant", Json::Str(variant.to_owned()));
    // Seeds are full-range u64; `Json::Num` is an f64 and would collapse
    // nearby seeds above 2^53, so they render as exact decimal strings.
    header.set("seed", Json::Str(seed.to_string()));
    header.set("cadence_secs", Json::Num(obs_cfg.cadence.secs_f64()));
    // Detector tuning goes into the artifact so a reader can interpret the
    // anomaly records without chasing the binary's defaults.
    header.set(
        "overload_backlog_secs",
        Json::Num(obs_cfg.overload_backlog_secs),
    );
    header.set("overload_util", Json::Num(obs_cfg.overload_util));
    header.set("overload_jump", Json::Num(obs_cfg.overload_jump));
    header.set("jump_warmup", Json::Num(obs_cfg.jump_warmup as f64));
    header.set("zscore_k", Json::Num(obs_cfg.zscore_k));
    header.set("zscore_warmup", Json::Num(obs_cfg.zscore_warmup as f64));
    header.set("trend_len", Json::Num(obs_cfg.trend_len as f64));
    header.set("window", Json::Num(obs_cfg.window as f64));
    header
}

fn frame_json(f: &FrameRecord) -> Json {
    let mut line = Json::obj();
    line.set("type", Json::Str("frame".to_owned()));
    line.set("sim", Json::Num(f.sim as f64));
    line.set("t", Json::Num(f.t.secs_f64()));
    line.set("events", Json::Num(f.events as f64));
    line.set("pending", Json::Num(f.pending as f64));
    let mut queue = Json::obj();
    queue.set("max", Json::Num(f.queue_max_depth as f64));
    queue.set("node", node_json(f.queue_max_node));
    queue.set("nonzero", Json::Num(f.queue_nonzero as f64));
    line.set("queue", queue);
    let mut up = Json::obj();
    up.set("max_secs", Json::Num(f.uplink_max_backlog_secs));
    up.set("busy", Json::Num(f.uplink_busy_nodes as f64));
    line.set("uplink", up);
    let mut down = Json::obj();
    down.set("max_secs", Json::Num(f.downlink_max_backlog_secs));
    down.set("busy", Json::Num(f.downlink_busy_nodes as f64));
    line.set("downlink", down);
    let mut deltas = Json::obj();
    for (key, v) in &f.deltas {
        deltas.set(key, Json::Num(*v as f64));
    }
    line.set("deltas", deltas);
    let mut signals = Json::obj();
    for sig in &f.signals {
        let mut s = Json::obj();
        s.set("count", Json::Num(sig.count as f64));
        s.set("mean", Json::Num(sig.mean));
        s.set("max", Json::Num(sig.max));
        signals.set(sig.name, s);
    }
    line.set("signals", signals);
    line
}

fn anomaly_json(a: &AnomalyRecord) -> Json {
    let mut line = Json::obj();
    line.set("type", Json::Str("anomaly".to_owned()));
    line.set("sim", Json::Num(a.sim as f64));
    line.set("t", Json::Num(a.t.secs_f64()));
    line.set("kind", Json::Str(a.kind.to_owned()));
    line.set("signal", Json::Str(a.signal.to_owned()));
    line.set("detector", Json::Str(a.detector.to_owned()));
    line.set("value", Json::Num(a.value));
    line.set(
        "window",
        Json::Arr(a.window.iter().map(|&v| Json::Num(v)).collect()),
    );
    line
}

fn record_to_json(rec: &ObsRecord) -> Json {
    match rec {
        ObsRecord::SimStart { ordinal, seed } => {
            let mut line = Json::obj();
            line.set("type", Json::Str("sim".to_owned()));
            line.set("ordinal", Json::Num(*ordinal as f64));
            line.set("seed", Json::Str(seed.to_string()));
            line
        }
        ObsRecord::Frame(f) => frame_json(f),
        ObsRecord::Anomaly(a) => anomaly_json(a),
    }
}

fn summary_json(s: &ObserverSummary) -> Json {
    let mut line = Json::obj();
    line.set("type", Json::Str("summary".to_owned()));
    line.set("sims", Json::Num(s.sims as f64));
    line.set("frames", Json::Num(s.frames as f64));
    let mut anomalies = Json::obj();
    for (kind, n) in &s.anomalies {
        anomalies.set(kind, Json::Num(*n as f64));
    }
    line.set("anomalies", anomalies);
    line
}

/// Summary returned by [`validate_obs_jsonl`].
#[derive(Debug, PartialEq, Eq)]
pub struct ObsFileSummary {
    /// Sim-start lines seen.
    pub sims: usize,
    /// Frame lines seen.
    pub frames: usize,
    /// Anomaly lines seen.
    pub anomalies: usize,
}

/// The tiny in-repo `OBS_*.jsonl` schema checker CI runs: every line must
/// parse as JSON; the first line must be a schema-1 header; body lines must
/// be known types with their required fields; the final line must be a
/// summary whose sim/frame/anomaly totals match the body. Returns the body
/// counts on success.
pub fn validate_obs_jsonl(text: &str) -> Result<ObsFileSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty observe file")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: first line must be the header".to_owned());
    }
    if header.get("schema").and_then(Json::as_f64) != Some(OBS_SCHEMA as f64) {
        return Err(format!("line 1: unsupported schema (want {OBS_SCHEMA})"));
    }
    for field in ["target", "variant", "seed"] {
        if header.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("line 1: header missing string field '{field}'"));
        }
    }
    for field in [
        "cadence_secs",
        "overload_backlog_secs",
        "overload_util",
        "overload_jump",
        "jump_warmup",
        "zscore_k",
        "zscore_warmup",
        "trend_len",
        "window",
    ] {
        if header.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("line 1: header missing numeric field '{field}'"));
        }
    }

    let mut counted = ObsFileSummary {
        sims: 0,
        frames: 0,
        anomalies: 0,
    };
    let mut anomaly_kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut summary: Option<(usize, Json)> = None;
    for (ix, line) in lines {
        let lineno = ix + 1;
        if summary.is_some() {
            return Err(format!("line {lineno}: lines after the summary"));
        }
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        match v.get("type").and_then(Json::as_str) {
            Some("sim") => {
                if v.get("ordinal").and_then(Json::as_f64).is_none()
                    || v.get("seed").and_then(Json::as_str).is_none()
                {
                    return Err(format!("line {lineno}: sim line missing ordinal/seed"));
                }
                counted.sims += 1;
            }
            Some("frame") => {
                for field in ["sim", "t", "events", "pending"] {
                    if v.get(field).and_then(Json::as_f64).is_none() {
                        return Err(format!("line {lineno}: frame line missing '{field}'"));
                    }
                }
                for field in ["queue", "uplink", "downlink", "deltas", "signals"] {
                    if !matches!(v.get(field), Some(Json::Obj(_))) {
                        return Err(format!(
                            "line {lineno}: frame line missing object '{field}'"
                        ));
                    }
                }
                counted.frames += 1;
            }
            Some("anomaly") => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: anomaly line missing 'kind'"))?;
                for field in ["signal", "detector"] {
                    if v.get(field).and_then(Json::as_str).is_none() {
                        return Err(format!("line {lineno}: anomaly line missing '{field}'"));
                    }
                }
                for field in ["sim", "t", "value"] {
                    if v.get(field).and_then(Json::as_f64).is_none() {
                        return Err(format!("line {lineno}: anomaly line missing '{field}'"));
                    }
                }
                if !matches!(v.get("window"), Some(Json::Arr(_))) {
                    return Err(format!(
                        "line {lineno}: anomaly line missing array 'window'"
                    ));
                }
                *anomaly_kinds.entry(kind.to_owned()).or_insert(0) += 1;
                counted.anomalies += 1;
            }
            Some("summary") => summary = Some((lineno, v)),
            other => return Err(format!("line {lineno}: unknown line type {other:?}")),
        }
    }
    let (lineno, summary) = summary.ok_or("missing summary line")?;
    for (field, want) in [("sims", counted.sims), ("frames", counted.frames)] {
        let claimed = summary.get(field).and_then(Json::as_f64);
        if claimed != Some(want as f64) {
            return Err(format!(
                "line {lineno}: summary claims {field}={claimed:?}, body has {want}"
            ));
        }
    }
    let claimed_anoms = match summary.get("anomalies") {
        Some(Json::Obj(entries)) => entries
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(-1.0) as u64))
            .collect::<BTreeMap<_, _>>(),
        _ => return Err(format!("line {lineno}: summary missing object 'anomalies'")),
    };
    if claimed_anoms != anomaly_kinds {
        return Err(format!(
            "line {lineno}: summary anomaly counts {claimed_anoms:?} disagree with body {anomaly_kinds:?}"
        ));
    }
    Ok(counted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    fn light_cfg() -> MatrixConfig {
        MatrixConfig {
            threads: 1,
            ..MatrixConfig::default()
        }
    }

    fn observe_to_string(
        target: &str,
        cfg: &MatrixConfig,
        obs_cfg: ObserverConfig,
    ) -> (String, ObserveRun) {
        let lines: Rc<RefCell<String>> = Rc::new(RefCell::new(String::new()));
        let out = Rc::clone(&lines);
        let run = run_observe_target(
            &registry(),
            cfg,
            target,
            obs_cfg,
            None,
            Box::new(move |line| {
                let mut buf = out.borrow_mut();
                buf.push_str(line);
                buf.push('\n');
            }),
        )
        .expect("observe target runs");
        let text = lines.borrow().clone();
        (text, run)
    }

    #[test]
    fn observe_jsonl_is_deterministic_and_valid() {
        let cfg = light_cfg();
        let (a, run) = observe_to_string("e16/p10k", &cfg, ObserverConfig::default());
        let (b, _) = observe_to_string("e16/p10k", &cfg, ObserverConfig::default());
        assert_eq!(a, b, "OBS jsonl must be byte-identical across runs");
        let counted = validate_obs_jsonl(&a).expect("artifact validates");
        assert_eq!(counted.sims as u32, run.summary.sims);
        assert_eq!(counted.frames as u64, run.summary.frames);
        assert!(counted.frames > 0, "cadence frames were emitted");
    }

    #[test]
    fn observed_metrics_match_unobserved_run_modulo_anomaly_counters() {
        let cfg = light_cfg();
        let (_, run) = observe_to_string("e15/i1.00", &cfg, ObserverConfig::default());
        let plain = agora_sim::with_shards(cfg.shards, || {
            agora::experiments::e15_metrics(run.seed, 1.0)
        });
        let observed: Vec<_> = run
            .metrics
            .counters()
            .filter(|(k, _)| !k.starts_with("anomaly."))
            .collect();
        let unobserved: Vec<_> = plain.counters().collect();
        assert_eq!(
            observed, unobserved,
            "probing must not perturb the simulated outcome"
        );
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let reg = registry();
        let cfg = light_cfg();
        let err = run_observe_target(
            &reg,
            &cfg,
            "e99",
            ObserverConfig::default(),
            None,
            Box::new(|_| {}),
        );
        assert!(err.is_err());
    }

    #[test]
    fn validator_rejects_malformed_artifacts() {
        assert!(validate_obs_jsonl("").is_err());
        assert!(
            validate_obs_jsonl("{\"type\":\"sim\",\"ordinal\":0,\"seed\":\"1\"}").is_err(),
            "no header"
        );
        let header = "{\"type\":\"header\",\"schema\":1,\"target\":\"e16\",\"variant\":\"p10k\",\"seed\":\"1\",\"cadence_secs\":300,\"overload_backlog_secs\":30,\"overload_util\":1,\"overload_jump\":2,\"jump_warmup\":8,\"zscore_k\":6,\"zscore_warmup\":32,\"trend_len\":12,\"window\":8}";
        assert!(
            validate_obs_jsonl(header).is_err(),
            "summary line is mandatory"
        );
        let no_frames_ok = format!(
            "{header}\n{}",
            "{\"type\":\"summary\",\"sims\":0,\"frames\":0,\"anomalies\":{}}"
        );
        assert!(validate_obs_jsonl(&no_frames_ok).is_ok());
        let miscounted = format!(
            "{header}\n{}\n{}",
            "{\"type\":\"sim\",\"ordinal\":0,\"seed\":\"1\"}",
            "{\"type\":\"summary\",\"sims\":2,\"frames\":0,\"anomalies\":{}}"
        );
        assert!(
            validate_obs_jsonl(&miscounted).is_err(),
            "sim count mismatch"
        );
        let anomaly_mismatch = format!(
            "{header}\n{}\n{}",
            "{\"type\":\"anomaly\",\"sim\":0,\"t\":1,\"kind\":\"anomaly.overload\",\"signal\":\"s\",\"detector\":\"threshold\",\"value\":1,\"window\":[1]}",
            "{\"type\":\"summary\",\"sims\":0,\"frames\":0,\"anomalies\":{}}"
        );
        assert!(
            validate_obs_jsonl(&anomaly_mismatch).is_err(),
            "anomaly tally mismatch"
        );
    }
}

//! Wall-clock performance artifact (`BENCH_perf.json`).
//!
//! The deterministic artifact (`BENCH_harness.json`) deliberately excludes
//! timings — they are the one non-reproducible field. This module is their
//! home: per-experiment wall-clock percentiles from a matrix run, plus
//! hot-path microbenchmarks (SHA-256 throughput, mining hash rate with and
//! without the midstate optimization, engine event throughput against a
//! reference event core). The output is machine-readable but **never**
//! diffed in CI; it is a recorded observation, not a contract.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use agora_chain::BlockHeader;
use agora_crypto::{sha256, sha256_into};
use agora_sim::{
    Ctx, DeviceClass, Metrics, NodeId, Protocol, SimDuration, SimRng, SimTime, Simulation,
};

use crate::json::Json;
use crate::matrix::{MatrixRun, TrialStatus};

/// Accumulates named per-phase timings — wall clock always, simulated
/// seconds where the caller knows them — and renders the `breakdowns`
/// section of `BENCH_perf.json`. Wall-clock only, so it lives here with the
/// rest of the non-deterministic artifact and is never CI-diffed.
pub struct PhaseProfiler {
    started: Instant,
    phases: Vec<PhaseSample>,
}

struct PhaseSample {
    name: String,
    wall: Duration,
    sim_secs: Option<f64>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::new()
    }
}

impl PhaseProfiler {
    /// Start an empty profile; elapsed time counts from here.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler {
            started: Instant::now(),
            phases: Vec::new(),
        }
    }

    /// Record a phase measured externally.
    pub fn record(&mut self, name: &str, wall: Duration, sim_secs: Option<f64>) {
        self.phases.push(PhaseSample {
            name: name.to_owned(),
            wall,
            sim_secs,
        });
    }

    /// Run `f` as a named phase, recording its wall time.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.record(name, started.elapsed(), None);
        out
    }

    /// Run `f` as a named phase; the closure also reports how many
    /// simulated seconds the phase advanced, so the breakdown can show
    /// sim-time-per-wall-second for engine-bound phases.
    pub fn time_with_sim<R>(&mut self, name: &str, f: impl FnOnce() -> (R, f64)) -> R {
        let started = Instant::now();
        let (out, sim_secs) = f();
        self.record(name, started.elapsed(), Some(sim_secs));
        out
    }

    /// Render the `breakdowns` section: per-phase wall seconds (and sim
    /// seconds where known), plus the profiled total and the wall time
    /// elapsed since the profiler started (the gap is unprofiled overhead).
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj();
        let mut phases = Vec::new();
        for p in &self.phases {
            let mut e = Json::obj();
            e.set("name", Json::Str(p.name.clone()));
            e.set("wall_secs", Json::Num(p.wall.as_secs_f64()));
            e.set("sim_secs", p.sim_secs.map_or(Json::Null, Json::Num));
            phases.push(e);
        }
        out.set("phases", Json::Arr(phases));
        out.set(
            "profiled_wall_secs",
            Json::Num(self.phases.iter().map(|p| p.wall.as_secs_f64()).sum()),
        );
        out.set(
            "elapsed_wall_secs",
            Json::Num(self.started.elapsed().as_secs_f64()),
        );
        out
    }
}

/// Nearest-rank percentile of an unsorted sample, in seconds.
fn percentile_secs(samples: &mut [Duration], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1].as_secs_f64()
}

/// Per-`experiment/variant` wall-clock summary of a completed matrix run.
fn matrix_to_json(run: &MatrixRun) -> Json {
    let mut groups: BTreeMap<String, Vec<Duration>> = BTreeMap::new();
    for o in &run.outcomes {
        if o.status != TrialStatus::Ok {
            continue;
        }
        groups
            .entry(format!("{}/{}", o.spec.experiment, o.spec.variant))
            .or_default()
            .push(o.elapsed);
    }
    let mut out = Json::obj();
    out.set("wall_secs", Json::Num(run.wall.as_secs_f64()));
    out.set("threads", Json::Num(run.config.threads as f64));
    out.set("trials", Json::Num(run.outcomes.len() as f64));
    let mut experiments = Json::obj();
    for (key, mut samples) in groups {
        let mut e = Json::obj();
        e.set("trials", Json::Num(samples.len() as f64));
        e.set("p50_secs", Json::Num(percentile_secs(&mut samples, 50.0)));
        e.set("p95_secs", Json::Num(percentile_secs(&mut samples, 95.0)));
        e.set(
            "total_secs",
            Json::Num(samples.iter().map(Duration::as_secs_f64).sum()),
        );
        experiments.set(&key, e);
    }
    out.set("experiments", experiments);
    out
}

/// SHA-256 single-shot throughput over a 64 KiB buffer, in MiB/s.
fn sha256_throughput_mib_s() -> f64 {
    const LEN: usize = 64 * 1024;
    const ITERS: u64 = 256;
    let data: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
    let mut out = [0u8; 32];
    // Warm-up, and keep the result live so the work cannot be elided.
    sha256_into(&data, &mut out);
    let started = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ITERS {
        sha256_into(&data, &mut out);
        acc = acc.wrapping_add(out[0] as u64);
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    (LEN as u64 * ITERS) as f64 / secs / (1024.0 * 1024.0)
}

fn bench_header() -> BlockHeader {
    BlockHeader {
        height: 42,
        prev: sha256(b"bench-parent"),
        merkle_root: sha256(b"bench-merkle"),
        time_micros: 1_234_567,
        difficulty_bits: 64, // unreachable: grind never terminates early
        nonce: 0,
    }
}

/// Median over `batches` timed batches of `iters` calls each — the median
/// absorbs scheduler preemption spikes that a single long window would
/// average in.
fn median_rate(batches: usize, iters: u64, mut batch: impl FnMut(u64) -> Duration) -> f64 {
    let mut rates: Vec<f64> = (0..batches.max(1))
        .map(|_| iters as f64 / batch(iters).as_secs_f64().max(1e-9))
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

/// Hashes/sec grinding nonces through the pre-frozen midstate (the path
/// `mine_block` uses).
fn mining_midstate_hashes_per_sec(iters: u64) -> f64 {
    let header = bench_header();
    let mid = header.pow_midstate();
    median_rate(5, iters, |n| {
        let mut best = u32::MIN;
        let started = Instant::now();
        for nonce in 0..n {
            best = best.max(mid.hash_nonce(nonce).leading_zero_bits());
        }
        let elapsed = started.elapsed();
        std::hint::black_box(best);
        elapsed
    })
}

/// Hashes/sec re-encoding and re-hashing the whole header per nonce (the
/// pre-midstate behaviour, kept as the comparison baseline).
fn mining_naive_hashes_per_sec(iters: u64) -> f64 {
    let mut header = bench_header();
    median_rate(5, iters, |n| {
        let mut best = u32::MIN;
        let started = Instant::now();
        for nonce in 0..n {
            header.nonce = nonce;
            best = best.max(header.hash().leading_zero_bits());
        }
        let elapsed = started.elapsed();
        std::hint::black_box(best);
        elapsed
    })
}

/// A deliberately message-heavy protocol: every node relays each received
/// token to the next node in the ring and re-arms a keepalive timer, so the
/// run is dominated by the engine's queue + dispatch + metrics hot path.
struct RingFlood {
    next: NodeId,
    received: u64,
}

impl Protocol for RingFlood {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
        self.received += 1;
        if msg > 0 {
            ctx.send(self.next, msg - 1, 128);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        ctx.send(self.next, 64, 128);
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }
}

/// Events/sec through the real engine under the ring-flood workload.
fn engine_events_per_sec() -> f64 {
    const NODES: u32 = 64;
    let mut sim: Simulation<RingFlood> = Simulation::new(7);
    for i in 0..NODES {
        sim.add_node(
            RingFlood {
                next: NodeId((i + 1) % NODES),
                received: 0,
            },
            DeviceClass::DatacenterServer,
        );
    }
    // Warm-up outside the timed window.
    sim.run_for(SimDuration::from_secs(1));
    let before = sim.events_processed();
    let started = Instant::now();
    sim.run_for(SimDuration::from_secs(20));
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    (sim.events_processed() - before) as f64 / secs
}

/// Ring-flood through the real engine at a shard count, with a controllable
/// cross-shard fraction. Shard assignment is `id % shards`, so a successor
/// stride of 8 keeps every measured shard count {1, 2, 4, 8} shard-local;
/// nodes selected by `cross_every` (every `cross_every`-th node; 0 = none)
/// use stride 1 instead, which crosses shards whenever `shards > 1`.
fn sharded_ring_flood(shards: u32, cross_every: u32) -> (f64, agora_sim::ShardStats) {
    const NODES: u32 = 64;
    const LOCAL_STRIDE: u32 = 8;
    let mut sim: Simulation<RingFlood> = Simulation::new(7);
    sim.set_shards(shards);
    for i in 0..NODES {
        let stride = if cross_every > 0 && i % cross_every == 0 {
            1
        } else {
            LOCAL_STRIDE
        };
        sim.add_node(
            RingFlood {
                next: NodeId((i + stride) % NODES),
                received: 0,
            },
            DeviceClass::DatacenterServer,
        );
    }
    sim.run_for(SimDuration::from_secs(1));
    let before = sim.events_processed();
    let started = Instant::now();
    sim.run_for(SimDuration::from_secs(10));
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    (
        (sim.events_processed() - before) as f64 / secs,
        sim.shard_stats(),
    )
}

/// An E16-class trial through the real engine: one flash-crowd day of
/// population-scale demand (three-zone diurnal mix, 12× flash peak, churn
/// curve) replayed against a 48-node Kademlia overlay issuing real
/// iterative lookups under 2% loss. Unlike the synthetic ring flood, the
/// full protocol stack — routing tables, retries, timers — sits on the hot
/// path, so this is the honest "real engine" point of the sharded sweep.
/// Returns (events/s, events dispatched, wall seconds) for the day replay.
fn e16_class_run(shards: u32) -> (f64, u64, f64) {
    use agora_crypto::sha256;
    use agora_dht::{Contact, DhtConfig, DhtNode};
    use agora_workload::{
        BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, FlashCrowd, LogNormalSessions,
        WorkloadDriver, WorkloadSpec, ZoneMix,
    };
    use std::rc::Rc;

    const NODES: usize = 48;
    const KEYS: usize = 32;
    let mut sim: Simulation<DhtNode> = Simulation::new(29);
    sim.set_shards(shards);
    let boot_key = sha256(b"perf-e16-0");
    let ids: Vec<NodeId> = (0..NODES)
        .map(|i| {
            let key = sha256(format!("perf-e16-{i}").as_bytes());
            let bootstrap = if i == 0 {
                vec![]
            } else {
                vec![Contact {
                    key: boot_key,
                    addr: NodeId(0),
                }]
            };
            sim.add_node(
                DhtNode::new(key, DhtConfig::default(), bootstrap),
                DeviceClass::PersonalComputer,
            )
        })
        .collect();
    sim.set_loss_rate(0.02);
    // Warm routing tables, then publish the catalogue the day will fetch.
    for (i, &id) in ids.iter().enumerate() {
        let target = sha256(format!("perf-warm-{i}").as_bytes());
        sim.with_ctx(id, |n, ctx| n.start_find_node(ctx, target));
    }
    sim.run_for(SimDuration::from_secs(120));
    let payload: Rc<[u8]> = Rc::from(&b"e16-class perf payload"[..]);
    let keys: Vec<_> = (0..KEYS)
        .map(|i| sha256(format!("perf-obj-{i}").as_bytes()))
        .collect();
    for (i, &key) in keys.iter().enumerate() {
        sim.with_ctx(ids[i % NODES], |n, ctx| {
            n.start_put(ctx, key, payload.clone())
        });
    }
    sim.run_for(SimDuration::from_secs(120));

    let spec = WorkloadSpec {
        population: 100_000,
        cohorts: NODES as u32,
        actions_per_user_day: 20.0,
        model: DemandModel {
            zones: ZoneMix::global_three_region(DiurnalCurve::residential()),
            flash: Some(FlashCrowd {
                start: SimDuration::from_secs(45_900),
                ramp: SimDuration::from_mins(30),
                plateau: SimDuration::from_mins(60),
                decay: SimDuration::from_mins(30),
                peak: 12.0,
            }),
        },
        ranks: 256,
        zipf_alpha: 0.9,
        sizes: BoundedPareto::new(2_000, 1_000_000, 1.3),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: SimDuration::from_mins(15),
        rep_cap: 2,
        churn: Some(ChurnCurve {
            offline_at_peak: 0.1,
            offline_at_trough: 0.5,
        }),
    };
    let day = SimDuration::from_days(1);
    let sched = spec.compile(31, &ids, day);
    let mut driver = WorkloadDriver::install(&sim, sched);
    let before = sim.events_processed();
    let mut rr = 0usize;
    let started = Instant::now();
    driver.run_for(&mut sim, day, &mut |sim, d| {
        let g = ids[rr % NODES];
        rr += 1;
        let key = keys[d.rank as usize % KEYS];
        sim.with_ctx(g, |n, ctx| n.start_get(ctx, key));
    });
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let events = sim.events_processed() - before;
    (events as f64 / wall, events, wall)
}

/// The `observer` section: the same E16-class flash-crowd day as
/// `engine_parallel`, unobserved (probes compiled in but dormant — the
/// per-dispatch cost is one predicted branch) and then with a full
/// observer installed at coarse and fine sampling cadences. The overhead
/// ratio is the price of the observe plane on a real protocol day; the
/// compiled-out-entirely baseline is proven byte-identical by ci.sh, not
/// timed here (one binary cannot measure both feature configs).
#[cfg(feature = "observe")]
fn observer_to_json(prof: &mut PhaseProfiler) -> Json {
    use agora_observer::{Observer, ObserverConfig};

    let mut out = Json::obj();
    out.set(
        "cores",
        Json::Num(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as f64,
        ),
    );
    out.set(
        "note",
        Json::Str(
            "E16-class day at 1 shard: dormant prober vs observer at each \
             cadence; frame counts are deterministic, wall-clock is not"
                .to_owned(),
        ),
    );
    let (_, _, unobserved_wall) = prof.time("microbench/observer_unobserved", || e16_class_run(1));
    out.set("unobserved_wall_secs", Json::Num(unobserved_wall));
    for cadence_secs in [300u64, 60] {
        let obs = Observer::new(
            ObserverConfig {
                cadence: SimDuration::from_secs(cadence_secs),
                ..ObserverConfig::default()
            },
            Box::new(drop),
        );
        let handle = obs.clone();
        let cadence = handle.cadence();
        let (_, events, wall) = prof.time(
            &format!("microbench/observer_cadence{cadence_secs}s"),
            || {
                agora_sim::probe::with_thread_probe(
                    move || (handle.make_sink(), cadence),
                    || e16_class_run(1),
                )
            },
        );
        let summary = obs.summary();
        let mut point = Json::obj();
        point.set("events", Json::Num(events as f64));
        point.set("wall_secs", Json::Num(wall));
        point.set(
            "overhead_vs_unobserved",
            Json::Num(wall / unobserved_wall.max(1e-9)),
        );
        point.set("frames", Json::Num(summary.frames as f64));
        point.set(
            "anomalies",
            Json::Num(summary.anomalies.values().sum::<u64>() as f64),
        );
        out.set(&format!("cadence{cadence_secs}s"), point);
    }
    out
}

/// One measurement point of the `engine_parallel` section.
fn shard_point_json(eps: f64, stats: &agora_sim::ShardStats) -> Json {
    let mut e = Json::obj();
    e.set("events_per_sec", Json::Num(eps));
    e.set("windows", Json::Num(stats.windows as f64));
    e.set("barrier_stalls", Json::Num(stats.barrier_stalls as f64));
    e.set("cross_fraction", Json::Num(stats.cross_fraction()));
    e
}

/// The `engine_parallel` section: real-engine events/s at shards
/// {1, 2, 4, 8} on a cross-shard-light ring flood, a cross-shard
/// send-fraction sweep at 4 shards, and the E16-class flash-crowd day.
/// `cores` records how many cores this host could actually use —
/// [`agora_sim::ShardWorkers::Auto`] runs lanes inline on a single-core
/// host, so there sharding can only show its overhead, never a speedup;
/// the numbers are honest observations of whatever host ran them.
fn engine_parallel_to_json(prof: &mut PhaseProfiler) -> Json {
    const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
    let mut out = Json::obj();
    out.set(
        "cores",
        Json::Num(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as f64,
        ),
    );
    out.set(
        "note",
        Json::Str(
            "identical event counts at every shard count ARE the identity \
             contract; speedup requires cores > 1 (Auto workers run lanes \
             inline on a single-core host, so sharding there shows only its \
             synchronization overhead)"
                .to_owned(),
        ),
    );

    let ring = prof.time("microbench/engine_parallel_ring", || {
        let mut ring = Json::obj();
        for &s in &SHARD_COUNTS {
            let (eps, stats) = sharded_ring_flood(s, 0);
            ring.set(&format!("shards{s}"), shard_point_json(eps, &stats));
        }
        ring
    });
    out.set("ring_flood", ring);

    let sweep = prof.time("microbench/engine_parallel_cross_sweep", || {
        let mut sweep = Json::obj();
        for &cross_every in &[0u32, 4, 2, 1] {
            let (eps, stats) = sharded_ring_flood(4, cross_every);
            let label = match cross_every {
                0 => "cross0".to_owned(),
                n => format!("cross1_{n}"),
            };
            sweep.set(&label, shard_point_json(eps, &stats));
        }
        sweep
    });
    out.set("cross_fraction_sweep_shards4", sweep);

    let e16 = prof.time("microbench/engine_parallel_e16", || {
        let mut e16 = Json::obj();
        let mut serial_wall = 0.0f64;
        for &s in &SHARD_COUNTS {
            let (eps, events, wall) = e16_class_run(s);
            if s == 1 {
                serial_wall = wall;
            }
            let mut e = Json::obj();
            e.set("events_per_sec", Json::Num(eps));
            e.set("events", Json::Num(events as f64));
            e.set("wall_secs", Json::Num(wall));
            e.set("speedup_vs_serial", Json::Num(serial_wall / wall.max(1e-9)));
            e16.set(&format!("shards{s}"), e);
        }
        e16
    });
    out.set("e16_class", e16);
    out
}

/// Reference event core modeling the pre-optimization engine layout: the
/// queue entry keeps `(SimTime, u64)` as separate fields compared with a
/// two-step `Ord`, and every dispatched event bumps counters through
/// string-keyed `BTreeMap` lookups. The synthetic workload (one pop, one
/// push, three counter bumps per event) matches the per-event overhead the
/// real dispatch loop pays around protocol code.
fn reference_events_per_sec(events: u64) -> f64 {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct RefEvent {
        at: SimTime,
        seq: u64,
        payload: u64,
    }
    impl PartialEq for RefEvent {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for RefEvent {}
    impl PartialOrd for RefEvent {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefEvent {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    let mut queue: BinaryHeap<RefEvent> = BinaryHeap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut seq = 0u64;
    for i in 0..64u64 {
        queue.push(RefEvent {
            at: SimTime(i),
            seq: i,
            payload: i,
        });
        seq = seq.max(i);
    }
    let started = Instant::now();
    for _ in 0..events {
        let ev = queue.pop().expect("queue never drains");
        *counters.entry("net.delivered".to_owned()).or_insert(0) += 1;
        *counters.entry("net.sent".to_owned()).or_insert(0) += 1;
        *counters.entry("net.sent_bytes".to_owned()).or_insert(0) += 128;
        seq += 1;
        queue.push(RefEvent {
            at: ev.at + SimDuration::from_micros(1 + (ev.payload & 7)),
            seq,
            payload: ev.payload.wrapping_mul(6364136223846793005).wrapping_add(1),
        });
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(counters.len());
    events as f64 / secs
}

/// Packed-key + handle-based counterpart of [`reference_events_per_sec`]:
/// the same synthetic workload driven through the optimized layout (one
/// `u128` key comparison, slot-indexed counters), isolating the event-core
/// data-structure change from protocol logic.
fn packed_events_per_sec(events: u64) -> f64 {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct PackedEvent {
        key: u128,
        payload: u64,
    }
    impl PartialEq for PackedEvent {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key
        }
    }
    impl Eq for PackedEvent {}
    impl PartialOrd for PackedEvent {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for PackedEvent {
        fn cmp(&self, other: &Self) -> Ordering {
            other.key.cmp(&self.key)
        }
    }
    fn pack(at: SimTime, seq: u64) -> u128 {
        ((at.micros() as u128) << 64) | seq as u128
    }

    let mut queue: BinaryHeap<PackedEvent> = BinaryHeap::new();
    let mut counters = [0u64; 3];
    let mut seq = 0u64;
    for i in 0..64u64 {
        queue.push(PackedEvent {
            key: pack(SimTime(i), i),
            payload: i,
        });
        seq = seq.max(i);
    }
    let started = Instant::now();
    for _ in 0..events {
        let ev = queue.pop().expect("queue never drains");
        counters[0] += 1;
        counters[1] += 1;
        counters[2] += 128;
        seq += 1;
        let at = SimTime((ev.key >> 64) as u64) + SimDuration::from_micros(1 + (ev.payload & 7));
        queue.push(PackedEvent {
            key: pack(at, seq),
            payload: ev.payload.wrapping_mul(6364136223846793005).wrapping_add(1),
        });
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(counters);
    events as f64 / secs
}

/// Reed–Solomon encode throughput for one (k, m) point, in MiB of source
/// data per second.
fn erasure_encode_mib_s(k: usize, m: usize) -> f64 {
    const LEN: usize = 256 * 1024;
    const ITERS: u64 = 16;
    let rs = agora::storage::ReedSolomon::new(k, m).expect("valid (k, m)");
    let data: Vec<u8> = (0..LEN).map(|i| (i % 249) as u8).collect();
    // Warm-up and keep the result live.
    std::hint::black_box(rs.encode(&data));
    let started = Instant::now();
    let mut acc = 0usize;
    for _ in 0..ITERS {
        let shards = rs.encode(&data);
        acc = acc.wrapping_add(shards[k + m - 1][0] as usize);
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    (LEN as u64 * ITERS) as f64 / secs / (1024.0 * 1024.0)
}

/// Reed–Solomon reconstruction throughput with `erasures` data shards lost
/// (forcing the matrix-inversion path when `erasures > 0`), in MiB of
/// recovered source data per second.
fn erasure_reconstruct_mib_s(k: usize, m: usize, erasures: usize) -> f64 {
    const LEN: usize = 256 * 1024;
    const ITERS: u64 = 16;
    assert!(erasures <= m);
    let rs = agora::storage::ReedSolomon::new(k, m).expect("valid (k, m)");
    let data: Vec<u8> = (0..LEN).map(|i| (i % 249) as u8).collect();
    let shards = rs.encode(&data);
    // Drop the first `erasures` data shards, substitute parity.
    let survivors: Vec<(usize, &[u8])> = (erasures..k + m)
        .take(k)
        .map(|i| (i, shards[i].as_slice()))
        .collect();
    std::hint::black_box(rs.reconstruct(&survivors, LEN).expect("reconstructs"));
    let started = Instant::now();
    let mut acc = 0usize;
    for _ in 0..ITERS {
        let out = rs.reconstruct(&survivors, LEN).expect("reconstructs");
        acc = acc.wrapping_add(out[LEN - 1] as usize);
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    (LEN as u64 * ITERS) as f64 / secs / (1024.0 * 1024.0)
}

/// Contract-merge throughput: singleton deltas folded one at a time into
/// a growing guestbook state (the subscriber's per-push hot path), in
/// ops merged per second.
fn contract_merge_ops_per_sec(deltas: u64) -> f64 {
    use agora::app::{Contract, GuestEntry, Guestbook};
    const WRITERS: u64 = 4;
    let pushes: Vec<_> = (0..deltas)
        .map(|i| {
            Guestbook::singleton_delta(
                (i % WRITERS) as u32,
                i / WRITERS + 1,
                GuestEntry {
                    body: format!("entry {i}: merge benchmark payload").into_bytes(),
                },
            )
        })
        .collect();
    let started = Instant::now();
    let mut state = Guestbook::empty();
    for d in &pushes {
        state = Guestbook::apply(&state, d);
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(&state);
    deltas as f64 / secs
}

/// Summary (version vector) bytes vs canonical state bytes for a KV doc
/// of `ops` writes from eight writers: the constant-size handshake a
/// subscriber ships to fetch exactly its missing suffix.
fn contract_summary_sizes(ops: u64) -> (u64, u64) {
    use agora::app::{kv_value_hash, Contract, KvDoc, KvWrite};
    const WRITERS: u64 = 8;
    let mut state = KvDoc::empty();
    for i in 0..ops {
        let d = KvDoc::singleton_delta(
            (i % WRITERS) as u32,
            i / WRITERS + 1,
            KvWrite {
                path: format!("page-{}.html", i % 16),
                stamp: i,
                value_hash: kv_value_hash(&i.to_le_bytes()),
                len: 1_000 + i,
                delete: false,
            },
        );
        state = KvDoc::apply(&state, &d);
    }
    (
        KvDoc::summarize(&state).encode().len() as u64,
        KvDoc::encode_state(&state).len() as u64,
    )
}

/// Zipf sampling throughput through the O(1) Vose alias table.
fn zipf_alias_samples_per_sec(samples: u64) -> f64 {
    let zipf = agora_workload::ZipfAlias::new(10_000, 0.9);
    let mut rng = SimRng::new(11);
    let mut acc = 0usize;
    let started = Instant::now();
    for _ in 0..samples {
        acc = acc.wrapping_add(zipf.sample(&mut rng));
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    samples as f64 / secs
}

/// The O(log n) cumulative-table reference for the same distribution.
fn zipf_cdf_samples_per_sec(samples: u64) -> f64 {
    let table = agora_workload::zipf_reference(10_000, 0.9);
    let mut rng = SimRng::new(11);
    let mut acc = 0usize;
    let started = Instant::now();
    for _ in 0..samples {
        acc = acc.wrapping_add(table.sample(&mut rng));
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    samples as f64 / secs
}

/// Idle protocol for replaying a workload schedule with no substrate cost:
/// what's left is the engine + driver overhead the cohort layer must keep
/// population-independent.
struct Idle;

impl Protocol for Idle {
    type Msg = ();
    fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
}

/// Compile one diurnal day for `population` users aggregated into 64
/// cohorts and replay it against an idle 64-node simulation. Returns
/// (schedule events per wall second, schedule event count, represented
/// population-scale requests) — the last two are the O(cohorts) claim in
/// numbers: requests grow with population, events do not.
fn workload_day_throughput(population: u64) -> (f64, u64, u64) {
    use agora_workload::{
        BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, LogNormalSessions, WorkloadDriver,
        WorkloadSpec, ZoneMix,
    };
    let spec = WorkloadSpec {
        population,
        cohorts: 64,
        actions_per_user_day: 20.0,
        model: DemandModel {
            zones: ZoneMix::global_three_region(DiurnalCurve::residential()),
            flash: None,
        },
        ranks: 256,
        zipf_alpha: 0.9,
        sizes: BoundedPareto::new(2_000, 1_000_000, 1.3),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: SimDuration::from_mins(15),
        rep_cap: 2,
        churn: Some(ChurnCurve {
            offline_at_peak: 0.1,
            offline_at_trough: 0.5,
        }),
    };
    let mut sim: Simulation<Idle> = Simulation::new(17);
    let nodes: Vec<NodeId> = (0..64)
        .map(|_| sim.add_node(Idle, DeviceClass::PersonalComputer))
        .collect();
    let day = SimDuration::from_days(1);
    let started = Instant::now();
    let sched = spec.compile(17, &nodes, day);
    let events = sched.len() as u64;
    let requests = sched.total_requests();
    let mut driver = WorkloadDriver::install(&sim, sched);
    driver.run_for(&mut sim, day, &mut |_, d| {
        std::hint::black_box(d.bytes);
    });
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    (events as f64 / secs, events, requests)
}

/// Throughput of the policy decision kernel: a synthetic frame stream
/// with a sinusoidal utilization signal sweeping through the engage and
/// release bands, driven through a full `PolicyHub` sink — the per-frame
/// cost every policy-on simulation pays at probe cadence.
fn policy_frames_per_sec(frames: u64) -> f64 {
    use agora_policy::{PolicyConfig, PolicyHub, SIG_UPLINK_UTIL};
    use agora_sim::probe::ProbeFrame;
    let hub = PolicyHub::new(PolicyConfig::default());
    let handle = hub.handle();
    let mut sink = hub.into_sink();
    sink.on_sim_start(7);
    let metrics = Metrics::new();
    let started = Instant::now();
    for i in 0..frames {
        let now = SimTime::ZERO + SimDuration::from_secs(300 * i);
        let util = 0.75 + 0.75 * ((i as f64) * 0.05).sin();
        sink.on_signal(now, NodeId(0), SIG_UPLINK_UTIL, util);
        let frame = ProbeFrame {
            now,
            events: i,
            pending: 0,
            queue_max_depth: 0,
            queue_max_node: NodeId(0),
            queue_nonzero: 0,
            uplink_max_backlog_secs: 0.0,
            uplink_busy_nodes: 0,
            downlink_max_backlog_secs: 0.0,
            downlink_busy_nodes: 0,
            metrics: &metrics,
        };
        std::hint::black_box(sink.on_frame(&frame));
    }
    std::hint::black_box(handle.level());
    frames as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Cohort-approximation error per policy runner: the same E16 class day
/// generated exactly — one cohort per user, the ground truth the
/// O(cohorts) aggregation approximates — and with the standard 8-cohort
/// aggregation, seed-paired at two seeds. The exact runs are the
/// expensive half, so they run on the sharded engine across the
/// machine's cores. Exact cost is wildly class-dependent (a swarm visit
/// is a whole piece-exchange session, a DHT lookup is a few RPCs), so
/// the DHT runners take a 5× larger exact population — the 10k-user
/// per-user ground-truth run — while the rest stay at the base.
fn cohort_error_to_json(prof: &mut PhaseProfiler, population: u64) -> Json {
    const SEED: u64 = 20171130;
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    let rel = |a: f64, b: f64| {
        if b.abs() <= f64::EPSILON {
            a - b
        } else {
            (a - b) / b
        }
    };
    let mut out = Json::obj();
    out.set("population", Json::Num(population as f64));
    out.set("cohorts_approx", Json::Num(8.0));
    out.set("exact_shards", Json::Num(f64::from(shards)));
    for (name, run) in agora::experiments::e16_cohort_runners() {
        let pop = if name.starts_with("dht.") {
            population * 5
        } else {
            population
        };
        let label = format!("cohort_error/{name}");
        let pairs = prof.time_with_sim(&label, || {
            let pairs: Vec<_> = (0..2u64)
                .map(|s| {
                    let approx = run(SEED + s, pop, 8);
                    let exact = agora_sim::with_shards(shards, || run(SEED + s, pop, pop as u32));
                    (approx, exact)
                })
                .collect();
            // Two simulated days per seed, two seeds.
            (pairs, 4.0 * 86_400.0)
        });
        let mut e = Json::obj();
        e.set("population", Json::Num(pop as f64));
        e.set("exact_peak_overload", Json::Num(pairs[0].1.peak_overload));
        e.set("approx_peak_overload", Json::Num(pairs[0].0.peak_overload));
        type OutcomeField = fn(&agora::experiments::ClassOutcome) -> f64;
        let fields: [(&str, OutcomeField); 3] = [
            ("peak_overload", |c| c.peak_overload),
            ("availability", |c| c.availability),
            ("busiest_share", |c| c.busiest_share),
        ];
        for (key, get) in fields {
            let errs: Vec<f64> = pairs.iter().map(|(a, x)| rel(get(a), get(x))).collect();
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let max_abs = errs.iter().map(|e| e.abs()).fold(0.0, f64::max);
            e.set(&format!("{key}_rel_err_mean"), Json::Num(mean));
            e.set(&format!("{key}_rel_err_max_abs"), Json::Num(max_abs));
        }
        out.set(name, e);
    }
    out
}

/// The base population the artifact's `cohort_error` section replays
/// exactly (one cohort per user; the DHT runners take 5× this — a
/// 10,000-user per-user ground truth). Sized so the seven exact
/// class-days stay in wall-clock budget; tests use a smaller population
/// through [`perf_to_json_scaled`].
pub const COHORT_ERROR_POPULATION: u64 = 2_000;

/// Build the full performance artifact from a completed matrix run.
pub fn perf_to_json(run: &MatrixRun) -> Json {
    perf_to_json_with(run, PhaseProfiler::new())
}

/// [`perf_to_json`] with a caller-provided profiler: phases the caller
/// already timed (matrix execution, report rendering, …) are merged with
/// the microbenchmark phases measured here into the `breakdowns` section.
pub fn perf_to_json_with(run: &MatrixRun, prof: PhaseProfiler) -> Json {
    perf_to_json_scaled(run, prof, COHORT_ERROR_POPULATION)
}

/// [`perf_to_json_with`] with the cohort-error population as a knob, so
/// the artifact shape can be exercised at toy scale in tests.
pub fn perf_to_json_scaled(
    run: &MatrixRun,
    mut prof: PhaseProfiler,
    cohort_population: u64,
) -> Json {
    const MINING_ITERS: u64 = 200_000;
    const CORE_EVENTS: u64 = 2_000_000;

    let mut root = Json::obj();
    root.set("schema", Json::Num(1.0));
    root.set(
        "note",
        Json::Str(
            "wall-clock observations; non-deterministic, never diffed in CI \
             (BENCH_harness.json is the deterministic artifact)"
                .to_owned(),
        ),
    );
    root.set("matrix", matrix_to_json(run));

    let mut micro = Json::obj();
    micro.set(
        "sha256_throughput_mib_s",
        Json::Num(prof.time("microbench/sha256", sha256_throughput_mib_s)),
    );

    let mut mining = Json::obj();
    let (midstate, naive) = prof.time("microbench/mining", || {
        (
            mining_midstate_hashes_per_sec(MINING_ITERS),
            mining_naive_hashes_per_sec(MINING_ITERS),
        )
    });
    mining.set("midstate_hashes_per_sec", Json::Num(midstate));
    mining.set("naive_hashes_per_sec", Json::Num(naive));
    mining.set("speedup", Json::Num(midstate / naive.max(1e-9)));
    micro.set("mining", mining);

    let mut engine = Json::obj();
    let median_of = |f: &dyn Fn() -> f64| {
        let mut v: Vec<f64> = (0..3).map(|_| f()).collect();
        v.sort_by(f64::total_cmp);
        v[1]
    };
    let (packed, reference) = prof.time("microbench/event_core", || {
        (
            median_of(&|| packed_events_per_sec(CORE_EVENTS)),
            median_of(&|| reference_events_per_sec(CORE_EVENTS)),
        )
    });
    // The ring-flood run advances 1 s warm-up + 20 s timed of simulated
    // time, so this phase gets a meaningful sim_secs in the breakdown.
    let ring = prof.time_with_sim("microbench/engine_ring_flood", || {
        (engine_events_per_sec(), 21.0)
    });
    engine.set("events_per_sec", Json::Num(ring));
    engine.set("core_packed_events_per_sec", Json::Num(packed));
    engine.set("core_reference_events_per_sec", Json::Num(reference));
    engine.set("core_speedup", Json::Num(packed / reference.max(1e-9)));
    micro.set("engine", engine);

    const ZIPF_SAMPLES: u64 = 2_000_000;
    let mut workload = Json::obj();
    let (alias, cdf) = prof.time("microbench/zipf_sampling", || {
        (
            median_of(&|| zipf_alias_samples_per_sec(ZIPF_SAMPLES)),
            median_of(&|| zipf_cdf_samples_per_sec(ZIPF_SAMPLES)),
        )
    });
    workload.set("zipf_alias_samples_per_sec", Json::Num(alias));
    workload.set("zipf_cdf_samples_per_sec", Json::Num(cdf));
    workload.set("zipf_alias_speedup", Json::Num(alias / cdf.max(1e-9)));
    // One simulated day at 1M users, cohorted: the driver replays the whole
    // population's demand as O(cohorts) events (86 400 sim-seconds).
    let (day_eps, day_events, day_requests) = prof
        .time_with_sim("microbench/workload_day_1m", || {
            (workload_day_throughput(1_000_000), 86_400.0)
        });
    workload.set("day_1m_events_per_sec", Json::Num(day_eps));
    workload.set("day_1m_schedule_events", Json::Num(day_events as f64));
    workload.set(
        "day_1m_represented_requests",
        Json::Num(day_requests as f64),
    );
    micro.set("workload", workload);

    // The storage market's hot path: RS encode on placement, reconstruct on
    // repair. One entry per codec point E17 sweeps, plus the replication
    // special case for scale.
    let mut market = Json::obj();
    let points: Vec<(usize, usize)> = vec![(4, 2), (8, 4), (1, 2)];
    let codecs = prof.time("microbench/erasure", || {
        points
            .iter()
            .map(|&(k, m)| {
                (
                    k,
                    m,
                    erasure_encode_mib_s(k, m),
                    erasure_reconstruct_mib_s(k, m, m.min(k)),
                )
            })
            .collect::<Vec<_>>()
    });
    for (k, m, enc, rec) in codecs {
        let mut e = Json::obj();
        e.set("encode_mib_s", Json::Num(enc));
        e.set("reconstruct_mib_s", Json::Num(rec));
        e.set("overhead", Json::Num((k + m) as f64 / k as f64));
        market.set(&format!("rs{k}_{m}"), e);
    }
    micro.set("market", market);

    // The app substrate's hot path: per-push delta merges into contract
    // state, and the summary a subscriber ships vs the state it spares.
    let mut app = Json::obj();
    let merges = prof.time("microbench/contract_merge", || {
        [256u64, 1024, 4096]
            .iter()
            .map(|&n| (n, median_of(&|| contract_merge_ops_per_sec(n))))
            .collect::<Vec<_>>()
    });
    for (n, ops_s) in merges {
        app.set(&format!("merge_{n}_ops_per_sec"), Json::Num(ops_s));
    }
    for ops in [128u64, 2048] {
        let (summary, state) = contract_summary_sizes(ops);
        let mut e = Json::obj();
        e.set("summary_bytes", Json::Num(summary as f64));
        e.set("state_bytes", Json::Num(state as f64));
        app.set(&format!("kv_{ops}_ops"), e);
    }
    micro.set("app", app);

    // The reactive-control plane: decision-kernel throughput plus the
    // wall-clock overhead a policy-on class day pays over policy-off.
    const POLICY_FRAMES: u64 = 1_000_000;
    let mut policy = Json::obj();
    let pol_fps = prof.time("microbench/policy_kernel", || {
        median_of(&|| policy_frames_per_sec(POLICY_FRAMES))
    });
    policy.set("frames_per_sec", Json::Num(pol_fps));
    let runners = agora::experiments::e16_cohort_runners();
    let find = |n: &str| {
        runners
            .iter()
            .find(|(name, _)| *name == n)
            .expect("known runner")
            .1
    };
    let (off_wall, on_wall) = prof.time_with_sim("microbench/policy_day_overhead", || {
        let t0 = Instant::now();
        std::hint::black_box(find("dht.off")(20171130, 1_000_000, 8));
        let off_wall = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        std::hint::black_box(find("dht.shed")(20171130, 1_000_000, 8));
        ((off_wall, t1.elapsed().as_secs_f64()), 2.0 * 86_400.0)
    });
    policy.set("e16_dht_day_off_secs", Json::Num(off_wall));
    policy.set("e16_dht_day_shed_secs", Json::Num(on_wall));
    policy.set(
        "policy_on_overhead",
        Json::Num(on_wall / off_wall.max(1e-9)),
    );
    root.set("policy", policy);

    root.set(
        "cohort_error",
        cohort_error_to_json(&mut prof, cohort_population),
    );

    root.set("microbench", micro);
    root.set("engine_parallel", engine_parallel_to_json(&mut prof));
    #[cfg(feature = "observe")]
    root.set("observer", observer_to_json(&mut prof));
    root.set("breakdowns", prof.to_json());
    root
}

/// The smoke-test hash doubles as a determinism anchor for the midstate path.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{run_matrix, MatrixConfig};
    use crate::registry::{ExperimentDef, Variant};
    use agora_sim::Metrics;

    fn tiny_run() -> MatrixRun {
        fn ok_run(seed: u64) -> Metrics {
            let mut m = Metrics::new();
            m.gauge_set("x", seed as f64);
            m
        }
        let registry = vec![ExperimentDef {
            id: "toy",
            title: "toy",
            variants: vec![Variant {
                label: "default",
                run: ok_run,
            }],
        }];
        let cfg = MatrixConfig {
            seeds_per_variant: 3,
            threads: 1,
            ..MatrixConfig::default()
        };
        run_matrix(&registry, &cfg)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Vec<Duration> = (1..=10).map(Duration::from_secs).collect();
        assert_eq!(percentile_secs(&mut s, 50.0), 5.0);
        assert_eq!(percentile_secs(&mut s, 95.0), 10.0);
        assert_eq!(percentile_secs(&mut s, 100.0), 10.0);
        let mut empty: Vec<Duration> = Vec::new();
        assert_eq!(percentile_secs(&mut empty, 50.0), 0.0);
    }

    #[test]
    fn perf_artifact_has_expected_shape() {
        let run = tiny_run();
        // Toy cohort-error population: the exact (one cohort per user)
        // runs are the expensive part of the artifact.
        let perf = perf_to_json_scaled(&run, PhaseProfiler::new(), 200);
        assert!(perf.get("matrix").is_some());
        let micro = perf.get("microbench").expect("microbench section");
        assert!(
            micro
                .get("sha256_throughput_mib_s")
                .and_then(Json::as_f64)
                .expect("throughput")
                > 0.0
        );
        let mining = micro.get("mining").expect("mining section");
        let speedup = mining
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("speedup");
        assert!(speedup > 0.0);
        let app = micro.get("app").expect("app section");
        assert!(
            app.get("merge_256_ops_per_sec")
                .and_then(Json::as_f64)
                .expect("merge throughput")
                > 0.0
        );
        let kv = app.get("kv_2048_ops").expect("kv size point");
        let summary = kv
            .get("summary_bytes")
            .and_then(Json::as_f64)
            .expect("summary bytes");
        let state = kv
            .get("state_bytes")
            .and_then(Json::as_f64)
            .expect("state bytes");
        assert!(
            summary * 10.0 < state,
            "the summary must be tiny next to the state: {summary} vs {state}"
        );
        let workload = micro.get("workload").expect("workload section");
        assert!(
            workload
                .get("zipf_alias_samples_per_sec")
                .and_then(Json::as_f64)
                .expect("alias throughput")
                > 0.0
        );
        // The 1M-user day must be cohort-priced: far fewer schedule events
        // than represented requests.
        let events = workload
            .get("day_1m_schedule_events")
            .and_then(Json::as_f64)
            .expect("schedule events");
        let requests = workload
            .get("day_1m_represented_requests")
            .and_then(Json::as_f64)
            .expect("requests");
        assert!(
            events > 0.0 && requests > 100.0 * events,
            "{events} {requests}"
        );
        let market = micro.get("market").expect("market section");
        for codec in ["rs4_2", "rs8_4", "rs1_2"] {
            let point = market.get(codec).expect(codec);
            assert!(
                point
                    .get("encode_mib_s")
                    .and_then(Json::as_f64)
                    .expect("encode throughput")
                    > 0.0,
                "{codec}"
            );
            assert!(
                point
                    .get("reconstruct_mib_s")
                    .and_then(Json::as_f64)
                    .expect("reconstruct throughput")
                    > 0.0,
                "{codec}"
            );
        }
        let exp = perf
            .get("matrix")
            .and_then(|m| m.get("experiments"))
            .and_then(|e| e.get("toy/default"))
            .expect("per-experiment summary");
        assert_eq!(exp.get("trials").and_then(Json::as_f64), Some(3.0));

        let par = perf
            .get("engine_parallel")
            .expect("engine_parallel section");
        assert!(par.get("cores").and_then(Json::as_f64).expect("cores") >= 1.0);
        for s in ["shards1", "shards2", "shards4", "shards8"] {
            for section in ["ring_flood", "e16_class"] {
                let point = par
                    .get(section)
                    .and_then(|r| r.get(s))
                    .unwrap_or_else(|| panic!("{section}.{s}"));
                assert!(
                    point
                        .get("events_per_sec")
                        .and_then(Json::as_f64)
                        .expect("events_per_sec")
                        > 0.0,
                    "{section}.{s}"
                );
            }
        }
        // The E16-class day must push real traffic through the engine, and
        // the serial point is its own speedup baseline by definition.
        let serial = par
            .get("e16_class")
            .and_then(|e| e.get("shards1"))
            .expect("e16 serial point");
        assert!(serial.get("events").and_then(Json::as_f64).expect("events") > 10_000.0);
        assert_eq!(
            serial.get("speedup_vs_serial").and_then(Json::as_f64),
            Some(1.0)
        );

        // The policy section reports the control plane's costs.
        let policy = perf.get("policy").expect("policy section");
        assert!(
            policy
                .get("frames_per_sec")
                .and_then(Json::as_f64)
                .expect("kernel throughput")
                > 0.0
        );
        assert!(
            policy
                .get("policy_on_overhead")
                .and_then(Json::as_f64)
                .expect("day overhead")
                > 0.0
        );

        // The cohort-error section covers every policy runner, with the
        // exact-mode ground truth recorded alongside the relative errors.
        let cohort = perf.get("cohort_error").expect("cohort_error section");
        assert_eq!(cohort.get("population").and_then(Json::as_f64), Some(200.0));
        for runner in [
            "dht.off",
            "dht.cache",
            "dht.shed",
            "storage.off",
            "storage.rebalance",
            "swarm.off",
            "swarm.seeders",
        ] {
            let e = cohort.get(runner).unwrap_or_else(|| panic!("{runner}"));
            assert!(
                e.get("exact_peak_overload")
                    .and_then(Json::as_f64)
                    .is_some(),
                "{runner}"
            );
            let err = e
                .get("peak_overload_rel_err_mean")
                .and_then(Json::as_f64)
                .expect("rel err");
            assert!(err.is_finite(), "{runner}: {err}");
        }
    }

    #[test]
    fn sharded_ring_flood_cross_fraction_tracks_topology() {
        // Successor stride 8 is shard-local at 4 shards (8 % 4 == 0): the
        // only routed work is timers and same-shard hops.
        let (eps_local, local) = sharded_ring_flood(4, 0);
        assert!(eps_local > 0.0);
        assert!(local.windows > 0);
        assert_eq!(
            local.cross_events, 0,
            "stride-8 ring must be shard-local at 4 shards"
        );
        // Stride 1 crosses a shard boundary on every hop.
        let (eps_cross, cross) = sharded_ring_flood(4, 1);
        assert!(eps_cross > 0.0);
        assert!(
            cross.cross_fraction() > 0.5,
            "stride-1 ring must be cross-shard dominated, got {}",
            cross.cross_fraction()
        );
    }

    #[test]
    fn breakdowns_merge_caller_and_microbench_phases() {
        let mut prof = PhaseProfiler::new();
        prof.record("matrix", Duration::from_millis(5), None);
        prof.time_with_sim("replay", || ((), 12.5));
        let rendered = prof.to_json();
        let phases = match rendered.get("phases") {
            Some(Json::Arr(v)) => v,
            other => panic!("phases must be an array, got {other:?}"),
        };
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("name").and_then(Json::as_str), Some("matrix"));
        assert_eq!(phases[0].get("sim_secs"), Some(&Json::Null));
        assert_eq!(phases[1].get("sim_secs").and_then(Json::as_f64), Some(12.5));
        assert!(
            rendered
                .get("profiled_wall_secs")
                .and_then(Json::as_f64)
                .expect("total")
                >= 0.005
        );
    }

    #[test]
    fn perf_artifact_includes_breakdowns_section() {
        let run = tiny_run();
        let mut prof = PhaseProfiler::new();
        prof.record("matrix", run.wall, None);
        let perf = perf_to_json_scaled(&run, prof, 200);
        let phases = match perf.get("breakdowns").and_then(|b| b.get("phases")) {
            Some(Json::Arr(v)) => v,
            other => panic!("breakdowns.phases must be an array, got {other:?}"),
        };
        let names: Vec<_> = phases
            .iter()
            .filter_map(|p| p.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"matrix"));
        assert!(names.contains(&"microbench/event_core"));
        assert!(names.contains(&"microbench/engine_ring_flood"));
    }

    #[test]
    fn midstate_and_naive_grind_agree() {
        // The two mining benches must measure the *same* function of nonce.
        let header = bench_header();
        let mid = header.pow_midstate();
        let mut h = header.clone();
        for nonce in [0u64, 1, 1000, u64::MAX] {
            h.nonce = nonce;
            assert_eq!(mid.hash_nonce(nonce), h.hash());
        }
    }

    #[test]
    fn engine_microbench_reports_positive_rate() {
        // Tiny event counts — this is a correctness smoke test, not a timing.
        assert!(reference_events_per_sec(10_000) > 0.0);
        assert!(packed_events_per_sec(10_000) > 0.0);
    }
}

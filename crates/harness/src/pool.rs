//! A minimal scoped-thread work-stealing pool.
//!
//! No external dependencies: workers are `std::thread::scope` threads, each
//! with its own deque of task indices. A worker pops from the *front* of its
//! own deque and, when empty, steals from the *back* of a victim's — the
//! classic split that keeps owner and thief off the same end. Tasks are
//! pure index-addressed closures and results land in index-addressed slots,
//! so the scheduling order (and therefore the thread count) can never
//! change what the caller observes.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Run `n` tasks `f(0) .. f(n-1)` on `threads` workers and return results in
/// index order. `threads` is clamped to `[1, n]`. Panics inside `f`
/// propagate; callers that need isolation wrap `f` in `catch_unwind`.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);

    // Preload deques round-robin so consecutive (often similarly heavy)
    // trials spread across workers; stealing rebalances the rest.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..n).step_by(threads).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    thread::scope(|s| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                let task = queues[w]
                    .lock()
                    .expect("pool queue poisoned")
                    .pop_front()
                    .or_else(|| {
                        // Steal from the back of the first non-empty victim.
                        (1..threads).find_map(|off| {
                            queues[(w + off) % threads]
                                .lock()
                                .expect("pool queue poisoned")
                                .pop_back()
                        })
                    });
                // No queue holds work: everything left is already running
                // on another worker, and nothing re-enqueues, so exit.
                let Some(i) = task else { break };
                let out = f(i);
                *slots[i].lock().expect("pool slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool slot poisoned")
                .expect("every task index was queued exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_index_order_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_indexed(1000, 8, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // Front-load all heavy tasks onto low indices (worker 0's deque under
        // round-robin with 2 threads gets half of them); stealing must still
        // finish everything.
        let out = run_indexed(64, 2, |i| {
            if i < 8 {
                // Busy-ish task.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc as usize
            } else {
                i
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[63], 63);
    }
}

//! The experiment registry: every `exp_*` entry point of
//! `agora::experiments`, wrapped behind one uniform signature
//! (`fn(seed) -> Metrics`) so the matrix can drive them interchangeably.
//!
//! Parameter sweeps are expressed as **variants**: E3 runs once per failure
//! fraction, each as its own variant with its own trials. Adding an
//! experiment (or a new sweep point) here automatically adds it to the
//! matrix, the JSON artifact, and the baseline diff.

use agora_sim::Metrics;

/// One sweep point of an experiment: a label plus a seeded runner.
#[derive(Clone, Copy)]
pub struct Variant {
    /// Stable label, part of the metric/baseline key (`e3/f0.20`).
    pub label: &'static str,
    /// Seeded entry point.
    pub run: fn(u64) -> Metrics,
}

/// A registered experiment with its sweep variants.
pub struct ExperimentDef {
    /// Experiment id (`e1` .. `e14`).
    pub id: &'static str,
    /// Human title for reports.
    pub title: &'static str,
    /// Sweep variants (at least one).
    pub variants: Vec<Variant>,
}

fn e3_f00(seed: u64) -> Metrics {
    agora::experiments::e3_metrics(seed, 0.0)
}

fn e3_f20(seed: u64) -> Metrics {
    agora::experiments::e3_metrics(seed, 0.2)
}

fn e3_f40(seed: u64) -> Metrics {
    agora::experiments::e3_metrics(seed, 0.4)
}

fn e15_i000(seed: u64) -> Metrics {
    agora::experiments::e15_metrics(seed, 0.0)
}

fn e15_i025(seed: u64) -> Metrics {
    agora::experiments::e15_metrics(seed, 0.25)
}

fn e15_i050(seed: u64) -> Metrics {
    agora::experiments::e15_metrics(seed, 0.5)
}

fn e15_i075(seed: u64) -> Metrics {
    agora::experiments::e15_metrics(seed, 0.75)
}

fn e15_i100(seed: u64) -> Metrics {
    agora::experiments::e15_metrics(seed, 1.0)
}

fn e16_p10k(seed: u64) -> Metrics {
    agora::experiments::e16_metrics(seed, 10_000)
}

fn e16_p100k(seed: u64) -> Metrics {
    agora::experiments::e16_metrics(seed, 100_000)
}

fn e16_p1m(seed: u64) -> Metrics {
    agora::experiments::e16_metrics(seed, 1_000_000)
}

fn e16p_p10k(seed: u64) -> Metrics {
    agora::experiments::e16_policy_metrics(seed, 10_000)
}

fn e16p_p100k(seed: u64) -> Metrics {
    agora::experiments::e16_policy_metrics(seed, 100_000)
}

fn e16p_p1m(seed: u64) -> Metrics {
    agora::experiments::e16_policy_metrics(seed, 1_000_000)
}

fn e18_p10k(seed: u64) -> Metrics {
    agora::experiments::e18_metrics(seed, 10_000)
}

fn e18_p100k(seed: u64) -> Metrics {
    agora::experiments::e18_metrics(seed, 100_000)
}

fn e18_p1m(seed: u64) -> Metrics {
    agora::experiments::e18_metrics(seed, 1_000_000)
}

fn e17_i000(seed: u64) -> Metrics {
    agora::experiments::e17_metrics(seed, 0.0)
}

fn e17_i050(seed: u64) -> Metrics {
    agora::experiments::e17_metrics(seed, 0.5)
}

fn e17_i100(seed: u64) -> Metrics {
    agora::experiments::e17_metrics(seed, 1.0)
}

fn single(id: &'static str, title: &'static str, run: fn(u64) -> Metrics) -> ExperimentDef {
    ExperimentDef {
        id,
        title,
        variants: vec![Variant {
            label: "default",
            run,
        }],
    }
}

/// The full experiment matrix, in report order.
pub fn registry() -> Vec<ExperimentDef> {
    use agora::experiments as exp;
    vec![
        single(
            "e1",
            "Naming: consensus vs registrar tradeoff",
            exp::e1_metrics,
        ),
        single("e2", "Naming: attack suite", exp::e2_metrics),
        ExperimentDef {
            id: "e3",
            title: "Group communication availability under failures",
            variants: vec![
                Variant {
                    label: "f0.00",
                    run: e3_f00,
                },
                Variant {
                    label: "f0.20",
                    run: e3_f20,
                },
                Variant {
                    label: "f0.40",
                    run: e3_f40,
                },
            ],
        },
        single(
            "e4",
            "Group communication metadata privacy",
            exp::e4_metrics,
        ),
        single(
            "e5",
            "Storage proofs vs cheating strategies",
            exp::e5_metrics,
        ),
        single("e6", "Storage durability design space", exp::e6_metrics),
        single("e7", "Hostless web availability", exp::e7_metrics),
        single("e8", "Storage quality vs quantity", exp::e8_metrics),
        single("e9", "Blockchain operating costs", exp::e9_metrics),
        single("e10", "Federated failover", exp::e10_metrics),
        single("e11", "Guerrilla relay", exp::e11_metrics),
        single("e12", "Moderation vs freedom tension", exp::e12_metrics),
        single("e13", "The financing gap", exp::e13_metrics),
        single("e14", "Usenet collapse economics", exp::e14_metrics),
        ExperimentDef {
            id: "e15",
            title: "Graceful degradation under fault injection",
            variants: vec![
                Variant {
                    label: "i0.00",
                    run: e15_i000,
                },
                Variant {
                    label: "i0.25",
                    run: e15_i025,
                },
                Variant {
                    label: "i0.50",
                    run: e15_i050,
                },
                Variant {
                    label: "i0.75",
                    run: e15_i075,
                },
                Variant {
                    label: "i1.00",
                    run: e15_i100,
                },
            ],
        },
        ExperimentDef {
            id: "e16",
            title: "Population-scale flash crowd (diurnal day, cohorted)",
            variants: vec![
                Variant {
                    label: "p10k",
                    run: e16_p10k,
                },
                Variant {
                    label: "p100k",
                    run: e16_p100k,
                },
                Variant {
                    label: "p1m",
                    run: e16_p1m,
                },
            ],
        },
        ExperimentDef {
            id: "e17",
            title: "Storage market: audit/slashing/repair under chaos",
            variants: vec![
                Variant {
                    label: "i0.00",
                    run: e17_i000,
                },
                Variant {
                    label: "i0.50",
                    run: e17_i050,
                },
                Variant {
                    label: "i1.00",
                    run: e17_i100,
                },
                Variant {
                    label: "workload",
                    run: agora::experiments::e17_workload_metrics,
                },
            ],
        },
        // Appended after e17 (not folded into the e16 def) so every
        // pre-policy trial keeps its positional index — and therefore its
        // derived seed and its exact bytes in BENCH_harness.json. The
        // policy-off dormancy proof rests on that: adding the reactive
        // plane changed nothing upstream.
        ExperimentDef {
            id: "e16p",
            title: "Demand-adaptive policies under the E16 flash crowd",
            variants: vec![
                Variant {
                    label: "p10k",
                    run: e16p_p10k,
                },
                Variant {
                    label: "p100k",
                    run: e16p_p100k,
                },
                Variant {
                    label: "p1m",
                    run: e16p_p1m,
                },
            ],
        },
        // Same rule as e16p: appended last so every earlier trial keeps
        // its positional index, derived seed, and exact baseline bytes.
        ExperimentDef {
            id: "e18",
            title: "Typed-contract apps: delta sync vs centralized hosting",
            variants: vec![
                Variant {
                    label: "p10k",
                    run: e18_p10k,
                },
                Variant {
                    label: "p100k",
                    run: e18_p100k,
                },
                Variant {
                    label: "p1m",
                    run: e18_p1m,
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_seventeen_experiments() {
        let reg = registry();
        assert_eq!(reg.len(), 19);
        for (i, def) in reg.iter().take(17).enumerate() {
            assert_eq!(def.id, format!("e{}", i + 1));
        }
        assert_eq!(reg[17].id, "e16p", "policy def rides after e17");
        assert_eq!(reg[18].id, "e18", "app def rides after e16p");
        for def in &reg {
            assert!(!def.variants.is_empty());
        }
    }

    #[test]
    fn labels_are_unique_per_experiment() {
        for def in registry() {
            let mut labels: Vec<_> = def.variants.iter().map(|v| v.label).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), def.variants.len(), "{}", def.id);
        }
    }

    #[test]
    fn a_cheap_variant_produces_metrics() {
        let reg = registry();
        let e13 = reg.iter().find(|d| d.id == "e13").unwrap();
        let m = (e13.variants[0].run)(7);
        assert!(m.gauges().count() > 0);
    }
}

//! Human-readable matrix report: per-variant status and timing plus
//! streaming percentile telemetry over trial durations (the P² sketch's
//! production use — it never buffers the full duration stream).

use std::time::Duration;

use agora_sim::P2Quantile;

use crate::matrix::{MatrixRun, TrialStatus};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Render the run summary table.
pub fn render(run: &MatrixRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "agora-harness matrix: {} trials ({} experiments x seeds), {} threads, root seed {}\n\n",
        run.outcomes.len(),
        {
            let mut ids: Vec<&str> = run.outcomes.iter().map(|o| o.spec.experiment).collect();
            ids.dedup();
            ids.len()
        },
        run.config.threads,
        run.config.root_seed,
    ));
    out.push_str(&format!(
        "{:<16} {:>6} {:>5} {:>10} {:>10} {:>10}\n",
        "experiment", "trials", "ok", "mean ms", "min ms", "max ms"
    ));

    // Group by (experiment, variant) in matrix order.
    let mut groups: Vec<(&str, &str)> = Vec::new();
    for o in &run.outcomes {
        let key = (o.spec.experiment, o.spec.variant);
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let mut p50 = P2Quantile::p50();
    let mut p95 = P2Quantile::p95();
    for o in &run.outcomes {
        p50.record(ms(o.elapsed));
        p95.record(ms(o.elapsed));
    }
    for (exp, variant) in groups {
        let outcomes: Vec<_> = run
            .outcomes
            .iter()
            .filter(|o| o.spec.experiment == exp && o.spec.variant == variant)
            .collect();
        let ok = outcomes
            .iter()
            .filter(|o| o.status == TrialStatus::Ok)
            .count();
        let times: Vec<f64> = outcomes.iter().map(|o| ms(o.elapsed)).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let label = if variant == "default" {
            exp.to_owned()
        } else {
            format!("{exp}/{variant}")
        };
        out.push_str(&format!(
            "{label:<16} {:>6} {:>5} {mean:>10.1} {min:>10.1} {max:>10.1}\n",
            outcomes.len(),
            ok,
        ));
    }

    out.push_str(&format!(
        "\ntrial duration p50 {:.1} ms, p95 {:.1} ms (P2 streaming sketch over {} trials)\n",
        p50.value(),
        p95.value(),
        p50.count(),
    ));
    out.push_str(&format!(
        "wall clock {:.2} s on {} threads\n",
        run.wall.as_secs_f64(),
        run.config.threads
    ));

    let over = run.over_budget();
    if !over.is_empty() {
        out.push_str(&format!(
            "\nWARNING: {} trial(s) exceeded the {:.0} s per-trial budget:\n",
            over.len(),
            run.config.budget.as_secs_f64()
        ));
        for o in over {
            out.push_str(&format!(
                "  {}/{} seed#{} took {:.2} s\n",
                o.spec.experiment,
                o.spec.variant,
                o.spec.seed_ordinal,
                o.elapsed.as_secs_f64()
            ));
        }
    }
    for o in &run.outcomes {
        if let TrialStatus::Panicked(msg) = &o.status {
            out.push_str(&format!(
                "\nFAILED: {}/{} seed#{} panicked: {msg}\n",
                o.spec.experiment, o.spec.variant, o.spec.seed_ordinal
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{run_matrix, MatrixConfig};
    use crate::registry::{ExperimentDef, Variant};
    use agora_sim::Metrics;

    #[test]
    fn report_mentions_each_group_and_telemetry() {
        fn quick(_: u64) -> Metrics {
            Metrics::new()
        }
        let reg = vec![ExperimentDef {
            id: "quick",
            title: "quick",
            variants: vec![
                Variant {
                    label: "default",
                    run: quick,
                },
                Variant {
                    label: "alt",
                    run: quick,
                },
            ],
        }];
        let cfg = MatrixConfig {
            seeds_per_variant: 2,
            threads: 2,
            ..MatrixConfig::default()
        };
        let text = render(&run_matrix(&reg, &cfg));
        assert!(text.contains("quick/alt"));
        assert!(text.contains("P2 streaming sketch"));
        assert!(text.contains("wall clock"));
        assert!(!text.contains("FAILED"));
    }
}

//! Harness surface of the `agora-trace` layer: replay one trial with the
//! flight recorder on, serialize the recording to a deterministic
//! `TRACE_<target>.jsonl` artifact, validate such artifacts, and answer
//! `--explain` provenance queries (walk a recorded metric sample back
//! through its causal chain of deliveries and timer fires).
//!
//! Trace artifacts are **wall-clock-free**: every field is a pure function
//! of `(target, seed)`, so repeated runs are byte-identical and the files
//! are CI-diffable — unlike `BENCH_perf.json`, which exists to carry
//! wall-clock numbers and is never diffed.

use std::fmt::Write as _;
use std::rc::Rc;

use agora_crypto::sha256;
use agora_dht::{Contact, DhtConfig, DhtNode, DhtResult};
use agora_sim::trace::{
    with_thread_sink, FlightRecorder, SharedRecorder, SpanAgg, TraceEvent, TraceKind,
};
use agora_sim::{DeviceClass, Metrics, NodeId, SimDuration, Simulation};

use crate::json::Json;
use crate::matrix::{build_trials, MatrixConfig};
use crate::registry::ExperimentDef;

/// JSONL schema version for `TRACE_*.jsonl`.
pub const TRACE_SCHEMA: u32 = 1;

/// One completed trace replay.
pub struct TraceRun {
    /// Target id (`dht`, or an experiment id from the registry).
    pub target: String,
    /// Variant label within the target.
    pub variant: String,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Metrics the trial reported (same values as an untraced run).
    pub metrics: Metrics,
    /// The flight recording.
    pub recorder: FlightRecorder,
}

/// Replay one trial of `target` with a fresh flight recorder installed.
///
/// Targets: `dht` (the harness-local Kademlia provenance scenario, seeded
/// from the config's root seed), an experiment id (`e7` — first variant),
/// or `id/variant` (`e3/f0.20`). Registry targets replay the exact first
/// matching trial of the default matrix — same derived seed, same metrics.
pub fn run_trace_target(
    registry: &[ExperimentDef],
    cfg: &MatrixConfig,
    target: &str,
    ring_capacity: usize,
) -> Result<TraceRun, String> {
    let (target_id, variant, seed, run): (String, String, u64, fn(u64) -> Metrics) = if target
        == "dht"
    {
        (
            "dht".to_owned(),
            "default".to_owned(),
            cfg.root_seed,
            dht_scenario,
        )
    } else {
        let (want_id, want_variant) = match target.split_once('/') {
            Some((id, v)) => (id, Some(v)),
            None => (target, None),
        };
        let trial = build_trials(registry, cfg)
                .into_iter()
                .find(|(spec, _)| {
                    spec.experiment == want_id
                        && want_variant.is_none_or(|v| spec.variant == v)
                        && spec.seed_ordinal == 0
                })
                .ok_or_else(|| format!("unknown trace target '{target}' (try 'dht' or an experiment id like 'e7' or 'e3/f0.20')"))?;
        (
            trial.0.experiment.to_owned(),
            trial.0.variant.to_owned(),
            trial.0.seed,
            trial.1,
        )
    };

    let shared = SharedRecorder::from_recorder(FlightRecorder::new(ring_capacity));
    let handle = shared.clone();
    // The sink factory is thread-local and removed on return, so every
    // `Simulation` the trial constructs — however deep — appends to this
    // run's recorder and nothing leaks to later work on the thread. The
    // replay honours `--shards` like the matrix does; sharded dispatch is
    // the serial order, so the trace bytes don't depend on it.
    let metrics = agora_sim::with_shards(cfg.shards, || {
        with_thread_sink(move || Box::new(handle.clone()), || run(seed))
    });
    Ok(TraceRun {
        target: target_id,
        variant,
        seed,
        metrics,
        recorder: shared.snapshot(),
    })
}

/// The harness-local DHT provenance scenario: a 24-node Kademlia overlay
/// (no matrix experiment exercises `agora-dht` directly) that performs
/// warm-up lookups, several PUTs, a replica failure, and GETs — producing
/// `dht.lookup_secs` / `dht.lookup_hops` trace points with multi-hop causal
/// chains, plus loss and receiver-down drop records. Deterministic in
/// `seed`; returns the engine metrics like any registry experiment.
pub fn dht_scenario(seed: u64) -> Metrics {
    const N: usize = 24;
    let mut sim: Simulation<DhtNode> = Simulation::new(seed);
    let boot_key = sha256(b"trace-dht-0");
    let mut ids = Vec::new();
    for i in 0..N {
        let key = sha256(format!("trace-dht-{i}").as_bytes());
        let bootstrap = if i == 0 {
            vec![]
        } else {
            vec![Contact {
                key: boot_key,
                addr: NodeId(0),
            }]
        };
        ids.push(sim.add_node(
            DhtNode::new(key, DhtConfig::default(), bootstrap),
            DeviceClass::PersonalComputer,
        ));
    }
    sim.set_loss_rate(0.02);

    // Warm routing tables: every node locates its own neighbourhood.
    for (i, &id) in ids.iter().enumerate() {
        let target = sha256(format!("warm-{i}").as_bytes());
        sim.with_ctx(id, |n, ctx| n.start_find_node(ctx, target));
    }
    sim.run_for(SimDuration::from_secs(60));

    // Publish a handful of values from one corner of the overlay.
    let payload: Rc<[u8]> = Rc::from(&b"the barriers to overthrowing internet feudalism"[..]);
    let keys: Vec<_> = (0..4)
        .map(|i| sha256(format!("value-{i}").as_bytes()))
        .collect();
    for (i, &key) in keys.iter().enumerate() {
        sim.with_ctx(ids[1 + i], |n, ctx| n.start_put(ctx, key, payload.clone()));
    }
    sim.run_for(SimDuration::from_secs(60));

    // Fail one node so deliveries to it surface receiver-down drops.
    sim.kill(ids[2]);

    // Distant nodes fetch every value: iterative FIND_VALUE with real hop
    // chains — the records `--explain dht.lookup_secs` walks.
    let mut gets = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        let getter = ids[N - 1 - i];
        let op = sim
            .with_ctx(getter, |n, ctx| n.start_get(ctx, key))
            .expect("getter is up");
        gets.push((getter, op));
    }
    sim.run_for(SimDuration::from_secs(60));
    sim.revive(ids[2]);
    sim.run_for(SimDuration::from_secs(30));

    let mut metrics = sim.metrics().clone();
    let found = gets
        .iter()
        .filter(|&&(getter, op)| {
            matches!(
                sim.node_mut(getter).take_result(op),
                Some(DhtResult::Found { .. })
            )
        })
        .count();
    metrics.incr("trace_dht.gets_found", found as u64);
    metrics
}

fn hex_key(key: u128) -> String {
    format!("0x{key:032x}")
}

fn parse_hex_key(s: &str) -> Option<u128> {
    u128::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn node_json(node: NodeId) -> Json {
    if node == NodeId(u32::MAX) {
        Json::Str("sim".to_owned())
    } else {
        Json::Num(node.0 as f64)
    }
}

fn event_to_json(ev: &TraceEvent) -> Json {
    let mut line = Json::obj();
    line.set("type", Json::Str("event".to_owned()));
    line.set("key", Json::Str(hex_key(ev.key)));
    line.set("parent", Json::Str(hex_key(ev.parent)));
    line.set("at_micros", Json::Num(ev.at.micros() as f64));
    line.set("node", node_json(ev.node));
    line.set("kind", Json::Str(ev.kind.label().to_owned()));
    match ev.kind {
        TraceKind::SimStart { seed } => line.set("seed", Json::Num(seed as f64)),
        TraceKind::Send { to, bytes } => {
            line.set("to", Json::Num(to.0 as f64));
            line.set("bytes", Json::Num(bytes as f64));
        }
        TraceKind::Deliver { from } => line.set("from", Json::Num(from.0 as f64)),
        TraceKind::DropSend { to, bytes, reason } => {
            line.set("to", Json::Num(to.0 as f64));
            line.set("bytes", Json::Num(bytes as f64));
            line.set("reason", Json::Str(reason.label().to_owned()));
        }
        TraceKind::DropDeliver { from, reason } => {
            line.set("from", Json::Num(from.0 as f64));
            line.set("reason", Json::Str(reason.label().to_owned()));
        }
        TraceKind::TimerSet { tag }
        | TraceKind::TimerFire { tag }
        | TraceKind::TimerDrop { tag } => line.set("tag", Json::Num(tag as f64)),
        TraceKind::ChurnUp | TraceKind::ChurnDown => {}
        TraceKind::Partition { group } => line.set("group", Json::Num(group as f64)),
        TraceKind::Point { name, value } => {
            line.set("name", Json::Str(name.to_owned()));
            line.set("value", Json::Num(value));
        }
    }
    line
}

fn span_to_json(key: &str, span: &SpanAgg) -> Json {
    let mut line = Json::obj();
    line.set("type", Json::Str("span".to_owned()));
    line.set("key", Json::Str(key.to_owned()));
    line.set("count", Json::Num(span.count as f64));
    line.set("bytes", Json::Num(span.bytes as f64));
    line.set("latency", hist_summary(&span.latency));
    line.set("values", hist_summary(&span.values));
    line
}

fn hist_summary(h: &agora_sim::Histogram) -> Json {
    if h.is_empty() {
        return Json::Null;
    }
    let mut h = h.clone();
    let mut s = Json::obj();
    s.set("count", Json::Num(h.count() as f64));
    s.set("mean", Json::Num(h.mean()));
    // `try_min`/`try_max`: the empty case is handled above, but the checked
    // form keeps infinite sentinels out of artifacts by construction.
    s.set("min", Json::Num(h.try_min().unwrap_or(0.0)));
    s.set("max", Json::Num(h.try_max().unwrap_or(0.0)));
    s.set("p50", Json::Num(h.percentile(50.0)));
    s.set("p99", Json::Num(h.percentile(99.0)));
    s
}

/// Serialize a trace run to the JSONL artifact: a header line, one line per
/// retained ring event (arrival order), one line per span (key order).
/// Byte-identical across repeated runs of the same target and seed.
pub fn trace_to_jsonl(run: &TraceRun) -> String {
    let rec = &run.recorder;
    let mut out = String::new();
    let mut header = Json::obj();
    header.set("type", Json::Str("header".to_owned()));
    header.set("schema", Json::Num(TRACE_SCHEMA as f64));
    header.set("target", Json::Str(run.target.clone()));
    header.set("variant", Json::Str(run.variant.clone()));
    header.set("seed", Json::Num(run.seed as f64));
    header.set("ring_capacity", Json::Num(rec.capacity() as f64));
    header.set("events", Json::Num(rec.len() as f64));
    header.set("evicted", Json::Num(rec.evicted() as f64));
    header.set("spans", Json::Num(rec.spans().count() as f64));
    out.push_str(&header.render_compact());
    out.push('\n');
    for ev in rec.events() {
        out.push_str(&event_to_json(ev).render_compact());
        out.push('\n');
    }
    for (key, span) in rec.spans() {
        out.push_str(&span_to_json(key, span).render_compact());
        out.push('\n');
    }
    out
}

/// Summary returned by [`validate_jsonl`].
#[derive(Debug, PartialEq, Eq)]
pub struct TraceFileSummary {
    /// Event lines seen.
    pub events: usize,
    /// Span lines seen.
    pub spans: usize,
}

/// The tiny in-repo `TRACE_*.jsonl` schema checker CI runs: every line must
/// parse as JSON; the first line must be a schema-1 header whose
/// `events`/`spans` counts match the body; event lines need well-formed hex
/// keys, a known kind label, and that kind's fields; span lines need
/// key/count. Returns the body counts on success.
pub fn validate_jsonl(text: &str) -> Result<TraceFileSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty trace file")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: first line must be the header".to_owned());
    }
    if header.get("schema").and_then(Json::as_f64) != Some(TRACE_SCHEMA as f64) {
        return Err(format!("line 1: unsupported schema (want {TRACE_SCHEMA})"));
    }
    for field in ["target", "variant"] {
        if header.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("line 1: header missing string field '{field}'"));
        }
    }
    for field in ["seed", "ring_capacity", "events", "evicted", "spans"] {
        if header.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("line 1: header missing numeric field '{field}'"));
        }
    }

    let mut summary = TraceFileSummary {
        events: 0,
        spans: 0,
    };
    for (ix, line) in lines {
        let lineno = ix + 1;
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        match v.get("type").and_then(Json::as_str) {
            Some("event") => {
                validate_event_line(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                summary.events += 1;
            }
            Some("span") => {
                if v.get("key").and_then(Json::as_str).is_none()
                    || v.get("count").and_then(Json::as_f64).is_none()
                {
                    return Err(format!("line {lineno}: span line needs key and count"));
                }
                if summary.events == 0 && header.get("events").and_then(Json::as_f64) != Some(0.0) {
                    return Err(format!("line {lineno}: span lines before event lines"));
                }
                summary.spans += 1;
            }
            other => return Err(format!("line {lineno}: unknown line type {other:?}")),
        }
    }
    let want_events = header.get("events").and_then(Json::as_f64).unwrap_or(-1.0);
    if want_events != summary.events as f64 {
        return Err(format!(
            "header claims {want_events} events, body has {}",
            summary.events
        ));
    }
    let want_spans = header.get("spans").and_then(Json::as_f64).unwrap_or(-1.0);
    if want_spans != summary.spans as f64 {
        return Err(format!(
            "header claims {want_spans} spans, body has {}",
            summary.spans
        ));
    }
    Ok(summary)
}

fn validate_event_line(v: &Json) -> Result<(), String> {
    for field in ["key", "parent"] {
        let s = v
            .get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event missing '{field}'"))?;
        parse_hex_key(s).ok_or_else(|| format!("'{field}' is not a 0x-prefixed hex key: {s}"))?;
    }
    if v.get("at_micros").and_then(Json::as_f64).is_none() {
        return Err("event missing 'at_micros'".to_owned());
    }
    let node_ok = matches!(v.get("node"), Some(Json::Num(_)))
        || v.get("node").and_then(Json::as_str) == Some("sim");
    if !node_ok {
        return Err("event 'node' must be a number or \"sim\"".to_owned());
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("event missing 'kind'")?;
    let required: &[&str] = match kind {
        "sim_start" => &["seed"],
        "send" => &["to", "bytes"],
        "deliver" => &["from"],
        "drop_send" => &["to", "bytes", "reason"],
        "drop_deliver" => &["from", "reason"],
        "timer_set" | "timer_fire" | "timer_drop" => &["tag"],
        "churn_up" | "churn_down" => &[],
        "partition" => &["group"],
        "point" => &["name", "value"],
        other => return Err(format!("unknown event kind '{other}'")),
    };
    for field in required {
        if v.get(field).is_none() {
            return Err(format!("'{kind}' event missing '{field}'"));
        }
    }
    Ok(())
}

/// A resolved `--explain` query: the rendered chain plus its depth (number
/// of enqueue links resolved — deliveries and timer fires walked through).
pub struct Explanation {
    /// Human-readable chain, one step per line.
    pub text: String,
    /// Resolved causal links (≥ 1 whenever the sample fired inside an event
    /// handler whose enqueue record is still in the ring).
    pub depth: usize,
}

fn node_label(node: NodeId) -> String {
    if node == NodeId(u32::MAX) {
        "sim".to_owned()
    } else {
        format!("n{}", node.0)
    }
}

/// Walk the causal chain of the most recent `Point` record named `metric`:
/// point → the event whose handler emitted it → the send/arm that enqueued
/// that event → its parent, and so on until an external injection (parent
/// 0) or a record evicted from the ring. Returns `None` if no such sample
/// was recorded.
pub fn explain_metric(rec: &FlightRecorder, metric: &str) -> Option<Explanation> {
    let point = rec
        .events()
        .filter(|e| matches!(e.kind, TraceKind::Point { name, .. } if name == metric))
        .last()?;
    let TraceKind::Point { value, .. } = point.kind else {
        unreachable!("filtered to points");
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "causal chain for '{metric}' = {value} (recorded at {:.6}s on {}):",
        point.at.secs_f64(),
        node_label(point.node)
    );
    let _ = writeln!(
        text,
        "  [0] sample emitted during event {}",
        hex_key(point.key)
    );
    let mut depth = 0usize;
    let mut step = 1usize;
    let mut key = point.parent;
    while key != 0 && step <= 64 {
        let Some(enq) = rec.find_enqueue(key) else {
            let _ = writeln!(
                text,
                "  [{step}] event {} — enqueue record not in ring (evicted, or an engine-internal event)",
                hex_key(key)
            );
            break;
        };
        match enq.kind {
            TraceKind::Send { to, bytes } => {
                let _ = writeln!(
                    text,
                    "  [{step}] delivery {}: message sent by {} to {} at {:.6}s ({bytes} bytes)",
                    hex_key(key),
                    node_label(enq.node),
                    node_label(to),
                    enq.at.secs_f64(),
                );
            }
            TraceKind::TimerSet { tag } => {
                let _ = writeln!(
                    text,
                    "  [{step}] timer fire {}: armed by {} at {:.6}s (tag {tag})",
                    hex_key(key),
                    node_label(enq.node),
                    enq.at.secs_f64(),
                );
            }
            _ => unreachable!("find_enqueue returns only Send/TimerSet"),
        }
        depth += 1;
        key = enq.parent;
        step += 1;
        if key == 0 {
            let _ = writeln!(text, "  [{step}] external injection (experiment driver)");
        }
    }
    Some(Explanation { text, depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    fn light_cfg() -> MatrixConfig {
        MatrixConfig {
            threads: 1,
            ..MatrixConfig::default()
        }
    }

    #[test]
    fn dht_scenario_emits_points_and_multi_hop_chains() {
        let run = run_trace_target(&registry(), &light_cfg(), "dht", 1 << 20).expect("dht target");
        assert_eq!(run.target, "dht");
        let rec = &run.recorder;
        assert_eq!(rec.evicted(), 0, "ring sized to hold the full scenario");
        assert!(
            rec.span("dht.lookup_secs").is_some(),
            "trace points recorded"
        );
        assert!(rec.span("net.drop.loss").is_some(), "loss drops recorded");
        assert!(
            rec.span("net.drop.receiver_down").is_some(),
            "receiver-down drops recorded"
        );
        assert!(run.metrics.counter("trace_dht.gets_found") >= 1);
        let explained = explain_metric(rec, "dht.lookup_secs").expect("sample exists");
        assert!(
            explained.depth >= 3,
            "chain depth {} < 3:\n{}",
            explained.depth,
            explained.text
        );
    }

    #[test]
    fn trace_jsonl_is_deterministic_and_valid() {
        let reg = registry();
        let cfg = light_cfg();
        let a = trace_to_jsonl(&run_trace_target(&reg, &cfg, "dht", 4096).unwrap());
        let b = trace_to_jsonl(&run_trace_target(&reg, &cfg, "dht", 4096).unwrap());
        assert_eq!(a, b, "TRACE jsonl must be byte-identical across runs");
        let summary = validate_jsonl(&a).expect("artifact validates");
        assert!(summary.events > 0 && summary.spans > 0);
    }

    #[test]
    fn registry_target_replays_matrix_trial_with_identical_metrics() {
        let reg = registry();
        let cfg = light_cfg();
        let run = run_trace_target(&reg, &cfg, "e3/f0.20", 1024).expect("registry target");
        assert_eq!((run.target.as_str(), run.variant.as_str()), ("e3", "f0.20"));
        // Replaying under the recorder must not change what the trial
        // reports: compare against an untraced run of the same seed.
        let untraced = agora::experiments::e3_metrics(run.seed, 0.2);
        let traced: Vec<_> = run.metrics.counters().collect();
        let plain: Vec<_> = untraced.counters().collect();
        assert_eq!(traced, plain);
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let reg = registry();
        assert!(run_trace_target(&reg, &light_cfg(), "e99", 16).is_err());
        assert!(run_trace_target(&reg, &light_cfg(), "e3/f9.99", 16).is_err());
    }

    #[test]
    fn validator_rejects_malformed_artifacts() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{\"type\":\"event\"}").is_err(), "no header");
        let bad_schema = "{\"type\":\"header\",\"schema\":99,\"target\":\"x\",\"variant\":\"d\",\"seed\":1,\"ring_capacity\":4,\"events\":0,\"evicted\":0,\"spans\":0}";
        assert!(validate_jsonl(bad_schema).is_err());
        let miscounted = "{\"type\":\"header\",\"schema\":1,\"target\":\"x\",\"variant\":\"d\",\"seed\":1,\"ring_capacity\":4,\"events\":3,\"evicted\":0,\"spans\":0}";
        assert!(validate_jsonl(miscounted).is_err(), "event count mismatch");
        let bad_key = "{\"type\":\"header\",\"schema\":1,\"target\":\"x\",\"variant\":\"d\",\"seed\":1,\"ring_capacity\":4,\"events\":1,\"evicted\":0,\"spans\":0}\n{\"type\":\"event\",\"key\":\"zzz\",\"parent\":\"0x0\",\"at_micros\":0,\"node\":0,\"kind\":\"churn_up\"}";
        assert!(validate_jsonl(bad_key).is_err(), "malformed hex key");
    }

    #[test]
    fn explain_handles_missing_metric() {
        let rec = FlightRecorder::new(4);
        assert!(explain_metric(&rec, "no.such.metric").is_none());
    }
}

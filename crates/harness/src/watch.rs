//! `--watch`: a wall-clock heartbeat for long runs, on **stderr only**.
//!
//! Artifacts in this repo are deterministic by contract, so wall-clock
//! progress can never live in them. The watch thread instead samples two
//! live sources a few times a second's worth apart and prints a one-line
//! heartbeat: the matrix trial counter (bumped by `run_matrix` as each
//! trial finishes) and the engine's cumulative sharded-window/barrier-stall
//! tallies ([`agora_sim::shard_watch_counters`]). Nothing here feeds back
//! into any run — reads are relaxed-atomic and purely advisory — so
//! `--watch` cannot change a single artifact byte.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static TRIALS_DONE: AtomicUsize = AtomicUsize::new(0);

/// Record one finished trial. Called by `run_matrix` unconditionally — a
/// relaxed atomic bump per *trial* (not per event) is free. Single-trial
/// drivers outside the matrix (`--observe`) bump it themselves.
pub fn trial_finished() {
    TRIALS_DONE.fetch_add(1, Ordering::Relaxed);
}

/// A running heartbeat; dropping it stops the thread after a final line.
pub struct WatchGuard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start the heartbeat for a run of `total` trials, printing roughly every
/// `period`. Resets the trial counter, so start it before the run begins.
pub fn start(total: usize, period: Duration) -> WatchGuard {
    TRIALS_DONE.store(0, Ordering::Relaxed);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let started = Instant::now();
    let (windows0, stalls0) = agora_sim::shard_watch_counters();
    let thread = std::thread::Builder::new()
        .name("agora-watch".to_owned())
        .spawn(move || {
            loop {
                // Sleep in short slices so dropping the guard ends the
                // thread promptly rather than after a full period.
                let tick_end = Instant::now() + period;
                while Instant::now() < tick_end {
                    if stop_flag.load(Ordering::Relaxed) {
                        eprintln!("{}", heartbeat(total, started, windows0, stalls0, true));
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                eprintln!("{}", heartbeat(total, started, windows0, stalls0, false));
            }
        })
        .expect("spawning the watch thread");
    WatchGuard {
        stop,
        thread: Some(thread),
    }
}

fn heartbeat(total: usize, started: Instant, windows0: u64, stalls0: u64, fin: bool) -> String {
    heartbeat_line(
        TRIALS_DONE.load(Ordering::Relaxed).min(total),
        total,
        started,
        windows0,
        stalls0,
        fin,
    )
}

fn heartbeat_line(
    done: usize,
    total: usize,
    started: Instant,
    windows0: u64,
    stalls0: u64,
    fin: bool,
) -> String {
    let elapsed = started.elapsed().as_secs_f64();
    let eta = if done > 0 && done < total {
        format!(
            ", eta {:.0}s",
            elapsed / done as f64 * (total - done) as f64
        )
    } else {
        String::new()
    };
    let (windows, stalls) = agora_sim::shard_watch_counters();
    let shardinfo = if windows > windows0 {
        format!(
            " | shard windows +{} (stalls +{})",
            windows - windows0,
            stalls - stalls0
        )
    } else {
        String::new()
    };
    let tag = if fin { "done" } else { "watch" };
    format!("[{tag}] {done}/{total} trials, {elapsed:.1}s elapsed{eta}{shardinfo}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_reports_progress_and_eta_on_stderr_text() {
        let started = Instant::now() - Duration::from_secs(10);
        let line = heartbeat_line(1, 4, started, 0, 0, false);
        assert!(line.starts_with("[watch] 1/4 trials"), "{line}");
        assert!(line.contains("eta"), "{line}");
        let done = heartbeat_line(1, 1, started, 0, 0, true);
        assert!(done.starts_with("[done] 1/1 trials"), "{done}");
        assert!(!done.contains("eta"), "{done}");
    }

    #[test]
    fn guard_stops_the_thread_promptly() {
        let guard = start(3, Duration::from_secs(3600));
        let begun = Instant::now();
        drop(guard);
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "watch thread should exit within a slice, not a period"
        );
    }
}

//! The harness determinism contract: thread count is a pure performance
//! knob. The JSON artifact — trials, metrics, aggregates — must be
//! byte-identical at 1, 2, and 8 worker threads, and re-runs with the same
//! root seed must reproduce it exactly.
//!
//! This extends the per-experiment determinism suite in
//! `tests/determinism.rs` (agora core) up through the orchestration layer.

use agora_harness::{registry, run_matrix, run_to_json, trial_seed, MatrixConfig};

/// A light sub-matrix (the sim-heavy e5/e6/e8/e9 are covered by the full
/// binary run; the contract is the same either way).
fn light_config(threads: usize) -> MatrixConfig {
    MatrixConfig {
        root_seed: 99,
        seeds_per_variant: 2,
        threads,
        filter: Some(
            [
                "e1", "e2", "e3", "e4", "e7", "e10", "e11", "e12", "e13", "e14",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        ),
        ..MatrixConfig::default()
    }
}

#[test]
fn artifact_is_byte_identical_at_1_2_and_8_threads() {
    let reg = registry();
    let one = run_to_json(&run_matrix(&reg, &light_config(1))).render();
    let two = run_to_json(&run_matrix(&reg, &light_config(2))).render();
    let eight = run_to_json(&run_matrix(&reg, &light_config(8))).render();
    assert_eq!(one, two, "1-thread vs 2-thread artifacts differ");
    assert_eq!(two, eight, "2-thread vs 8-thread artifacts differ");
}

/// The sharded engine extends the same contract one level down: `--shards`
/// parallelizes the event loop *inside* each trial, and the artifact must
/// not know. One shard is literally the serial engine; four shards (with
/// threads forced on via the matrix worker pool untouched) must render the
/// identical bytes — and combining both knobs must change nothing either.
#[test]
fn artifact_is_byte_identical_at_1_and_4_engine_shards() {
    let reg = registry();
    let serial = run_to_json(&run_matrix(&reg, &light_config(1))).render();
    let sharded = {
        let mut cfg = light_config(1);
        cfg.shards = 4;
        run_to_json(&run_matrix(&reg, &cfg)).render()
    };
    assert_eq!(serial, sharded, "1-shard vs 4-shard artifacts differ");
    let both_knobs = {
        let mut cfg = light_config(8);
        cfg.shards = 2;
        run_to_json(&run_matrix(&reg, &cfg)).render()
    };
    assert_eq!(
        serial, both_knobs,
        "8 threads x 2 shards artifact differs from the serial oracle"
    );
}

/// The policy-on E16 variants extend the contract to the reactive-control
/// plane: every policy decision (shed, cache toggle, replication, seeder
/// activation) happens at a drain boundary off probe-frame state, so the
/// artifact — including the `policy.*` action counters — must not know how
/// many harness threads or engine shards ran it.
fn policy_config(threads: usize, shards: u32) -> MatrixConfig {
    MatrixConfig {
        root_seed: 99,
        seeds_per_variant: 2,
        threads,
        shards,
        filter: Some(vec!["e16p/p10k".to_owned()]),
        ..MatrixConfig::default()
    }
}

#[test]
fn policy_artifact_is_byte_identical_at_1_and_8_threads() {
    let reg = registry();
    let one = run_to_json(&run_matrix(&reg, &policy_config(1, 1))).render();
    let eight = run_to_json(&run_matrix(&reg, &policy_config(8, 1))).render();
    assert_eq!(
        one, eight,
        "policy-on artifact differs across thread counts"
    );
    assert!(
        one.contains("e16.policy.dht_shed.shed") && one.contains("e16.policy.storage_replicate"),
        "policy variant artifact should carry policy action counters"
    );
}

#[test]
fn policy_artifact_is_byte_identical_at_1_and_4_engine_shards() {
    let reg = registry();
    let serial = run_to_json(&run_matrix(&reg, &policy_config(1, 1))).render();
    let sharded = run_to_json(&run_matrix(&reg, &policy_config(1, 4))).render();
    assert_eq!(
        serial, sharded,
        "policy-on artifact differs across shard counts"
    );
}

/// The E18 app variants extend the contract to the delta-sync substrate:
/// subscriber sets, push fan-out, and merge order all iterate sorted
/// structures, so the artifact — delta-lag staleness included — must not
/// know how many harness threads or engine shards ran it.
fn app_config(threads: usize, shards: u32) -> MatrixConfig {
    MatrixConfig {
        root_seed: 99,
        seeds_per_variant: 2,
        threads,
        shards,
        filter: Some(vec!["e18/p10k".to_owned()]),
        ..MatrixConfig::default()
    }
}

#[test]
fn app_artifact_is_byte_identical_at_1_and_8_threads() {
    let reg = registry();
    let one = run_to_json(&run_matrix(&reg, &app_config(1, 1))).render();
    let eight = run_to_json(&run_matrix(&reg, &app_config(8, 1))).render();
    assert_eq!(one, eight, "app artifact differs across thread counts");
    assert!(
        one.contains("e18.guestbook.contract.stale_p99_secs")
            && one.contains("e18.kv.central.peak_overload"),
        "app variant artifact should carry both modes' gauges"
    );
}

#[test]
fn app_artifact_is_byte_identical_at_1_and_4_engine_shards() {
    let reg = registry();
    let serial = run_to_json(&run_matrix(&reg, &app_config(1, 1))).render();
    let sharded = run_to_json(&run_matrix(&reg, &app_config(1, 4))).render();
    assert_eq!(serial, sharded, "app artifact differs across shard counts");
}

#[test]
fn all_trials_complete_and_keep_matrix_order() {
    let run = run_matrix(&registry(), &light_config(4));
    assert_eq!(run.failures(), 0, "no experiment should panic");
    for (i, o) in run.outcomes.iter().enumerate() {
        assert_eq!(o.spec.index, i);
        assert_eq!(o.spec.seed, trial_seed(99, i as u64));
    }
}

#[test]
fn derived_trial_seeds_are_unique() {
    let run = run_matrix(&registry(), &light_config(2));
    let mut seeds: Vec<u64> = run.outcomes.iter().map(|o| o.spec.seed).collect();
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "trial seed collision");
}

#[test]
fn different_root_seeds_change_results() {
    let reg = registry();
    let mut cfg_a = light_config(2);
    cfg_a.filter = Some(vec!["e2".to_owned()]);
    let mut cfg_b = cfg_a.clone();
    cfg_b.root_seed = 100;
    let a = run_to_json(&run_matrix(&reg, &cfg_a)).render();
    let b = run_to_json(&run_matrix(&reg, &cfg_b)).render();
    assert_ne!(a, b, "root seed must flow into trial results");
}

/// The checked-in artifact guard: a default-config run — at one worker
/// thread AND at eight — must reproduce `BENCH_harness.json` byte for byte.
/// This is the regression fence for every hot-path optimization (midstate
/// mining, packed event keys, multicast fan-out, cached link rates): any
/// change that perturbs even one RNG draw or one f64 rounding shows up here
/// as a diff against the committed bytes, not just as self-consistency.
#[test]
fn default_matrix_matches_checked_in_baseline_at_1_and_8_threads() {
    let checked_in = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_harness.json"
    ))
    .expect("checked-in BENCH_harness.json must exist at the repo root");
    let reg = registry();
    for threads in [1, 8] {
        let cfg = MatrixConfig {
            threads,
            ..MatrixConfig::default()
        };
        let rendered = run_to_json(&run_matrix(&reg, &cfg)).render();
        assert_eq!(
            rendered, checked_in,
            "{threads}-thread default run diverged from the committed baseline"
        );
    }
}

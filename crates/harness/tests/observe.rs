//! The observe-plane contract, end to end through the public harness API:
//!
//! 1. `OBS_*.jsonl` bytes are a pure function of `(target, seed, observer
//!    config)` — harness thread count, engine shard count, and whether a
//!    flight recorder is nested alongside the probes must all be invisible
//!    in the artifact.
//! 2. The anomaly layer actually catches the phenomenon the repo is about:
//!    E16's flash crowd overloads the consumer-uplink substrates (DHT,
//!    storage market, swarm) within the ramp window, while the centralized
//!    and federated servers — same surge, datacenter-class uplinks — stay
//!    clean. This pins the acceptance story for `anomaly.overload`.

#![cfg(feature = "observe")]

use std::cell::RefCell;
use std::rc::Rc;

use agora_harness::observe::{run_observe_target, validate_obs_jsonl, ObserveRun};
use agora_harness::{registry, Json, MatrixConfig};
use agora_observer::ObserverConfig;

/// E16's flash-crowd schedule (see `exp_workload.rs`): onset at 12:45 UTC,
/// a 30-minute ramp to peak demand.
const FLASH_START_SECS: f64 = 45_900.0;
const RAMP_END_SECS: f64 = 47_700.0;

fn observe_to_string(
    target: &str,
    cfg: &MatrixConfig,
    trace_ring: Option<usize>,
) -> (String, ObserveRun) {
    let lines: Rc<RefCell<String>> = Rc::new(RefCell::new(String::new()));
    let out = Rc::clone(&lines);
    let run = run_observe_target(
        &registry(),
        cfg,
        target,
        ObserverConfig::default(),
        trace_ring,
        Box::new(move |line| {
            let mut buf = out.borrow_mut();
            buf.push_str(line);
            buf.push('\n');
        }),
    )
    .expect("observe target runs");
    let text = lines.borrow().clone();
    (text, run)
}

/// Anomaly lines of one kind, as `(sim ordinal, sim time, detector)`.
fn anomalies(text: &str, kind: &str) -> Vec<(u32, f64, String)> {
    text.lines()
        .filter_map(|line| {
            let v = Json::parse(line).expect("artifact lines parse");
            if v.get("type").and_then(Json::as_str) != Some("anomaly")
                || v.get("kind").and_then(Json::as_str) != Some(kind)
            {
                return None;
            }
            Some((
                v.get("sim").and_then(Json::as_f64).expect("sim") as u32,
                v.get("t").and_then(Json::as_f64).expect("t"),
                v.get("detector")
                    .and_then(Json::as_str)
                    .expect("detector")
                    .to_owned(),
            ))
        })
        .collect()
}

/// The acceptance pin: at population 1M, `anomaly.overload` flags the flash
/// crowd's onset — a surge-detector record inside the 30-minute ramp window
/// — on every consumer-uplink substrate (sim ordinals 2=DHT, 3=storage,
/// 4=swarm), and never fires at all for the centralized (0) or federated
/// (1) deployments, whose provisioned uplinks ride out the same 12x surge.
#[test]
fn flash_crowd_onset_is_flagged_on_consumer_uplinks_only() {
    let (text, _) = observe_to_string("e16/p1m", &MatrixConfig::default(), None);
    validate_obs_jsonl(&text).expect("artifact validates");
    let overloads = anomalies(&text, "anomaly.overload");
    assert!(
        !overloads.iter().any(|(sim, _, _)| *sim <= 1),
        "centralized/federated must stay clean, got {overloads:?}"
    );
    for consumer in [2u32, 3, 4] {
        assert!(
            overloads.iter().any(|(sim, t, detector)| *sim == consumer
                && detector == "jump"
                && (FLASH_START_SECS..=RAMP_END_SECS).contains(t)),
            "sim {consumer}: no surge-detector overload inside the ramp window \
             [{FLASH_START_SECS}, {RAMP_END_SECS}], got {overloads:?}"
        );
    }
}

/// Thread count is a matrix-level performance knob and the observed trial
/// is a single replayed trial — but the contract is worth pinning: the
/// artifact must not know how many workers the surrounding harness was
/// configured with.
#[test]
fn obs_artifact_is_byte_identical_at_1_and_8_threads() {
    let one = {
        let cfg = MatrixConfig {
            threads: 1,
            ..MatrixConfig::default()
        };
        observe_to_string("e16/p10k", &cfg, None).0
    };
    let eight = {
        let cfg = MatrixConfig {
            threads: 8,
            ..MatrixConfig::default()
        };
        observe_to_string("e16/p10k", &cfg, None).0
    };
    assert_eq!(one, eight, "1-thread vs 8-thread OBS artifacts differ");
}

/// Sharded engine dispatch replays the serial canonical order, so probe
/// frames — and therefore OBS bytes — must be shard-invariant.
#[test]
fn obs_artifact_is_byte_identical_at_1_and_4_engine_shards() {
    let serial = observe_to_string("e16/p10k", &MatrixConfig::default(), None).0;
    let sharded = {
        let cfg = MatrixConfig {
            shards: 4,
            ..MatrixConfig::default()
        };
        observe_to_string("e16/p10k", &cfg, None).0
    };
    assert_eq!(serial, sharded, "1-shard vs 4-shard OBS artifacts differ");
}

/// Tracing and probing are independent taps on the same canonical event
/// stream: nesting a flight recorder under the probe scope (what
/// `--observe X --explain M` does) must not move a single OBS byte, and
/// the recording it takes must resolve `anomaly.overload` to a causal
/// chain — the `--explain` face of the acceptance story.
#[cfg(feature = "trace")]
#[test]
fn obs_bytes_ignore_the_flight_recorder_and_anomalies_explain() {
    let cfg = MatrixConfig::default();
    let (untraced, _) = observe_to_string("e16/p10k", &cfg, None);
    let (traced, run) = observe_to_string("e16/p10k", &cfg, Some(1 << 16));
    assert_eq!(
        untraced, traced,
        "nested flight recorder changed OBS artifact bytes"
    );
    assert!(
        run.summary.anomalies.get("anomaly.overload").copied() > Some(0),
        "p10k flash crowd should trip the overload detector"
    );
    let recorder = run.recorder.as_ref().expect("recorder was requested");
    let explanation = agora_harness::trace::explain_metric(recorder, "anomaly.overload")
        .expect("anomaly.overload resolves to a trace point");
    assert!(
        explanation.text.contains("anomaly.overload"),
        "explanation names the metric: {}",
        explanation.text
    );
}

//! Naming attack experiments (E2): front-running with and without
//! preorders, and 51%-based name theft.

use agora_crypto::{sha256, Hash256};
use agora_sim::SimRng;

use crate::chain_naming::{NameDb, NameOp, NamingRules};

/// Outcome of the front-running experiment.
#[derive(Clone, Copy, Debug)]
pub struct FrontRunResult {
    /// Whether preorders were required.
    pub preorder_required: bool,
    /// Fraction of registrations stolen by the mempool-watching attacker.
    pub steal_rate: f64,
}

/// Play the front-running game `trials` times.
///
/// The attacker watches the mempool and, with probability `attacker_priority`
/// (its ability to get ordered first — e.g. by outbidding fees or mining),
/// lands its transaction before the victim's in the next block.
///
/// * Without preorders, the attacker sees the plaintext name in the victim's
///   `Register` and races it directly.
/// * With preorders, the attacker only ever sees a commitment hash at
///   preorder time; by the time the plaintext is revealed, the victim's
///   commitment is already on-chain, so racing the reveal is futile — the
///   attacker has no matching preorder. (It could preorder *after* seeing
///   the reveal, but the victim's own reveal is valid first.)
pub fn front_running_game(
    preorder_required: bool,
    attacker_priority: f64,
    trials: u32,
    rng: &mut SimRng,
) -> FrontRunResult {
    let rules = NamingRules {
        preorder_required,
        min_preorder_age: 1,
        preorder_ttl: 100,
        expiry_blocks: 10_000,
    };
    let victim = sha256(b"victim");
    let attacker = sha256(b"attacker");
    let mut stolen = 0u32;
    for t in 0..trials {
        let name = format!("name-{t}");
        let mut db = NameDb::default();
        let mut height = 1u64;
        if preorder_required {
            // Victim preorders; attacker sees only the hash — the best it
            // can do is preorder a *guess* (hopeless for real name spaces)
            // or wait for the reveal.
            let c = NameOp::commitment(&name, t as u64, &victim);
            db.apply(NameOp::Preorder { commitment: c }, victim, height, &rules);
            height += 1;
            // Reveal block: attacker now sees the plaintext and races the
            // reveal itself with priority ordering.
            let attacker_first = rng.chance(attacker_priority);
            let victim_reg = NameOp::Register {
                name: name.clone(),
                salt: t as u64,
                zone_hash: sha256(b"v"),
            };
            let attacker_reg = NameOp::Register {
                name: name.clone(),
                salt: 999,
                zone_hash: sha256(b"a"),
            };
            if attacker_first {
                db.apply(attacker_reg, attacker, height, &rules);
                db.apply(victim_reg, victim, height, &rules);
            } else {
                db.apply(victim_reg, victim, height, &rules);
                db.apply(attacker_reg, attacker, height, &rules);
            }
        } else {
            // No preorders: the victim's plaintext Register sits in the
            // mempool; the attacker races it directly.
            let attacker_first = rng.chance(attacker_priority);
            let victim_reg = NameOp::Register {
                name: name.clone(),
                salt: 0,
                zone_hash: sha256(b"v"),
            };
            let attacker_reg = NameOp::Register {
                name: name.clone(),
                salt: 0,
                zone_hash: sha256(b"a"),
            };
            if attacker_first {
                db.apply(attacker_reg, attacker, height, &rules);
                db.apply(victim_reg, victim, height, &rules);
            } else {
                db.apply(victim_reg, victim, height, &rules);
                db.apply(attacker_reg, attacker, height, &rules);
            }
        }
        if let Some(rec) = db.resolve(&name, height) {
            if rec.owner == attacker {
                stolen += 1;
            }
        }
    }
    FrontRunResult {
        preorder_required,
        steal_rate: stolen as f64 / trials as f64,
    }
}

/// Name theft via chain rewrite: an attacker with hash share `alpha` tries
/// to reorg out a victim's registration that has `confirmations` blocks on
/// top and replace it with its own. Success probability equals the
/// double-spend race (the registration *is* a transaction), so this
/// delegates to the chain's attack model — returned here with naming
/// framing for the E2 report.
pub fn name_theft_by_rewrite(alpha: f64, confirmations: u64, trials: u32, rng: &mut SimRng) -> f64 {
    agora_chain::double_spend_race(alpha, confirmations, trials, rng).success_rate
}

/// Convenience: account id for a labeled principal in experiments.
pub fn principal(label: &str) -> Hash256 {
    sha256(label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_preorder_attacker_steals_at_priority_rate() {
        let mut rng = SimRng::new(1);
        let r = front_running_game(false, 0.8, 2000, &mut rng);
        assert!(
            (r.steal_rate - 0.8).abs() < 0.05,
            "steal rate {} should track priority 0.8",
            r.steal_rate
        );
    }

    #[test]
    fn with_preorder_attacker_steals_nothing() {
        let mut rng = SimRng::new(2);
        let r = front_running_game(true, 0.8, 2000, &mut rng);
        assert_eq!(r.steal_rate, 0.0, "commitments defeat front-running");
    }

    #[test]
    fn preorder_defence_holds_even_at_full_priority() {
        let mut rng = SimRng::new(3);
        let r = front_running_game(true, 1.0, 500, &mut rng);
        assert_eq!(r.steal_rate, 0.0);
    }

    #[test]
    fn rewrite_theft_needs_majority() {
        let mut rng = SimRng::new(4);
        let minority = name_theft_by_rewrite(0.2, 6, 2000, &mut rng);
        let majority = name_theft_by_rewrite(0.6, 6, 500, &mut rng);
        assert!(minority < 0.05, "minority {minority}");
        assert!(majority > 0.9, "majority {majority}");
    }
}

//! The centralized registrar baseline: fast, cheap, convenient — and fully
//! at the operator's mercy (censorship, seizure, front-running by the
//! operator itself). The quantitative half of E1's comparison.

use std::collections::HashMap;

use agora_crypto::Hash256;

use crate::record::{valid_name, NameRecord};

/// Why the registrar refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistrarError {
    /// Name malformed.
    InvalidName,
    /// Name already registered.
    Taken,
    /// Name not registered.
    NotFound,
    /// Caller is not the owner.
    NotOwner,
    /// The operator has censored this name or account.
    Censored,
}

/// A centralized name registrar (the operator's database).
#[derive(Clone, Debug, Default)]
pub struct CentralRegistrar {
    names: HashMap<String, NameRecord>,
    banned_names: Vec<String>,
    banned_accounts: Vec<Hash256>,
    seq: u64,
    /// Registrations the operator processed (for throughput accounting).
    pub ops_processed: u64,
}

impl CentralRegistrar {
    /// Fresh registrar.
    pub fn new() -> CentralRegistrar {
        CentralRegistrar::default()
    }

    /// Operator action: censor a name (existing registration is seized).
    pub fn censor_name(&mut self, name: &str) {
        self.banned_names.push(name.to_owned());
        self.names.remove(name);
    }

    /// Operator action: ban an account entirely.
    pub fn ban_account(&mut self, account: Hash256) {
        self.banned_accounts.push(account);
        self.names.retain(|_, r| r.owner != account);
    }

    /// Register a name — immediate, no proof-of-work, no confirmation wait.
    pub fn register(
        &mut self,
        name: &str,
        owner: Hash256,
        zone_hash: Hash256,
    ) -> Result<&NameRecord, RegistrarError> {
        self.ops_processed += 1;
        if !valid_name(name) {
            return Err(RegistrarError::InvalidName);
        }
        if self.banned_names.iter().any(|n| n == name) || self.banned_accounts.contains(&owner) {
            return Err(RegistrarError::Censored);
        }
        if self.names.contains_key(name) {
            return Err(RegistrarError::Taken);
        }
        self.seq += 1;
        let rec = NameRecord {
            name: name.to_owned(),
            owner,
            zone_hash,
            registered_at: self.seq,
            expires_at: u64::MAX, // operator policy, not consensus
        };
        Ok(self.names.entry(name.to_owned()).or_insert(rec))
    }

    /// Update the zone hash (owner only).
    pub fn update(
        &mut self,
        name: &str,
        caller: Hash256,
        zone_hash: Hash256,
    ) -> Result<(), RegistrarError> {
        self.ops_processed += 1;
        let rec = self.names.get_mut(name).ok_or(RegistrarError::NotFound)?;
        if rec.owner != caller {
            return Err(RegistrarError::NotOwner);
        }
        rec.zone_hash = zone_hash;
        Ok(())
    }

    /// Resolve a name.
    pub fn resolve(&self, name: &str) -> Option<&NameRecord> {
        self.names.get(name)
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names exist.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    #[test]
    fn register_resolve_update() {
        let mut reg = CentralRegistrar::new();
        let alice = sha256(b"alice");
        reg.register("alice.id", alice, sha256(b"z1")).unwrap();
        assert_eq!(reg.resolve("alice.id").unwrap().owner, alice);
        reg.update("alice.id", alice, sha256(b"z2")).unwrap();
        assert_eq!(reg.resolve("alice.id").unwrap().zone_hash, sha256(b"z2"));
    }

    #[test]
    fn duplicate_and_invalid_rejected() {
        let mut reg = CentralRegistrar::new();
        reg.register("alice.id", sha256(b"a"), sha256(b"z"))
            .unwrap();
        assert_eq!(
            reg.register("alice.id", sha256(b"b"), sha256(b"z"))
                .unwrap_err(),
            RegistrarError::Taken
        );
        assert_eq!(
            reg.register("BAD", sha256(b"b"), sha256(b"z")).unwrap_err(),
            RegistrarError::InvalidName
        );
    }

    #[test]
    fn non_owner_update_rejected() {
        let mut reg = CentralRegistrar::new();
        reg.register("alice.id", sha256(b"a"), sha256(b"z"))
            .unwrap();
        assert_eq!(
            reg.update("alice.id", sha256(b"mallory"), sha256(b"evil"))
                .unwrap_err(),
            RegistrarError::NotOwner
        );
    }

    #[test]
    fn operator_censorship_is_total() {
        let mut reg = CentralRegistrar::new();
        let dissident = sha256(b"dissident");
        reg.register("freedom.press", dissident, sha256(b"z"))
            .unwrap();
        reg.censor_name("freedom.press");
        assert!(reg.resolve("freedom.press").is_none(), "seized");
        assert_eq!(
            reg.register("freedom.press", dissident, sha256(b"z"))
                .unwrap_err(),
            RegistrarError::Censored
        );
        // Account-level ban wipes all the account's names.
        reg.register("other.name", dissident, sha256(b"z")).unwrap();
        reg.ban_account(dissident);
        assert!(reg.resolve("other.name").is_none());
        assert_eq!(
            reg.register("third.name", dissident, sha256(b"z"))
                .unwrap_err(),
            RegistrarError::Censored
        );
    }
}

//! Blockchain name registration (the Namecoin / Blockstack mechanism class).
//!
//! Name operations ride the chain as [`APP_NAMING`] application payloads;
//! the [`NameDb`] derives the authoritative name set by scanning the best
//! chain and applying the state machine:
//!
//! `preorder (salted hash) → register (reveal) → update / transfer / renew →
//! expiry`.
//!
//! The preorder/reveal two-phase commit is what defeats front-running: a
//! mempool observer sees only `H(name ‖ salt ‖ account)` and cannot race the
//! registration of a name it cannot read (experiment E2).

use std::collections::HashMap;

use agora_chain::{Ledger, Transaction, TxPayload, APP_NAMING};
use agora_crypto::{sha256_concat, Dec, DecodeError, Enc, Hash256, SimKeyPair};

use crate::record::{valid_name, NameRecord};

/// Naming-system consensus rules.
#[derive(Clone, Debug)]
pub struct NamingRules {
    /// Whether registration requires a prior preorder (Namecoin: yes).
    pub preorder_required: bool,
    /// Minimum blocks between preorder and register (anti-same-block race).
    pub min_preorder_age: u64,
    /// Blocks after which an unclaimed preorder lapses.
    pub preorder_ttl: u64,
    /// Blocks a registration lasts before it needs renewal.
    pub expiry_blocks: u64,
}

impl Default for NamingRules {
    fn default() -> NamingRules {
        NamingRules {
            preorder_required: true,
            min_preorder_age: 1,
            preorder_ttl: 144,
            expiry_blocks: 52_560, // ~1 year of 10-minute blocks
        }
    }
}

/// A name operation (the App payload body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameOp {
    /// Commit to a future registration without revealing the name.
    Preorder {
        /// `H("preorder" ‖ name ‖ salt ‖ account)`.
        commitment: Hash256,
    },
    /// Reveal and claim the name.
    Register {
        /// The name being claimed.
        name: String,
        /// Salt matching the preorder commitment.
        salt: u64,
        /// Hash of the initial zone file.
        zone_hash: Hash256,
    },
    /// Replace the zone-file hash (owner only).
    Update {
        /// The name.
        name: String,
        /// New zone-file hash.
        zone_hash: Hash256,
    },
    /// Transfer ownership (current owner only).
    Transfer {
        /// The name.
        name: String,
        /// Receiving account.
        new_owner: Hash256,
    },
    /// Extend the registration (owner only).
    Renew {
        /// The name.
        name: String,
    },
    /// Permanently retire the name (owner only).
    Revoke {
        /// The name.
        name: String,
    },
}

impl NameOp {
    /// Compute a preorder commitment.
    pub fn commitment(name: &str, salt: u64, account: &Hash256) -> Hash256 {
        sha256_concat(&[
            b"preorder",
            name.as_bytes(),
            &salt.to_be_bytes(),
            account.as_bytes(),
        ])
    }

    /// Canonical encoding (App payload body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            NameOp::Preorder { commitment } => Enc::new().u8(0).hash(commitment).done(),
            NameOp::Register {
                name,
                salt,
                zone_hash,
            } => Enc::new().u8(1).str(name).u64(*salt).hash(zone_hash).done(),
            NameOp::Update { name, zone_hash } => Enc::new().u8(2).str(name).hash(zone_hash).done(),
            NameOp::Transfer { name, new_owner } => {
                Enc::new().u8(3).str(name).hash(new_owner).done()
            }
            NameOp::Renew { name } => Enc::new().u8(4).str(name).done(),
            NameOp::Revoke { name } => Enc::new().u8(5).str(name).done(),
        }
    }

    /// Decode an App payload body.
    pub fn decode(bytes: &[u8]) -> Result<NameOp, DecodeError> {
        let mut d = Dec::new(bytes);
        let op = match d.u8()? {
            0 => NameOp::Preorder {
                commitment: d.hash()?,
            },
            1 => NameOp::Register {
                name: d.str()?,
                salt: d.u64()?,
                zone_hash: d.hash()?,
            },
            2 => NameOp::Update {
                name: d.str()?,
                zone_hash: d.hash()?,
            },
            3 => NameOp::Transfer {
                name: d.str()?,
                new_owner: d.hash()?,
            },
            4 => NameOp::Renew { name: d.str()? },
            5 => NameOp::Revoke { name: d.str()? },
            t => return Err(DecodeError::BadTag(t)),
        };
        if !d.finished() {
            return Err(DecodeError::BadLength);
        }
        Ok(op)
    }

    /// Wrap into a signed chain transaction.
    pub fn into_tx(self, keys: &SimKeyPair, nonce: u64, fee: u64) -> Transaction {
        Transaction::create(
            keys,
            nonce,
            fee,
            TxPayload::App {
                tag: APP_NAMING,
                data: self.encode(),
            },
        )
    }
}

/// The derived name database (view over a chain).
#[derive(Clone, Debug, Default)]
pub struct NameDb {
    names: HashMap<String, NameRecord>,
    revoked: HashMap<String, ()>,
    preorders: HashMap<Hash256, (Hash256, u64)>, // commitment → (account, height)
    /// Operations rejected during the scan, with reasons (diagnostics).
    pub rejected: Vec<(u64, String)>,
}

impl NameDb {
    /// Build the authoritative view by scanning a ledger's best chain.
    pub fn from_ledger(ledger: &Ledger, rules: &NamingRules) -> NameDb {
        let mut db = NameDb::default();
        for (height, tx) in ledger.app_txs(APP_NAMING) {
            let TxPayload::App { data, .. } = &tx.payload else {
                continue;
            };
            match NameOp::decode(data) {
                Ok(op) => db.apply(op, tx.sender_account(), height, rules),
                Err(e) => db.rejected.push((height, format!("undecodable op: {e}"))),
            }
        }
        db
    }

    /// Apply one operation (exposed for incremental/experimental use).
    pub fn apply(&mut self, op: NameOp, sender: Hash256, height: u64, rules: &NamingRules) {
        match op {
            NameOp::Preorder { commitment } => {
                // First preorder wins; later ones are ignored until expiry.
                let entry = self.preorders.entry(commitment).or_insert((sender, height));
                if entry.0 != sender && height - entry.1 > rules.preorder_ttl {
                    *entry = (sender, height);
                }
            }
            NameOp::Register {
                name,
                salt,
                zone_hash,
            } => {
                if !valid_name(&name) {
                    self.rejected
                        .push((height, format!("invalid name '{name}'")));
                    return;
                }
                if self.revoked.contains_key(&name) {
                    self.rejected.push((height, format!("'{name}' is revoked")));
                    return;
                }
                if let Some(existing) = self.names.get(&name) {
                    if existing.expires_at >= height {
                        self.rejected
                            .push((height, format!("'{name}' already owned")));
                        return;
                    }
                }
                if rules.preorder_required {
                    let commitment = NameOp::commitment(&name, salt, &sender);
                    match self.preorders.get(&commitment) {
                        Some((who, when))
                            if *who == sender
                                && height - when >= rules.min_preorder_age
                                && height - when <= rules.preorder_ttl =>
                        {
                            self.preorders.remove(&commitment);
                        }
                        _ => {
                            self.rejected.push((
                                height,
                                format!("'{name}' register without valid preorder"),
                            ));
                            return;
                        }
                    }
                }
                self.names.insert(
                    name.clone(),
                    NameRecord {
                        name,
                        owner: sender,
                        zone_hash,
                        registered_at: height,
                        expires_at: height + rules.expiry_blocks,
                    },
                );
            }
            NameOp::Update { name, zone_hash } => match self.owned_by(&name, &sender, height) {
                Some(rec) => rec.zone_hash = zone_hash,
                None => self
                    .rejected
                    .push((height, format!("update '{name}' not owner/expired"))),
            },
            NameOp::Transfer { name, new_owner } => match self.owned_by(&name, &sender, height) {
                Some(rec) => rec.owner = new_owner,
                None => self
                    .rejected
                    .push((height, format!("transfer '{name}' not owner/expired"))),
            },
            NameOp::Renew { name } => {
                let expiry = rules.expiry_blocks;
                match self.owned_by(&name, &sender, height) {
                    Some(rec) => rec.expires_at = height + expiry,
                    None => self
                        .rejected
                        .push((height, format!("renew '{name}' not owner/expired"))),
                }
            }
            NameOp::Revoke { name } => {
                if self.owned_by(&name, &sender, height).is_some() {
                    self.names.remove(&name);
                    self.revoked.insert(name, ());
                } else {
                    self.rejected
                        .push((height, format!("revoke '{name}' not owner/expired")));
                }
            }
        }
    }

    fn owned_by(&mut self, name: &str, sender: &Hash256, height: u64) -> Option<&mut NameRecord> {
        self.names
            .get_mut(name)
            .filter(|r| &r.owner == sender && r.expires_at >= height)
    }

    /// Resolve a name at the given chain height (None if missing/expired).
    pub fn resolve(&self, name: &str, height: u64) -> Option<&NameRecord> {
        self.names.get(name).filter(|r| r.expires_at >= height)
    }

    /// Number of live (possibly expired) entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    fn rules() -> NamingRules {
        NamingRules {
            preorder_required: true,
            min_preorder_age: 1,
            preorder_ttl: 10,
            expiry_blocks: 100,
        }
    }

    fn acct(s: &str) -> Hash256 {
        sha256(s.as_bytes())
    }

    #[test]
    fn op_encode_decode_round_trip() {
        let ops = vec![
            NameOp::Preorder {
                commitment: sha256(b"c"),
            },
            NameOp::Register {
                name: "alice.id".into(),
                salt: 42,
                zone_hash: sha256(b"z"),
            },
            NameOp::Update {
                name: "alice.id".into(),
                zone_hash: sha256(b"z2"),
            },
            NameOp::Transfer {
                name: "alice.id".into(),
                new_owner: acct("bob"),
            },
            NameOp::Renew {
                name: "alice.id".into(),
            },
            NameOp::Revoke {
                name: "alice.id".into(),
            },
        ];
        for op in ops {
            assert_eq!(NameOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(NameOp::decode(&[9]).is_err());
    }

    #[test]
    fn preorder_then_register() {
        let mut db = NameDb::default();
        let r = rules();
        let alice = acct("alice");
        let c = NameOp::commitment("alice.id", 7, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 10, &r);
        db.apply(
            NameOp::Register {
                name: "alice.id".into(),
                salt: 7,
                zone_hash: sha256(b"z"),
            },
            alice,
            12,
            &r,
        );
        let rec = db.resolve("alice.id", 12).expect("registered");
        assert_eq!(rec.owner, alice);
        assert_eq!(rec.expires_at, 112);
    }

    #[test]
    fn register_without_preorder_rejected() {
        let mut db = NameDb::default();
        let r = rules();
        db.apply(
            NameOp::Register {
                name: "alice.id".into(),
                salt: 7,
                zone_hash: sha256(b"z"),
            },
            acct("alice"),
            12,
            &r,
        );
        assert!(db.resolve("alice.id", 12).is_none());
        assert_eq!(db.rejected.len(), 1);
    }

    #[test]
    fn same_block_register_rejected_min_age() {
        let mut db = NameDb::default();
        let r = rules();
        let alice = acct("alice");
        let c = NameOp::commitment("alice.id", 7, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 10, &r);
        db.apply(
            NameOp::Register {
                name: "alice.id".into(),
                salt: 7,
                zone_hash: sha256(b"z"),
            },
            alice,
            10,
            &r,
        );
        assert!(db.resolve("alice.id", 10).is_none());
    }

    #[test]
    fn stale_preorder_lapses() {
        let mut db = NameDb::default();
        let r = rules();
        let alice = acct("alice");
        let c = NameOp::commitment("alice.id", 7, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 10, &r);
        db.apply(
            NameOp::Register {
                name: "alice.id".into(),
                salt: 7,
                zone_hash: sha256(b"z"),
            },
            alice,
            25, // > ttl of 10 after preorder
            &r,
        );
        assert!(db.resolve("alice.id", 25).is_none());
    }

    #[test]
    fn someone_elses_preorder_does_not_serve() {
        // Mallory sees Alice's commitment hash but registering under
        // Mallory's account computes a different commitment ⇒ rejected.
        let mut db = NameDb::default();
        let r = rules();
        let alice = acct("alice");
        let mallory = acct("mallory");
        let c = NameOp::commitment("alice.id", 7, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 10, &r);
        db.apply(
            NameOp::Register {
                name: "alice.id".into(),
                salt: 7,
                zone_hash: sha256(b"evil"),
            },
            mallory,
            12,
            &r,
        );
        assert!(db.resolve("alice.id", 12).is_none());
    }

    #[test]
    fn double_register_first_wins() {
        let mut db = NameDb::default();
        let r = rules();
        let (alice, bob) = (acct("alice"), acct("bob"));
        for (who, salt, h) in [(alice, 1u64, 10u64), (bob, 2, 11)] {
            let c = NameOp::commitment("the.name", salt, &who);
            db.apply(NameOp::Preorder { commitment: c }, who, h, &r);
        }
        db.apply(
            NameOp::Register {
                name: "the.name".into(),
                salt: 1,
                zone_hash: sha256(b"a"),
            },
            alice,
            12,
            &r,
        );
        db.apply(
            NameOp::Register {
                name: "the.name".into(),
                salt: 2,
                zone_hash: sha256(b"b"),
            },
            bob,
            13,
            &r,
        );
        assert_eq!(db.resolve("the.name", 13).unwrap().owner, alice);
    }

    #[test]
    fn update_transfer_renew_revoke_lifecycle() {
        let mut db = NameDb::default();
        let r = rules();
        let (alice, bob) = (acct("alice"), acct("bob"));
        let c = NameOp::commitment("n.id", 1, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 1, &r);
        db.apply(
            NameOp::Register {
                name: "n.id".into(),
                salt: 1,
                zone_hash: sha256(b"z1"),
            },
            alice,
            2,
            &r,
        );
        // Non-owner update rejected.
        db.apply(
            NameOp::Update {
                name: "n.id".into(),
                zone_hash: sha256(b"evil"),
            },
            bob,
            3,
            &r,
        );
        assert_eq!(db.resolve("n.id", 3).unwrap().zone_hash, sha256(b"z1"));
        // Owner update.
        db.apply(
            NameOp::Update {
                name: "n.id".into(),
                zone_hash: sha256(b"z2"),
            },
            alice,
            4,
            &r,
        );
        assert_eq!(db.resolve("n.id", 4).unwrap().zone_hash, sha256(b"z2"));
        // Transfer to bob; alice can no longer update.
        db.apply(
            NameOp::Transfer {
                name: "n.id".into(),
                new_owner: bob,
            },
            alice,
            5,
            &r,
        );
        db.apply(
            NameOp::Update {
                name: "n.id".into(),
                zone_hash: sha256(b"z3"),
            },
            alice,
            6,
            &r,
        );
        assert_eq!(db.resolve("n.id", 6).unwrap().zone_hash, sha256(b"z2"));
        // Bob renews, extending expiry from height 7.
        db.apply(
            NameOp::Renew {
                name: "n.id".into(),
            },
            bob,
            7,
            &r,
        );
        assert_eq!(db.resolve("n.id", 7).unwrap().expires_at, 107);
        // Bob revokes; re-registration is forever rejected.
        db.apply(
            NameOp::Revoke {
                name: "n.id".into(),
            },
            bob,
            8,
            &r,
        );
        assert!(db.resolve("n.id", 8).is_none());
        let c2 = NameOp::commitment("n.id", 9, &alice);
        db.apply(NameOp::Preorder { commitment: c2 }, alice, 9, &r);
        db.apply(
            NameOp::Register {
                name: "n.id".into(),
                salt: 9,
                zone_hash: sha256(b"z4"),
            },
            alice,
            11,
            &r,
        );
        assert!(db.resolve("n.id", 11).is_none());
    }

    #[test]
    fn expiry_frees_the_name() {
        let mut db = NameDb::default();
        let r = rules(); // expiry 100
        let (alice, bob) = (acct("alice"), acct("bob"));
        let c = NameOp::commitment("n.id", 1, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, 1, &r);
        db.apply(
            NameOp::Register {
                name: "n.id".into(),
                salt: 1,
                zone_hash: sha256(b"z"),
            },
            alice,
            2,
            &r,
        );
        assert!(db.resolve("n.id", 102).is_some());
        assert!(db.resolve("n.id", 103).is_none(), "expired");
        // Bob can now claim it.
        let c2 = NameOp::commitment("n.id", 2, &bob);
        db.apply(NameOp::Preorder { commitment: c2 }, bob, 110, &r);
        db.apply(
            NameOp::Register {
                name: "n.id".into(),
                salt: 2,
                zone_hash: sha256(b"zb"),
            },
            bob,
            112,
            &r,
        );
        assert_eq!(db.resolve("n.id", 112).unwrap().owner, bob);
    }

    #[test]
    fn invalid_names_rejected() {
        let mut db = NameDb::default();
        let mut r = rules();
        r.preorder_required = false;
        db.apply(
            NameOp::Register {
                name: "BAD NAME".into(),
                salt: 0,
                zone_hash: sha256(b"z"),
            },
            acct("x"),
            1,
            &r,
        );
        assert!(db.is_empty());
    }
}

//! # agora-naming — decentralized name registration
//!
//! §3.1 of the paper, executable: blockchain naming (the Namecoin /
//! Blockstack mechanism class) alongside the classical baselines it is
//! compared against, with the attacks the paper cites as their weaknesses.
//!
//! * [`record`] — names, zone files, the on-chain/off-chain split.
//! * [`chain_naming`] — preorder/register/update/transfer/renew/revoke on
//!   `agora-chain`, with the derived [`NameDb`] view.
//! * [`centralized`] — the registrar baseline (instant, censorable).
//! * [`light`] — SPV thin-client resolution: verify a name with only the
//!   header chain (Blockstack-style).
//! * [`pki`] — CA PKI (compromise, revocation) and Web of Trust (Sybil).
//! * [`zooko`] — Zooko's-Triangle scoring of every scheme, from mechanism.
//! * [`attacks`] — front-running with/without preorders; 51% name theft.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod centralized;
pub mod chain_naming;
pub mod light;
pub mod pki;
pub mod record;
pub mod zooko;

pub use attacks::{front_running_game, name_theft_by_rewrite, FrontRunResult};
pub use centralized::{CentralRegistrar, RegistrarError};
pub use chain_naming::{NameDb, NameOp, NamingRules};
pub use light::{build_name_proof, light_resolve, LightError, LightResolver, NameProof, ProvenOp};
pub use pki::{verify_with_crl, CertAuthority, Certificate, WebOfTrust};
pub use record::{valid_name, NameRecord, ZoneFile, MAX_NAME_LEN};
pub use zooko::{render_zooko_table, NamingScheme, ZookoScore};

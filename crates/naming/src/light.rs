//! Light-client name resolution (Blockstack-style thin clients).
//!
//! §3.1's naming systems are only usable if phones and browsers can verify
//! name bindings *without* storing the chain. A [`LightResolver`] holds only
//! the header chain (kilobytes) and verifies a [`NameProof`] — the
//! registration/update transactions plus their Merkle inclusion proofs —
//! against it, replaying the name's operation history through the same
//! [`NameDb`] rules a full node uses.
//!
//! What a light client *cannot* see is a superseding operation it was never
//! shown (e.g. a later transfer). The proof therefore carries every
//! operation for the name up to the resolver's tip, and freshness is
//! enforced by requiring the proof to cover a recent height — the standard
//! SPV trust model, made explicit in [`LightError::Stale`].

use agora_chain::{InclusionProof, Ledger, SpvClient, Transaction, TxPayload, APP_NAMING};

use crate::chain_naming::{NameDb, NameOp, NamingRules};
use crate::record::NameRecord;

/// A transaction relevant to one name, with its inclusion proof.
#[derive(Clone, Debug)]
pub struct ProvenOp {
    /// The transaction carrying the name operation.
    pub tx: Transaction,
    /// Inclusion proof tying it to a block header.
    pub proof: InclusionProof,
}

/// Everything a light client needs to resolve one name.
#[derive(Clone, Debug)]
pub struct NameProof {
    /// The name being proven.
    pub name: String,
    /// All of the name's operations (and their preorders), oldest first.
    pub ops: Vec<ProvenOp>,
    /// Chain height the proof claims to be complete up to.
    pub as_of_height: u64,
}

/// Light-resolution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LightError {
    /// An inclusion proof failed verification.
    BadInclusion,
    /// A proven transaction decodes to no valid name operation.
    BadOp,
    /// The proof's claimed height exceeds the resolver's header chain.
    AheadOfHeaders,
    /// The proof is older than the resolver's freshness bound.
    Stale,
    /// The operations do not produce a live record for the name.
    NoRecord,
}

impl std::fmt::Display for LightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}
impl std::error::Error for LightError {}

/// Build a [`NameProof`] for `name` from a full node's ledger: every
/// APP_NAMING transaction that names it (or preorders anything — preorder
/// commitments are opaque, so all of them ride along; they are tiny).
pub fn build_name_proof(ledger: &Ledger, name: &str) -> NameProof {
    let mut ops = Vec::new();
    for (_, tx) in ledger.app_txs(APP_NAMING) {
        let TxPayload::App { data, .. } = &tx.payload else {
            continue;
        };
        let relevant = match NameOp::decode(data) {
            Ok(NameOp::Preorder { .. }) => true,
            Ok(NameOp::Register { name: n, .. })
            | Ok(NameOp::Update { name: n, .. })
            | Ok(NameOp::Transfer { name: n, .. })
            | Ok(NameOp::Renew { name: n })
            | Ok(NameOp::Revoke { name: n }) => n == name,
            Err(_) => false,
        };
        if relevant {
            let proof =
                InclusionProof::build(ledger, &tx.id()).expect("app tx is on the main chain");
            ops.push(ProvenOp { tx, proof });
        }
    }
    NameProof {
        name: name.to_owned(),
        ops,
        as_of_height: ledger.best_height(),
    }
}

/// A header-only name resolver.
pub struct LightResolver {
    spv: SpvClient,
    rules: NamingRules,
    /// Reject proofs claiming completeness more than this many blocks
    /// behind our best header.
    pub max_staleness: u64,
}

impl LightResolver {
    /// Create from a synced SPV client and the chain's naming rules.
    pub fn new(spv: SpvClient, rules: NamingRules) -> LightResolver {
        LightResolver {
            spv,
            rules,
            max_staleness: 16,
        }
    }

    /// Access the underlying header chain (e.g. to sync more headers).
    pub fn spv_mut(&mut self) -> &mut SpvClient {
        &mut self.spv
    }

    /// Verify a proof and resolve the name.
    pub fn resolve(&self, proof: &NameProof) -> Result<NameRecord, LightError> {
        if proof.as_of_height > self.spv.height() {
            return Err(LightError::AheadOfHeaders);
        }
        if self.spv.height() - proof.as_of_height > self.max_staleness {
            return Err(LightError::Stale);
        }
        let mut db = NameDb::default();
        for p in &proof.ops {
            // 1. The tx really is in a block on our best header chain
            //    (confirmation depth 1 suffices; headers carry the work).
            if !self.spv.verify_inclusion(&p.tx.id(), &p.proof, 1) {
                return Err(LightError::BadInclusion);
            }
            // 2. The tx signature is genuine.
            if !p.tx.verify_signature() {
                return Err(LightError::BadInclusion);
            }
            // 3. Replay through the consensus name rules at the proven
            //    height.
            let TxPayload::App { data, .. } = &p.tx.payload else {
                return Err(LightError::BadOp);
            };
            let op = NameOp::decode(data).map_err(|_| LightError::BadOp)?;
            db.apply(
                op,
                p.tx.sender_account(),
                p.proof.header.height,
                &self.rules,
            );
        }
        db.resolve(&proof.name, proof.as_of_height)
            .cloned()
            .ok_or(LightError::NoRecord)
    }

    /// Header storage footprint in bytes (the light client's whole state).
    pub fn storage_bytes(&self) -> u64 {
        self.spv.storage_bytes()
    }
}

/// Convenience: sync headers + verify the name in one call against a full
/// node (the shape a wallet RPC would take).
pub fn light_resolve(
    ledger: &Ledger,
    rules: &NamingRules,
    name: &str,
) -> Result<(NameRecord, u64), LightError> {
    let genesis = ledger
        .block(&ledger.genesis_hash())
        .expect("genesis present")
        .clone();
    let mut spv = SpvClient::new(&genesis);
    spv.sync_from(ledger);
    let resolver = LightResolver::new(spv, rules.clone());
    let proof = build_name_proof(ledger, name);
    let rec = resolver.resolve(&proof)?;
    Ok((rec, resolver.storage_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_chain::{mine_block, ChainParams};
    use agora_crypto::{sha256, SimKeyPair};
    use agora_sim::SimRng;

    fn rules() -> NamingRules {
        NamingRules {
            min_preorder_age: 1,
            ..NamingRules::default()
        }
    }

    /// Mine a chain registering (and then updating) "lite.agora".
    fn chain_with_name() -> (Ledger, SimKeyPair) {
        let alice = SimKeyPair::from_seed(b"light-alice");
        let mut ledger = Ledger::new("light", ChainParams::test(), &[(alice.public().id(), 1000)]);
        let mut rng = SimRng::new(3);
        let miner = sha256(b"m");
        let ops = vec![
            NameOp::Preorder {
                commitment: NameOp::commitment("lite.agora", 5, &alice.public().id()),
            }
            .into_tx(&alice, 0, 1),
            NameOp::Register {
                name: "lite.agora".into(),
                salt: 5,
                zone_hash: sha256(b"z1"),
            }
            .into_tx(&alice, 1, 1),
            NameOp::Update {
                name: "lite.agora".into(),
                zone_hash: sha256(b"z2"),
            }
            .into_tx(&alice, 2, 1),
        ];
        for (i, tx) in ops.into_iter().enumerate() {
            let parent = ledger.best_tip();
            let bits = ledger.next_difficulty(&parent);
            let (block, _) = mine_block(
                parent,
                i as u64 + 1,
                miner,
                vec![tx],
                (i as u64 + 1) * 1_000_000,
                bits,
                &mut rng,
            );
            ledger.submit_block(block).unwrap();
        }
        (ledger, alice)
    }

    #[test]
    fn light_resolution_matches_full_node() {
        let (ledger, alice) = chain_with_name();
        let (rec, header_bytes) = light_resolve(&ledger, &rules(), "lite.agora").unwrap();
        assert_eq!(rec.owner, alice.public().id());
        assert_eq!(rec.zone_hash, sha256(b"z2"), "update applied");
        // The light client stored only headers — far less than the chain.
        assert!(header_bytes < ledger.main_chain_bytes());
        // And it matches the full node's view.
        let db = NameDb::from_ledger(&ledger, &rules());
        assert_eq!(
            db.resolve("lite.agora", ledger.best_height()).unwrap(),
            &rec
        );
    }

    #[test]
    fn unknown_name_is_no_record() {
        let (ledger, _) = chain_with_name();
        assert_eq!(
            light_resolve(&ledger, &rules(), "ghost.agora").unwrap_err(),
            LightError::NoRecord
        );
    }

    #[test]
    fn tampered_proof_rejected() {
        let (ledger, alice) = chain_with_name();
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        spv.sync_from(&ledger);
        let resolver = LightResolver::new(spv, rules());
        let mut proof = build_name_proof(&ledger, "lite.agora");
        // Swap in a forged update claiming a different zone hash: the tx id
        // no longer matches its inclusion proof.
        let forged = NameOp::Update {
            name: "lite.agora".into(),
            zone_hash: sha256(b"evil"),
        }
        .into_tx(&alice, 9, 1);
        proof.ops[2].tx = forged;
        assert_eq!(
            resolver.resolve(&proof).unwrap_err(),
            LightError::BadInclusion
        );
    }

    #[test]
    fn omitting_the_update_shows_stale_zone_but_same_owner() {
        // A malicious proof server can *omit* later ops (SPV limitation):
        // the resolver then sees the old zone hash. Ownership still cannot
        // be forged; only freshness degrades — exactly the documented SPV
        // trust model.
        let (ledger, alice) = chain_with_name();
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        spv.sync_from(&ledger);
        let resolver = LightResolver::new(spv, rules());
        let mut proof = build_name_proof(&ledger, "lite.agora");
        proof.ops.pop(); // drop the update
        let rec = resolver.resolve(&proof).unwrap();
        assert_eq!(rec.owner, alice.public().id());
        assert_eq!(rec.zone_hash, sha256(b"z1"), "stale but owner-correct");
    }

    #[test]
    fn stale_proofs_rejected() {
        let (ledger, _) = chain_with_name();
        let genesis = ledger.block(&ledger.genesis_hash()).unwrap().clone();
        let mut spv = SpvClient::new(&genesis);
        spv.sync_from(&ledger);
        let mut resolver = LightResolver::new(spv, rules());
        resolver.max_staleness = 0;
        let mut proof = build_name_proof(&ledger, "lite.agora");
        proof.as_of_height = 0; // claims completeness only up to genesis
        assert_eq!(resolver.resolve(&proof).unwrap_err(), LightError::Stale);
        // A proof from the "future" is also rejected.
        proof.as_of_height = 999;
        assert_eq!(
            resolver.resolve(&proof).unwrap_err(),
            LightError::AheadOfHeaders
        );
    }
}

//! The two classical PKI baselines of §3.1 and their "well-known security,
//! trust, and revocation weaknesses": certification authorities (CA
//! compromise) and webs of trust (Sybil attacks).

use std::collections::{HashMap, HashSet, VecDeque};

use agora_crypto::{Enc, Hash256, SimKeyPair, SimPublicKey, SimSignature};

// ---------------------------------------------------------------------------
// Certification-authority PKI
// ---------------------------------------------------------------------------

/// A certificate binding a name to a subject key, signed by a CA.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The bound name.
    pub name: String,
    /// Subject's public-key fingerprint.
    pub subject_key: Hash256,
    /// Issuing CA's public key.
    pub issuer: SimPublicKey,
    /// Serial number (for revocation).
    pub serial: u64,
    /// CA signature over (name, subject, serial).
    pub signature: SimSignature,
}

fn cert_body(name: &str, subject_key: &Hash256, serial: u64) -> Vec<u8> {
    Enc::new().str(name).hash(subject_key).u64(serial).done()
}

impl Certificate {
    /// Verify issuer signature against a trusted CA key.
    pub fn verify(&self, trusted_ca: &SimPublicKey) -> bool {
        self.issuer == *trusted_ca
            && trusted_ca.verify(
                &cert_body(&self.name, &self.subject_key, self.serial),
                &self.signature,
            )
    }
}

/// A certification authority.
pub struct CertAuthority {
    keys: SimKeyPair,
    next_serial: u64,
    issued: Vec<Certificate>,
    revoked: HashSet<u64>,
}

impl CertAuthority {
    /// Create a CA from seed material.
    pub fn new(seed: &[u8]) -> CertAuthority {
        CertAuthority {
            keys: SimKeyPair::from_seed(seed),
            next_serial: 1,
            issued: Vec::new(),
            revoked: HashSet::new(),
        }
    }

    /// The CA's public key (the verifier's trust anchor).
    pub fn public(&self) -> SimPublicKey {
        self.keys.public()
    }

    /// Issue a certificate.
    pub fn issue(&mut self, name: &str, subject_key: Hash256) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        let cert = Certificate {
            name: name.to_owned(),
            subject_key,
            issuer: self.keys.public(),
            serial,
            signature: self.keys.sign(&cert_body(name, &subject_key, serial)),
        };
        self.issued.push(cert.clone());
        cert
    }

    /// Revoke a serial (goes on the CRL).
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// The CRL.
    pub fn crl(&self) -> &HashSet<u64> {
        &self.revoked
    }

    /// **Attack model**: the CA's signing key is exfiltrated. The returned
    /// keypair lets the attacker mint certificates that verify against the
    /// genuine trust anchor — the paper's "CA compromises".
    pub fn compromise(&self) -> SimKeyPair {
        self.keys.public().leak_seed_for_attack_model()
    }

    /// Certificates issued so far (transparency-log stand-in).
    pub fn issued(&self) -> &[Certificate] {
        &self.issued
    }
}

/// Full verification: signature + CRL.
pub fn verify_with_crl(cert: &Certificate, trusted_ca: &SimPublicKey, crl: &HashSet<u64>) -> bool {
    cert.verify(trusted_ca) && !crl.contains(&cert.serial)
}

// ---------------------------------------------------------------------------
// Web of Trust
// ---------------------------------------------------------------------------

/// A web of trust: identities endorse (name, key) bindings of other
/// identities. A binding is accepted if at least `quorum` *vertex-disjoint*
/// endorsement paths of bounded length lead from the verifier's anchors to
/// the binding's subject.
#[derive(Clone, Debug, Default)]
pub struct WebOfTrust {
    /// endorser → endorsed identities.
    edges: HashMap<Hash256, Vec<Hash256>>,
    /// identity → claimed (name, key) binding.
    bindings: HashMap<Hash256, (String, Hash256)>,
}

impl WebOfTrust {
    /// Empty web.
    pub fn new() -> WebOfTrust {
        WebOfTrust::default()
    }

    /// Record that identity `id` claims to be `name` with key `key`.
    pub fn claim(&mut self, id: Hash256, name: &str, key: Hash256) {
        self.bindings.insert(id, (name.to_owned(), key));
    }

    /// Record an endorsement (a keysigning).
    pub fn endorse(&mut self, endorser: Hash256, endorsed: Hash256) {
        let v = self.edges.entry(endorser).or_default();
        if !v.contains(&endorsed) {
            v.push(endorsed);
        }
    }

    /// Count vertex-disjoint paths (greedy BFS-and-remove; a lower bound,
    /// standard practice for WoT validation) from any anchor to `target`,
    /// with at most `max_hops` edges, up to `need` paths.
    fn disjoint_paths(
        &self,
        anchors: &[Hash256],
        target: Hash256,
        max_hops: usize,
        need: usize,
    ) -> usize {
        let mut used: HashSet<Hash256> = HashSet::new();
        let mut found = 0;
        while found < need {
            // BFS avoiding interior vertices used by prior paths.
            let mut prev: HashMap<Hash256, Hash256> = HashMap::new();
            let mut depth: HashMap<Hash256, usize> = HashMap::new();
            let mut q = VecDeque::new();
            for &a in anchors {
                if !used.contains(&a) {
                    q.push_back(a);
                    depth.insert(a, 0);
                }
            }
            let mut reached = false;
            while let Some(u) = q.pop_front() {
                let d = depth[&u];
                if d >= max_hops {
                    continue;
                }
                for &v in self.edges.get(&u).into_iter().flatten() {
                    if depth.contains_key(&v) || (used.contains(&v) && v != target) {
                        continue;
                    }
                    prev.insert(v, u);
                    depth.insert(v, d + 1);
                    if v == target {
                        reached = true;
                        break;
                    }
                    q.push_back(v);
                }
                if reached {
                    break;
                }
            }
            if !reached {
                break;
            }
            // Mark interior vertices of this path as used.
            let mut cur = target;
            while let Some(&p) = prev.get(&cur) {
                if p != target && !anchors.contains(&p) {
                    used.insert(p);
                }
                cur = p;
            }
            found += 1;
        }
        found
    }

    /// Verify a (name, key) binding: the claiming identity must be reachable
    /// by `quorum` disjoint paths of ≤ `max_hops` from the verifier's
    /// anchors, and its claimed binding must match.
    pub fn verify(
        &self,
        anchors: &[Hash256],
        claimant: Hash256,
        name: &str,
        key: Hash256,
        max_hops: usize,
        quorum: usize,
    ) -> bool {
        match self.bindings.get(&claimant) {
            Some((n, k)) if n == name && *k == key => {}
            _ => return false,
        }
        if anchors.contains(&claimant) {
            return true;
        }
        self.disjoint_paths(anchors, claimant, max_hops, quorum) >= quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    // -- CA tests ----------------------------------------------------------

    #[test]
    fn ca_issue_and_verify() {
        let mut ca = CertAuthority::new(b"root-ca");
        let cert = ca.issue("alice.example", sha256(b"alice-key"));
        assert!(cert.verify(&ca.public()));
        assert!(verify_with_crl(&cert, &ca.public(), ca.crl()));
    }

    #[test]
    fn wrong_ca_rejected() {
        let mut ca = CertAuthority::new(b"root-ca");
        let other = CertAuthority::new(b"other-ca");
        let cert = ca.issue("alice.example", sha256(b"alice-key"));
        assert!(!cert.verify(&other.public()));
    }

    #[test]
    fn tampered_cert_rejected() {
        let mut ca = CertAuthority::new(b"root-ca");
        let mut cert = ca.issue("alice.example", sha256(b"alice-key"));
        cert.subject_key = sha256(b"mallory-key");
        assert!(!cert.verify(&ca.public()));
    }

    #[test]
    fn revocation_via_crl() {
        let mut ca = CertAuthority::new(b"root-ca");
        let cert = ca.issue("alice.example", sha256(b"alice-key"));
        ca.revoke(cert.serial);
        assert!(cert.verify(&ca.public()), "signature still fine");
        assert!(
            !verify_with_crl(&cert, &ca.public(), ca.crl()),
            "but CRL kills it"
        );
    }

    #[test]
    fn ca_compromise_mints_accepted_rogue_certs() {
        let mut ca = CertAuthority::new(b"root-ca");
        let _legit = ca.issue("bank.example", sha256(b"bank-key"));
        // Attacker exfiltrates the CA key and issues a cert for the SAME
        // name with the attacker's key — it verifies against the genuine
        // trust anchor. This is the §3.1 CA-compromise weakness.
        let stolen = ca.compromise();
        let body = cert_body("bank.example", &sha256(b"attacker-key"), 999);
        let rogue = Certificate {
            name: "bank.example".into(),
            subject_key: sha256(b"attacker-key"),
            issuer: ca.public(),
            serial: 999,
            signature: stolen.sign(&body),
        };
        assert!(rogue.verify(&ca.public()), "rogue cert accepted");
        // Only after discovery + revocation does verification fail.
        ca.revoke(999);
        assert!(!verify_with_crl(&rogue, &ca.public(), ca.crl()));
    }

    // -- WoT tests -----------------------------------------------------------

    fn id(s: &str) -> Hash256 {
        sha256(s.as_bytes())
    }

    /// anchor → a → target and anchor → b → target (2 disjoint paths).
    fn honest_web() -> (WebOfTrust, Hash256, Hash256) {
        let mut w = WebOfTrust::new();
        let (anchor, a, b, target) = (id("anchor"), id("a"), id("b"), id("target"));
        w.endorse(anchor, a);
        w.endorse(anchor, b);
        w.endorse(a, target);
        w.endorse(b, target);
        w.claim(target, "target.name", id("target-key"));
        (w, anchor, target)
    }

    #[test]
    fn wot_accepts_with_quorum_paths() {
        let (w, anchor, target) = honest_web();
        assert!(w.verify(&[anchor], target, "target.name", id("target-key"), 3, 2));
    }

    #[test]
    fn wot_rejects_wrong_binding() {
        let (w, anchor, target) = honest_web();
        assert!(!w.verify(&[anchor], target, "target.name", id("wrong-key"), 3, 2));
        assert!(!w.verify(&[anchor], target, "other.name", id("target-key"), 3, 2));
    }

    #[test]
    fn wot_rejects_insufficient_disjoint_paths() {
        let mut w = WebOfTrust::new();
        let (anchor, mid, target) = (id("anchor"), id("mid"), id("target"));
        // Two "paths" share the single interior vertex `mid` ⇒ 1 disjoint.
        w.endorse(anchor, mid);
        w.endorse(mid, target);
        w.claim(target, "t", id("k"));
        assert!(w.verify(&[anchor], target, "t", id("k"), 3, 1));
        assert!(!w.verify(&[anchor], target, "t", id("k"), 3, 2));
    }

    #[test]
    fn wot_hop_limit_enforced() {
        let mut w = WebOfTrust::new();
        let chain: Vec<Hash256> = (0..5).map(|i| id(&format!("n{i}"))).collect();
        for pair in chain.windows(2) {
            w.endorse(pair[0], pair[1]);
        }
        let target = chain[4];
        w.claim(target, "far", id("k"));
        assert!(w.verify(&[chain[0]], target, "far", id("k"), 4, 1));
        assert!(!w.verify(&[chain[0]], target, "far", id("k"), 3, 1));
    }

    #[test]
    fn wot_sybil_attack_with_one_social_engineered_edge() {
        // The paper's "WoT Sybil attacks": the adversary mints fake
        // identities that endorse each other and the rogue binding. With no
        // edge from the honest web the attack fails; once ONE honest member
        // is tricked into endorsing ONE Sybil, a quorum-1 verifier accepts
        // the rogue binding — and with two tricked members, quorum-2 falls.
        let mut w = WebOfTrust::new();
        let anchor = id("anchor");
        let honest1 = id("honest1");
        let honest2 = id("honest2");
        w.endorse(anchor, honest1);
        w.endorse(anchor, honest2);
        let sybils: Vec<Hash256> = (0..10).map(|i| id(&format!("sybil{i}"))).collect();
        let rogue = id("rogue");
        for s in &sybils {
            w.endorse(*s, rogue);
            for t in &sybils {
                if s != t {
                    w.endorse(*s, *t);
                }
            }
        }
        w.claim(rogue, "bank.example", id("attacker-key"));
        // Isolated Sybil cluster: unreachable, attack fails.
        assert!(!w.verify(&[anchor], rogue, "bank.example", id("attacker-key"), 4, 1));
        // One social-engineered endorsement bridges the cluster.
        w.endorse(honest1, sybils[0]);
        assert!(w.verify(&[anchor], rogue, "bank.example", id("attacker-key"), 4, 1));
        // Quorum 2 still resists (one bridge ⇒ one disjoint path)...
        assert!(!w.verify(&[anchor], rogue, "bank.example", id("attacker-key"), 4, 2));
        // ...until a second honest member is tricked.
        w.endorse(honest2, sybils[1]);
        assert!(w.verify(&[anchor], rogue, "bank.example", id("attacker-key"), 4, 2));
    }
}
